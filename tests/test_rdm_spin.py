"""Tests for reduced density matrices and spin operators — including
the energy-reconstruction identity that cross-checks the whole stack."""

import numpy as np
import pytest

from repro.chem.fci import exact_ground_state
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h2
from repro.chem.rdm import (
    energy_from_rdms,
    natural_occupations,
    one_rdm,
    two_rdm,
)
from repro.chem.reference import hartree_fock_state
from repro.chem.scf import run_rhf
from repro.chem.spin import s_squared_operator, s_z_operator, spin_expectations
from repro.chem.uccsd import uccsd_generators
from repro.core.vqd import run_vqd
from repro.core.vqe import VQE


@pytest.fixture(scope="module")
def h2_solution():
    scf = run_rhf(h2())
    mh = build_molecular_hamiltonian(scf)
    hq = mh.to_qubit()
    e, state = exact_ground_state(hq, num_particles=2, sz=0)
    return scf, mh, hq, e, state


class TestOneRDM:
    def test_hf_determinant(self):
        state = hartree_fock_state(4, 2)
        d1 = one_rdm(state, 4)
        assert np.allclose(d1, np.diag([1, 1, 0, 0]), atol=1e-10)

    def test_trace_is_particle_number(self, h2_solution):
        *_, state = h2_solution
        d1 = one_rdm(state, 4)
        assert np.isclose(np.trace(d1).real, 2.0, atol=1e-8)

    def test_hermitian_and_bounded(self, h2_solution):
        *_, state = h2_solution
        d1 = one_rdm(state, 4)
        assert np.allclose(d1, d1.conj().T, atol=1e-10)
        occ = np.linalg.eigvalsh(d1)
        assert np.all(occ > -1e-9) and np.all(occ < 1 + 1e-9)

    def test_natural_occupations_correlated(self, h2_solution):
        """FCI H2 has fractional natural occupations (unlike HF)."""
        *_, state = h2_solution
        occ = natural_occupations(one_rdm(state, 4))
        assert occ[0] < 1.0 - 1e-3  # depleted bonding orbital
        assert occ[-1] > 1e-3       # populated antibonding orbital


class TestTwoRDM:
    def test_antisymmetry(self, h2_solution):
        *_, state = h2_solution
        d2 = two_rdm(state, 4)
        assert np.allclose(d2, -d2.transpose(1, 0, 2, 3), atol=1e-10)
        assert np.allclose(d2, -d2.transpose(0, 1, 3, 2), atol=1e-10)

    def test_partial_trace_gives_one_rdm(self, h2_solution):
        """sum_q D2[p,q,r,q] = (N-1) D1[p,r]."""
        *_, state = h2_solution
        d1 = one_rdm(state, 4)
        d2 = two_rdm(state, 4)
        traced = np.einsum("pqrq->pr", d2)
        assert np.allclose(traced, (2 - 1) * d1, atol=1e-8)

    def test_energy_reconstruction_fci(self, h2_solution):
        """E = const + h.D1 + g.D2/2 must equal the eigenvalue —
        Hamiltonian, mapping, simulator, and RDMs all consistent."""
        _, mh, _, e_exact, state = h2_solution
        d1 = one_rdm(state, 4)
        d2 = two_rdm(state, 4)
        assert np.isclose(energy_from_rdms(mh, d1, d2), e_exact, atol=1e-8)

    def test_energy_reconstruction_hf(self, h2_solution):
        scf, mh, *_ = h2_solution
        state = hartree_fock_state(4, 2)
        d1 = one_rdm(state, 4)
        d2 = two_rdm(state, 4)
        assert np.isclose(energy_from_rdms(mh, d1, d2), scf.energy, atol=1e-8)


class TestSpin:
    def test_hf_singlet(self):
        state = hartree_fock_state(4, 2)
        sz, s2 = spin_expectations(state, 2)
        assert np.isclose(sz, 0.0, atol=1e-10)
        assert np.isclose(s2, 0.0, atol=1e-10)

    def test_polarized_state(self):
        # two alpha electrons (qubits 0 and 2): S_z = 1, S^2 = 2 (triplet)
        state = np.zeros(16, dtype=complex)
        state[0b0101] = 1.0
        sz, s2 = spin_expectations(state, 2)
        assert np.isclose(sz, 1.0, atol=1e-10)
        assert np.isclose(s2, 2.0, atol=1e-10)

    def test_vqe_ground_state_is_singlet(self, h2_solution):
        _, _, hq, _, _ = h2_solution
        gens = [a for _, a in uccsd_generators(4, 2)]
        vqe = VQE(hq, generators=gens, reference_state=hartree_fock_state(4, 2))
        res = vqe.run()
        state = vqe.objective.prepare_state(res.optimal_parameters)
        _, s2 = spin_expectations(state, 2)
        assert abs(s2) < 1e-6

    def test_vqd_first_excited_is_triplet(self, h2_solution):
        """Physics cross-check: H2's first excited state in the
        (N=2, Sz=0) sector is the m_s = 0 triplet: <S^2> = 2."""
        _, _, hq, _, _ = h2_solution
        gens = [a for _, a in uccsd_generators(4, 2, generalized=True)]
        res = run_vqd(
            hq, gens, hartree_fock_state(4, 2), num_states=2, restarts=3
        )
        _, s2 = spin_expectations(res.states[1], 2)
        assert np.isclose(s2, 2.0, atol=1e-4)

    def test_s2_commutes_with_molecular_hamiltonian(self, h2_solution):
        """[H, S^2] = 0: spin is a symmetry of the Coulomb Hamiltonian."""
        from repro.chem.mappings import jordan_wigner

        _, mh, hq, _, _ = h2_solution
        s2_q = jordan_wigner(s_squared_operator(2), 4)
        comm = hq.commutator(s2_q)
        assert comm.chop(1e-8).num_terms == 0
