"""Compiled circuit plans (repro.sim.plan): equivalence against the
naive bind+run path, prefix-reuse correctness and invalidation, the
>=3-qubit dense fallback, and the plan wiring through estimators,
gradients, batched and distributed executors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import DirectEstimator, Estimator
from repro.ir.circuit import Circuit
from repro.ir.gates import Gate, Parameter
from repro.ir.pauli import PauliSum
from repro.sim.plan import ExecutionPlan, compile_circuit, unbound_parameter_message
from repro.sim.statevector import StatevectorSimulator

# -- strategies ---------------------------------------------------------------

_STATIC_1Q = ["h", "x", "y", "z", "s", "sdg", "t", "tdg"]
_STATIC_2Q = ["cx", "cz", "swap"]
_PARAM_1Q = ["rx", "ry", "rz", "p"]
_PARAM_2Q = ["rzz", "rxx", "ryy", "cp", "crz"]

angles = st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False)


@st.composite
def parameterized_circuits(draw, max_qubits=4, max_gates=14, max_params=4):
    """Random circuit mixing static and symbolic-parameter gates; the
    same named parameter may feed several gates with distinct affine
    coefficients (the trotterized-ansatz pattern)."""
    n = draw(st.integers(2, max_qubits))
    m = draw(st.integers(0, max_params))
    circ = Circuit(n)
    for _ in range(draw(st.integers(1, max_gates))):
        two_q = draw(st.booleans())
        parametric = m > 0 and draw(st.booleans())
        if two_q:
            q0 = draw(st.integers(0, n - 1))
            q1 = draw(st.integers(0, n - 2))
            if q1 >= q0:
                q1 += 1
            if parametric:
                name = draw(st.sampled_from(_PARAM_2Q))
                p = Parameter(
                    f"t{draw(st.integers(0, m - 1))}",
                    coeff=draw(st.sampled_from([1.0, -1.0, 0.5, 2.0])),
                    offset=draw(st.sampled_from([0.0, 0.25])),
                )
                circ.add(name, [q0, q1], p)
            else:
                circ.add(draw(st.sampled_from(_STATIC_2Q)), [q0, q1])
        else:
            q = draw(st.integers(0, n - 1))
            if parametric:
                name = draw(st.sampled_from(_PARAM_1Q))
                p = Parameter(
                    f"t{draw(st.integers(0, m - 1))}",
                    coeff=draw(st.sampled_from([1.0, -1.0, 0.5, 2.0])),
                    offset=draw(st.sampled_from([0.0, 0.25])),
                )
                circ.add(name, [q], p)
            elif draw(st.booleans()):
                circ.add(draw(st.sampled_from(_STATIC_1Q)), [q])
            else:  # concrete-angle rotation: static but matrix-valued
                circ.add(
                    draw(st.sampled_from(_PARAM_1Q)), [q], draw(angles)
                )
    return circ


def _naive_state(circuit, params):
    sim = StatevectorSimulator(circuit.num_qubits)
    bound = circuit.bind(list(params)) if circuit.num_parameters else circuit
    return sim.run(bound).copy()


# -- equivalence --------------------------------------------------------------


class TestPlanEquivalence:
    @given(
        parameterized_circuits(),
        st.data(),
        st.booleans(),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_bind_run(self, circ, data, fuse, fold, prefix):
        plan = ExecutionPlan(
            circ,
            fuse=fuse,
            fold_diagonals=fold,
            enable_prefix=prefix,
            prefix_budget=3,
        )
        state = np.empty(plan.dim, dtype=np.complex128)
        # several evaluations against one plan: some fresh vectors, some
        # single-parameter perturbations (the prefix-reuse pattern)
        params = np.array(
            [data.draw(angles) for _ in range(plan.num_parameters)]
        )
        for _ in range(data.draw(st.integers(1, 4))):
            plan.execute(state, params)
            expected = _naive_state(circ, params)
            np.testing.assert_allclose(state, expected, atol=1e-10)
            params = params.copy()
            if plan.num_parameters and data.draw(st.booleans()):
                k = data.draw(st.integers(0, plan.num_parameters - 1))
                params[k] += data.draw(angles)
            else:
                params = np.array(
                    [data.draw(angles) for _ in range(plan.num_parameters)]
                )

    @given(parameterized_circuits(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_run_plan_matches_run(self, circ, data):
        params = [data.draw(angles) for _ in range(circ.num_parameters)]
        plan = compile_circuit(circ)
        sim = StatevectorSimulator(circ.num_qubits)
        got = sim.run_plan(plan, params).copy()
        np.testing.assert_allclose(got, _naive_state(circ, params), atol=1e-10)

    def test_execute_slice_composes(self):
        circ = Circuit(3)
        for q in range(3):
            circ.h(q)
            circ.rz(Parameter(f"a{q}"), q)
            circ.cx(q, (q + 1) % 3)
        plan = ExecutionPlan(circ, enable_prefix=False)
        params = np.array([0.3, -1.1, 2.2])
        state = np.zeros(plan.dim, dtype=np.complex128)
        state[0] = 1.0
        cut = plan.first_use[1]
        plan.execute_slice(state, params, 0, cut)
        plan.execute_slice(state, params, cut)
        np.testing.assert_allclose(state, _naive_state(circ, params), atol=1e-10)


# -- prefix reuse and invalidation -------------------------------------------


def _shift_circuit(m=4, n=3):
    circ = Circuit(n)
    for k in range(m):
        circ.ry(Parameter(f"t{k}"), k % n)
        circ.cx(k % n, (k + 1) % n)
    return circ


class TestPrefixReuse:
    def test_shift_pattern_resumes_and_stays_exact(self):
        circ = _shift_circuit()
        plan = ExecutionPlan(circ)
        base = np.linspace(0.1, 0.7, plan.num_parameters)
        state = np.empty(plan.dim, dtype=np.complex128)
        plan.execute(state, base)
        for k in range(plan.num_parameters):
            for sign in (1.0, -1.0):
                shifted = base.copy()
                shifted[k] += sign * np.pi / 2
                plan.execute(state, shifted)
                np.testing.assert_allclose(
                    state, _naive_state(circ, shifted), atol=1e-10
                )
            # re-parking the base between up/down shifts guarantees a
            # resume for every down-shift at least
            plan.execute(state, base)
        assert plan.prefix_resumes > 0
        assert plan.prefix_ops_skipped > 0

    def test_tiny_budget_still_exact(self):
        circ = _shift_circuit()
        plan = ExecutionPlan(circ, prefix_budget=1)
        state = np.empty(plan.dim, dtype=np.complex128)
        rng = np.random.default_rng(7)
        for _ in range(6):
            params = rng.uniform(-2, 2, plan.num_parameters)
            plan.execute(state, params)
            np.testing.assert_allclose(
                state, _naive_state(circ, params), atol=1e-10
            )

    def test_reset_false_bypasses_prefix_cache(self):
        circ = _shift_circuit()
        plan = ExecutionPlan(circ)
        params = np.full(plan.num_parameters, 0.4)
        state = np.empty(plan.dim, dtype=np.complex128)
        plan.execute(state, params)  # parks the final state
        custom = np.zeros(plan.dim, dtype=np.complex128)
        custom[1] = 1.0
        expect = custom.copy()
        plan.execute(custom, params, reset=False)
        # reference: apply the bound circuit to |001>
        sim = StatevectorSimulator(circ.num_qubits)
        sim.set_state(expect)
        sim.apply_circuit(circ.bind(list(params)))
        np.testing.assert_allclose(custom, sim.statevector(), atol=1e-10)

    def test_clear_prefix_cache(self):
        circ = _shift_circuit()
        plan = ExecutionPlan(circ)
        params = np.full(plan.num_parameters, 0.2)
        state = np.empty(plan.dim, dtype=np.complex128)
        plan.execute(state, params)
        plan.clear_prefix_cache()
        plan.execute(state, params)
        np.testing.assert_allclose(state, _naive_state(circ, params), atol=1e-10)


class TestInvalidation:
    def test_mutation_forces_recompile(self):
        circ = _shift_circuit()
        plan = compile_circuit(circ)
        assert compile_circuit(circ) is plan  # memo hit
        circ.h(0)  # mutate the source
        assert plan.is_stale()
        plan2 = compile_circuit(circ)
        assert plan2 is not plan
        params = np.full(plan2.num_parameters, 0.3)
        state = np.empty(plan2.dim, dtype=np.complex128)
        plan2.execute(state, params)
        np.testing.assert_allclose(state, _naive_state(circ, params), atol=1e-10)

    def test_option_change_recompiles(self):
        circ = _shift_circuit()
        plan = compile_circuit(circ)
        other = compile_circuit(circ, fuse=False)
        assert other is not plan

    def test_stale_plan_never_served_after_inplace_edit(self):
        circ = Circuit(2).h(0)
        plan = compile_circuit(circ)
        sim = StatevectorSimulator(2)
        a = sim.run_plan(plan, []).copy()
        circ.cx(0, 1)
        b = StatevectorSimulator(2).run_plan(compile_circuit(circ), []).copy()
        np.testing.assert_allclose(a, _naive_state(Circuit(2).h(0), []), atol=1e-12)
        np.testing.assert_allclose(
            b, _naive_state(Circuit(2).h(0).cx(0, 1), []), atol=1e-12
        )


# -- >=3-qubit dense fallback (the apply_gate bugfix) ------------------------


class TestWideGateFallback:
    def test_ccx_through_apply_gate(self):
        sim = StatevectorSimulator(3)
        sim.run(Circuit(3).x(0).x(1))
        sim.apply_gate(Gate("ccx", (0, 1, 2)))
        state = sim.statevector()
        expected = np.zeros(8, dtype=np.complex128)
        expected[0b111] = 1.0  # both controls set -> target flips
        np.testing.assert_allclose(state, expected, atol=1e-12)

    def test_ccx_matches_dense_matrix(self):
        circ = Circuit(3).h(0).h(1).h(2).add("ccx", [2, 0, 1])
        got = StatevectorSimulator(3).run(circ)
        init = np.zeros(8, dtype=np.complex128)
        init[0] = 1.0
        np.testing.assert_allclose(got, circ.to_matrix() @ init, atol=1e-12)

    def test_plan_handles_3q_gate(self):
        circ = Circuit(3).h(0).h(1).add("ccx", [0, 1, 2]).rz(Parameter("a"), 2)
        plan = compile_circuit(circ)
        state = np.empty(8, dtype=np.complex128)
        plan.execute(state, [0.7])
        np.testing.assert_allclose(state, _naive_state(circ, [0.7]), atol=1e-10)


# -- error reporting ----------------------------------------------------------


class TestUnboundErrors:
    def test_message_names_parameters(self):
        circ = Circuit(2).rx(Parameter("alpha"), 0).rz(Parameter("beta"), 1)
        msg = unbound_parameter_message(circ)
        assert "alpha" in msg and "beta" in msg
        assert "compile_circuit" in msg

    def test_run_raises_with_names(self):
        circ = Circuit(2).rx(Parameter("alpha"), 0)
        with pytest.raises(ValueError, match="alpha"):
            StatevectorSimulator(2).run(circ)

    def test_plan_rejects_wrong_param_count(self):
        plan = compile_circuit(Circuit(2).rx(Parameter("a"), 0))
        state = np.empty(4, dtype=np.complex128)
        with pytest.raises(ValueError, match="expects 1 parameter"):
            plan.execute(state, [0.1, 0.2])


# -- consumers ----------------------------------------------------------------


class TestConsumers:
    def _setup(self):
        circ = _shift_circuit(m=4, n=3)
        h = PauliSum.from_label_dict({"ZZI": 0.5, "IXX": 0.25, "ZIZ": -0.75})
        params = np.array([0.3, -0.4, 1.1, 0.2])
        return circ, h, params

    def test_estimate_plan_matches_estimate(self):
        circ, h, params = self._setup()
        est = DirectEstimator()
        plan = compile_circuit(circ)
        via_plan = est.estimate_plan(plan, params, h)
        naive = DirectEstimator().estimate(circ.bind(list(params)), h)
        assert abs(via_plan - naive) < 1e-10

    def test_estimate_plan_falls_back_for_custom_estimators(self):
        calls = []

        class LoggingEstimator(Estimator):
            def estimate(self, circuit, observable):
                calls.append(len(circuit.parameters))
                sim = StatevectorSimulator(circuit.num_qubits)
                sim.run(circuit)
                from repro.sim.expectation import expectation_direct

                return expectation_direct(sim.statevector(copy=False), observable)

        circ, h, params = self._setup()
        est = LoggingEstimator()
        got = est.estimate_plan(compile_circuit(circ), params, h)
        # the override received a *bound* circuit (legacy contract)
        assert calls == [0]
        assert abs(got - DirectEstimator().estimate(circ.bind(list(params)), h)) < 1e-10

    def test_batched_run_plan_matches_scalar(self):
        from repro.sim.batched import BatchedStatevectorSimulator

        circ, h, params = self._setup()
        rows = np.stack([params, params + 0.5, params * -1.0])
        plan = compile_circuit(circ)
        sim = BatchedStatevectorSimulator(circ.num_qubits, 3)
        states = sim.run_plan(plan, rows)
        for b in range(3):
            np.testing.assert_allclose(
                states[b], _naive_state(circ, rows[b]), atol=1e-10
            )

    def test_distributed_run_plan_matches_scalar(self):
        from repro.hpc.distributed import DistributedStatevector

        circ, h, params = self._setup()
        plan = compile_circuit(circ, fold_full_diag=False)
        dsv = DistributedStatevector(circ.num_qubits, num_ranks=2)
        dsv.run_plan(plan, params)
        np.testing.assert_allclose(
            dsv.gather(), _naive_state(circ, params), atol=1e-10
        )

    def test_parameter_shift_plan_path_matches_custom_estimate(self):
        from repro.opt.parameter_shift import parameter_shift_gradient

        circ, h, params = self._setup()
        fast = parameter_shift_gradient(circ, h, params)
        slow = parameter_shift_gradient(
            circ, h, params, estimate=DirectEstimator().estimate
        )
        np.testing.assert_allclose(fast, slow, atol=1e-10)

    def test_parameter_shift_all_eligible_gates(self):
        from repro.opt.parameter_shift import parameter_shift_gradient

        circ = Circuit(3).h(0).h(1).h(2)
        for k, name in enumerate(["rx", "ry", "rz", "p", "rzz", "rxx", "ryy"]):
            nq = 2 if name in ("rzz", "rxx", "ryy") else 1
            p = Parameter(f"g{k}", coeff=0.5 if k % 2 else -1.5, offset=0.3)
            circ.add(name, [k % 3, (k + 1) % 3][:nq], p)
            circ.cx(k % 3, (k + 1) % 3)
        h = PauliSum.from_label_dict({"ZZZ": 1.0, "XIX": 0.5, "IYY": -0.25})
        params = np.linspace(-1.2, 1.3, circ.num_parameters)
        fast = parameter_shift_gradient(circ, h, params)
        slow = parameter_shift_gradient(
            circ, h, params, estimate=DirectEstimator().estimate
        )
        np.testing.assert_allclose(fast, slow, atol=1e-10)

    def test_batched_parameter_shift_matches(self):
        from repro.opt.parameter_shift import (
            batched_parameter_shift_gradient,
            parameter_shift_gradient,
        )

        circ, h, params = self._setup()
        np.testing.assert_allclose(
            batched_parameter_shift_gradient(circ, h, params),
            parameter_shift_gradient(
                circ, h, params, estimate=DirectEstimator().estimate
            ),
            atol=1e-10,
        )
