"""Tests for the utility layer: bit operations, linear algebra helpers,
and timers."""

import time

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    bit_at,
    count_set_bits,
    flip_bit,
    insert_zero_bit,
    insert_zero_bits,
    parity_mask,
    set_bit,
)
from repro.utils.linalg import (
    fidelity,
    global_phase_aligned,
    is_hermitian,
    is_unitary,
    kron_all,
    random_statevector,
    random_unitary,
)
from repro.utils.profiling import Timer, timed


class TestBitops:
    @given(st.integers(0, 2**20), st.integers(0, 19))
    def test_bit_roundtrip(self, x, pos):
        assert bit_at(set_bit(x, pos, 1), pos) == 1
        assert bit_at(set_bit(x, pos, 0), pos) == 0
        assert flip_bit(flip_bit(x, pos), pos) == x

    @given(st.integers(0, 2**40))
    def test_popcount_scalar(self, x):
        assert count_set_bits(x) == bin(x).count("1")

    def test_popcount_vectorized(self):
        xs = np.array([0, 1, 3, 7, 255, 2**33 - 1], dtype=np.int64)
        got = count_set_bits(xs)
        expected = [bin(int(x)).count("1") for x in xs]
        assert list(got) == expected

    @given(st.integers(0, 2**10 - 1), st.integers(0, 10))
    def test_insert_zero_bit(self, k, pos):
        out = int(insert_zero_bit(np.array([k], dtype=np.int64), pos)[0])
        assert bit_at(out, pos) == 0
        # removing the inserted bit recovers k
        low = out & ((1 << pos) - 1)
        high = out >> (pos + 1)
        assert (high << pos) | low == k

    def test_insert_zero_bits_enumerates_groups(self):
        # inserting zeros at {0, 2} over arange(4) gives indices with
        # bits 0 and 2 cleared, covering each group exactly once
        out = insert_zero_bits(np.arange(4, dtype=np.int64), [0, 2])
        assert sorted(out) == [0b0000, 0b0010, 0b1000, 0b1010]

    def test_parity_mask(self):
        idx = np.arange(8, dtype=np.int64)
        par = parity_mask(idx, 0b101)
        expected = [bin(i & 0b101).count("1") % 2 for i in range(8)]
        assert list(par) == expected


class TestLinalg:
    def test_random_unitary_is_unitary(self, rng):
        for dim in (2, 4, 8):
            assert is_unitary(random_unitary(dim, rng))

    def test_is_hermitian(self):
        assert is_hermitian(np.array([[1, 1j], [-1j, 2]]))
        assert not is_hermitian(np.array([[0, 1], [0, 0]]))
        assert not is_hermitian(np.ones((2, 3)))

    def test_random_statevector_normalized(self, rng):
        v = random_statevector(5, rng)
        assert np.isclose(np.linalg.norm(v), 1.0)

    def test_kron_all(self):
        x = np.array([[0, 1], [1, 0]])
        assert np.allclose(kron_all([x, x]), np.kron(x, x))
        assert np.allclose(kron_all([]), np.eye(1))

    def test_fidelity(self, rng):
        v = random_statevector(3, rng)
        assert np.isclose(fidelity(v, v), 1.0)
        w = random_statevector(3, rng)
        assert 0.0 <= fidelity(v, w) <= 1.0

    def test_global_phase_aligned(self, rng):
        v = random_statevector(3, rng)
        assert global_phase_aligned(v, v * np.exp(0.7j))
        w = random_statevector(3, rng)
        assert not global_phase_aligned(v, w)


class TestTimer:
    def test_sections_accumulate(self):
        t = Timer()
        with t.section("a"):
            time.sleep(0.002)
        with t.section("a"):
            pass
        assert t.counts["a"] == 2
        assert t.totals["a"] > 0
        assert "a" in t.report()

    def test_reset(self):
        t = Timer()
        with t.section("x"):
            pass
        t.reset()
        assert not t.totals
        assert not t.counts

    def test_section_records_on_exception(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            with t.section("boom"):
                raise RuntimeError("x")
        assert t.counts["boom"] == 1

    def test_report_orders_slowest_first(self):
        t = Timer()
        t.totals = {"fast": 0.1, "slow": 2.0, "mid": 0.5}
        t.counts = {"fast": 1, "slow": 1, "mid": 1}
        lines = t.report().splitlines()
        assert [ln.split()[0] for ln in lines] == ["slow", "mid", "fast"]

    def test_nested_sections(self):
        t = Timer()
        with t.section("outer"):
            with t.section("inner"):
                pass
        assert t.counts == {"outer": 1, "inner": 1}
        assert t.totals["outer"] >= t.totals["inner"]

    def test_timed(self):
        with timed() as box:
            time.sleep(0.002)
        assert box[0] >= 0.002
