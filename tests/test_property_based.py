"""Cross-cutting property-based tests (hypothesis) tying the algebraic
layers together: fermionic algebra vs its qubit image, Pauli-ring
axioms, kernel invertibility, and grouping invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chem.fermion import FermionOperator
from repro.chem.mappings import jordan_wigner
from repro.ir.circuit import Circuit
from repro.ir.gates import GATE_SET, Gate
from repro.ir.pauli import PauliString, PauliSum
from repro.sim.statevector import StatevectorSimulator
from repro.utils.linalg import random_statevector

N_MODES = 3  # small enough for dense checks, big enough for Z-strings

# -- strategies ---------------------------------------------------------------

ladder_ops = st.lists(
    st.tuples(st.integers(0, N_MODES - 1), st.booleans()),
    min_size=0,
    max_size=4,
)
coeffs = st.complex_numbers(
    min_magnitude=0.1, max_magnitude=2.0, allow_nan=False, allow_infinity=False
)


@st.composite
def fermion_operators(draw, max_terms=3):
    op = FermionOperator()
    for _ in range(draw(st.integers(1, max_terms))):
        term = draw(ladder_ops)
        c = draw(coeffs)
        op = op + FermionOperator.term(term, c)
    return op


@st.composite
def pauli_sums(draw, n=3, max_terms=4):
    out = PauliSum.zero(n)
    for _ in range(draw(st.integers(1, max_terms))):
        x = draw(st.integers(0, (1 << n) - 1))
        z = draw(st.integers(0, (1 << n) - 1))
        out.add_term(PauliString(n, x, z), draw(coeffs))
    return out


# -- fermion algebra vs qubit image ---------------------------------------------


class TestFermionJWHomomorphism:
    @given(fermion_operators())
    def test_normal_ordering_preserves_operator(self, op):
        """normal_ordered() must not change the physical operator:
        identical JW matrices before and after."""
        before = jordan_wigner(op, N_MODES).to_matrix()
        after = jordan_wigner(op.normal_ordered(), N_MODES).to_matrix()
        assert np.allclose(before, after, atol=1e-9)

    @given(fermion_operators(max_terms=2), fermion_operators(max_terms=2))
    def test_jw_is_homomorphism(self, a, b):
        """JW(A * B) == JW(A) @ JW(B)."""
        lhs = jordan_wigner(a * b, N_MODES).to_matrix()
        rhs = (
            jordan_wigner(a, N_MODES).to_matrix()
            @ jordan_wigner(b, N_MODES).to_matrix()
        )
        assert np.allclose(lhs, rhs, atol=1e-8)

    @given(fermion_operators(max_terms=2))
    def test_dagger_is_conjugate_transpose(self, a):
        lhs = jordan_wigner(a.dagger(), N_MODES).to_matrix()
        rhs = jordan_wigner(a, N_MODES).to_matrix().conj().T
        assert np.allclose(lhs, rhs, atol=1e-8)

    @given(fermion_operators(max_terms=2), fermion_operators(max_terms=2))
    def test_dagger_antihomomorphism(self, a, b):
        """(A B)^dag == B^dag A^dag at the operator-algebra level."""
        lhs = ((a * b).dagger() - b.dagger() * a.dagger()).normal_ordered()
        assert all(abs(c) < 1e-9 for c in lhs.chop(0.0).terms.values())


# -- Pauli ring axioms ---------------------------------------------------------------


class TestPauliRing:
    @given(pauli_sums(), pauli_sums(), pauli_sums())
    def test_mul_associative(self, a, b, c):
        lhs = a.dot(b).dot(c)
        rhs = a.dot(b.dot(c))
        diff = (lhs - rhs).chop(1e-8)
        assert diff.num_terms == 0

    @given(pauli_sums(), pauli_sums(), pauli_sums())
    def test_distributive(self, a, b, c):
        lhs = a.dot(b + c)
        rhs = a.dot(b) + a.dot(c)
        assert (lhs - rhs).chop(1e-8).num_terms == 0

    @given(pauli_sums(), pauli_sums())
    def test_commutator_antisymmetric(self, a, b):
        lhs = a.commutator(b) + b.commutator(a)
        assert lhs.chop(1e-8).num_terms == 0

    @given(pauli_sums(), pauli_sums(), pauli_sums())
    def test_jacobi_identity(self, a, b, c):
        total = (
            a.commutator(b.commutator(c))
            + b.commutator(c.commutator(a))
            + c.commutator(a.commutator(b))
        )
        assert total.chop(1e-7).num_terms == 0

    @given(pauli_sums())
    def test_apply_linear(self, a):
        rng = np.random.default_rng(0)
        u = random_statevector(3, rng)
        v = random_statevector(3, rng)
        lhs = a.apply(u + 0.5j * v)
        rhs = a.apply(u) + 0.5j * a.apply(v)
        assert np.allclose(lhs, rhs, atol=1e-10)

    @given(pauli_sums())
    def test_hermitization(self, a):
        """A + A^dag is always Hermitian (conjugate coefficients)."""
        herm = a + PauliSum(
            a.num_qubits, {k: v.conjugate() for k, v in a.terms.items()}
        )
        assert herm.is_hermitian()


# -- kernel invertibility ------------------------------------------------------------


class TestKernelInvertibility:
    @given(
        st.sampled_from(
            [n for n, (nq, npar, _) in GATE_SET.items() if npar <= 1]
        ),
        st.floats(-3.0, 3.0),
        st.integers(0, 2),
    )
    @settings(max_examples=60)
    def test_gate_then_inverse_is_identity(self, name, theta, qubit):
        nq, npar, _ = GATE_SET[name]
        qubits = tuple((qubit + j) % 3 for j in range(nq))
        params = (theta,) if npar else ()
        g = Gate(name, qubits, params)
        state0 = random_statevector(3, np.random.default_rng(7))
        sim = StatevectorSimulator(3)
        sim.set_state(state0)
        sim.apply_gate(g)
        sim.apply_gate(g.dagger())
        assert np.allclose(sim.state, state0, atol=1e-10)


# -- grouping invariants -----------------------------------------------------------------


class TestGroupingInvariants:
    @given(pauli_sums(max_terms=6))
    def test_qwc_partition(self, h):
        groups = h.group_qubitwise_commuting()
        seen = set()
        count = 0
        for g in groups:
            for _, p in g:
                key = (p.x, p.z)
                assert key not in seen
                seen.add(key)
                count += 1
        assert count == h.num_terms

    @given(pauli_sums(max_terms=6))
    def test_group_sum_reconstructs(self, h):
        """Coefficient-weighted union of groups equals the original."""
        rebuilt = PauliSum.zero(h.num_qubits)
        for g in h.group_qubitwise_commuting():
            for c, p in g:
                rebuilt.add_term(p, c)
        assert (rebuilt - h).chop(1e-12).num_terms == 0
