"""Tests for the batched statevector simulator and batched gradients
(paper §6.2 batch execution)."""

import numpy as np
import pytest

from repro.ir.circuit import Circuit
from repro.ir.gates import Parameter
from repro.ir.library import hardware_efficient_ansatz
from repro.ir.pauli import PauliSum
from repro.opt.parameter_shift import (
    batched_parameter_shift_gradient,
    parameter_shift_gradient,
)
from repro.sim.batched import BatchedStatevectorSimulator
from repro.sim.statevector import StatevectorSimulator


def reference_states(circuit, parameter_table, batch):
    """One-at-a-time execution for comparison."""
    out = []
    for b in range(batch):
        values = {k: float(v[b]) for k, v in parameter_table.items()}
        bound = circuit.bind(values)
        out.append(StatevectorSimulator(circuit.num_qubits).run(bound).copy())
    return np.array(out)


class TestBatchedSimulator:
    def test_fixed_gates_broadcast(self):
        c = Circuit(3).h(0).cx(0, 1).cx(1, 2)
        sim = BatchedStatevectorSimulator(3, 4)
        sim.run(c, {})
        for b in range(4):
            assert np.isclose(abs(sim.states[b, 0]) ** 2, 0.5)
            assert np.isclose(abs(sim.states[b, 7]) ** 2, 0.5)

    @pytest.mark.parametrize("gate", ["rx", "ry", "rz", "p"])
    def test_parameterized_1q_gates(self, gate, rng):
        c = Circuit(2).h(0).h(1)
        c.add(gate, [0], Parameter("a"))
        c.cx(0, 1)
        batch = 5
        table = {"a": rng.uniform(-np.pi, np.pi, size=batch)}
        sim = BatchedStatevectorSimulator(2, batch)
        sim.run(c, table)
        ref = reference_states(c, table, batch)
        assert np.allclose(sim.states, ref, atol=1e-10)

    @pytest.mark.parametrize("gate", ["rzz", "rxx", "ryy"])
    def test_parameterized_2q_gates(self, gate, rng):
        c = Circuit(3).h(0).h(2)
        c.add(gate, [0, 2], Parameter("b", coeff=0.5, offset=0.1))
        batch = 4
        table = {"b": rng.uniform(-2, 2, size=batch)}
        sim = BatchedStatevectorSimulator(3, batch)
        sim.run(c, table)
        ref = reference_states(c, table, batch)
        assert np.allclose(sim.states, ref, atol=1e-10)

    def test_hea_batch_matches_serial(self, rng):
        ansatz = hardware_efficient_ansatz(4, layers=2)
        batch = 6
        table = {
            name: rng.uniform(-np.pi, np.pi, size=batch)
            for name in ansatz.parameters
        }
        sim = BatchedStatevectorSimulator(4, batch)
        sim.run(ansatz, table)
        ref = reference_states(ansatz, table, batch)
        assert np.allclose(sim.states, ref, atol=1e-9)

    def test_batched_expectations(self, rng):
        ansatz = hardware_efficient_ansatz(3, layers=1)
        batch = 4
        table = {
            name: rng.uniform(-1, 1, size=batch) for name in ansatz.parameters
        }
        h = PauliSum.from_label_dict({"ZZI": 0.5, "IXX": -0.7, "YIY": 0.2})
        sim = BatchedStatevectorSimulator(3, batch)
        sim.run(ansatz, table)
        got = sim.expectations(h)
        ref = reference_states(ansatz, table, batch)
        from repro.sim.expectation import expectation_direct

        for b in range(batch):
            assert np.isclose(got[b], expectation_direct(ref[b], h), atol=1e-10)

    def test_missing_parameter_rejected(self):
        c = Circuit(1).rz(Parameter("x"), 0)
        sim = BatchedStatevectorSimulator(1, 2)
        with pytest.raises(ValueError):
            sim.run(c, {})

    def test_wrong_vector_length_rejected(self):
        c = Circuit(1).rz(Parameter("x"), 0)
        sim = BatchedStatevectorSimulator(1, 2)
        with pytest.raises(ValueError):
            sim.run(c, {"x": np.zeros(3)})

    def test_norms_preserved(self, rng):
        ansatz = hardware_efficient_ansatz(3, layers=2)
        batch = 3
        table = {
            name: rng.uniform(-np.pi, np.pi, size=batch)
            for name in ansatz.parameters
        }
        sim = BatchedStatevectorSimulator(3, batch)
        sim.run(ansatz, table)
        norms = np.linalg.norm(sim.states, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-10)


class TestBatchedParameterShift:
    def test_matches_serial_gradient(self, rng):
        from repro.chem.hamiltonian import build_molecular_hamiltonian
        from repro.chem.molecule import h2
        from repro.chem.scf import run_rhf

        hq = build_molecular_hamiltonian(run_rhf(h2())).to_qubit()
        ansatz = hardware_efficient_ansatz(4, layers=1)
        x = rng.normal(scale=0.4, size=ansatz.num_parameters)
        serial = parameter_shift_gradient(ansatz, hq, x)
        batched = batched_parameter_shift_gradient(ansatz, hq, x)
        assert np.allclose(serial, batched, atol=1e-10)

    def test_rejects_unsupported_circuit(self):
        from repro.chem.uccsd import build_uccsd_circuit

        circuit = build_uccsd_circuit(4, 2).circuit
        h = PauliSum.from_label_dict({"ZIII": 1.0})
        with pytest.raises(ValueError):
            batched_parameter_shift_gradient(
                circuit, h, np.zeros(circuit.num_parameters)
            )
