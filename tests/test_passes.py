"""Tests for compiler passes: cancellation, rotation merge, resynthesis,
and SABRE routing. Every pass must preserve the circuit unitary (up to
global phase for resynthesis) — checked densely on small registers."""

import numpy as np
import pytest

from repro.ir.circuit import Circuit
from repro.ir.gates import Parameter
from repro.ir.passes import (
    CancelAdjacentInverses,
    MergeRotations,
    PassManager,
    ResynthesizeSingleQubitRuns,
    SabreRouter,
    default_pass_manager,
)
from repro.ir.passes.routing import grid_coupling, linear_coupling
from repro.utils.linalg import global_phase_aligned
from tests.test_statevector import random_circuit


class TestCancellation:
    def test_adjacent_self_inverse(self):
        c = Circuit(1).h(0).h(0)
        out = CancelAdjacentInverses().run(c)
        assert len(out) == 0

    def test_s_sdg_pair(self):
        c = Circuit(1).s(0).sdg(0)
        assert len(CancelAdjacentInverses().run(c)) == 0

    def test_nested_cancellation_fixed_point(self):
        c = Circuit(1).h(0).x(0).x(0).h(0)
        out = PassManager([CancelAdjacentInverses()]).run(c)
        assert len(out) == 0

    def test_cx_pair_cancels(self):
        c = Circuit(2).cx(0, 1).cx(0, 1)
        assert len(CancelAdjacentInverses().run(c)) == 0

    def test_cx_different_qubits_kept(self):
        c = Circuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
        out = CancelAdjacentInverses().run(c)
        assert len(out) == 3  # middle gate blocks cancellation

    def test_interleaved_disjoint_allows_cancel(self):
        c = Circuit(3).h(0).x(2).h(0)
        out = CancelAdjacentInverses().run(c)
        assert [g.name for g in out.gates] == ["x"]

    def test_unitary_preserved(self):
        c = random_circuit(3, 30, 5)
        out = CancelAdjacentInverses().run(c)
        assert np.allclose(out.to_matrix(), c.to_matrix(), atol=1e-9)


class TestMergeRotations:
    def test_merge_same_axis(self):
        c = Circuit(1).rz(0.3, 0).rz(0.4, 0)
        out = MergeRotations().run(c)
        assert len(out) == 1
        assert np.isclose(float(out.gates[0].params[0]), 0.7)

    def test_merge_to_zero_drops(self):
        c = Circuit(1).rx(0.5, 0).rx(-0.5, 0)
        out = MergeRotations().run(c)
        assert len(out) == 0

    def test_different_axes_kept(self):
        c = Circuit(1).rx(0.5, 0).rz(0.5, 0)
        assert len(MergeRotations().run(c)) == 2

    def test_symbolic_merge(self):
        p = Parameter("t")
        c = Circuit(1).rz(p, 0).rz(2.0 * p, 0)
        out = MergeRotations().run(c)
        assert len(out) == 1
        assert out.bind({"t": 1.0}).gates[0].params[0] == 3.0

    def test_two_qubit_rotation_merge(self):
        c = Circuit(2).add("rzz", [0, 1], 0.2).add("rzz", [0, 1], 0.3)
        out = MergeRotations().run(c)
        assert len(out) == 1

    def test_unitary_preserved(self):
        c = random_circuit(3, 30, 6)
        out = default_pass_manager().run(c)
        assert len(out) <= len(c)
        assert np.allclose(out.to_matrix(), c.to_matrix(), atol=1e-9)


class TestResynthesis:
    def test_run_collapses_to_u3(self):
        c = Circuit(1).h(0).t(0).s(0).h(0).x(0)
        out = ResynthesizeSingleQubitRuns().run(c)
        assert len(out) == 1
        assert out.gates[0].name == "u3"
        assert global_phase_aligned(
            out.to_matrix()[:, 0], c.to_matrix()[:, 0]
        )

    def test_identity_run_dropped(self):
        c = Circuit(1).x(0).x(0)
        out = ResynthesizeSingleQubitRuns().run(c)
        assert len(out) == 0

    def test_preserves_unitary_up_to_phase(self):
        c = random_circuit(3, 25, 8)
        out = ResynthesizeSingleQubitRuns().run(c)
        v1 = c.to_matrix()[:, 0]
        v2 = out.to_matrix()[:, 0]
        assert global_phase_aligned(v1, v2, atol=1e-8)

    def test_2q_gate_flushes_runs(self):
        c = Circuit(2).h(0).t(0).cx(0, 1).h(0)
        out = ResynthesizeSingleQubitRuns().run(c)
        names = [g.name for g in out.gates]
        assert names == ["u3", "cx", "h"]


class TestSabreRouting:
    def test_linear_coupling_shape(self):
        g = linear_coupling(5)
        assert g.number_of_edges() == 4

    def test_grid_coupling_shape(self):
        g = grid_coupling(2, 3)
        assert g.number_of_nodes() == 6
        assert g.number_of_edges() == 7

    def test_already_routed_unchanged(self):
        c = Circuit(3).cx(0, 1).cx(1, 2)
        router = SabreRouter(linear_coupling(3))
        out = router.run(c)
        assert router.swap_count == 0
        assert len(out) == 2

    def test_inserts_swaps_for_distant_pair(self):
        c = Circuit(4).cx(0, 3)
        router = SabreRouter(linear_coupling(4))
        out = router.run(c)
        assert router.swap_count >= 1
        # every 2q gate in the output must respect the coupling graph
        g = linear_coupling(4)
        for gate in out.gates:
            if gate.num_qubits == 2:
                assert g.has_edge(*gate.qubits)

    def test_routed_circuit_state_equivalent(self):
        """Undo the final layout permutation and compare states."""
        n = 4
        c = random_circuit(n, 20, 3)
        router = SabreRouter(linear_coupling(n))
        routed = router.run(c)
        from repro.sim.statevector import StatevectorSimulator

        s_ref = StatevectorSimulator(n).run(c).copy()
        s_routed = StatevectorSimulator(n).run(routed).copy()
        # permute routed state back: logical q lives at physical l2p[q]
        l2p = router.final_layout
        perm_state = np.zeros_like(s_routed)
        for phys_idx in range(1 << n):
            logical_idx = 0
            for q in range(n):
                bit = (phys_idx >> l2p[q]) & 1
                logical_idx |= bit << q
            perm_state[logical_idx] = s_routed[phys_idx]
        assert np.allclose(perm_state, s_ref, atol=1e-9)

    def test_too_wide_rejected(self):
        with pytest.raises(ValueError):
            SabreRouter(linear_coupling(2)).run(Circuit(3).h(0))
