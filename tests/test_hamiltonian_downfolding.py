"""Tests for Hamiltonian assembly, active spaces, FCI references, and
both downfolding variants (the paper's §2)."""

import numpy as np
import pytest

from repro.chem.downfolding import (
    external_sigma,
    hermitian_downfold,
    nonhermitian_downfold_energy,
    project_onto_reference,
)
from repro.chem.fci import exact_ground_energy, exact_ground_state, sector_indices
from repro.chem.hamiltonian import (
    build_molecular_hamiltonian,
    synthetic_two_body_hamiltonian,
)
from repro.chem.mappings import jordan_wigner
from repro.chem.molecule import h2, h2o, lih
from repro.chem.mp2 import run_mp2
from repro.chem.scf import run_rhf
from repro.ir.pauli import PauliString, PauliSum


@pytest.fixture(scope="module")
def h2o_system():
    scf = run_rhf(h2o())
    return scf, build_molecular_hamiltonian(scf)


class TestMolecularHamiltonian:
    def test_h2_qubit_terms(self):
        scf = run_rhf(h2())
        mh = build_molecular_hamiltonian(scf)
        hq = mh.to_qubit()
        # The standard H2/STO-3G JW Hamiltonian has 15 terms.
        assert hq.num_terms == 15
        assert hq.is_hermitian()

    def test_h2_fci(self):
        scf = run_rhf(h2())
        mh = build_molecular_hamiltonian(scf)
        e = exact_ground_energy(mh.to_qubit(), num_particles=2, sz=0)
        assert np.isclose(e, -1.13727, atol=2e-4)

    def test_fci_below_hf(self, h2o_system):
        scf, mh = h2o_system
        act = mh.active_space([0], [1, 2, 3, 4, 5, 6])
        e = exact_ground_energy(act.to_qubit(), num_particles=8, sz=0)
        assert e < scf.energy  # correlation lowers the energy
        assert e > scf.energy - 0.2  # ... by a sane amount

    def test_active_space_preserves_hf(self, h2o_system):
        scf, mh = h2o_system
        act = mh.active_space([0], [1, 2, 3, 4, 5, 6])
        assert np.isclose(act.hartree_fock_energy(), scf.energy, atol=1e-8)
        assert act.num_electrons == 8
        assert act.num_qubits == 12

    def test_active_space_overlap_rejected(self, h2o_system):
        _, mh = h2o_system
        with pytest.raises(ValueError):
            mh.active_space([0, 1], [1, 2])

    def test_synthetic_symmetries(self):
        mh = synthetic_two_body_hamiltonian(4, seed=3)
        assert np.allclose(mh.h, mh.h.T)
        eri = mh.eri
        assert np.allclose(eri, eri.transpose(1, 0, 2, 3))
        assert np.allclose(eri, eri.transpose(0, 1, 3, 2))
        assert np.allclose(eri, eri.transpose(2, 3, 0, 1))

    def test_synthetic_qubit_hermitian(self):
        hq = synthetic_two_body_hamiltonian(3, seed=5).to_qubit()
        assert hq.is_hermitian()


class TestSectorIndices:
    def test_particle_count(self):
        idx = sector_indices(4, num_particles=2)
        assert len(idx) == 6  # C(4,2)
        assert all(bin(i).count("1") == 2 for i in idx)

    def test_sz_restriction(self):
        idx = sector_indices(4, num_particles=2, sz=0)
        # one alpha (even qubit) + one beta (odd qubit): 2*2 = 4 states
        assert len(idx) == 4

    def test_ground_state_embedded(self):
        h = PauliSum.from_label_dict({"ZZ": -1.0, "XI": 0.1, "IX": 0.1})
        e, state = exact_ground_state(h)
        assert np.isclose(np.linalg.norm(state), 1.0)
        assert np.isclose(h.expectation(state).real, e, atol=1e-9)


class TestProjection:
    def test_projection_matches_active_space(self, h2o_system):
        """Order-0 projection (freeze external qubits at reference)
        must reproduce the exact frozen-core active-space Hamiltonian."""
        scf, mh = h2o_system
        h_full = mh.to_qubit()
        active_so = sorted(2 * p + s for p in [1, 2, 3, 4, 5, 6] for s in (0, 1))
        core_so = [0, 1]
        projected = project_onto_reference(h_full, active_so, core_so)
        direct = mh.active_space([0], [1, 2, 3, 4, 5, 6]).to_qubit()
        diff = projected - direct
        assert diff.chop(1e-8).num_terms == 0

    def test_x_on_frozen_qubit_dropped(self):
        op = PauliSum.from_label_dict({"XII": 1.0, "IZZ": 2.0})
        out = project_onto_reference(op, [0, 1], [2])
        # X on frozen qubit 2 -> dropped; ZZ on active qubits survives
        assert out.num_terms == 1
        assert np.isclose(out.coefficient(PauliString.from_label("ZZ")), 2.0)

    def test_z_on_occupied_flips_sign(self):
        op = PauliSum.from_label_dict({"ZII": 1.0})
        out = project_onto_reference(op, [0, 1], [2])
        assert np.isclose(out.coefficient(PauliString.from_label("II")), -1.0)

    def test_z_on_virtual_keeps_sign(self):
        op = PauliSum.from_label_dict({"ZII": 1.0})
        out = project_onto_reference(op, [0, 1], [])
        assert np.isclose(out.coefficient(PauliString.from_label("II")), 1.0)

    def test_overlap_rejected(self):
        op = PauliSum.from_label_dict({"II": 1.0})
        with pytest.raises(ValueError):
            project_onto_reference(op, [0], [0])


class TestHermitianDownfolding:
    def test_sigma_antihermitian(self, h2o_system):
        scf, mh = h2o_system
        mp2 = run_mp2(mh, scf.mo_energies)
        active_so = sorted(2 * p + s for p in [1, 2, 3, 4, 5, 6] for s in (0, 1))
        sigma = external_sigma(mp2, active_so)
        assert sigma.is_anti_hermitian()
        sq = jordan_wigner(sigma, 14)
        assert sq.is_anti_hermitian()

    def test_downfolding_improves_accuracy(self, h2o_system):
        """The headline property: the downfolded active-space ground
        energy is far closer to the full-space FCI than the bare
        active-space one (paper §2: 'orders of magnitude')."""
        scf, mh = h2o_system
        e_full = exact_ground_energy(mh.to_qubit(), num_particles=10, sz=0)
        res = hermitian_downfold(mh, scf.mo_energies, [0], [1, 2, 3, 4, 5, 6])
        e_bare = exact_ground_energy(res.bare_hamiltonian, num_particles=8, sz=0)
        e_eff = exact_ground_energy(
            res.effective_hamiltonian, num_particles=8, sz=0
        )
        err_bare = abs(e_bare - e_full)
        err_eff = abs(e_eff - e_full)
        assert err_eff < err_bare / 5  # at least 5x better (measured ~26x)
        assert res.effective_hamiltonian.is_hermitian(atol=1e-7)

    def test_order_zero_equals_bare(self, h2o_system):
        scf, mh = h2o_system
        res = hermitian_downfold(
            mh, scf.mo_energies, [0], [1, 2, 3, 4, 5, 6], order=0
        )
        diff = res.effective_hamiltonian - res.bare_hamiltonian
        assert diff.chop(1e-10).num_terms == 0

    def test_no_core_is_identity_transform(self):
        """With nothing external, sigma is empty and H_eff == H."""
        scf = run_rhf(h2())
        mh = build_molecular_hamiltonian(scf)
        res = hermitian_downfold(mh, scf.mo_energies, [], [0, 1])
        assert res.sigma_norm1 == 0.0
        diff = res.effective_hamiltonian - mh.to_qubit()
        assert diff.chop(1e-10).num_terms == 0

    def test_result_metadata(self, h2o_system):
        scf, mh = h2o_system
        res = hermitian_downfold(mh, scf.mo_energies, [0], [1, 2, 3, 4, 5, 6])
        assert res.num_active_qubits == 12
        assert res.num_electrons == 8
        assert res.order == 2
        assert res.sigma_norm1 > 0


class TestNonHermitianDownfolding:
    def test_reproduces_full_fci(self, h2o_system):
        """The equivalence theorem: the self-consistent Loewdin energy
        equals the exact full-space eigenvalue."""
        scf, mh = h2o_system
        e_full = exact_ground_energy(mh.to_qubit(), num_particles=10, sz=0)
        e_nh, its = nonhermitian_downfold_energy(mh, [0], [1, 2, 3, 4, 5, 6])
        assert np.isclose(e_nh, e_full, atol=1e-7)
        assert its < 50
