"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_vqe_h2(self, capsys):
        rc = main(["vqe", "h2", "--no-downfold"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "-1.137270" in out  # FCI-quality VQE energy

    def test_vqe_with_active_space(self, capsys):
        rc = main(
            ["vqe", "lih", "--core", "0", "--active", "1,2,3,4,5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sigma_ext" in out  # downfolding engaged
        assert "qubits:          10" in out

    def test_counts(self, capsys):
        rc = main(["counts", "--min-qubits", "12", "--max-qubits", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1,819" in out  # the exact 12-qubit term census

    def test_qpe_h2(self, capsys):
        rc = main(["qpe", "h2", "--ancillas", "9"])
        assert rc == 0
        assert "success prob" in capsys.readouterr().out

    def test_faults_h2(self, capsys):
        rc = main(["faults", "h2", "--crash-iteration", "1", "--seed", "7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "state identical to fault-free run" in out
        assert "restarts" in out
        assert "PASS" in out

    def test_unknown_molecule(self):
        with pytest.raises(SystemExit):
            main(["vqe", "benzene"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tolerance_failure_exit_code(self, capsys):
        rc = main(["vqe", "h2", "--no-downfold", "--tol", "1e-12"])
        # the optimizer converges below 1e-6 but not to 1e-12
        assert rc in (0, 1)  # deterministic result; just exercise the path
