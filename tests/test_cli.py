"""Tests for the command-line interface."""

import json

import pytest

from repro import obs
from repro.cli import build_parser, main
from repro.obs.report import RunReport


class TestCLI:
    def test_vqe_h2(self, capsys):
        rc = main(["vqe", "h2", "--no-downfold"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "-1.137270" in out  # FCI-quality VQE energy

    def test_vqe_with_active_space(self, capsys):
        rc = main(
            ["vqe", "lih", "--core", "0", "--active", "1,2,3,4,5"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sigma_ext" in out  # downfolding engaged
        assert "qubits:          10" in out

    def test_counts(self, capsys):
        rc = main(["counts", "--min-qubits", "12", "--max-qubits", "16"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1,819" in out  # the exact 12-qubit term census

    def test_qpe_h2(self, capsys):
        rc = main(["qpe", "h2", "--ancillas", "9"])
        assert rc == 0
        assert "success prob" in capsys.readouterr().out

    def test_faults_h2(self, capsys):
        rc = main(["faults", "h2", "--crash-iteration", "1", "--seed", "7"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "state identical to fault-free run" in out
        assert "restarts" in out
        assert "PASS" in out

    def test_unknown_molecule(self):
        with pytest.raises(SystemExit):
            main(["vqe", "benzene"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_tolerance_failure_exit_code(self, capsys):
        rc = main(["vqe", "h2", "--no-downfold", "--tol", "1e-12"])
        # the optimizer converges below 1e-6 but not to 1e-12
        assert rc in (0, 1)  # deterministic result; just exercise the path


class TestCLIJson:
    def test_vqe_json(self, capsys):
        rc = main(["vqe", "h2", "--no-downfold", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "vqe"
        assert payload["vqe_energy"] == pytest.approx(-1.137270, abs=1e-5)
        assert payload["passed"] is True

    def test_counts_json(self, capsys):
        rc = main(["counts", "--min-qubits", "12", "--max-qubits", "16", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["qubits"] for r in payload["rows"]] == [12, 14, 16]
        assert payload["rows"][0]["pauli_terms"] == 1819

    def test_adapt_json(self, capsys):
        rc = main(["adapt", "h2", "--max-iterations", "4", "--json"])
        out = capsys.readouterr().out
        payload = json.loads(out)
        assert payload["command"] == "adapt"
        assert payload["iterations"]  # grew at least one operator
        assert (rc == 0) == payload["passed"]

    def test_faults_json(self, capsys):
        rc = main(["faults", "h2", "--crash-iteration", "1", "--seed", "7", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["distributed"]["state_identical"] is True
        assert payload["campaign"]["restarts"] >= 1
        assert payload["passed"] is True


class TestCLIObservability:
    @pytest.fixture(autouse=True)
    def _clean_global_obs(self):
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def test_vqe_profile_artifacts(self, capsys, tmp_path):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.prom"
        report = tmp_path / "r.json"
        rc = main(
            [
                "vqe", "h2", "--no-downfold",
                "--profile",
                "--trace-out", str(trace),
                "--metrics-out", str(metrics),
                "--report-out", str(report),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "-1.137270" in out  # plain output unchanged
        assert "-- spans (slowest first) --" in out  # --profile summary
        # Chrome trace-event file
        payload = json.loads(trace.read_text())
        assert payload["displayTimeUnit"] == "ms"
        names = {e["name"] for e in payload["traceEvents"]}
        assert "vqe.run" in names
        assert "workflow.scf" in names
        assert all(e["ph"] == "X" for e in payload["traceEvents"])
        # Prometheus metrics dump
        text = metrics.read_text()
        assert "# TYPE repro_vqe_energy_evaluations_total counter" in text
        # run report embeds comm/cache/fault sections and convergence
        loaded = RunReport.load(str(report))
        assert loaded.meta["command"] == "repro vqe"
        assert loaded.convergence["energy"]
        assert "comm" in loaded.to_dict()
        assert "cache" in loaded.to_dict()
        assert "faults" in loaded.to_dict()
        # profiling is torn down after the command
        assert not obs.enabled()

    def test_metrics_out_jsonl(self, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        rc = main(["vqe", "h2", "--no-downfold", "--metrics-out", str(metrics)])
        assert rc == 0
        rows = [json.loads(line) for line in metrics.read_text().splitlines()]
        assert any(r["name"] == "repro_vqe_energy_evaluations_total" for r in rows)

    def test_faults_profile_report_embeds_ledgers(self, tmp_path, capsys):
        report = tmp_path / "r.json"
        rc = main(
            [
                "faults", "h2", "--crash-iteration", "1", "--seed", "7",
                "--report-out", str(report),
            ]
        )
        assert rc == 0
        loaded = RunReport.load(str(report))
        assert loaded.comm  # cross-check communicator stats
        assert loaded.faults["events"] >= 1
        assert loaded.faults["by_kind"].get("rank_crash") == 1

    def test_report_command(self, tmp_path, capsys):
        report = tmp_path / "r.json"
        main(["vqe", "h2", "--no-downfold", "--report-out", str(report)])
        capsys.readouterr()
        rc = main(["report", str(report)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro vqe" in out
        assert "-- spans (slowest first) --" in out
        rc = main(["report", str(report), "--json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["meta"]["command"] == "repro vqe"

    def test_json_mode_keeps_stdout_machine_readable(self, tmp_path, capsys):
        rc = main(
            ["vqe", "h2", "--no-downfold", "--json", "--profile"]
        )
        assert rc == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout is pure JSON
        assert "-- spans (slowest first) --" in captured.err


class TestCLIAnalyze:
    """The observatory CLI over a 4-rank distributed ADAPT campaign."""

    @pytest.fixture(autouse=True)
    def _clean_global_obs(self):
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    @pytest.fixture()
    def adapt_artifacts(self, tmp_path, capsys):
        """Trace + report from `repro faults` (distributed run + 4-rank
        checkpointed ADAPT campaign)."""
        trace = tmp_path / "trace.json"
        report = tmp_path / "report.json"
        rc = main(
            [
                "faults", "h2", "--ranks", "4", "--seed", "7",
                "--max-iterations", "2",
                "--trace-out", str(trace),
                "--report-out", str(report),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        return trace, report

    def test_analyze_trace_shows_observatory_sections(
        self, adapt_artifacts, capsys
    ):
        trace, _ = adapt_artifacts
        rc = main(["analyze", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "performance analysis (chrome trace" in out
        assert "-- per-rank timeline (wall seconds) --" in out
        assert "-- critical path (root -> leaf) --" in out
        for rank in range(4):
            assert f"  {rank} " in out or f" {rank} " in out

    def test_analyze_report_matches_commstats(self, adapt_artifacts, capsys):
        """Acceptance: the comm matrix must agree with the CommStats
        totals embedded in the same report, and the critical path must
        fit inside its root span."""
        _, report = adapt_artifacts
        rc = main(["analyze", str(report), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        saved = RunReport.load(str(report))
        matrix = payload["comm_matrix"]
        total_msgs = sum(sum(row) for row in matrix["messages"])
        total_bytes = sum(sum(row) for row in matrix["bytes"])
        assert total_msgs == saved.comm["point_to_point_messages"]
        assert total_bytes == saved.comm["point_to_point_bytes"]
        assert total_msgs > 0
        entries = payload["critical_path"]["entries"]
        assert entries
        root_duration = entries[0]["duration_us"]
        for entry in entries:
            assert entry["duration_us"] <= root_duration + 1e-6
            assert 0.0 <= entry["self_us"] <= entry["duration_us"] + 1e-6

    def test_analyze_report_without_perf_fails_cleanly(
        self, tmp_path, capsys
    ):
        report = tmp_path / "r.json"
        main(["counts", "--min-qubits", "12", "--max-qubits", "12",
              "--report-out", str(report)])
        capsys.readouterr()
        rc = main(["analyze", str(report)])
        assert rc == 1
        assert "no performance data" in capsys.readouterr().err

    def test_report_command_renders_rank_sections(
        self, adapt_artifacts, capsys
    ):
        _, report = adapt_artifacts
        rc = main(["report", str(report)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "-- per-rank timeline (wall seconds) --" in out
        assert "-- communication matrix" in out
