"""Shared fixtures and hypothesis configuration."""

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Keep property-based tests fast and deterministic in CI.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    derandomize=True,
)
settings.load_profile("repro")


@pytest.fixture
def rng():
    return np.random.default_rng(20230712)
