"""Tests for the circuit library (QFT, GHZ, hardware-efficient ansatz,
Trotter evolution), QPE, and parameter-shift gradients."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h2
from repro.chem.reference import hartree_fock_state
from repro.chem.scf import run_rhf
from repro.core.qpe import run_qpe
from repro.ir.library import (
    ghz,
    hardware_efficient_ansatz,
    inverse_qft,
    qft,
    trotter_evolution,
)
from repro.ir.pauli import PauliSum
from repro.opt.parameter_shift import (
    parameter_shift_gradient,
    supports_parameter_shift,
)
from repro.sim.statevector import StatevectorSimulator


@pytest.fixture(scope="module")
def h2_problem():
    scf = run_rhf(h2())
    hq = build_molecular_hamiltonian(scf).to_qubit()
    e_fci = exact_ground_energy(hq, num_particles=2, sz=0)
    return hq, e_fci


class TestQFT:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_dft_matrix(self, n):
        u = qft(n).to_matrix()
        dim = 1 << n
        dft = np.array(
            [
                [np.exp(2j * np.pi * j * k / dim) for k in range(dim)]
                for j in range(dim)
            ]
        ) / np.sqrt(dim)
        assert np.allclose(u, dft, atol=1e-10)

    def test_inverse_is_adjoint(self):
        u = qft(3).to_matrix()
        ui = inverse_qft(3).to_matrix()
        assert np.allclose(ui @ u, np.eye(8), atol=1e-10)

    def test_qft_of_basis_state_uniform_magnitudes(self):
        sim = StatevectorSimulator(3)
        sim.run(qft(3))
        assert np.allclose(np.abs(sim.state), 1 / np.sqrt(8), atol=1e-10)


class TestGHZ:
    def test_state(self):
        sim = StatevectorSimulator(4)
        sim.run(ghz(4))
        expected = np.zeros(16, dtype=complex)
        expected[0] = expected[15] = 1 / np.sqrt(2)
        assert np.allclose(sim.state, expected, atol=1e-12)


class TestHardwareEfficientAnsatz:
    def test_parameter_count(self):
        c = hardware_efficient_ansatz(4, layers=2)
        # 2 layers x (ry + rz) x 4 qubits + final ry layer
        assert c.num_parameters == 2 * 2 * 4 + 4

    def test_circular_entangler(self):
        lin = hardware_efficient_ansatz(4, layers=1, entangler="linear")
        cir = hardware_efficient_ansatz(4, layers=1, entangler="circular")
        assert cir.count_2q() == lin.count_2q() + 1

    def test_invalid_entangler(self):
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(3, entangler="all2all")

    def test_expressible_enough_for_h2(self, h2_problem):
        """A 2-layer HEA optimized with parameter-shift gradients and
        L-BFGS reaches H2's FCI energy — exercising the full
        hardware-faithful gradient path end to end."""
        from repro.core.estimator import DirectEstimator
        from repro.opt.scipy_wrap import LBFGSB

        hq, e_fci = h2_problem
        ansatz = hardware_efficient_ansatz(4, layers=2)
        est = DirectEstimator()

        def energy(p):
            return est.estimate(ansatz.bind(list(p)), hq)

        def grad(p):
            return parameter_shift_gradient(ansatz, hq, p)

        rng = np.random.default_rng(2)
        res = LBFGSB(max_iterations=300).minimize(
            energy,
            rng.normal(scale=0.1, size=ansatz.num_parameters),
            gradient=grad,
        )
        assert abs(res.fun - e_fci) < 1e-5


class TestTrotterEvolution:
    def test_single_term_exact(self):
        h = PauliSum.from_label_dict({"ZZ": 0.7})
        t = 0.9
        circ = trotter_evolution(h, t)
        expected = expm(-1j * t * h.to_matrix())
        assert np.allclose(circ.to_matrix(), expected, atol=1e-10)

    def test_commuting_terms_exact(self):
        h = PauliSum.from_label_dict({"ZZ": 0.7, "ZI": -0.3, "IZ": 0.2})
        t = 1.3
        circ = trotter_evolution(h, t)
        assert np.allclose(circ.to_matrix(), expm(-1j * t * h.to_matrix()), atol=1e-9)

    def test_noncommuting_converges_with_steps(self):
        h = PauliSum.from_label_dict({"XX": 0.8, "ZI": 0.5, "IZ": 0.5})
        t = 1.0
        exact = expm(-1j * t * h.to_matrix())

        def err(steps):
            u = trotter_evolution(h, t, steps).to_matrix()
            return np.linalg.norm(u - exact)

        assert err(16) < err(4) < err(1)
        assert err(16) < 0.1  # first-order Trotter: error ~ t^2/steps

    def test_identity_term_skipped(self):
        h = PauliSum.from_label_dict({"II": 5.0, "ZZ": 0.3})
        circ = trotter_evolution(h, 1.0)
        # identity contributes no gates (global phase handled classically)
        assert all(g.name in ("cx", "rz", "h", "rx") for g in circ.gates)

    def test_non_hermitian_rejected(self):
        with pytest.raises(ValueError):
            trotter_evolution(PauliSum.from_label_dict({"XY": 1j}), 1.0)


class TestQPE:
    def test_h2_ground_energy(self, h2_problem):
        hq, e_fci = h2_problem
        res = run_qpe(
            hq, hartree_fock_state(4, 2), num_ancillas=10,
            energy_window=(-2.0, 0.0),
        )
        assert abs(res.energy - e_fci) <= res.resolution
        assert res.success_probability > 0.5

    def test_resolution_improves_with_ancillas(self, h2_problem):
        hq, e_fci = h2_problem
        r6 = run_qpe(hq, hartree_fock_state(4, 2), 6, (-2.0, 0.0))
        r10 = run_qpe(hq, hartree_fock_state(4, 2), 10, (-2.0, 0.0))
        assert r10.resolution < r6.resolution
        assert abs(r10.energy - e_fci) <= abs(r6.energy - e_fci) + r10.resolution

    def test_eigenstate_input_deterministic(self):
        """Feeding an exact eigenstate makes QPE sharply peaked."""
        h = PauliSum.from_label_dict({"ZI": 0.5, "IZ": 0.25})
        state = np.zeros(4, dtype=complex)
        state[0b11] = 1.0  # eigenvalue -0.75
        res = run_qpe(h, state, num_ancillas=6, energy_window=(-1.0, 1.0))
        assert abs(res.energy - (-0.75)) <= res.resolution
        assert res.success_probability > 0.8

    def test_distribution_normalized(self, h2_problem):
        hq, _ = h2_problem
        res = run_qpe(hq, hartree_fock_state(4, 2), 5, (-2.0, 0.0))
        assert np.isclose(res.distribution.sum(), 1.0, atol=1e-9)

    def test_default_window_brackets_spectrum(self, h2_problem):
        hq, e_fci = h2_problem
        res = run_qpe(hq, hartree_fock_state(4, 2), num_ancillas=12)
        assert abs(res.energy - e_fci) <= 2 * res.resolution

    def test_rejects_non_hermitian(self):
        with pytest.raises(ValueError):
            run_qpe(
                PauliSum.from_label_dict({"XY": 1j}),
                np.array([1, 0, 0, 0], dtype=complex),
            )


class TestParameterShift:
    def test_hea_supported_uccsd_not(self):
        from repro.chem.uccsd import build_uccsd_circuit

        assert supports_parameter_shift(hardware_efficient_ansatz(3, 1))
        assert not supports_parameter_shift(build_uccsd_circuit(4, 2).circuit)

    def test_matches_finite_difference(self, h2_problem):
        hq, _ = h2_problem
        ansatz = hardware_efficient_ansatz(4, layers=1)
        rng = np.random.default_rng(9)
        x = rng.normal(scale=0.3, size=ansatz.num_parameters)

        from repro.core.estimator import DirectEstimator
        from repro.opt.gradient import finite_difference_gradient

        est = DirectEstimator()

        def energy(p):
            return est.estimate(ansatz.bind(list(p)), hq)

        ps = parameter_shift_gradient(ansatz, hq, x)
        fd = finite_difference_gradient(energy, x)
        assert np.allclose(ps, fd, atol=1e-5)

    def test_rejects_reused_parameter(self, h2_problem):
        from repro.chem.uccsd import build_uccsd_circuit

        hq, _ = h2_problem
        circuit = build_uccsd_circuit(4, 2).circuit
        with pytest.raises(ValueError):
            parameter_shift_gradient(circuit, hq, np.zeros(circuit.num_parameters))
