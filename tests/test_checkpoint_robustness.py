"""Corruption-path and atomicity tests for the checkpoint layer.

Every corruption mode a parallel filesystem can produce — truncated
archive, garbage bytes, missing shard, misshapen shard, stale-format
version, denormalized state — must surface as a ``ValueError`` with a
descriptive message, never a bare ``FileNotFoundError``/``BadZipFile``
deep in numpy.  Saves must be atomic: no half-written checkpoint can
ever exist under the final name.
"""

import json
import os

import numpy as np
import pytest

from repro.hpc.distributed import DistributedStatevector
from repro.ir.circuit import Circuit
from repro.sim.checkpoint import (
    load_distributed,
    load_statevector,
    save_distributed,
    save_statevector,
)
from repro.sim.statevector import StatevectorSimulator


def _entangling_circuit(n, seed):
    circ = Circuit(n)
    rng = np.random.default_rng(seed)
    for q in range(n):
        circ.ry(rng.uniform(0, np.pi), q)
    for q in range(n - 1):
        circ.cx(q, q + 1)
    return circ


def _continuation_circuit(n):
    return Circuit(n).rz(0.3, 0).cx(n - 1, 0)


def _dense_sim(n=3, seed=11):
    sim = StatevectorSimulator(n)
    sim.run(_entangling_circuit(n, seed))
    return sim


def _dist_sim(n=4, ranks=4, seed=3):
    dsv = DistributedStatevector(n, ranks)
    dsv.run(_entangling_circuit(n, seed))
    return dsv


class TestDenseCorruption:
    def test_truncated_npz(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        save_statevector(_dense_sim(), path)
        raw = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(raw[: len(raw) // 3])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            load_statevector(path)

    def test_garbage_bytes(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        with open(path, "wb") as fh:
            fh.write(b"this is not a zip archive")
        with pytest.raises(ValueError, match="corrupt or truncated"):
            load_statevector(path)

    def test_missing_keys(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        np.savez_compressed(path, unrelated=np.zeros(4))
        with pytest.raises(ValueError, match="missing 'state'/'meta'"):
            load_statevector(path)

    def test_version_mismatch(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        sim = _dense_sim()
        np.savez_compressed(
            path,
            state=sim.state,
            meta=json.dumps(
                {"version": 999, "num_qubits": 3, "gates_applied": 0}
            ),
        )
        with pytest.raises(ValueError, match="unsupported checkpoint version"):
            load_statevector(path)

    def test_wrong_norm(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        np.savez_compressed(
            path,
            state=np.full(8, 0.7, dtype=np.complex128),
            meta=json.dumps(
                {"version": 1, "num_qubits": 3, "gates_applied": 0}
            ),
        )
        with pytest.raises(ValueError, match=r"\|state\|"):
            load_statevector(path)

    def test_shape_metadata_mismatch(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        state = np.zeros(8, dtype=np.complex128)
        state[0] = 1.0
        np.savez_compressed(
            path,
            state=state,
            meta=json.dumps(
                {"version": 1, "num_qubits": 4, "gates_applied": 0}
            ),
        )
        with pytest.raises(ValueError, match="shape does not match"):
            load_statevector(path)


class TestDistributedCorruption:
    def test_missing_shard_names_rank(self, tmp_path):
        d = str(tmp_path / "dist")
        save_distributed(_dist_sim(), d)
        os.remove(os.path.join(d, "rank_00002.npy"))
        with pytest.raises(ValueError, match="missing shard\\(s\\) 2 of 4"):
            load_distributed(d)

    def test_extra_shard_census_mismatch(self, tmp_path):
        d = str(tmp_path / "dist")
        save_distributed(_dist_sim(), d)
        np.save(os.path.join(d, "rank_00009.npy"), np.zeros(4))
        with pytest.raises(ValueError, match="manifest declares num_ranks=4"):
            load_distributed(d)

    def test_no_manifest(self, tmp_path):
        d = tmp_path / "dist"
        d.mkdir()
        with pytest.raises(ValueError, match="no manifest.json"):
            load_distributed(str(d))

    def test_corrupt_manifest(self, tmp_path):
        d = str(tmp_path / "dist")
        save_distributed(_dist_sim(), d)
        with open(os.path.join(d, "manifest.json"), "w") as fh:
            fh.write("{broken")
        with pytest.raises(ValueError, match="corrupt checkpoint manifest"):
            load_distributed(d)

    def test_version_mismatch(self, tmp_path):
        d = str(tmp_path / "dist")
        save_distributed(_dist_sim(), d)
        mpath = os.path.join(d, "manifest.json")
        manifest = json.load(open(mpath))
        manifest["version"] = 0
        json.dump(manifest, open(mpath, "w"))
        with pytest.raises(ValueError, match="unsupported checkpoint version"):
            load_distributed(d)

    def test_truncated_shard(self, tmp_path):
        d = str(tmp_path / "dist")
        save_distributed(_dist_sim(), d)
        spath = os.path.join(d, "rank_00001.npy")
        raw = open(spath, "rb").read()
        with open(spath, "wb") as fh:
            fh.write(raw[:10])
        with pytest.raises(ValueError, match="corrupt or truncated shard 1"):
            load_distributed(d)

    def test_misshapen_shard(self, tmp_path):
        d = str(tmp_path / "dist")
        save_distributed(_dist_sim(), d)
        np.save(os.path.join(d, "rank_00001.npy"), np.zeros(99, dtype=np.complex128))
        with pytest.raises(ValueError, match="shard 1 has wrong shape"):
            load_distributed(d)

    def test_denormalized_total(self, tmp_path):
        d = str(tmp_path / "dist")
        dsv = _dist_sim()
        dsv.slices[0] *= 3.0
        save_distributed(dsv, d)
        with pytest.raises(ValueError, match="total norm"):
            load_distributed(d)


class TestAtomicity:
    def test_dense_save_leaves_no_temp_files(self, tmp_path):
        save_statevector(_dense_sim(), str(tmp_path / "a"))
        assert sorted(os.listdir(tmp_path)) == ["a.npz"]

    def test_dense_overwrite_existing(self, tmp_path):
        path = str(tmp_path / "ckpt")
        save_statevector(_dense_sim(seed=1), path)
        sim2 = _dense_sim(seed=2)
        save_statevector(sim2, path)
        assert np.allclose(load_statevector(path).state, sim2.state)

    def test_distributed_save_leaves_no_temp_dirs(self, tmp_path):
        save_distributed(_dist_sim(), str(tmp_path / "dist"))
        assert sorted(os.listdir(tmp_path)) == ["dist"]

    def test_distributed_overwrite_existing(self, tmp_path):
        d = str(tmp_path / "dist")
        save_distributed(_dist_sim(seed=1), d)
        dsv2 = _dist_sim(seed=2)
        save_distributed(dsv2, d)
        assert np.allclose(load_distributed(d).gather(), dsv2.gather())
        assert sorted(os.listdir(tmp_path)) == ["dist"]

    def test_distributed_failed_save_keeps_previous(self, tmp_path, monkeypatch):
        """If writing the new checkpoint blows up mid-assembly, the
        previous checkpoint must survive under the final name."""
        d = str(tmp_path / "dist")
        dsv1 = _dist_sim(seed=1)
        save_distributed(dsv1, d)

        calls = {"n": 0}
        real_save = np.save

        def exploding_save(path, arr, *a, **k):
            calls["n"] += 1
            if calls["n"] > 2:
                raise OSError("filesystem full")
            return real_save(path, arr, *a, **k)

        monkeypatch.setattr(np, "save", exploding_save)
        with pytest.raises(OSError, match="filesystem full"):
            save_distributed(_dist_sim(seed=2), d)
        monkeypatch.undo()

        restored = load_distributed(d)
        assert np.allclose(restored.gather(), dsv1.gather())
        assert sorted(os.listdir(tmp_path)) == ["dist"]


class TestRoundtripContinue:
    def test_dense_save_load_continue(self, tmp_path):
        """Checkpoint mid-circuit, restore, keep applying gates: the
        result must equal the uninterrupted run."""
        path = str(tmp_path / "ckpt")
        uninterrupted = _dense_sim()
        uninterrupted.run(_continuation_circuit(3), reset=False)

        sim = _dense_sim()
        save_statevector(sim, path)
        restored = load_statevector(path)
        assert restored.gates_applied == sim.gates_applied
        restored.run(_continuation_circuit(3), reset=False)
        assert np.allclose(restored.state, uninterrupted.state, atol=1e-12)

    def test_distributed_save_load_continue(self, tmp_path):
        d = str(tmp_path / "dist")
        uninterrupted = _dist_sim()
        uninterrupted.run(_continuation_circuit(4), reset=False)

        dsv = _dist_sim()
        save_distributed(dsv, d)
        restored = load_distributed(d)
        assert restored.layout == dsv.layout
        assert restored.gates_applied == dsv.gates_applied
        assert restored.exchanges == dsv.exchanges
        restored.run(_continuation_circuit(4), reset=False)
        assert np.allclose(restored.gather(), uninterrupted.gather(), atol=1e-12)

    def test_cross_simulator_agreement_after_restore(self, tmp_path):
        """Dense and distributed checkpoints of the same circuit agree
        after restore + further gates."""
        save_statevector(_dense_sim(n=4, seed=3), str(tmp_path / "a"))
        save_distributed(_dist_sim(n=4, ranks=2, seed=3), str(tmp_path / "b"))
        dense = load_statevector(str(tmp_path / "a"))
        dist = load_distributed(str(tmp_path / "b"))
        more = Circuit(4).h(0).cx(0, 3)
        dense.run(more, reset=False)
        dist.run(more, reset=False)
        assert np.allclose(dense.state, dist.gather(), atol=1e-12)
