"""Tests for the fermionic algebra and the fermion-to-qubit mappings."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chem.fermion import FermionOperator
from repro.chem.mappings import (
    bravyi_kitaev,
    encoding_matrix,
    jordan_wigner,
    map_fermion_operator,
    parity_transform,
)
from repro.chem.reference import hartree_fock_bitstring, hartree_fock_state
from repro.ir.pauli import PauliSum


class TestFermionAlgebra:
    def test_number_operator_idempotent(self):
        n_op = FermionOperator.from_string("0^ 0")
        sq = (n_op * n_op).normal_ordered()
        assert sq.terms == n_op.normal_ordered().terms

    def test_car_same_mode(self):
        # a a+ + a+ a = 1
        a = FermionOperator.from_string("0")
        adag = FermionOperator.from_string("0^")
        anti = (a * adag + adag * a).normal_ordered()
        assert anti.terms == {(): 1.0}

    def test_car_different_modes(self):
        a0 = FermionOperator.from_string("0")
        a1dag = FermionOperator.from_string("1^")
        anti = (a0 * a1dag + a1dag * a0).normal_ordered()
        assert len(anti) == 0

    def test_pauli_exclusion(self):
        doubled = (
            FermionOperator.from_string("2^") * FermionOperator.from_string("2^")
        ).normal_ordered()
        assert len(doubled) == 0

    def test_dagger_involution(self):
        op = FermionOperator.from_string("3^ 1", 2.0 + 1.0j) + FermionOperator.from_string(
            "2^ 0^ 1 0", -0.5
        )
        dd = op.dagger().dagger()
        assert (dd - op).normal_ordered().chop().terms == {}

    def test_excitation_generator_antihermitian(self):
        t = FermionOperator.from_string("2^ 0")
        gen = t - t.dagger()
        assert gen.is_anti_hermitian()
        assert not gen.is_hermitian()

    def test_normal_ordering_sign(self):
        # a_0 a_1 = -a_1 a_0 -> canonical ascending annihilations
        op = FermionOperator.from_string("1 0").normal_ordered()
        assert op.terms == {((0, False), (1, False)): -1.0}

    def test_contraction(self):
        # a_0 a+_0 = 1 - a+_0 a_0
        op = FermionOperator.from_string("0 0^").normal_ordered()
        assert op.terms[()] == 1.0
        assert op.terms[((0, True), (0, False))] == -1.0

    def test_particle_number_conservation_check(self):
        assert FermionOperator.from_string("2^ 0").conserves_particle_number()
        assert not FermionOperator.from_string("2^").conserves_particle_number()

    def test_commutator_of_numbers_vanishes(self):
        n0 = FermionOperator.from_string("0^ 0")
        n1 = FermionOperator.from_string("1^ 1")
        assert len(n0.commutator(n1)) == 0


class TestEncodingMatrices:
    def test_jw_identity(self):
        assert np.array_equal(encoding_matrix("jordan-wigner", 5), np.eye(5))

    def test_parity_prefix_sums(self):
        beta = encoding_matrix("parity", 4)
        n = np.array([1, 0, 1, 0], dtype=np.uint8)
        b = (beta @ n) % 2
        assert list(b) == [1, 1, 0, 0]

    def test_bk_power_of_two_structure(self):
        beta = encoding_matrix("bravyi-kitaev", 8)
        # Last qubit stores total parity: bottom row all ones.
        assert np.all(beta[7] == 1)
        # Diagonal is all ones (each qubit depends on its own mode).
        assert np.all(np.diag(beta) == 1)

    def test_bk_truncation(self):
        b8 = encoding_matrix("bravyi-kitaev", 8)
        b6 = encoding_matrix("bravyi-kitaev", 6)
        assert np.array_equal(b6, b8[:6, :6])


class TestMappings:
    def test_jw_annihilation_qubit0(self):
        a0 = jordan_wigner(FermionOperator.from_string("0"), 2)
        # a_0 = (X + iY)/2 on qubit 0
        expected = PauliSum.from_label_dict({"IX": 0.5, "IY": 0.5j})
        assert np.allclose(a0.to_matrix(), expected.to_matrix())

    def test_jw_z_string(self):
        a2 = jordan_wigner(FermionOperator.from_string("2"), 3)
        # a_2 = (X_2 + iY_2)/2 Z_1 Z_0
        expected = PauliSum.from_label_dict({"XZZ": 0.5, "YZZ": 0.5j})
        assert np.allclose(a2.to_matrix(), expected.to_matrix())

    def test_number_operator_jw(self):
        n1 = jordan_wigner(FermionOperator.from_string("1^ 1"), 2)
        expected = PauliSum.from_label_dict({"II": 0.5, "ZI": -0.5})
        assert np.allclose(n1.to_matrix(), expected.to_matrix())

    @pytest.mark.parametrize("mapping", ["jordan-wigner", "parity", "bravyi-kitaev"])
    def test_car_preserved(self, mapping):
        """{a_p, a+_q} = delta_pq must hold for the mapped operators."""
        n = 4
        for p in range(n):
            for q in range(n):
                ap = map_fermion_operator(
                    FermionOperator.from_string(f"{p}"), n, mapping
                ).to_matrix()
                aqd = map_fermion_operator(
                    FermionOperator.from_string(f"{q}^"), n, mapping
                ).to_matrix()
                anti = ap @ aqd + aqd @ ap
                expected = np.eye(1 << n) if p == q else np.zeros((1 << n, 1 << n))
                assert np.allclose(anti, expected, atol=1e-10)

    @pytest.mark.parametrize("mapping", ["parity", "bravyi-kitaev"])
    def test_spectrum_matches_jw(self, mapping):
        """All mappings are unitarily equivalent: same spectrum."""
        rng = np.random.default_rng(11)
        n = 4
        op = FermionOperator()
        for _ in range(6):
            p, q = rng.integers(0, n, size=2)
            c = float(rng.normal())
            term = FermionOperator.term([(int(p), True), (int(q), False)], c)
            op = op + term + term.dagger()
        jw = jordan_wigner(op, n).to_matrix()
        other = map_fermion_operator(op, n, mapping).to_matrix()
        assert np.allclose(
            np.linalg.eigvalsh(jw), np.linalg.eigvalsh(other), atol=1e-8
        )

    def test_hermitian_input_gives_hermitian_output(self):
        op = FermionOperator.from_string("1^ 0") + FermionOperator.from_string("0^ 1")
        for mapping in ("jordan-wigner", "parity", "bravyi-kitaev"):
            q = map_fermion_operator(op, 3, mapping)
            assert q.is_hermitian()

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            jordan_wigner(FermionOperator.from_string("5"), 4)

    def test_unknown_mapping(self):
        with pytest.raises(ValueError):
            map_fermion_operator(FermionOperator.from_string("0"), 2, "nope")


class TestReferenceState:
    def test_jw_bitstring(self):
        assert hartree_fock_bitstring(4, 2) == 0b0011

    def test_parity_bitstring(self):
        # occupations 1,1,0,0 -> prefix parities 1,0,0,0
        assert hartree_fock_bitstring(4, 2, "parity") == 0b0001

    def test_state_is_number_eigenstate(self):
        state = hartree_fock_state(6, 4)
        n_total = PauliSum.zero(6)
        from repro.chem.mappings import jordan_wigner as jw

        for p in range(6):
            n_total = n_total + jw(FermionOperator.from_string(f"{p}^ {p}"), 6)
        val = n_total.expectation(state)
        assert np.isclose(val.real, 4.0)

    def test_hf_energy_via_state(self):
        """<HF|H|HF> through the qubit pipeline equals the integral
        formula — ties mapping, reference prep, and Hamiltonian
        construction together."""
        from repro.chem.hamiltonian import build_molecular_hamiltonian
        from repro.chem.molecule import h2
        from repro.chem.scf import run_rhf

        scf = run_rhf(h2())
        mh = build_molecular_hamiltonian(scf)
        hq = mh.to_qubit()
        state = hartree_fock_state(4, 2)
        assert np.isclose(hq.expectation(state).real, scf.energy, atol=1e-8)

    def test_too_many_electrons(self):
        with pytest.raises(ValueError):
            hartree_fock_bitstring(2, 3)
