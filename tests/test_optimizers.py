"""Tests for the classical optimizers and the adjoint gradients."""

import numpy as np
import pytest

from repro.chem.reference import hartree_fock_state
from repro.chem.uccsd import uccsd_generators
from repro.ir.pauli import PauliSum
from repro.opt import (
    SPSA,
    Adam,
    AnsatzObjective,
    Cobyla,
    GradientDescent,
    LBFGSB,
    NelderMead,
    finite_difference_gradient,
)


def quadratic(x):
    return float(np.sum((x - np.array([1.0, -2.0])) ** 2))


def quadratic_grad(x):
    return 2.0 * (x - np.array([1.0, -2.0]))


class TestOptimizersOnQuadratic:
    def test_nelder_mead(self):
        res = NelderMead().minimize(quadratic, np.zeros(2))
        assert np.allclose(res.x, [1.0, -2.0], atol=1e-4)
        assert res.converged

    def test_cobyla(self):
        res = Cobyla().minimize(quadratic, np.zeros(2))
        assert np.allclose(res.x, [1.0, -2.0], atol=1e-3)

    def test_lbfgsb_with_gradient(self):
        res = LBFGSB().minimize(quadratic, np.zeros(2), gradient=quadratic_grad)
        assert np.allclose(res.x, [1.0, -2.0], atol=1e-6)
        assert res.nfev < 30

    def test_adam(self):
        res = Adam(max_iterations=2000, learning_rate=0.1).minimize(
            quadratic, np.zeros(2), gradient=quadratic_grad
        )
        assert np.allclose(res.x, [1.0, -2.0], atol=1e-3)

    def test_gradient_descent(self):
        res = GradientDescent(learning_rate=0.3).minimize(
            quadratic, np.zeros(2), gradient=quadratic_grad
        )
        assert np.allclose(res.x, [1.0, -2.0], atol=1e-4)

    def test_spsa_reduces_value(self):
        res = SPSA(max_iterations=400, seed=3).minimize(quadratic, np.array([3.0, 3.0]))
        assert res.fun < quadratic(np.array([3.0, 3.0])) * 0.1

    def test_gradient_required(self):
        with pytest.raises(ValueError):
            Adam().minimize(quadratic, np.zeros(2))
        with pytest.raises(ValueError):
            GradientDescent().minimize(quadratic, np.zeros(2))

    def test_history_recorded(self):
        res = NelderMead().minimize(quadratic, np.zeros(2))
        assert len(res.history) > 1
        assert res.history[-1] <= res.history[0]


class TestFiniteDifference:
    def test_matches_analytic(self):
        x = np.array([0.3, -0.7])
        fd = finite_difference_gradient(quadratic, x)
        assert np.allclose(fd, quadratic_grad(x), atol=1e-5)


@pytest.fixture(scope="module")
def h2_objective():
    from repro.chem.hamiltonian import build_molecular_hamiltonian
    from repro.chem.molecule import h2
    from repro.chem.scf import run_rhf

    scf = run_rhf(h2())
    hq = build_molecular_hamiltonian(scf).to_qubit()
    gens = [a for _, a in uccsd_generators(4, 2)]
    ref = hartree_fock_state(4, 2)
    return AnsatzObjective(ref, gens, hq)


class TestAnsatzObjective:
    def test_zero_params_is_hf(self, h2_objective):
        from repro.chem.molecule import h2
        from repro.chem.scf import run_rhf

        e = h2_objective.energy(np.zeros(3))
        assert np.isclose(e, run_rhf(h2()).energy, atol=1e-8)

    def test_adjoint_matches_finite_difference(self, h2_objective, rng):
        for _ in range(3):
            x = rng.normal(scale=0.2, size=3)
            adj = h2_objective.gradient(x)
            fd = finite_difference_gradient(h2_objective.energy, x)
            assert np.allclose(adj, fd, atol=1e-5)

    def test_energy_and_gradient_consistent(self, h2_objective, rng):
        x = rng.normal(scale=0.1, size=3)
        e, g = h2_objective.energy_and_gradient(x)
        assert np.isclose(e, h2_objective.energy(x), atol=1e-12)
        assert np.allclose(g, h2_objective.gradient(x), atol=1e-12)

    def test_parameter_count_checked(self, h2_objective):
        with pytest.raises(ValueError):
            h2_objective.prepare_state(np.zeros(5))

    def test_state_normalized(self, h2_objective, rng):
        st = h2_objective.prepare_state(rng.normal(scale=0.3, size=3))
        assert np.isclose(np.linalg.norm(st), 1.0, atol=1e-10)

    def test_lbfgs_reaches_fci(self, h2_objective):
        from repro.chem.fci import exact_ground_energy

        res = LBFGSB().minimize(
            h2_objective.energy, np.zeros(3), gradient=h2_objective.gradient
        )
        e_fci = exact_ground_energy(h2_objective.hamiltonian, num_particles=2, sz=0)
        assert abs(res.fun - e_fci) < 1e-6
