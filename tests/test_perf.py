"""Tests for the performance observatory (``repro.obs.perf``).

Covers the critical-path invariants (property-based), the comm-matrix
consistency guarantee against ``CommStats``, per-rank attribution from
a real 4-rank distributed run, the Chrome-trace round trip, and the
per-rank sections of ``RunReport.summary``.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.hpc.distributed import DistributedStatevector
from repro.ir.circuit import Circuit
from repro.ir.pauli import PauliSum
from repro.obs.perf import (
    CommMatrix,
    ImbalanceStats,
    PerfAnalysis,
    RankTimeline,
    _fill_wait,
    critical_path,
    span_self_times,
    spans_from_chrome_trace,
)
from repro.obs.trace import SpanRecord


@pytest.fixture(autouse=True)
def _clean_global_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# -- span-forest generator for the property tests -----------------------------


@st.composite
def span_forests(draw):
    """Random span forests where every span's duration is its own
    weight plus its children's durations — so self time equals the
    drawn weight by construction."""
    n = draw(st.integers(min_value=1, max_value=25))
    weights = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    parents = [None]
    for i in range(1, n):
        parents.append(
            draw(st.one_of(st.none(), st.integers(min_value=0, max_value=i - 1)))
        )
    # durations bottom-up: children have higher indices than parents
    durations = list(weights)
    for i in range(n - 1, 0, -1):
        if parents[i] is not None:
            durations[parents[i]] += durations[i]
    spans = [
        SpanRecord(
            span_id=i,
            parent_id=parents[i],
            name=f"s{i}",
            category="test",
            start_us=0.0,
            duration_us=durations[i],
            thread_id=0,
            depth=0,
        )
        for i in range(n)
    ]
    return spans, weights


class TestCriticalPathProperties:
    @given(span_forests())
    @settings(max_examples=60, deadline=None)
    def test_path_duration_bounded_by_root(self, forest):
        spans, _ = forest
        path = critical_path(spans)
        roots = [s for s in spans if s.parent_id is None]
        assert path.duration_us <= max(s.duration_us for s in roots) + 1e-9
        # and every entry fits inside the root entry
        for e in path.entries:
            assert e.duration_us <= path.duration_us + 1e-9

    @given(span_forests())
    @settings(max_examples=60, deadline=None)
    def test_path_is_a_root_to_leaf_chain(self, forest):
        spans, _ = forest
        path = critical_path(spans)
        by_name = {s.name: s for s in spans}
        children = {}
        for s in spans:
            children.setdefault(s.parent_id, []).append(s)
        # starts at a root
        head = by_name[path.entries[0].name]
        assert head.parent_id is None
        # each next entry is a child of the previous; depths increment
        node = head
        for k, entry in enumerate(path.entries[1:], start=1):
            assert entry.depth == k
            kids = children.get(node.span_id, [])
            node = by_name[entry.name]
            assert node in kids
        # ends at a leaf
        assert not children.get(node.span_id)

    @given(span_forests())
    @settings(max_examples=60, deadline=None)
    def test_self_times_sum_to_root_durations(self, forest):
        spans, weights = forest
        selfs = span_self_times(spans)
        # by construction each span's self time is its drawn weight
        for s in spans:
            assert selfs[s.span_id] == pytest.approx(
                weights[s.span_id], rel=1e-9, abs=1e-6
            )
        roots_total = sum(
            s.duration_us for s in spans if s.parent_id is None
        )
        assert sum(selfs.values()) == pytest.approx(
            roots_total, rel=1e-9, abs=1e-6
        )

    @given(span_forests())
    @settings(max_examples=60, deadline=None)
    def test_entry_self_times_bounded(self, forest):
        spans, _ = forest
        path = critical_path(spans, top_k=5)
        for e in path.entries:
            assert 0.0 <= e.self_us <= e.duration_us + 1e-9
        # top_self is a sorted subset of the chain
        assert len(path.top_self) <= 5
        names_on_chain = {e.name for e in path.entries}
        selfs = [e.self_us for e in path.top_self]
        assert selfs == sorted(selfs, reverse=True)
        assert all(e.name in names_on_chain for e in path.top_self)

    def test_empty_and_orphaned_spans(self):
        assert critical_path([]).entries == []
        # parent id outside the recorded window -> treated as a root
        orphan = SpanRecord(
            span_id=7,
            parent_id=99,
            name="orphan",
            category="t",
            start_us=0.0,
            duration_us=5.0,
            thread_id=0,
            depth=0,
        )
        path = critical_path([orphan])
        assert [e.name for e in path.entries] == ["orphan"]


class TestRankTimelines:
    def test_fill_wait_and_imbalance(self):
        tl = [
            RankTimeline(rank=0, compute_s=3.0, comm_s=1.0),
            RankTimeline(rank=1, compute_s=1.0, comm_s=1.0),
        ]
        _fill_wait(tl)
        assert tl[0].wait_s == 0.0
        assert tl[1].wait_s == pytest.approx(2.0)
        stats = ImbalanceStats.from_timelines(tl)
        assert stats.max_busy_s == pytest.approx(4.0)
        assert stats.mean_busy_s == pytest.approx(3.0)
        assert stats.imbalance == pytest.approx(4.0 / 3.0)
        assert stats.idle_fraction == pytest.approx(2.0 / 8.0)

    def test_comm_matrix_from_pairs_totals(self):
        matrix = CommMatrix.from_pairs(
            {"0->1": 3, "1->0": 2, "2->0": 1},
            {"0->1": 96, "1->0": 64, "2->0": 32},
        )
        assert matrix.num_ranks == 3
        assert matrix.messages[0][1] == 3
        assert matrix.total_messages == 6
        assert matrix.total_bytes == 192


class TestDistributedAttribution:
    """The acceptance scenario: a 4-rank distributed run, analyzed."""

    def _run(self, num_ranks=4):
        obs.enable()
        obs.reset()
        circuit = Circuit(4)
        circuit.h(0)
        for q in range(3):
            circuit.cx(q, q + 1)
        for q in range(4):
            circuit.rz(0.3 * (q + 1), q)
        dsv = DistributedStatevector(4, num_ranks=num_ranks)
        dsv.run(circuit)
        ham = PauliSum.from_label_dict(
            {"ZZII": 0.5, "XXII": 0.25, "IIZZ": 0.125, "ZIIZ": 0.0625}
        )
        dsv.expectation(ham)
        return dsv

    def test_comm_matrix_matches_commstats(self):
        dsv = self._run()
        analysis = PerfAnalysis.from_tracer(comm_stats=dsv.comm.stats)
        stats = dsv.comm.stats
        assert analysis.comm_matrix.total_messages == stats.point_to_point_messages
        assert analysis.comm_matrix.total_bytes == stats.point_to_point_bytes
        assert stats.point_to_point_messages > 0

    def test_rank_timelines_cover_all_ranks(self):
        dsv = self._run()
        analysis = PerfAnalysis.from_tracer(comm_stats=dsv.comm.stats)
        assert [t.rank for t in analysis.timelines] == [0, 1, 2, 3]
        assert all(t.compute_s > 0 for t in analysis.timelines)
        assert all(t.comm_s > 0 for t in analysis.timelines)
        # wait is the gap to the busiest rank: at least one rank has none
        assert min(t.wait_s for t in analysis.timelines) == 0.0
        assert analysis.imbalance.max_busy_s == pytest.approx(
            max(t.busy_s for t in analysis.timelines)
        )

    def test_critical_path_bounded_by_root_span(self):
        dsv = self._run()
        spans = obs.get_tracer().spans
        analysis = PerfAnalysis.from_tracer(comm_stats=dsv.comm.stats)
        roots = [s for s in spans if s.parent_id is None]
        assert analysis.path.entries
        assert analysis.path.duration_us <= max(
            s.duration_us for s in roots
        ) + 1e-6

    def test_chrome_trace_round_trip(self, tmp_path):
        dsv = self._run()
        live = PerfAnalysis.from_tracer(comm_stats=dsv.comm.stats)
        path = tmp_path / "trace.json"
        obs.get_tracer().write_chrome_trace(str(path))
        payload = json.loads(path.read_text())
        spans = spans_from_chrome_trace(payload)
        assert len(spans) == len(obs.get_tracer().spans)
        offline = PerfAnalysis.from_chrome_trace_file(str(path))
        # trace-only analysis falls back to span attributes: same ranks,
        # same critical path
        assert [t.rank for t in offline.timelines] == [0, 1, 2, 3]
        assert [e.name for e in offline.path.entries] == [
            e.name for e in live.path.entries
        ]
        assert offline.path.duration_us == pytest.approx(
            live.path.duration_us, rel=1e-6
        )

    def test_perf_analysis_dict_round_trip(self):
        dsv = self._run()
        analysis = PerfAnalysis.from_tracer(comm_stats=dsv.comm.stats)
        clone = PerfAnalysis.from_dict(
            json.loads(json.dumps(analysis.to_dict()))
        )
        assert [t.to_dict() for t in clone.timelines] == [
            t.to_dict() for t in analysis.timelines
        ]
        assert clone.comm_matrix.to_dict() == analysis.comm_matrix.to_dict()
        assert clone.path.to_dict() == analysis.path.to_dict()
        assert clone.render() == analysis.render()


class TestReportRankSections:
    def test_distributed_vqe_report_renders_rank_sections(self):
        """Regression: a 4-rank DistributedStatevector VQE energy loop
        must produce a report whose summary carries per-rank sections."""
        obs.enable()
        obs.reset()
        ham = PauliSum.from_label_dict({"ZIII": 1.0, "IZII": 0.5})
        dsv = DistributedStatevector(4, num_ranks=4)
        energies = []
        for theta in np.linspace(0.0, 1.2, 4):  # tiny VQE parameter sweep
            circuit = Circuit(4)
            circuit.ry(float(theta), 0)
            circuit.cx(0, 1)
            circuit.cx(0, 3)  # spans the global qubits -> real exchanges
            dsv.reset()
            dsv.run(circuit)
            energies.append(dsv.expectation(ham))
        assert energies[0] != energies[-1]
        report = obs.collect_report(comm_stats=dsv.comm.stats)
        assert report.perf  # v2 reports embed the analysis
        summary = report.summary()
        assert "-- per-rank timeline (wall seconds) --" in summary
        assert "-- communication matrix" in summary
        assert "-- critical path (root -> leaf) --" in summary
        for rank in range(4):
            assert f"\n  {rank:>4} " in summary or f" {rank:>4} " in summary

    def test_report_without_rank_data_has_no_rank_sections(self):
        obs.enable()
        obs.reset()
        with obs.span("plain.work"):
            pass
        report = obs.collect_report()
        summary = report.summary()
        assert "-- per-rank timeline" not in summary
        assert "-- communication matrix" not in summary

    def test_v1_report_payload_still_loads(self):
        obs.enable()
        obs.reset()
        with obs.span("x"):
            pass
        from repro.obs.report import RunReport

        payload = obs.collect_report().to_dict()
        payload["version"] = 1
        payload.pop("perf", None)
        loaded = RunReport.from_dict(payload)
        assert loaded.version == 1
        assert loaded.perf == {}
        loaded.summary()  # renders without the perf section
