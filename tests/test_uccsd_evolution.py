"""Tests for UCCSD ansatz construction, Pauli exponentials, and the
exact generator evolution used by the chemistry-mode driver."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.chem.pools import qubit_pool, uccsd_pool
from repro.chem.reference import hartree_fock_state
from repro.chem.uccsd import (
    build_uccsd_circuit,
    compile_evolution,
    count_uccsd_gates,
    pauli_exponential,
    uccsd_excitations,
    uccsd_generators,
)
from repro.ir.circuit import Circuit
from repro.ir.pauli import PauliString, PauliSum
from repro.sim.evolution import GeneratorEvolution, apply_pauli_rotation, terms_commute
from repro.sim.statevector import StatevectorSimulator
from repro.utils.linalg import random_statevector


class TestExcitations:
    def test_h2_excitations(self):
        singles, doubles = uccsd_excitations(4, 2)
        assert singles == [(0, 2), (1, 3)]
        assert doubles == [(0, 1, 2, 3)]

    def test_spin_conservation(self):
        singles, doubles = uccsd_excitations(8, 4)
        for i, a in singles:
            assert (i - a) % 2 == 0
        for i, j, a, b in doubles:
            assert ((i % 2) + (j % 2)) == ((a % 2) + (b % 2))

    def test_generators_antihermitian_and_number_conserving(self):
        for _, a in uccsd_generators(6, 2):
            assert a.is_anti_hermitian()

    def test_generator_terms_commute(self):
        """Within one excitation block the JW strings mutually commute,
        so the per-block exponential is exact (no internal Trotter)."""
        for _, a in uccsd_generators(8, 4):
            assert terms_commute(a)


class TestPauliExponential:
    @pytest.mark.parametrize("label", ["ZZ", "XY", "YX", "XX", "ZY", "YZI", "XZY"])
    def test_matches_matrix_exponential(self, label):
        n = len(label)
        p = PauliString.from_label(label)
        phi = 0.37
        circ = pauli_exponential(p, phi, n)
        expected = expm(1j * phi * p.to_matrix())
        got = circ.to_matrix()
        assert np.allclose(got, expected, atol=1e-10)

    def test_identity_pauli_no_gates(self):
        circ = pauli_exponential(PauliString.identity(3), 0.5, 3)
        assert len(circ) == 0

    def test_rotation_helper_matches(self, rng):
        p = PauliString.from_label("XZY")
        state = random_statevector(3, rng)
        phi = -0.81
        got = apply_pauli_rotation(state, p, phi)
        expected = expm(1j * phi * p.to_matrix()) @ state
        assert np.allclose(got, expected, atol=1e-10)


class TestCompileEvolution:
    def test_single_excitation_block(self, rng):
        gens = uccsd_generators(4, 2)
        theta = 0.23
        for _, a in gens:
            circ = compile_evolution(a, theta, 4)
            dense = expm(theta * a.to_matrix())
            state = random_statevector(4, rng)
            sim = StatevectorSimulator(4)
            sim.set_state(state)
            sim.run(circ, reset=False)
            assert np.allclose(sim.state, dense @ state, atol=1e-9)

    def test_rejects_hermitian_generator(self):
        h = PauliSum.from_label_dict({"ZZ": 1.0})
        with pytest.raises(ValueError):
            compile_evolution(h, 0.1, 2)


class TestGeneratorEvolution:
    def test_fast_path_used_for_uccsd(self):
        for _, a in uccsd_generators(4, 2):
            ev = GeneratorEvolution(a)
            assert ev.exact_factorization

    def test_apply_matches_expm(self, rng):
        for _, a in uccsd_generators(4, 2):
            ev = GeneratorEvolution(a)
            state = random_statevector(4, rng)
            theta = 0.4
            expected = expm(theta * a.to_matrix()) @ state
            assert np.allclose(ev.apply(state, theta), expected, atol=1e-9)

    def test_noncommuting_fallback(self, rng):
        a = PauliSum.from_label_dict({"XI": 1j, "ZI": 0.5j, "IY": -0.3j})
        assert not terms_commute(a)
        ev = GeneratorEvolution(a)
        assert not ev.exact_factorization
        state = random_statevector(2, rng)
        expected = expm(0.7 * a.to_matrix()) @ state
        assert np.allclose(ev.apply(state, 0.7), expected, atol=1e-8)

    def test_rejects_hermitian(self):
        with pytest.raises(ValueError):
            GeneratorEvolution(PauliSum.from_label_dict({"X": 1.0}))

    def test_unitarity(self, rng):
        for _, a in uccsd_generators(4, 2):
            ev = GeneratorEvolution(a)
            state = random_statevector(4, rng)
            out = ev.apply(state, 1.3)
            assert np.isclose(np.linalg.norm(out), 1.0, atol=1e-10)


class TestUCCSDCircuit:
    @pytest.mark.parametrize("n_so,ne", [(4, 2), (6, 2), (8, 4)])
    def test_analytic_count_matches_built(self, n_so, ne):
        ansatz = build_uccsd_circuit(n_so, ne)
        counted = count_uccsd_gates(n_so, ne)
        assert len(ansatz.circuit) == counted["total_gates"]
        assert ansatz.num_parameters == counted["num_parameters"]

    def test_two_qubit_count(self):
        ansatz = build_uccsd_circuit(4, 2)
        counted = count_uccsd_gates(4, 2)
        assert ansatz.circuit.count_2q() == counted["two_qubit_gates"]

    def test_zero_parameters_gives_hf(self):
        ansatz = build_uccsd_circuit(4, 2)
        bound = ansatz.circuit.bind({name: 0.0 for name in ansatz.circuit.parameters})
        sim = StatevectorSimulator(4)
        state = sim.run(bound)
        hf = hartree_fock_state(4, 2)
        assert np.allclose(np.abs(state), np.abs(hf), atol=1e-10)

    def test_circuit_matches_generator_evolution(self, rng):
        """The compiled circuit and the direct generator evolution agree
        (exactly, since all blocks factor without Trotter error here)."""
        ansatz = build_uccsd_circuit(4, 2)
        params = rng.normal(scale=0.1, size=ansatz.num_parameters)
        bound = ansatz.circuit.bind(list(params))
        sim = StatevectorSimulator(4)
        circuit_state = sim.run(bound).copy()

        state = hartree_fock_state(4, 2)
        for theta, (_, a) in zip(params, ansatz.generators):
            state = GeneratorEvolution(a).apply(state, float(theta))
        assert np.allclose(circuit_state, state, atol=1e-9)

    def test_counts_grow_with_qubits(self):
        counts = [count_uccsd_gates(n)["total_gates"] for n in (8, 12, 16, 20)]
        assert all(b > a for a, b in zip(counts, counts[1:]))

    def test_trotter_steps_scale_gates(self):
        c1 = count_uccsd_gates(6, 2, trotter_steps=1)
        c2 = count_uccsd_gates(6, 2, trotter_steps=2)
        ref = 2  # reference X gates are not repeated
        assert c2["total_gates"] - ref == 2 * (c1["total_gates"] - ref)


class TestPools:
    def test_uccsd_pool_size(self):
        pool = uccsd_pool(4, 2)
        assert len(pool) == 3  # 2 singles + 1 double

    def test_pool_generators_antihermitian(self):
        for op in uccsd_pool(6, 2):
            assert op.generator.is_anti_hermitian()
        for op in qubit_pool(6, 2):
            assert op.generator.is_anti_hermitian()

    def test_qubit_pool_strings_are_single(self):
        for op in qubit_pool(4, 2):
            assert op.generator.num_terms == 1

    def test_qubit_pool_no_duplicates(self):
        pool = qubit_pool(6, 2)
        keys = set()
        for op in pool:
            for _, p in op.generator:
                assert (p.x, p.z) not in keys
                keys.add((p.x, p.z))

    def test_labels_unique(self):
        pool = uccsd_pool(8, 4)
        labels = [op.label for op in pool]
        assert len(labels) == len(set(labels))
