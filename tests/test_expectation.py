"""Tests for the three expectation-evaluation strategies (paper §4.2):
direct, basis-rotated (measurement-faithful), and sampled."""

import numpy as np
import pytest

from repro.ir.circuit import Circuit
from repro.ir.pauli import PauliString, PauliSum
from repro.sim.expectation import (
    basis_change_circuit,
    diagonal_expectation,
    expectation_basis_rotated,
    expectation_direct,
    expectation_sampled,
)
from repro.sim.statevector import StatevectorSimulator
from repro.utils.linalg import random_statevector
from tests.test_statevector import random_circuit


def toy_hamiltonian() -> PauliSum:
    """The paper's Eq. 4 toy Hamiltonian: H = ZZ + XX."""
    return PauliSum.from_label_dict({"ZZ": 1.0, "XX": 1.0})


class TestBasisChange:
    def test_z_terms_need_no_gates(self):
        circ = basis_change_circuit([PauliString.from_label("ZIZ")], 3)
        assert len(circ) == 0

    def test_x_gets_hadamard(self):
        circ = basis_change_circuit([PauliString.from_label("IX")], 2)
        assert [g.name for g in circ.gates] == ["h"]
        assert circ.gates[0].qubits == (0,)

    def test_y_gets_sdg_h(self):
        circ = basis_change_circuit([PauliString.from_label("YI")], 2)
        assert [g.name for g in circ.gates] == ["sdg", "h"]

    def test_incompatible_group_rejected(self):
        with pytest.raises(ValueError):
            basis_change_circuit(
                [PauliString.from_label("XI"), PauliString.from_label("ZI")], 2
            )

    def test_rotation_diagonalizes(self, rng):
        """After the basis change, <P> must equal the diagonal formula."""
        for lbl in ["XY", "YX", "XX", "ZY"]:
            p = PauliString.from_label(lbl)
            state = random_statevector(2, rng)
            circ = basis_change_circuit([p], 2)
            sim = StatevectorSimulator(2)
            sim.set_state(state)
            sim.apply_circuit(circ)
            got = diagonal_expectation(sim.probabilities(), p.x | p.z)
            want = p.expectation(state).real
            assert np.isclose(got, want, atol=1e-10)


class TestDirect:
    def test_toy_hamiltonian_bell(self):
        """On the Bell state, <ZZ> = <XX> = 1 so <H> = 2 (Eq. 4/8)."""
        sim = StatevectorSimulator(2)
        state = sim.run(Circuit(2).h(0).cx(0, 1))
        assert np.isclose(expectation_direct(state, toy_hamiltonian()), 2.0)

    def test_zz_matrix_example(self):
        """The paper's Eq. 6 matrix: <00|ZZ|00> = 1, <01|ZZ|01> = -1."""
        h = PauliSum.from_label_dict({"ZZ": 1.0})
        e00 = np.zeros(4, dtype=complex)
        e00[0] = 1
        assert np.isclose(expectation_direct(e00, h), 1.0)
        e01 = np.zeros(4, dtype=complex)
        e01[0b01] = 1
        assert np.isclose(expectation_direct(e01, h), -1.0)

    def test_non_hermitian_rejected(self, rng):
        h = PauliSum.from_label_dict({"XY": 1j})
        state = random_statevector(2, rng)
        with pytest.raises(ValueError):
            expectation_direct(state, h)

    def test_matches_dense(self, rng):
        h = PauliSum.from_label_dict(
            {"XXI": 0.5, "IZZ": -1.2, "YIY": 0.3, "ZII": 0.9, "III": 0.1}
        )
        state = random_statevector(3, rng)
        dense = h.to_matrix()
        assert np.isclose(
            expectation_direct(state, h), np.vdot(state, dense @ state).real
        )


class TestStrategyAgreement:
    """All three strategies must agree (sampled within statistical error)."""

    @pytest.mark.parametrize("seed", [3, 7])
    def test_direct_equals_rotated(self, seed, rng):
        n = 4
        c = random_circuit(n, 25, seed)
        state = StatevectorSimulator(n).run(c).copy()
        h = PauliSum.from_label_dict(
            {"XXII": 0.5, "IZZI": -1.2, "YIIY": 0.3, "ZIII": 0.9, "IIXZ": 0.4}
        )
        direct = expectation_direct(state, h)
        rotated = expectation_basis_rotated(state, h)
        assert np.isclose(direct, rotated, atol=1e-9)

    def test_rotated_gate_count_reported(self, rng):
        state = random_statevector(2, rng)
        h = toy_hamiltonian()
        val, gates = expectation_basis_rotated(state, h, return_gate_count=True)
        # ZZ costs nothing; XX needs 2 Hadamards.
        assert gates == 2

    def test_sampled_converges(self):
        sim = StatevectorSimulator(2)
        state = sim.run(Circuit(2).h(0).cx(0, 1)).copy()
        h = toy_hamiltonian()
        est = expectation_sampled(state, h, shots_per_group=20000,
                                  rng=np.random.default_rng(0))
        assert abs(est - 2.0) < 0.05

    def test_sampled_error_scaling(self):
        """Statistical error should shrink roughly as 1/sqrt(shots)."""
        sim = StatevectorSimulator(2)
        state = sim.run(Circuit(2).ry(1.1, 0).cx(0, 1)).copy()
        h = toy_hamiltonian()
        exact = expectation_direct(state, h)

        def rms_error(shots, reps=12):
            errs = []
            for i in range(reps):
                est = expectation_sampled(
                    state, h, shots, rng=np.random.default_rng(1000 + i)
                )
                errs.append((est - exact) ** 2)
            return np.sqrt(np.mean(errs))

        e_small = rms_error(100)
        e_big = rms_error(10000)
        assert e_big < e_small  # more shots, less error

    def test_identity_term_handled(self, rng):
        state = random_statevector(2, rng)
        h = PauliSum.from_label_dict({"II": 2.5, "ZZ": 1.0})
        d = expectation_direct(state, h)
        r = expectation_basis_rotated(state, h)
        assert np.isclose(d, r, atol=1e-9)
        zz = PauliString.from_label("ZZ").expectation(state).real
        assert np.isclose(d, 2.5 + zz, atol=1e-9)
