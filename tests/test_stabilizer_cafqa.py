"""Tests for the stabilizer (tableau) simulator and the CAFQA Clifford
bootstrap (paper §6.1)."""

import math

import numpy as np
import pytest

from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h2
from repro.chem.scf import run_rhf
from repro.core.cafqa import cafqa_bootstrap_vqe, cafqa_search
from repro.ir.circuit import Circuit
from repro.ir.gates import Gate
from repro.ir.library import ghz, hardware_efficient_ansatz
from repro.ir.pauli import PauliString, PauliSum
from repro.sim.stabilizer import StabilizerSimulator, is_clifford_angle
from repro.sim.statevector import StatevectorSimulator
from repro.utils.linalg import global_phase_aligned


def random_clifford_circuit(n: int, num_gates: int, seed: int) -> Circuit:
    rng = np.random.default_rng(seed)
    names = ["h", "s", "sdg", "x", "y", "z"]
    c = Circuit(n)
    for _ in range(num_gates):
        r = rng.random()
        if r < 0.3 and n >= 2:
            c.append(Gate("cx", tuple(int(x) for x in rng.choice(n, 2, replace=False))))
        elif r < 0.4 and n >= 2:
            c.append(Gate("cz", tuple(int(x) for x in rng.choice(n, 2, replace=False))))
        elif r < 0.7:
            c.append(Gate(str(rng.choice(names)), (int(rng.integers(n)),)))
        else:
            k = int(rng.integers(4))
            axis = str(rng.choice(["rx", "ry", "rz"]))
            c.append(Gate(axis, (int(rng.integers(n)),), (k * math.pi / 2,)))
    return c


class TestCliffordAngle:
    def test_multiples_accepted(self):
        for k in range(-4, 5):
            assert is_clifford_angle(k * math.pi / 2)

    def test_generic_rejected(self):
        assert not is_clifford_angle(0.3)


class TestStabilizerSimulator:
    def test_initial_state(self):
        sim = StabilizerSimulator(3)
        for q in range(3):
            assert sim.expectation_pauli(PauliString.from_ops(3, {q: "Z"})) == 1.0

    def test_ghz_stabilizers(self):
        sim = StabilizerSimulator(3)
        sim.run(ghz(3))
        # GHZ is stabilized by XXX, ZZI, IZZ
        assert sim.expectation_pauli(PauliString.from_label("XXX")) == 1.0
        assert sim.expectation_pauli(PauliString.from_label("ZZI")) == 1.0
        # single Z has zero expectation
        assert sim.expectation_pauli(PauliString.from_label("ZII")) == 0.0

    def test_bit_flip(self):
        sim = StabilizerSimulator(2)
        sim.run(Circuit(2).x(0))
        assert sim.expectation_pauli(PauliString.from_label("IZ")) == -1.0
        assert sim.expectation_pauli(PauliString.from_label("ZI")) == 1.0

    @pytest.mark.parametrize("seed", range(8))
    def test_random_clifford_matches_statevector(self, seed):
        n = 4
        c = random_clifford_circuit(n, 30, seed)
        stab = StabilizerSimulator(n)
        stab.run(c)
        sv = StatevectorSimulator(n)
        sv.run(c)
        assert global_phase_aligned(stab.statevector(), sv.state, atol=1e-8)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_pauli_expectations(self, seed):
        n = 4
        c = random_clifford_circuit(n, 25, seed + 50)
        stab = StabilizerSimulator(n)
        stab.run(c)
        sv = StatevectorSimulator(n)
        sv.run(c)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            p = PauliString(n, int(rng.integers(1 << n)), int(rng.integers(1 << n)))
            assert np.isclose(
                stab.expectation_pauli(p), p.expectation(sv.state).real, atol=1e-8
            )

    def test_pauli_sum_expectation(self):
        sim = StabilizerSimulator(2)
        sim.run(Circuit(2).h(0).cx(0, 1))  # Bell
        h = PauliSum.from_label_dict({"ZZ": 1.0, "XX": 1.0, "ZI": 5.0})
        # Bell: <ZZ> = <XX> = 1, <ZI> = 0
        assert np.isclose(sim.expectation(h), 2.0)

    def test_non_clifford_rotation_rejected(self):
        sim = StabilizerSimulator(1)
        with pytest.raises(ValueError):
            sim.run(Circuit(1).rz(0.3, 0))

    def test_t_gate_rejected(self):
        sim = StabilizerSimulator(1)
        with pytest.raises(ValueError):
            sim.run(Circuit(1).t(0))


@pytest.fixture(scope="module")
def h2_problem():
    scf = run_rhf(h2())
    hq = build_molecular_hamiltonian(scf).to_qubit()
    return scf, hq


class TestCafqa:
    def test_finds_hf_energy_for_h2(self, h2_problem):
        """The best stabilizer state of the H2 Hamiltonian is the HF
        determinant; CAFQA must find it from the |0000> start."""
        scf, hq = h2_problem
        ansatz = hardware_efficient_ansatz(4, layers=1)
        res = cafqa_search(ansatz, hq, restarts=3)
        assert res.energy <= scf.energy + 1e-9
        assert res.improved_over_zero
        # angles all on the Clifford lattice
        for a in res.angles:
            assert is_clifford_angle(float(a))

    def test_bootstrap_improves_initialization(self, h2_problem):
        """VQE warm-started at the CAFQA point must converge to FCI,
        starting from an energy already at/below HF."""
        scf, hq = h2_problem
        e_fci = exact_ground_energy(hq, num_particles=2, sz=0)
        ansatz = hardware_efficient_ansatz(4, layers=2)
        from repro.opt.nelder_mead import NelderMead

        search, vqe_res = cafqa_bootstrap_vqe(
            ansatz, hq, optimizer=NelderMead(max_iterations=3000), restarts=2
        )
        assert search.energy <= scf.energy + 1e-9
        assert vqe_res.energy <= search.energy + 1e-9
        assert vqe_res.energy < scf.energy - 1e-3  # recovered correlation

    def test_requires_parameters(self, h2_problem):
        _, hq = h2_problem
        with pytest.raises(ValueError):
            cafqa_search(Circuit(4).h(0), hq)

    def test_search_deterministic_given_seed(self, h2_problem):
        _, hq = h2_problem
        ansatz = hardware_efficient_ansatz(4, layers=1)
        r1 = cafqa_search(ansatz, hq, restarts=2, seed=5)
        r2 = cafqa_search(ansatz, hq, restarts=2, seed=5)
        assert r1.energy == r2.energy
        assert np.array_equal(r1.angles, r2.angles)
