"""Tests for the remaining extensions: warm-started PES scans,
ensemble execution, molecular properties, and checkpointing."""

import os

import numpy as np
import pytest

from repro.chem.molecule import h2, h2o
from repro.chem.properties import AU_TO_DEBYE, dipole_moment
from repro.chem.scf import run_rhf
from repro.core.scan import scan_potential_energy_surface
from repro.hpc.distributed import DistributedStatevector
from repro.hpc.ensemble import EnsembleExecutor
from repro.ir.circuit import Circuit
from repro.ir.library import hardware_efficient_ansatz
from repro.ir.pauli import PauliSum
from repro.sim.checkpoint import (
    load_distributed,
    load_statevector,
    save_distributed,
    save_statevector,
)
from repro.sim.statevector import StatevectorSimulator
from tests.test_statevector import random_circuit


class TestScan:
    @pytest.fixture(scope="class")
    def h2_scan(self):
        lengths = [0.6, 0.75, 0.9, 1.1, 1.4]
        return scan_potential_energy_surface(h2, lengths, warm_start=True)

    def test_curve_shape(self, h2_scan):
        """H2 dissociation: minimum near 0.74 A, rising on both sides."""
        eq = h2_scan.equilibrium()
        assert 0.6 < eq.parameter < 0.95
        energies = h2_scan.energies
        assert energies[0] > eq.vqe_energy
        assert energies[-1] > eq.vqe_energy

    def test_vqe_tracks_fci_along_curve(self, h2_scan):
        for p in h2_scan.points:
            assert abs(p.vqe_energy - p.exact_energy) < 1e-5

    def test_correlation_grows_with_stretching(self, h2_scan):
        """Stretching H2 increases static correlation."""
        corr = [abs(p.correlation_energy) for p in h2_scan.points]
        assert corr[-1] > corr[0]

    def test_warm_start_flags(self, h2_scan):
        assert not h2_scan.points[0].warm_started
        assert all(p.warm_started for p in h2_scan.points[1:])

    def test_warm_start_saves_evaluations(self):
        # Stretched geometries have large doubles amplitudes, so the
        # cold (zero) start is far from the optimum while the previous
        # point's optimum is adjacent — the §6.2 warm-start payoff.
        lengths = [1.5, 1.55, 1.6, 1.65, 1.7]
        warm = scan_potential_energy_surface(
            h2, lengths, warm_start=True, compute_exact=False
        )
        cold = scan_potential_energy_surface(
            h2, lengths, warm_start=False, compute_exact=False
        )
        # identical physics ...
        assert np.allclose(warm.energies, cold.energies, atol=1e-7)
        # ... cheaper optimization after the first point (§6.2)
        warm_tail = sum(p.function_evaluations for p in warm.points[1:])
        cold_tail = sum(p.function_evaluations for p in cold.points[1:])
        assert warm_tail < cold_tail


class TestEnsemble:
    def test_evaluate_values_match_serial(self, rng):
        h = PauliSum.from_label_dict({"ZZ": 1.0, "XI": 0.5})
        circuits = []
        for seed in range(6):
            circuits.append(random_circuit(2, 10, seed))
        ex = EnsembleExecutor(num_devices=3)
        res = ex.evaluate(circuits, h)
        from repro.sim.expectation import expectation_direct

        for k, c in enumerate(circuits):
            state = StatevectorSimulator(2).run(c)
            assert np.isclose(res.values[k], expectation_direct(state, h), atol=1e-10)
        assert res.speedup > 1.5  # 6 jobs over 3 devices

    def test_distributed_gradient_matches(self, rng):
        from repro.chem.hamiltonian import build_molecular_hamiltonian
        from repro.opt.parameter_shift import parameter_shift_gradient

        hq = build_molecular_hamiltonian(run_rhf(h2())).to_qubit()
        ansatz = hardware_efficient_ansatz(4, layers=1)
        x = rng.normal(scale=0.3, size=ansatz.num_parameters)
        ex = EnsembleExecutor(num_devices=4)
        grad, res = ex.parameter_shift_gradient(ansatz, hq, x)
        serial = parameter_shift_gradient(ansatz, hq, x)
        assert np.allclose(grad, serial, atol=1e-9)
        # 2m evaluations over 4 devices: near-4x ensemble speedup
        assert res.speedup > 3.0


class TestDipole:
    @pytest.fixture(scope="class")
    def water_scf(self):
        return run_rhf(h2o())

    def test_h2o_magnitude(self, water_scf):
        _, mag = dipole_moment(water_scf)
        # literature RHF/STO-3G water dipole: ~1.71-1.73 Debye
        assert 1.5 < mag * AU_TO_DEBYE < 1.9

    def test_points_along_symmetry_axis(self, water_scf):
        mu, _ = dipole_moment(water_scf)
        # our water geometry has its C2 axis along z
        assert abs(mu[0]) < 1e-8 and abs(mu[1]) < 1e-8
        assert mu[2] > 0

    def test_origin_independent_for_neutral(self, water_scf):
        mu1, _ = dipole_moment(water_scf)
        mu2, _ = dipole_moment(water_scf, origin=(0.5, -1.0, 2.0))
        assert np.allclose(mu1, mu2, atol=1e-8)

    def test_h2_dipole_zero(self):
        _, mag = dipole_moment(run_rhf(h2()))
        assert mag < 1e-8


class TestCheckpoint:
    def test_statevector_roundtrip(self, tmp_path, rng):
        c = random_circuit(5, 30, 3)
        sim = StatevectorSimulator(5)
        sim.run(c)
        path = os.path.join(tmp_path, "ckpt.npz")
        save_statevector(sim, path)
        restored = load_statevector(path)
        assert restored.num_qubits == 5
        assert restored.gates_applied == sim.gates_applied
        assert np.allclose(restored.state, sim.state)

    def test_resume_continues_correctly(self, tmp_path):
        """Split a circuit at a checkpoint; the result must match an
        uninterrupted run."""
        c = random_circuit(4, 40, 8)
        first = Circuit(4, c.gates[:20])
        second = Circuit(4, c.gates[20:])
        sim = StatevectorSimulator(4)
        sim.run(first)
        path = os.path.join(tmp_path, "mid.npz")
        save_statevector(sim, path)
        resumed = load_statevector(path)
        resumed.apply_circuit(second)
        full = StatevectorSimulator(4)
        full.run(c)
        assert np.allclose(resumed.state, full.state, atol=1e-10)

    def test_corruption_detected(self, tmp_path):
        sim = StatevectorSimulator(3)
        path = os.path.join(tmp_path, "bad.npz")
        sim.state[0] = 0.5  # denormalized on purpose
        save_statevector(sim, path)
        with pytest.raises(ValueError):
            load_statevector(path)

    def test_distributed_roundtrip(self, tmp_path):
        c = random_circuit(6, 25, 4)
        dsv = DistributedStatevector(6, 4)
        dsv.run(c)
        directory = os.path.join(tmp_path, "dist")
        save_distributed(dsv, directory)
        restored = load_distributed(directory)
        assert restored.layout == dsv.layout
        assert np.allclose(restored.gather(), dsv.gather(), atol=1e-12)

    def test_distributed_resume(self, tmp_path):
        c = random_circuit(6, 30, 5)
        first = Circuit(6, c.gates[:15])
        second = Circuit(6, c.gates[15:])
        dsv = DistributedStatevector(6, 2)
        dsv.run(first)
        directory = os.path.join(tmp_path, "dist2")
        save_distributed(dsv, directory)
        resumed = load_distributed(directory)
        resumed.run(second, reset=False)
        ref = StatevectorSimulator(6).run(c).copy()
        assert np.allclose(resumed.gather(), ref, atol=1e-9)
