"""Test suite for the repro package.

This file makes ``tests`` an importable package so helper utilities
(e.g. ``tests.test_statevector.random_circuit``) can be shared across
test modules under both ``pytest`` and ``python -m pytest``.
"""
