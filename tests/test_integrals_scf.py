"""Tests for the Gaussian-integral engine, SCF, and MP2 against known
reference values and structural invariants."""

import numpy as np
import pytest

from repro.chem.basis import build_basis, primitive_norm
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.integrals import (
    boys,
    core_hamiltonian,
    eri_tensor,
    kinetic_matrix,
    nuclear_attraction_matrix,
    overlap_matrix,
)
from repro.chem.mo import transform_to_mo
from repro.chem.molecule import Molecule, h2, h2o, h4_chain, lih
from repro.chem.mp2 import run_mp2
from repro.chem.scf import run_rhf


class TestBoys:
    def test_f0_zero(self):
        assert np.isclose(boys(0, 0.0), 1.0)

    def test_f0_analytic(self):
        # F_0(x) = sqrt(pi/(4x)) erf(sqrt(x))
        from scipy.special import erf

        for x in (0.1, 1.0, 5.0, 20.0):
            expected = 0.5 * np.sqrt(np.pi / x) * erf(np.sqrt(x))
            assert np.isclose(boys(0, x), expected, rtol=1e-10)

    def test_fn_zero(self):
        for n in range(5):
            assert np.isclose(boys(n, 0.0), 1.0 / (2 * n + 1))

    def test_downward_recursion(self):
        # F_{n}(x) = (2x F_{n+1}(x) + exp(-x)) / (2n + 1)
        x = 1.7
        for n in range(4):
            lhs = boys(n, x)
            rhs = (2 * x * boys(n + 1, x) + np.exp(-x)) / (2 * n + 1)
            assert np.isclose(lhs, rhs, rtol=1e-10)


class TestBasis:
    def test_h_has_one_function(self):
        bfs = build_basis(h2())
        assert len(bfs) == 2
        assert all(f.angular_momentum == 0 for f in bfs)

    def test_o_has_five_functions(self):
        bfs = build_basis(Molecule.from_angstrom([("O", (0, 0, 0))]))
        # 1s, 2s, 2px, 2py, 2pz
        assert len(bfs) == 5
        assert sum(1 for f in bfs if f.angular_momentum == 1) == 3

    def test_normalized_contractions(self):
        bfs = build_basis(h2o())
        s = overlap_matrix(bfs)
        assert np.allclose(np.diag(s), 1.0, atol=1e-10)

    def test_primitive_norm_s(self):
        # <g|g> = 1 for a normalized s primitive
        a = 0.8
        n = primitive_norm(a, (0, 0, 0))
        self_overlap = n * n * (np.pi / (2 * a)) ** 1.5
        assert np.isclose(self_overlap, 1.0)

    def test_unknown_element(self):
        with pytest.raises(ValueError):
            build_basis(Molecule.from_angstrom([("Na", (0, 0, 0))]))  # type: ignore

    def test_unknown_basis(self):
        with pytest.raises(ValueError):
            build_basis(h2(), "cc-pvdz")


class TestIntegralInvariants:
    @pytest.fixture(scope="class")
    def water(self):
        mol = h2o()
        bfs = build_basis(mol)
        return mol, bfs

    def test_overlap_spd(self, water):
        _, bfs = water
        s = overlap_matrix(bfs)
        assert np.allclose(s, s.T)
        assert np.min(np.linalg.eigvalsh(s)) > 0

    def test_kinetic_positive(self, water):
        _, bfs = water
        t = kinetic_matrix(bfs)
        assert np.allclose(t, t.T)
        assert np.min(np.linalg.eigvalsh(t)) > 0

    def test_nuclear_negative_diagonal(self, water):
        mol, bfs = water
        v = nuclear_attraction_matrix(bfs, mol)
        assert np.allclose(v, v.T)
        assert np.all(np.diag(v) < 0)

    def test_eri_eightfold_symmetry(self, water):
        _, bfs = water
        eri = eri_tensor(bfs)
        assert np.allclose(eri, eri.transpose(1, 0, 2, 3), atol=1e-10)
        assert np.allclose(eri, eri.transpose(0, 1, 3, 2), atol=1e-10)
        assert np.allclose(eri, eri.transpose(2, 3, 0, 1), atol=1e-10)

    def test_eri_diagonal_positive(self, water):
        _, bfs = water
        eri = eri_tensor(bfs)
        n = len(bfs)
        for i in range(n):
            assert eri[i, i, i, i] > 0


class TestSCF:
    def test_h2_energy(self):
        res = run_rhf(h2())
        assert res.converged
        assert np.isclose(res.energy, -1.116684, atol=2e-5)

    def test_h2o_energy(self):
        res = run_rhf(h2o())
        assert res.converged
        assert np.isclose(res.energy, -74.96293, atol=1e-4)

    def test_lih_energy(self):
        res = run_rhf(lih())
        assert res.converged
        # STO-3G LiH at r = 1.5949 A: about -7.862 Ha
        assert -7.90 < res.energy < -7.82

    def test_h2_virial_ballpark(self):
        """-V/T should be near 2 at equilibrium (virial theorem)."""
        res = run_rhf(h2())
        bfs = res.basis
        t = kinetic_matrix(bfs)
        n_occ = res.num_occupied
        dm = 2.0 * res.mo_coeff[:, :n_occ] @ res.mo_coeff[:, :n_occ].T
        kinetic = float(np.einsum("pq,pq->", dm, t))
        potential = res.energy - kinetic
        assert 1.5 < -potential / kinetic < 2.5

    def test_open_shell_rejected(self):
        mol = Molecule.from_angstrom([("H", (0, 0, 0))])
        with pytest.raises(ValueError):
            run_rhf(mol)

    def test_orbital_count(self):
        res = run_rhf(h2o())
        assert res.num_orbitals == 7
        assert res.num_occupied == 5

    def test_mo_orthonormal(self):
        res = run_rhf(h2o())
        c, s = res.mo_coeff, res.overlap
        assert np.allclose(c.T @ s @ c, np.eye(7), atol=1e-8)

    def test_nuclear_repulsion_h2(self):
        # Two protons at 0.7414 A = 1.40104 Bohr: 1/r = 0.7137 Ha
        assert np.isclose(h2().nuclear_repulsion(), 0.71375, atol=2e-4)


class TestMOTransformAndMP2:
    def test_mo_fock_diagonal(self):
        """In the MO basis the Fock matrix is diagonal with the orbital
        energies — an end-to-end check of the transformation."""
        res = run_rhf(h2o())
        mo = transform_to_mo(res)
        n_occ = mo.num_occupied
        f = mo.h_mo.copy()
        for p in range(mo.num_orbitals):
            for q in range(mo.num_orbitals):
                for i in range(n_occ):
                    f[p, q] += 2.0 * mo.eri_mo[p, q, i, i] - mo.eri_mo[p, i, i, q]
        assert np.allclose(f, np.diag(res.mo_energies), atol=1e-7)

    def test_hf_energy_from_mo_integrals(self):
        res = run_rhf(h2o())
        mh = build_molecular_hamiltonian(res)
        assert np.isclose(mh.hartree_fock_energy(), res.energy, atol=1e-8)

    def test_h2_mp2_energy(self):
        res = run_rhf(h2())
        mh = build_molecular_hamiltonian(res)
        mp2 = run_mp2(mh, res.mo_energies)
        # Literature H2/STO-3G MP2 correlation: about -0.01310 Ha
        assert np.isclose(mp2.correlation_energy, -0.01310, atol=3e-4)
        assert mp2.correlation_energy < 0

    def test_h2o_mp2_negative_and_bounded(self):
        res = run_rhf(h2o())
        mh = build_molecular_hamiltonian(res)
        mp2 = run_mp2(mh, res.mo_energies)
        assert -0.1 < mp2.correlation_energy < -0.01

    def test_mp2_amplitude_antisymmetry(self):
        res = run_rhf(h4_chain())
        mh = build_molecular_hamiltonian(res)
        mp2 = run_mp2(mh, res.mo_energies)
        t2 = mp2.t2
        assert np.allclose(t2, -t2.transpose(1, 0, 2, 3), atol=1e-10)
        assert np.allclose(t2, -t2.transpose(0, 1, 3, 2), atol=1e-10)
