"""Tests for VQD excited states, UCCGSD, error mitigation (ZNE +
readout), and variance-weighted shot allocation."""

import numpy as np
import pytest

from repro.chem.fci import sector_indices
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h2
from repro.chem.reference import hartree_fock_state
from repro.chem.scf import run_rhf
from repro.chem.uccsd import uccsd_excitations, uccsd_generators
from repro.core.shots import allocate_shots, sampled_energy_with_allocation
from repro.core.vqd import run_vqd
from repro.ir.circuit import Circuit
from repro.ir.pauli import PauliSum
from repro.sim.expectation import expectation_direct
from repro.sim.mitigation import (
    ReadoutErrorModel,
    fold_circuit,
    mitigate_counts,
    zne_expectation,
)
from repro.sim.noise import DepolarizingChannel, NoiseModel
from repro.sim.statevector import StatevectorSimulator


@pytest.fixture(scope="module")
def h2_problem():
    scf = run_rhf(h2())
    hq = build_molecular_hamiltonian(scf).to_qubit()
    mat = hq.to_sparse()
    keep = sector_indices(4, num_particles=2, sz=0)
    spectrum = np.linalg.eigvalsh(mat[np.ix_(keep, keep)].toarray())
    return hq, spectrum


class TestUCCGSD:
    def test_generalized_superset_of_standard(self):
        s_std, d_std = uccsd_excitations(6, 2)
        s_gen, d_gen = uccsd_excitations(6, 2, generalized=True)
        assert set(s_std) <= set(s_gen)
        assert len(d_gen) >= len(d_std)

    def test_generalized_generators_antihermitian(self):
        for _, a in uccsd_generators(4, 2, generalized=True):
            assert a.is_anti_hermitian()

    def test_no_duplicate_generators(self):
        # Distinct pairings of the same 4 orbitals share Pauli strings
        # but differ in sign patterns, so compare full (key, coeff)
        # signatures (up to overall sign: A and -A are redundant).
        gens = uccsd_generators(6, 2, generalized=True)
        sigs = set()
        for _, g in gens:
            items = tuple(sorted((k, complex(v)) for k, v in g.terms.items()))
            neg = tuple(sorted((k, -complex(v)) for k, v in g.terms.items()))
            assert items not in sigs and neg not in sigs
            sigs.add(items)


class TestVQD:
    def test_h2_lowest_three_states(self, h2_problem):
        hq, spectrum = h2_problem
        gens = [a for _, a in uccsd_generators(4, 2, generalized=True)]
        res = run_vqd(
            hq, gens, hartree_fock_state(4, 2), num_states=3, restarts=3
        )
        assert np.allclose(res.energies, spectrum[:3], atol=1e-5)

    def test_states_orthogonal(self, h2_problem):
        hq, _ = h2_problem
        gens = [a for _, a in uccsd_generators(4, 2, generalized=True)]
        res = run_vqd(hq, gens, hartree_fock_state(4, 2), num_states=2)
        overlap = abs(np.vdot(res.states[0], res.states[1]))
        assert overlap < 1e-3

    def test_gaps_positive(self, h2_problem):
        hq, _ = h2_problem
        gens = [a for _, a in uccsd_generators(4, 2, generalized=True)]
        res = run_vqd(hq, gens, hartree_fock_state(4, 2), num_states=3, restarts=3)
        assert all(g > 0 for g in res.gaps)

    def test_single_state_equals_vqe(self, h2_problem):
        hq, spectrum = h2_problem
        gens = [a for _, a in uccsd_generators(4, 2)]
        res = run_vqd(hq, gens, hartree_fock_state(4, 2), num_states=1)
        assert abs(res.energies[0] - spectrum[0]) < 1e-6

    def test_bad_num_states(self, h2_problem):
        hq, _ = h2_problem
        with pytest.raises(ValueError):
            run_vqd(hq, [], hartree_fock_state(4, 2), num_states=0)


class TestFolding:
    def test_fold_preserves_unitary(self):
        c = Circuit(2).h(0).cx(0, 1).rz(0.3, 1)
        for s in (1, 3, 5):
            folded = fold_circuit(c, s)
            assert len(folded) == s * len(c)
            assert np.allclose(folded.to_matrix(), c.to_matrix(), atol=1e-9)

    def test_even_scale_rejected(self):
        with pytest.raises(ValueError):
            fold_circuit(Circuit(1).h(0), 2)


class TestZNE:
    def test_extrapolation_recovers_accuracy(self, h2_problem):
        """ZNE must land closer to the noiseless value than the raw
        noisy expectation does."""
        hq, _ = h2_problem
        from repro.chem.uccsd import build_uccsd_circuit

        ansatz = build_uccsd_circuit(4, 2)
        bound = ansatz.circuit.bind([0.0, 0.0, -0.107])  # near-optimal
        exact = expectation_direct(
            StatevectorSimulator(4).run(bound), hq
        )
        noise = NoiseModel().add_all_qubit_channel(DepolarizingChannel(2e-4))
        mitigated, values = zne_expectation(
            bound, hq, noise, scale_factors=(1, 3, 5)
        )
        raw_err = abs(values[1] - exact)
        zne_err = abs(mitigated - exact)
        assert zne_err < raw_err / 2
        # noise monotonically degrades with folding
        assert abs(values[5] - exact) > abs(values[1] - exact)

    def test_needs_two_scales(self, h2_problem):
        hq, _ = h2_problem
        noise = NoiseModel().add_all_qubit_channel(DepolarizingChannel(1e-3))
        with pytest.raises(ValueError):
            zne_expectation(Circuit(4).h(0), hq, noise, scale_factors=(1,))


class TestReadoutMitigation:
    def test_roundtrip(self, rng):
        model = ReadoutErrorModel(p01=np.array([0.02, 0.05]), p10=np.array([0.03, 0.01]))
        true = rng.random(4)
        true /= true.sum()
        noisy = model.apply_to_probabilities(true)
        recovered = model.correct_probabilities(noisy)
        assert np.allclose(recovered, true, atol=1e-10)

    def test_noisy_distribution_differs(self):
        model = ReadoutErrorModel(p01=np.array([0.1]), p10=np.array([0.1]))
        true = np.array([1.0, 0.0])
        noisy = model.apply_to_probabilities(true)
        assert np.isclose(noisy[1], 0.1)

    def test_mitigate_counts(self, rng):
        model = ReadoutErrorModel(p01=np.array([0.05, 0.05]), p10=np.array([0.05, 0.05]))
        # true state |11>: readout flips each bit with 5%
        shots = 200000
        flips0 = rng.random(shots) < 0.05
        flips1 = rng.random(shots) < 0.05
        outcomes = (1 - flips0).astype(int) | (((1 - flips1).astype(int)) << 1)
        counts: dict = {}
        for o in outcomes:
            counts[int(o)] = counts.get(int(o), 0) + 1
        probs = mitigate_counts(counts, model)
        assert probs[0b11] > 0.99

    def test_validation(self):
        with pytest.raises(ValueError):
            ReadoutErrorModel(p01=np.array([1.5]), p10=np.array([0.0]))
        with pytest.raises(ValueError):
            ReadoutErrorModel(p01=np.array([0.1, 0.1]), p10=np.array([0.1]))


class TestShotAllocation:
    def test_sqrt_weighting(self):
        shots = allocate_shots([100.0, 1.0], 1000, minimum=10)
        assert sum(shots) == 1000
        # sqrt(100):sqrt(1) = 10:1 split of the budget above minimum
        assert shots[0] > 8 * shots[1] / 2
        assert shots[0] > shots[1]

    def test_minimum_respected(self):
        shots = allocate_shots([1000.0, 0.0, 0.0], 300, minimum=50)
        assert all(s >= 50 for s in shots)
        assert sum(shots) == 300

    def test_budget_too_small(self):
        with pytest.raises(ValueError):
            allocate_shots([1.0, 1.0], 10, minimum=16)

    def test_zero_weights_fall_back_uniform(self):
        shots = allocate_shots([0.0, 0.0], 100, minimum=10)
        assert sum(shots) == 100
        assert abs(shots[0] - shots[1]) <= 1

    def test_variance_policy_beats_uniform(self, h2_problem):
        """Weighted allocation should reduce RMS error at equal budget."""
        hq, _ = h2_problem
        from repro.chem.uccsd import build_uccsd_circuit

        ansatz = build_uccsd_circuit(4, 2)
        bound = ansatz.circuit.bind([0.05, -0.02, -0.1])
        state = StatevectorSimulator(4).run(bound).copy()
        exact = expectation_direct(state, hq)

        def rms(policy, reps=20):
            errs = []
            for i in range(reps):
                est = sampled_energy_with_allocation(
                    state, hq, 2000, policy=policy,
                    rng=np.random.default_rng(500 + i),
                )
                errs.append((est - exact) ** 2)
            return float(np.sqrt(np.mean(errs)))

        assert rms("variance") < rms("uniform") * 1.05  # at least on par
