"""Tests for automatic active-space selection, controlled evolution,
gate-level QPE, and general commuting grouping."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.chem.active_space import mp2_natural_occupations, select_active_space
from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h2, h2o, lih
from repro.chem.reference import hartree_fock_circuit
from repro.chem.scf import run_rhf
from repro.core.qpe import run_qpe_trotter
from repro.ir.library import controlled_evolution, controlled_pauli_exponential
from repro.ir.pauli import PauliString, PauliSum


@pytest.fixture(scope="module")
def h2o_system():
    scf = run_rhf(h2o())
    return scf, build_molecular_hamiltonian(scf)


class TestActiveSpaceSelection:
    def test_natural_occupations_physical(self, h2o_system):
        scf, mh = h2o_system
        occ = mp2_natural_occupations(mh, scf.mo_energies)
        assert occ.shape == (7,)
        # occupied stay near 2, virtuals near 0, everything in [0, 2]
        assert np.all(occ >= -1e-9) and np.all(occ <= 2 + 1e-9)
        assert np.all(occ[:5] > 1.9)
        assert np.all(occ[5:] < 0.1)

    def test_particle_number_conserved(self, h2o_system):
        """MP2 density depletion equals virtual population."""
        scf, mh = h2o_system
        occ = mp2_natural_occupations(mh, scf.mo_energies)
        assert np.isclose(occ.sum(), mh.num_electrons, atol=1e-10)

    def test_reproduces_paper_h2o_partition(self, h2o_system):
        """The automatic selection must recover the paper's hand-picked
        Fig. 5 partition: O 1s core, 6 active orbitals, 8 electrons."""
        scf, mh = h2o_system
        sel = select_active_space(mh, scf.mo_energies, 6)
        assert sel.core_orbitals == [0]
        assert sel.active_orbitals == [1, 2, 3, 4, 5, 6]
        assert sel.frozen_virtuals == []
        assert sel.num_active_electrons == 8

    def test_core_is_deepest_orbital(self, h2o_system):
        """Whatever the size, the O 1s (most inert) freezes first."""
        scf, mh = h2o_system
        for size in (4, 5, 6):
            sel = select_active_space(mh, scf.mo_energies, size)
            assert 0 in sel.core_orbitals

    def test_lih_partition_sane(self):
        scf = run_rhf(lih())
        mh = build_molecular_hamiltonian(scf)
        sel = select_active_space(mh, scf.mo_energies, 5)
        assert sel.core_orbitals == [0]  # Li 1s frozen
        assert sel.num_active_electrons == 2

    def test_bad_size_rejected(self, h2o_system):
        scf, mh = h2o_system
        with pytest.raises(ValueError):
            select_active_space(mh, scf.mo_energies, 0)
        with pytest.raises(ValueError):
            select_active_space(mh, scf.mo_energies, 99)


class TestControlledEvolution:
    def test_controlled_pauli_exponential(self):
        p = PauliString.from_label("XZ")  # qubits 0 (Z), 1 (X)
        phi = 0.63
        circ = controlled_pauli_exponential(p, phi, control=2, num_qubits=3)
        u = circ.to_matrix()
        expected = np.eye(8, dtype=complex)
        expected[4:, 4:] = expm(1j * phi * p.to_matrix())
        assert np.allclose(u, expected, atol=1e-10)

    def test_identity_becomes_controlled_phase(self):
        p = PauliString.identity(2)
        circ = controlled_pauli_exponential(p, 0.4, control=2, num_qubits=3)
        assert len(circ) == 1
        assert circ.gates[0].name == "p"
        assert circ.gates[0].qubits == (2,)

    def test_control_overlap_rejected(self):
        p = PauliString.from_label("XZ")
        with pytest.raises(ValueError):
            controlled_pauli_exponential(p, 0.1, control=0, num_qubits=2)

    def test_controlled_evolution_block_diagonal(self):
        h = PauliSum.from_label_dict({"ZZ": 0.4, "II": 0.3, "XI": -0.2})
        t = 0.8
        circ = controlled_evolution(h, t, control=2, num_qubits=3, steps=8)
        u = circ.to_matrix()
        # control=0 block: identity
        assert np.allclose(u[:4, :4], np.eye(4), atol=1e-10)
        assert np.allclose(u[:4, 4:], 0, atol=1e-10)
        # control=1 block: exp(iHt) up to Trotter error
        target = expm(1j * t * h.to_matrix())
        assert np.linalg.norm(u[4:, 4:] - target) < 0.02


class TestGateLevelQPE:
    def test_h2_within_resolution(self):
        scf = run_rhf(h2())
        hq = build_molecular_hamiltonian(scf).to_qubit()
        e_fci = exact_ground_energy(hq, num_particles=2, sz=0)
        res = run_qpe_trotter(
            hq,
            hartree_fock_circuit(4, 2),
            num_ancillas=7,
            energy_window=(-2.0, 0.0),
            trotter_steps=2,
        )
        # Trotter bias + resolution: allow two ticks.
        assert abs(res.energy - e_fci) <= 2 * res.resolution
        assert res.success_probability > 0.25

    def test_eigenstate_sharp(self):
        h = PauliSum.from_label_dict({"ZI": 0.5, "IZ": 0.25})
        from repro.ir.circuit import Circuit

        prep = Circuit(2).x(0).x(1)  # |11>, eigenvalue -0.75
        res = run_qpe_trotter(
            h, prep, num_ancillas=6, energy_window=(-1.0, 1.0), trotter_steps=1
        )
        assert abs(res.energy - (-0.75)) <= res.resolution
        assert res.success_probability > 0.8


class TestGeneralCommutingGroups:
    def test_fewer_groups_than_qwc(self, h2o_system):
        """General commutation admits larger groups than qubit-wise."""
        scf, mh = h2o_system
        hq = mh.active_space([0], [1, 2, 3, 4, 5, 6]).to_qubit()
        qwc = hq.group_qubitwise_commuting()
        gen = hq.group_general_commuting()
        assert len(gen) < len(qwc)

    def test_groups_internally_commute(self):
        h = PauliSum.from_label_dict(
            {"XX": 1.0, "YY": 1.0, "ZZ": 1.0, "XI": 0.5, "IZ": 0.2}
        )
        for group in h.group_general_commuting():
            for i, (_, a) in enumerate(group):
                for _, b in group[i + 1:]:
                    assert a.commutes_with(b)

    def test_all_terms_covered(self):
        h = PauliSum.from_label_dict(
            {"XX": 1.0, "YY": 1.0, "ZZ": 1.0, "XZ": 0.5, "ZX": 0.2}
        )
        groups = h.group_general_commuting()
        assert sum(len(g) for g in groups) == h.num_terms
