"""Tests for the gate library and circuit IR."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.circuit import Circuit
from repro.ir.gates import GATE_SET, Gate, Parameter, gate_matrix
from repro.utils.linalg import is_unitary

angles = st.floats(min_value=-6.3, max_value=6.3, allow_nan=False)


class TestGateMatrices:
    @given(st.sampled_from(sorted(GATE_SET)), st.data())
    def test_all_gates_unitary(self, name, data):
        _, npar, _ = GATE_SET[name]
        params = [data.draw(angles) for _ in range(npar)]
        assert is_unitary(gate_matrix(name, *params))

    def test_cx_truth_table(self):
        # control = q0 (low bit), target = q1 (high bit)
        m = gate_matrix("cx")
        # |01> (q0=1, q1=0) -> |11>
        v = np.zeros(4)
        v[0b01] = 1
        assert np.argmax(np.abs(m @ v)) == 0b11
        # |00> fixed
        v = np.zeros(4)
        v[0] = 1
        assert np.argmax(np.abs(m @ v)) == 0

    def test_rz_eigenphases(self):
        theta = 0.7
        m = gate_matrix("rz", theta)
        assert np.isclose(m[0, 0], np.exp(-1j * theta / 2))
        assert np.isclose(m[1, 1], np.exp(1j * theta / 2))

    @given(angles)
    def test_rotation_inverses(self, theta):
        for name in ("rx", "ry", "rz", "rzz", "rxx", "ryy"):
            nq = GATE_SET[name][0]
            qubits = tuple(range(nq))
            g = Gate(name, qubits, (theta,))
            prod = g.dagger().to_matrix() @ g.to_matrix()
            assert np.allclose(prod, np.eye(2**nq), atol=1e-10)

    def test_dagger_named(self):
        assert Gate("s", (0,)).dagger().name == "sdg"
        assert Gate("t", (0,)).dagger().name == "tdg"
        assert Gate("h", (0,)).dagger().name == "h"

    def test_gate_validation(self):
        with pytest.raises(ValueError):
            Gate("cx", (0,))  # wrong arity
        with pytest.raises(ValueError):
            Gate("rx", (0,))  # missing parameter
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))  # duplicate qubits
        with pytest.raises(ValueError):
            Gate("nope", (0,))  # unknown without matrix


class TestParameter:
    def test_affine_arithmetic(self):
        p = Parameter("theta")
        q = 2.0 * p + 1.0
        assert q.bind(3.0) == 7.0
        assert (-p).bind(2.0) == -2.0

    def test_binding_gate(self):
        g = Gate("rz", (0,), (Parameter("a", coeff=0.5),))
        b = g.bound({"a": np.pi})
        assert np.isclose(float(b.params[0]), np.pi / 2)


class TestCircuit:
    def test_builder_chaining(self):
        c = Circuit(2).h(0).cx(0, 1)
        assert len(c) == 2
        assert c.depth() == 2
        assert c.count_2q() == 1

    def test_bell_state_matrix(self):
        c = Circuit(2).h(0).cx(0, 1)
        v = c.to_matrix()[:, 0]
        expected = np.zeros(4, dtype=complex)
        expected[0b00] = expected[0b11] = 1 / np.sqrt(2)
        assert np.allclose(v, expected)

    def test_inverse_is_identity(self):
        c = Circuit(3).h(0).cx(0, 1).rz(0.3, 1).ry(1.1, 2).cx(1, 2).t(0)
        u = c.to_matrix()
        uinv = c.inverse().to_matrix()
        assert np.allclose(uinv @ u, np.eye(8), atol=1e-10)

    def test_parameters_order_and_bind(self):
        a, b = Parameter("a"), Parameter("b")
        c = Circuit(1).rz(a, 0).ry(b, 0).rz(2.0 * a, 0)
        assert c.parameters == ["a", "b"]
        bound = c.bind([0.5, 1.5])
        assert not bound.num_parameters
        assert np.isclose(float(bound.gates[2].params[0]), 1.0)

    def test_bind_errors(self):
        c = Circuit(1).rz(Parameter("a"), 0)
        with pytest.raises(ValueError):
            c.bind([])
        with pytest.raises(ValueError):
            c.bind({"b": 1.0})

    def test_out_of_range_gate(self):
        with pytest.raises(ValueError):
            Circuit(1).cx(0, 1)

    def test_compose(self):
        c1 = Circuit(2).h(0)
        c2 = Circuit(2).cx(0, 1)
        c1.compose(c2)
        assert len(c1) == 2

    def test_gate_counts(self):
        c = Circuit(2).h(0).h(1).cx(0, 1)
        assert c.gate_counts() == {"h": 2, "cx": 1}

    def test_depth_parallel_gates(self):
        c = Circuit(4).h(0).h(1).h(2).h(3)
        assert c.depth() == 1
