"""Property-based correctness of the compiled-observable engine.

The x-mask-batched :class:`repro.ir.compiled.CompiledPauliSum` must be
numerically indistinguishable (to 1e-12) from the naive one-pass-per-
term reference on random observables and random states, and the caches
layered on :class:`PauliSum` (compiled form, qubit-wise-commuting
grouping) must invalidate exactly when the sum mutates.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.compiled import CompiledPauliSum, compile_observable
from repro.ir.pauli import PauliString, PauliSum
from repro.sim.batched import BatchedStatevectorSimulator
from repro.utils.bitops import basis_indices, indices_1q, indices_2q
from repro.utils.linalg import random_statevector

coeffs = st.complex_numbers(
    min_magnitude=0.1, max_magnitude=2.0, allow_nan=False, allow_infinity=False
)


@st.composite
def sized_pauli_sums(draw, min_qubits=2, max_qubits=8, max_terms=8):
    n = draw(st.integers(min_qubits, max_qubits))
    out = PauliSum.zero(n)
    for _ in range(draw(st.integers(1, max_terms))):
        x = draw(st.integers(0, (1 << n) - 1))
        z = draw(st.integers(0, (1 << n) - 1))
        out.add_term(PauliString(n, x, z), draw(coeffs))
    return out


def naive_apply(h: PauliSum, state: np.ndarray) -> np.ndarray:
    """Reference H @ state: one PauliString application per term."""
    out = np.zeros_like(state, dtype=np.complex128)
    for (x, z), c in h.terms.items():
        out += c * PauliString(h.num_qubits, x, z).apply(state)
    return out


def hermitized(h: PauliSum) -> PauliSum:
    return h + PauliSum(
        h.num_qubits, {k: v.conjugate() for k, v in h.terms.items()}
    )


# -- compiled numerics vs the per-term reference ----------------------------


class TestCompiledMatchesNaive:
    @given(sized_pauli_sums(), st.integers(0, 2**32 - 1))
    @settings(max_examples=80)
    def test_apply(self, h, seed):
        state = random_statevector(h.num_qubits, np.random.default_rng(seed))
        compiled = CompiledPauliSum(h)
        assert np.allclose(compiled.apply(state), naive_apply(h, state), atol=1e-12)

    @given(sized_pauli_sums(), st.integers(0, 2**32 - 1))
    @settings(max_examples=80)
    def test_expectation(self, h, seed):
        state = random_statevector(h.num_qubits, np.random.default_rng(seed))
        expected = complex(np.vdot(state, naive_apply(h, state)))
        got = CompiledPauliSum(h).expectation(state)
        assert abs(got - expected) < 1e-12

    @given(sized_pauli_sums(max_qubits=6), st.integers(0, 2**32 - 1))
    @settings(max_examples=60)
    def test_batched_expectations(self, h, seed):
        rng = np.random.default_rng(seed)
        states = np.stack(
            [random_statevector(h.num_qubits, rng) for _ in range(3)]
        )
        got = CompiledPauliSum(h).expectations(states)
        for b in range(states.shape[0]):
            expected = complex(np.vdot(states[b], naive_apply(h, states[b])))
            assert abs(got[b] - expected) < 1e-12

    @given(sized_pauli_sums(max_qubits=5), st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_batched_simulator_expectations(self, h, seed):
        """BatchedStatevectorSimulator.expectations == per-row naive."""
        herm = hermitized(h)
        rng = np.random.default_rng(seed)
        sim = BatchedStatevectorSimulator(h.num_qubits, batch_size=4)
        for b in range(sim.batch_size):
            sim.states[b] = random_statevector(h.num_qubits, rng)
        got = sim.expectations(herm)
        assert got.dtype == np.float64
        for b in range(sim.batch_size):
            expected = np.vdot(sim.states[b], naive_apply(herm, sim.states[b]))
            assert abs(got[b] - expected.real) < 1e-12

    @given(sized_pauli_sums())
    @settings(max_examples=40)
    def test_pass_count_never_exceeds_terms(self, h):
        compiled = CompiledPauliSum(h)
        assert 1 <= compiled.num_passes <= h.num_terms
        distinct_x = {x for (x, _z) in h.terms.keys()}
        assert compiled.num_passes == len(distinct_x)

    def test_empty_sum(self):
        h = PauliSum.zero(3)
        compiled = CompiledPauliSum(h)
        state = random_statevector(3, np.random.default_rng(0))
        assert compiled.num_passes == 0
        assert np.allclose(compiled.apply(state), 0.0)
        assert compiled.expectation(state) == 0.0

    def test_diagonal_only_is_gather_free(self):
        h = PauliSum.zero(4)
        h.add_term(PauliString(4, 0, 0b0101), 0.5)
        h.add_term(PauliString(4, 0, 0b1010), -1.25)
        compiled = CompiledPauliSum(h)
        assert compiled.is_diagonal
        assert compiled.num_passes == 1
        assert compiled.gathers == [None]
        state = random_statevector(4, np.random.default_rng(1))
        assert np.allclose(compiled.apply(state), naive_apply(h, state), atol=1e-12)


# -- compile_observable memoization ------------------------------------------


class TestCompileCache:
    def test_cache_identity_on_repeat(self):
        h = PauliSum.zero(3)
        h.add_term(PauliString(3, 0b001, 0b010), 1.0)
        first = compile_observable(h)
        assert compile_observable(h) is first

    def test_compiled_passthrough(self):
        h = PauliSum.zero(2)
        h.add_term(PauliString(2, 0b01, 0b00), 1.0)
        compiled = compile_observable(h)
        assert compile_observable(compiled) is compiled

    def test_add_term_invalidates(self):
        h = PauliSum.zero(3)
        h.add_term(PauliString(3, 0b001, 0b000), 1.0)
        stale = compile_observable(h)
        h.add_term(PauliString(3, 0b110, 0b011), 0.5)
        fresh = compile_observable(h)
        assert fresh is not stale
        state = random_statevector(3, np.random.default_rng(2))
        assert np.allclose(fresh.apply(state), naive_apply(h, state), atol=1e-12)

    def test_chop_invalidates_when_terms_die(self):
        h = PauliSum.zero(3)
        h.add_term(PauliString(3, 0b001, 0b000), 1.0)
        h.add_term(PauliString(3, 0b010, 0b001), 1e-14)
        stale = compile_observable(h)
        h.chop(1e-10)
        fresh = compile_observable(h)
        assert fresh is not stale
        assert fresh.num_terms == 1

    def test_noop_chop_keeps_cache(self):
        h = PauliSum.zero(3)
        h.add_term(PauliString(3, 0b001, 0b000), 1.0)
        first = compile_observable(h)
        h.chop(1e-10)  # removes nothing
        assert compile_observable(h) is first

    @given(sized_pauli_sums(max_qubits=5), st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_mutate_recompile_matches_naive(self, h, seed):
        rng = np.random.default_rng(seed)
        compile_observable(h)  # populate the cache, then mutate
        x = int(rng.integers(0, 1 << h.num_qubits))
        z = int(rng.integers(0, 1 << h.num_qubits))
        h.add_term(PauliString(h.num_qubits, x, z), 0.75 - 0.25j)
        state = random_statevector(h.num_qubits, rng)
        got = compile_observable(h).apply(state)
        assert np.allclose(got, naive_apply(h, state), atol=1e-12)


# -- grouping memoization -----------------------------------------------------


class TestGroupingMemoization:
    def _sum(self):
        h = PauliSum.zero(3)
        h.add_term(PauliString(3, 0b001, 0b000), 1.0)
        h.add_term(PauliString(3, 0b000, 0b011), -0.5)
        h.add_term(PauliString(3, 0b100, 0b100), 0.25)
        return h

    def test_memoized_same_object(self):
        h = self._sum()
        assert h.group_qubitwise_commuting() is h.group_qubitwise_commuting()

    def test_add_term_recomputes_with_new_term(self):
        h = self._sum()
        stale = h.group_qubitwise_commuting()
        h.add_term(PauliString(3, 0b111, 0b111), 2.0)
        fresh = h.group_qubitwise_commuting()
        assert fresh is not stale
        keys = {(p.x, p.z) for g in fresh for _, p in g}
        assert (0b111, 0b111) in keys
        assert sum(len(g) for g in fresh) == h.num_terms

    def test_chop_recomputes_without_dead_term(self):
        h = self._sum()
        h.add_term(PauliString(3, 0b011, 0b110), 1e-14)
        stale = h.group_qubitwise_commuting()
        h.chop(1e-10)
        fresh = h.group_qubitwise_commuting()
        assert fresh is not stale
        keys = {(p.x, p.z) for g in fresh for _, p in g}
        assert (0b011, 0b110) not in keys

    @given(sized_pauli_sums(max_qubits=5))
    @settings(max_examples=40)
    def test_version_counter_monotone(self, h):
        v0 = h.version
        h.add_term(PauliString(h.num_qubits, 0, 1), 0.1)
        assert h.version > v0


# -- cached index tables -----------------------------------------------------


class TestIndexTableCache:
    def test_basis_indices_cached_and_frozen(self):
        a = basis_indices(6)
        assert a is basis_indices(6)
        assert not a.flags.writeable
        assert np.array_equal(a, np.arange(64))

    def test_indices_1q_partition(self):
        i0, i1 = indices_1q(5, 2)
        assert not i0.flags.writeable and not i1.flags.writeable
        combined = np.sort(np.concatenate([i0, i1]))
        assert np.array_equal(combined, np.arange(32))
        assert np.array_equal(i1, i0 | (1 << 2))

    def test_indices_2q_partition(self):
        blocks = indices_2q(5, 1, 3)
        combined = np.sort(np.concatenate(blocks))
        assert np.array_equal(combined, np.arange(32))
        i00, i01, i10, i11 = blocks
        # little-endian within the pair: block index bit0 = qubit q0
        assert np.array_equal(i01, i00 | (1 << 1))
        assert np.array_equal(i10, i00 | (1 << 3))
        assert np.array_equal(i11, i00 | (1 << 1) | (1 << 3))
