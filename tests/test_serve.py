"""Tests for the campaign server (``repro.serve``).

Covers the journal (CRC, torn tails, idempotent replay — the last
pinned with a Hypothesis property), the content store and warm-start
index, admission control and shedding, deadlines/timeouts, circuit
breakers, and the headline robustness claims: kill-and-restart resume
with energies matching an uninterrupted run, no duplicated work, and
graceful degradation on rank loss.
"""

import json
import os
import zlib

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hpc.faults import FaultSpec
from repro.serve import (
    AdmissionController,
    CampaignServer,
    ContentStore,
    Journal,
    JournalCorruptionError,
    JournalRecord,
    JobSpec,
    JobState,
    ServerConfig,
    SpecError,
    TenantPolicy,
    load_state_view,
)
from repro.serve.server import _ServerState


# -- specs --------------------------------------------------------------------


class TestJobSpec:
    def test_content_key_ignores_tenant_and_priority(self):
        a = JobSpec(tenant="alice", molecule="h2", priority=5)
        b = JobSpec(tenant="bob", molecule="h2", priority=0)
        assert a.content_key() == b.content_key()

    def test_content_key_distinguishes_physics(self):
        a = JobSpec(tenant="t", molecule="h2")
        b = JobSpec(tenant="t", molecule="h2", geometry=0.9)
        c = JobSpec(tenant="t", molecule="h4")
        assert len({a.content_key(), b.content_key(), c.content_key()}) == 3

    def test_family_key_ignores_geometry(self):
        a = JobSpec(tenant="t", molecule="h2", geometry=0.7)
        b = JobSpec(tenant="t", molecule="h2", geometry=1.1)
        assert a.family_key() == b.family_key()
        assert a.content_key() != b.content_key()

    def test_roundtrip(self):
        spec = JobSpec(tenant="t", kind="adapt", molecule="lih", deadline_s=10.0)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_rejects_bad_kind_and_tenant(self):
        with pytest.raises(SpecError):
            JobSpec(tenant="t", kind="qpe")
        with pytest.raises(SpecError):
            JobSpec(tenant="")

    def test_rejects_unknown_version_and_fields(self):
        payload = JobSpec(tenant="t").to_dict()
        payload["version"] = 99
        with pytest.raises(SpecError, match="version"):
            JobSpec.from_dict(payload)
        payload = JobSpec(tenant="t").to_dict()
        payload["frobnicate"] = 1
        with pytest.raises(SpecError, match="unknown field"):
            JobSpec.from_dict(payload)


# -- journal ------------------------------------------------------------------


class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        j = Journal(str(tmp_path / "j.jsonl"))
        j.append("a", x=1)
        j.append("b", y=[1, 2])
        j.close()
        records = Journal(str(tmp_path / "j.jsonl")).replay()
        assert [(r.seq, r.type) for r in records] == [(1, "a"), (2, "b")]
        assert records[1].payload == {"y": [1, 2]}

    def test_reopen_continues_sequence(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = Journal(path)
        j.append("a")
        j.close()
        j2 = Journal(path)
        rec = j2.append("b")
        assert rec.seq == 2

    def test_torn_tail_dropped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = Journal(path)
        j.append("a", x=1)
        j.append("b", x=2)
        j.close()
        with open(path, "a") as fh:
            fh.write('{"seq": 3, "type": "c", "pa')  # crash mid-append
        records = Journal(path).replay()
        assert [r.type for r in records] == ["a", "b"]

    def test_append_after_torn_tail_repairs_file(self, tmp_path):
        """The next append truncates a torn tail instead of writing
        directly after the partial bytes — which would merge them into
        one unparseable line and make the *following* replay refuse the
        whole journal as mid-file corruption."""
        path = str(tmp_path / "j.jsonl")
        j = Journal(path)
        j.append("a", x=1)
        j.append("b", x=2)
        j.close()
        with open(path, "a") as fh:
            fh.write('{"seq": 3, "type": "c", "pa')  # crash mid-append
        j2 = Journal(path)
        j2.append("c", x=3)
        j2.close()
        records = Journal(path).replay()
        assert [(r.seq, r.type) for r in records] == [(1, "a"), (2, "b"), (3, "c")]

    def test_append_after_missing_final_newline(self, tmp_path):
        """An intact final record that lost its newline (crash between
        the line and the terminator) is completed, not merged with the
        next append."""
        path = str(tmp_path / "j.jsonl")
        j = Journal(path)
        j.append("a", x=1)
        j.close()
        with open(path, "rb+") as fh:
            data = fh.read()
            fh.seek(0)
            fh.truncate()
            fh.write(data.rstrip(b"\n"))
        j2 = Journal(path)
        assert [r.type for r in j2.replay()] == ["a"]
        j2.append("b")
        j2.close()
        records = Journal(path).replay()
        assert [(r.seq, r.type) for r in records] == [(1, "a"), (2, "b")]

    def test_readonly_replay_never_mutates(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = Journal(path)
        j.append("a", x=1)
        j.close()
        with open(path, "a") as fh:
            fh.write('{"seq": 2, "type": "b", "pa')
        size = os.path.getsize(path)
        Journal(path).replay()  # status-view style read
        assert os.path.getsize(path) == size

    def test_midfile_corruption_raises(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        j = Journal(path)
        j.append("a", x=1)
        j.append("b", x=2)
        j.close()
        lines = open(path).read().splitlines()
        lines[0] = lines[0].replace('"x":1', '"x":9')  # flip a byte mid-file
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptionError):
            Journal(path).replay()

    def test_crc_detects_tampering(self):
        rec = JournalRecord(seq=1, type="t", payload={"k": "v"})
        line = rec.to_line()
        assert JournalRecord.from_line(line).payload == {"k": "v"}
        bad = line.replace('"v"', '"w"')
        with pytest.raises(ValueError):
            JournalRecord.from_line(bad)
        obj = json.loads(line)
        assert obj["crc"] == zlib.crc32(
            json.dumps(
                {"seq": 1, "type": "t", "payload": {"k": "v"}},
                sort_keys=True,
                separators=(",", ":"),
            ).encode()
        )

    @given(
        records=st.lists(
            st.tuples(
                st.sampled_from(["admitted", "started", "retry", "completed"]),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=20,
        ),
        cut=st.integers(min_value=0, max_value=20),
    )
    def test_replay_idempotence(self, records, cut):
        """Folding any prefix of the journal twice yields exactly the
        same state as folding it once: replay cannot double-apply a
        transition, so a crash-loop of restarts never duplicates work.
        """
        recs = []
        for seq, (rtype, jnum) in enumerate(records, start=1):
            job_id = f"j{jnum}"
            if rtype == "admitted":
                payload = {
                    "job_id": job_id,
                    "spec": JobSpec(tenant=f"t{jnum}").to_dict(),
                    "submission_id": None,
                }
            else:
                payload = {"job_id": job_id, "attempt": 1, "energy": -1.0}
            recs.append(JournalRecord(seq=seq, type=rtype, payload=payload))
        prefix = recs[: min(cut, len(recs))]

        def snapshot(state):
            return (
                {jid: (j.state, j.attempts) for jid, j in state.jobs.items()},
                list(state.order),
                state.last_seq,
            )

        once = _ServerState()
        for r in prefix:
            once.apply(r)
        twice = _ServerState()
        for r in prefix:
            twice.apply(r)
        for r in prefix:  # replay the same prefix again
            twice.apply(r)
        assert snapshot(once) == snapshot(twice)
        # and continuing with the full journal still converges
        for r in recs:
            once.apply(r)
            twice.apply(r)
        assert snapshot(once) == snapshot(twice)


# -- content store ------------------------------------------------------------


class TestContentStore:
    def test_results_roundtrip_and_idempotence(self, tmp_path):
        store = ContentStore(str(tmp_path))
        assert store.get_result("k") is None
        store.put_result("k", {"energy": -1.5})
        store.put_result("k", {"energy": -1.5})  # replay-safe
        assert store.get_result("k") == {"energy": -1.5}
        assert store.num_results() == 1

    def test_torn_result_read_as_absent(self, tmp_path):
        store = ContentStore(str(tmp_path))
        store.put_result("k", {"energy": -1.0})
        path = os.path.join(str(tmp_path), "results", "k.json")
        with open(path, "w") as fh:
            fh.write('{"ener')  # torn write
        assert store.get_result("k") is None

    def test_warm_start_picks_nearest_geometry(self, tmp_path):
        store = ContentStore(str(tmp_path))
        store.add_warm_start("fam", 0.7, np.array([0.1, 0.2]))
        store.add_warm_start("fam", 1.5, np.array([0.8, 0.9]))
        got = store.warm_start("fam", 0.8, 2)
        np.testing.assert_allclose(got, [0.1, 0.2])
        got = store.warm_start("fam", 1.4, 2)
        np.testing.assert_allclose(got, [0.8, 0.9])

    def test_warm_start_filters_length_mismatch(self, tmp_path):
        store = ContentStore(str(tmp_path))
        store.add_warm_start("fam", 0.7, np.array([0.1, 0.2]))
        assert store.warm_start("fam", 0.7, 3) is None


# -- admission ----------------------------------------------------------------


class TestAdmission:
    def test_tenant_and_global_bounds(self):
        ctl = AdmissionController(
            global_queue_limit=4,
            default_policy=TenantPolicy(max_queued=2),
        )
        assert ctl.decide("t", tenant_queued=0, total_queued=0).admitted
        d = ctl.decide("t", tenant_queued=2, total_queued=2)
        assert not d.admitted and "tenant" in d.reason
        d = ctl.decide("t", tenant_queued=0, total_queued=4)
        assert not d.admitted and "backpressure" in d.reason

    def test_draining_and_breaker_reject(self):
        ctl = AdmissionController()
        assert not ctl.decide("t", 0, 0, draining=True).admitted
        d = ctl.decide("t", 0, 0, breaker_open=True)
        assert not d.admitted and "breaker" in d.reason

    def test_shed_victims_lowest_priority_newest_first(self):
        class J:
            def __init__(self, name, priority, seq):
                self.name, self.priority, self.submitted_seq = name, priority, seq

        jobs = [J("hi", 2, 1), J("old-low", 0, 2), J("new-low", 0, 3), J("mid", 1, 4)]
        victims = AdmissionController.shed_victims(jobs, 2)
        assert [v.name for v in victims] == ["new-low", "old-low"]
        assert AdmissionController.shed_victims(jobs, 0) == []


# -- server: fast paths (no chemistry) ----------------------------------------


def _server(tmp_path, name="srv", **cfg):
    cfg.setdefault("num_ranks", 2)
    return CampaignServer(str(tmp_path / name), ServerConfig(**cfg))


class TestServerAdmission:
    def test_rejection_is_terminal_and_journaled(self, tmp_path):
        srv = _server(
            tmp_path,
            default_tenant_policy=TenantPolicy(max_queued=1),
        )
        a = srv.submit(JobSpec(tenant="t", molecule="h2"))
        b = srv.submit(JobSpec(tenant="t", molecule="h4"))
        assert a.state == JobState.QUEUED
        assert b.state == JobState.REJECTED
        assert "backpressure" in b.detail
        # the rejection survives a restart
        srv.close()
        srv2 = CampaignServer(srv.state_dir, srv.config)
        assert srv2.jobs[b.job_id].state == JobState.REJECTED

    def test_draining_rejects_new_work(self, tmp_path):
        srv = _server(tmp_path)
        srv.drain()
        job = srv.submit(JobSpec(tenant="t"))
        assert job.state == JobState.REJECTED
        assert "draining" in job.detail

    def test_duplicate_submission_id_is_idempotent(self, tmp_path):
        srv = _server(tmp_path)
        a = srv.submit(JobSpec(tenant="t"), submission_id="s1")
        b = srv.submit(JobSpec(tenant="t"), submission_id="s1")
        assert a.job_id == b.job_id
        assert len(srv.jobs) == 1

    def test_inbox_spool_ingestion(self, tmp_path):
        srv = _server(tmp_path)
        spec = JobSpec(tenant="t", molecule="h2")
        path = os.path.join(srv.inbox_dir, "sub1.json")
        with open(path, "w") as fh:
            json.dump(spec.to_dict(), fh)
        assert srv._poll_inbox() == 1
        assert not os.path.exists(path)
        assert len(srv.jobs) == 1
        assert next(iter(srv.jobs.values())).submission_id == "sub1"

    def test_malformed_inbox_file_rejected_not_crash(self, tmp_path):
        srv = _server(tmp_path)
        with open(os.path.join(srv.inbox_dir, "bad.json"), "w") as fh:
            fh.write("{not json")
        srv._poll_inbox()
        (job,) = srv.jobs.values()
        assert job.state == JobState.REJECTED
        assert "malformed" in job.detail

    def test_job_counter_skips_malformed_rejections(self, tmp_path):
        """The recovered jNNNNN counter counts only counter-allocated
        ids, not synthetic 'bad-<id>' rejections."""
        srv = _server(tmp_path)
        srv.submit(JobSpec(tenant="t", molecule="h2"))
        with open(os.path.join(srv.inbox_dir, "bad.json"), "w") as fh:
            fh.write("{not json")
        srv._poll_inbox()
        srv.close()
        srv2 = CampaignServer(srv.state_dir, srv.config)
        job = srv2.submit(JobSpec(tenant="t", molecule="h4"))
        assert job.job_id.startswith("j00002-")


class TestServerDegradation:
    def test_rank_loss_requeues_and_sheds(self, tmp_path):
        srv = _server(
            tmp_path,
            num_ranks=2,
            global_queue_limit=4,
        )
        # fill the queue to the global bound with cheap specs
        for k in range(4):
            srv.submit(
                JobSpec(tenant=f"t{k}", molecule="h2", geometry=0.6 + 0.1 * k,
                        priority=k)
            )
        srv.inject_rank_loss(1)
        assert srv.alive_ranks == [0]
        srv._shed_overload()  # effective limit: 4 * 1/2 = 2
        by_state = {}
        for j in srv.jobs.values():
            by_state.setdefault(j.state, []).append(j)
        assert len(by_state[JobState.SHED]) == 2
        # lowest-priority jobs were the victims
        assert {j.spec.priority for j in by_state[JobState.SHED]} == {0, 1}
        assert srv.health()["status"] == "degraded"

    def test_all_ranks_lost_not_ready(self, tmp_path):
        srv = _server(tmp_path, num_ranks=2)
        srv.inject_rank_loss(0)
        srv.inject_rank_loss(1)
        health = srv.health()
        assert health["status"] == "unavailable"
        assert not health["ready"]

    def test_rank_loss_survives_restart(self, tmp_path):
        srv = _server(tmp_path)
        srv.inject_rank_loss(0)
        srv.close()
        srv2 = CampaignServer(srv.state_dir, srv.config)
        assert srv2.alive_ranks == [1]

    def test_dispatch_never_starts_on_rank_killed_mid_loop(
        self, tmp_path, monkeypatch
    ):
        """Placements are computed from the alive set at the top of the
        tick; if the fault injector kills a rank while we dispatch to a
        *different* one, jobs placed on the dead rank must be skipped,
        not started on a lost rank."""
        srv = _server(tmp_path, num_ranks=2)
        import repro.serve.server as server_mod

        class Idle:
            def __init__(self, *a, **kw):
                pass

            def step(self):
                return None

        monkeypatch.setattr(server_mod, "_JobExecution", Idle)
        monkeypatch.setattr(srv.problems, "get", lambda spec: {})
        srv.submit(JobSpec(tenant="t", molecule="h2"))
        srv.submit(JobSpec(tenant="t", molecule="h4"))
        fired = {"done": False}

        def kill_other(rank):
            # batch fault kills the *other* rank during this dispatch
            if not fired["done"]:
                fired["done"] = True
                srv.inject_rank_loss(1 - rank)

        monkeypatch.setattr(srv, "_check_rank_faults", kill_other)
        srv._dispatch()
        running = [j for j in srv.jobs.values() if j.state == JobState.RUNNING]
        assert len(running) == 1
        assert all(j.rank in srv.alive_ranks for j in running)
        assert (
            len([j for j in srv.jobs.values() if j.state == JobState.QUEUED])
            == 1
        )

    def test_restart_twice_after_torn_tail(self, tmp_path):
        """One crash-with-torn-tail must not poison the journal: the
        first restart appends recovery records (after truncating the
        torn bytes), and the second restart replays cleanly instead of
        raising JournalCorruptionError on a merged line."""
        srv = _server(tmp_path)
        a = srv.submit(JobSpec(tenant="t", molecule="h2"))
        srv.close()
        path = os.path.join(srv.state_dir, "journal.jsonl")
        with open(path, "a") as fh:
            fh.write('{"seq": 7, "type": "started", "pa')  # crash mid-append
        srv2 = CampaignServer(srv.state_dir, srv.config)
        assert srv2.jobs[a.job_id].state == JobState.QUEUED
        srv2.close()
        srv3 = CampaignServer(srv.state_dir, srv.config)
        assert srv3.jobs[a.job_id].state == JobState.QUEUED


class TestServerRetryAndBreaker:
    def test_failing_job_retries_then_fails(self, tmp_path, monkeypatch):
        clock = {"t": 0.0}
        srv = _server(
            tmp_path,
            max_job_attempts=2,
            clock=lambda: clock["t"],
        )
        job = srv.submit(JobSpec(tenant="t", molecule="h2"))

        import repro.serve.server as server_mod

        class Boom:
            def __init__(self, *a, **kw):
                pass

            def step(self):
                raise RuntimeError("injected execution failure")

        monkeypatch.setattr(server_mod, "_JobExecution", Boom)
        # also skip problem building (Boom never uses it)
        monkeypatch.setattr(srv.problems, "get", lambda spec: {})
        srv.tick()
        assert srv.jobs[job.job_id].state == JobState.QUEUED  # retry scheduled
        assert srv.jobs[job.job_id].attempts == 1
        clock["t"] += 10.0  # past the backoff delay
        srv.tick()
        assert srv.jobs[job.job_id].state == JobState.FAILED
        assert "injected execution failure" in srv.jobs[job.job_id].detail

    def test_breaker_opens_and_rejects_class(self, tmp_path, monkeypatch):
        clock = {"t": 0.0}
        srv = _server(
            tmp_path,
            max_job_attempts=1,  # every failure is terminal
            breaker_failure_threshold=2,
            breaker_cooldown_s=60.0,
            clock=lambda: clock["t"],
        )
        import repro.serve.server as server_mod

        class Boom:
            def __init__(self, *a, **kw):
                pass

            def step(self):
                raise RuntimeError("boom")

        monkeypatch.setattr(server_mod, "_JobExecution", Boom)
        monkeypatch.setattr(srv.problems, "get", lambda spec: {})
        for _ in range(2):
            srv.submit(JobSpec(tenant="t", molecule="h2"))
            srv.tick()
            clock["t"] += 1.0
        assert srv.breakers["vqe:h2:sto-3g"].state == "open"
        # same class now rejected at admission; other classes admitted
        rej = srv.submit(JobSpec(tenant="t", molecule="h2"))
        assert rej.state == JobState.REJECTED
        assert "breaker" in rej.detail
        ok = srv.submit(JobSpec(tenant="t", molecule="h4"))
        assert ok.state == JobState.QUEUED
        # after the cooldown the breaker half-opens and admits a probe
        clock["t"] += 61.0
        probe = srv.submit(JobSpec(tenant="t", molecule="h2"))
        assert probe.state == JobState.QUEUED

    def test_is_open_is_read_only(self):
        from repro.utils.retry import CircuitBreaker

        br = CircuitBreaker(failure_threshold=1, cooldown_s=10.0)
        br.record_failure(0.0)
        assert br.state == "open"
        assert br.is_open(5.0)
        assert not br.is_open(15.0)  # cooldown elapsed: would admit
        assert br.state == "open"  # but the read did not transition
        assert br.rejections == 0

    def test_submission_does_not_consume_half_open_probe(
        self, tmp_path, monkeypatch
    ):
        """Admission is not an execution: post-cooldown submissions are
        admitted without touching the breaker; only the dispatch-time
        allow() consumes the half-open probe, and the probe's outcome
        drives the state machine."""
        clock = {"t": 0.0}
        srv = _server(
            tmp_path,
            max_job_attempts=1,
            breaker_failure_threshold=1,
            breaker_cooldown_s=60.0,
            clock=lambda: clock["t"],
        )
        import repro.serve.server as server_mod

        class Boom:
            def __init__(self, *a, **kw):
                pass

            def step(self):
                raise RuntimeError("boom")

        monkeypatch.setattr(server_mod, "_JobExecution", Boom)
        monkeypatch.setattr(srv.problems, "get", lambda spec: {})
        srv.submit(JobSpec(tenant="t", molecule="h2"))
        srv.tick()
        br = srv.breakers["vqe:h2:sto-3g"]
        assert br.state == "open"
        clock["t"] = 61.0
        for _ in range(3):
            sub = srv.submit(JobSpec(tenant="t", molecule="h2"))
            assert sub.state == JobState.QUEUED
        assert br.state == "open"  # submissions left the breaker alone
        srv.tick()  # dispatch probes the class; the probe fails
        assert br.state == "open"
        assert br.trips == 2

    def test_retry_budget_denial_fails_fast(self, tmp_path, monkeypatch):
        clock = {"t": 0.0}
        srv = _server(
            tmp_path,
            max_job_attempts=5,
            retry_budget_capacity=1.0,
            retry_budget_refill_per_s=0.0,
            clock=lambda: clock["t"],
        )
        import repro.serve.server as server_mod

        class Boom:
            def __init__(self, *a, **kw):
                pass

            def step(self):
                raise RuntimeError("boom")

        monkeypatch.setattr(server_mod, "_JobExecution", Boom)
        monkeypatch.setattr(srv.problems, "get", lambda spec: {})
        job = srv.submit(JobSpec(tenant="t", molecule="h2"))
        srv.tick()  # attempt 1 fails; one retry token spent
        assert srv.jobs[job.job_id].state == JobState.QUEUED
        clock["t"] += 10.0
        srv.tick()  # attempt 2 fails; budget empty -> terminal
        assert srv.jobs[job.job_id].state == JobState.FAILED


class TestServerDeadlines:
    def test_deadline_times_out_before_stepping(self, tmp_path):
        clock = {"t": 0.0}
        srv = _server(tmp_path, clock=lambda: clock["t"])
        job = srv.submit(JobSpec(tenant="t", molecule="h2", deadline_s=5.0))
        clock["t"] = 10.0  # the job waited past its deadline in queue
        srv.tick()
        assert srv.jobs[job.job_id].state == JobState.TIMED_OUT
        assert "deadline" in srv.jobs[job.job_id].detail

    def test_timeout_on_execution_budget(self, tmp_path, monkeypatch):
        srv = _server(tmp_path)
        job = srv.submit(JobSpec(tenant="t", molecule="h2", timeout_s=0.5))
        srv.jobs[job.job_id].exec_s = 1.0  # pretend we burned the budget
        import repro.serve.server as server_mod

        class Slow:
            def __init__(self, *a, **kw):
                pass

            def step(self):
                return None  # never finishes

        monkeypatch.setattr(server_mod, "_JobExecution", Slow)
        monkeypatch.setattr(srv.problems, "get", lambda spec: {})
        srv.tick()  # dispatch
        srv.tick()  # budget check fires before the next step
        assert srv.jobs[job.job_id].state == JobState.TIMED_OUT
        assert "budget" in srv.jobs[job.job_id].detail

    def test_restart_rebases_deadline_clock(self, tmp_path, monkeypatch):
        """admitted_at is meaningless across processes (monotonic
        clock, not journaled): recovery re-bases every non-terminal
        job's deadline window to recovery time instead of spuriously
        timing it out on the first tick."""
        clock = {"t": 5.0}
        srv = _server(tmp_path, clock=lambda: clock["t"])
        job = srv.submit(JobSpec(tenant="t", molecule="h2", deadline_s=60.0))
        srv.close()
        clock["t"] = 10_000.0  # a new process's arbitrary clock epoch
        srv2 = CampaignServer(srv.state_dir, srv.config)
        import repro.serve.server as server_mod

        class Instant:
            def __init__(self, *a, **kw):
                pass

            def step(self):
                return {"energy": -1.0, "kind": "vqe"}

        monkeypatch.setattr(server_mod, "_JobExecution", Instant)
        monkeypatch.setattr(srv2.problems, "get", lambda spec: {})
        srv2.tick()
        assert srv2.jobs[job.job_id].state == JobState.SUCCEEDED
        # deadlines still fire, measured from recovery
        late = srv2.submit(JobSpec(tenant="t", molecule="h4", deadline_s=5.0))
        clock["t"] = 10_010.0
        srv2.tick()
        assert srv2.jobs[late.job_id].state == JobState.TIMED_OUT


# -- server: real physics (small problems only) -------------------------------


class TestServerEndToEnd:
    def test_concurrent_campaigns_kill_restart_resume(self, tmp_path):
        """The headline robustness claim: kill the server mid-flight
        with several campaigns in progress, restart it, and every job
        reaches the same energy as an uninterrupted run — completed
        jobs are not re-run, in-flight jobs resume from checkpoints."""
        specs = [
            JobSpec(tenant="alice", kind="adapt", molecule="h2", max_iterations=3),
            JobSpec(tenant="bob", kind="vqe", molecule="h2", geometry=0.9),
            JobSpec(tenant="carol", kind="adapt", molecule="h4", max_iterations=2),
        ]
        cfg = ServerConfig(num_ranks=2)

        # uninterrupted control run
        control = CampaignServer(str(tmp_path / "control"), cfg)
        for s in specs:
            control.submit(s)
        control.run(stop_when_idle=True, max_ticks=60)
        control_energies = {
            j.spec.content_key(): j.energy for j in control.jobs.values()
        }
        assert all(j.state == JobState.SUCCEEDED for j in control.jobs.values())

        # interrupted run: a couple of ticks, then a hard kill
        srv = CampaignServer(str(tmp_path / "srv"), cfg)
        for s in specs:
            srv.submit(s)
        srv.tick()
        srv.tick()
        completed_before_kill = {
            j.job_id for j in srv.jobs.values() if j.state == JobState.SUCCEEDED
        }
        srv.close()  # kill -9: executions and caches are gone

        srv2 = CampaignServer(str(tmp_path / "srv"), cfg)
        # whatever was running is queued again; completed stayed terminal
        for job_id in completed_before_kill:
            assert srv2.jobs[job_id].state == JobState.SUCCEEDED
        srv2.run(stop_when_idle=True, max_ticks=60)
        assert all(j.state == JobState.SUCCEEDED for j in srv2.jobs.values())
        for j in srv2.jobs.values():
            assert j.energy == pytest.approx(
                control_energies[j.spec.content_key()], abs=1e-8
            )
        # no duplicated work: each completed job completed exactly once
        completions = {}
        for rec in Journal(os.path.join(srv2.state_dir, "journal.jsonl")).replay():
            if rec.type == "completed":
                jid = rec.payload["job_id"]
                completions[jid] = completions.get(jid, 0) + 1
        assert all(n == 1 for n in completions.values())
        # jobs finished before the kill were never started again after it
        recs = Journal(os.path.join(srv2.state_dir, "journal.jsonl")).replay()
        recovered_at = max(
            (r.seq for r in recs if r.type == "recovered"), default=0
        )
        for r in recs:
            if r.type == "started" and r.seq > recovered_at:
                assert r.payload["job_id"] not in completed_before_kill

    def test_dedup_across_tenants(self, tmp_path):
        srv = _server(tmp_path)
        a = srv.submit(JobSpec(tenant="alice", molecule="h2"))
        b = srv.submit(JobSpec(tenant="bob", molecule="h2"))
        srv.run(stop_when_idle=True, max_ticks=30)
        ja, jb = srv.jobs[a.job_id], srv.jobs[b.job_id]
        assert ja.state == jb.state == JobState.SUCCEEDED
        assert ja.energy == pytest.approx(jb.energy, abs=1e-12)
        # exactly one of the two actually computed
        assert ja.dedup_hit != jb.dedup_hit
        assert srv.store.num_results() == 1

    def test_warm_start_within_family(self, tmp_path):
        srv = _server(tmp_path, num_ranks=1)
        srv.submit(JobSpec(tenant="t", molecule="h2", geometry=0.74))
        srv.run(stop_when_idle=True, max_ticks=30)
        second = srv.submit(JobSpec(tenant="t", molecule="h2", geometry=0.8))
        srv.run(stop_when_idle=True, max_ticks=30)
        job = srv.jobs[second.job_id]
        assert job.state == JobState.SUCCEEDED
        assert job.warm_started

    def test_rank_loss_mid_service_all_jobs_finish(self, tmp_path):
        cfg = ServerConfig(
            num_ranks=2,
            fault_specs=[
                FaultSpec(kind="rank_crash", rank=1, probability=1.0, scope="batch")
            ],
        )
        srv = CampaignServer(str(tmp_path / "srv"), cfg)
        for k in range(3):
            srv.submit(JobSpec(tenant=f"t{k}", molecule="h2", geometry=0.7 + 0.1 * k))
        srv.run(stop_when_idle=True, max_ticks=60)
        assert srv.state.lost_ranks == {1}
        assert all(
            j.state == JobState.SUCCEEDED for j in srv.jobs.values()
        ), {j.job_id: j.state for j in srv.jobs.values()}

    def test_drain_finishes_in_flight_rejects_new(self, tmp_path):
        srv = _server(tmp_path)
        first = srv.submit(JobSpec(tenant="t", molecule="h2"))
        srv.tick()  # dispatch it
        srv.drain()
        late = srv.submit(JobSpec(tenant="t", molecule="h4"))
        assert late.state == JobState.REJECTED
        srv.run(max_ticks=30)
        assert srv.jobs[first.job_id].state == JobState.SUCCEEDED

    def test_status_view_matches_server(self, tmp_path):
        srv = _server(tmp_path)
        srv.submit(JobSpec(tenant="t", molecule="h2"))
        srv.run(stop_when_idle=True, max_ticks=30)
        view = load_state_view(srv.state_dir)
        assert view["by_state"] == {JobState.SUCCEEDED: 1}
        assert view["health"]["status"] == "ready"
        assert view["jobs"][0]["energy"] == pytest.approx(
            next(iter(srv.jobs.values())).energy
        )


# -- satellite: checkpoint schema guard ---------------------------------------


class TestCheckpointSchemaGuard:
    """Checkpoint loads fail with a clear schema error, never a raw
    KeyError or an unpickling crash."""

    @staticmethod
    def _adapt(tmp_path):
        from repro.core.adapt import AdaptVQE
        from repro.serve.store import ProblemCache

        problem = ProblemCache().get(JobSpec(tenant="t", kind="adapt"))
        return AdaptVQE(
            problem["hamiltonian"],
            problem["pool"],
            problem["reference"],
            max_iterations=2,
        )

    def _write(self, tmp_path, payload):
        (tmp_path / "adapt_state.json").write_text(json.dumps(payload))

    def test_future_version_rejected(self, tmp_path):
        from repro.core.campaign import CampaignRunner, CheckpointSchemaError

        self._write(tmp_path, {"version": 99})
        with pytest.raises(CheckpointSchemaError, match="upgrade"):
            CampaignRunner(str(tmp_path)).load_adapt_state(self._adapt(tmp_path))

    def test_stale_version_rejected(self, tmp_path):
        from repro.core.campaign import CampaignRunner, CheckpointSchemaError

        self._write(tmp_path, {"version": 0})
        with pytest.raises(CheckpointSchemaError, match="stale"):
            CampaignRunner(str(tmp_path)).load_adapt_state(self._adapt(tmp_path))

    def test_missing_fields_rejected(self, tmp_path):
        from repro.core.campaign import CampaignRunner, CheckpointSchemaError

        self._write(tmp_path, {"version": 1, "iteration": 1})
        with pytest.raises(CheckpointSchemaError, match="missing required"):
            CampaignRunner(str(tmp_path)).load_adapt_state(self._adapt(tmp_path))

    def test_non_dict_payload_rejected(self, tmp_path):
        from repro.core.campaign import CampaignRunner, CheckpointSchemaError

        (tmp_path / "adapt_state.json").write_text("[1, 2, 3]")
        with pytest.raises(CheckpointSchemaError):
            CampaignRunner(str(tmp_path)).load_adapt_state(self._adapt(tmp_path))

    def test_vqe_params_missing_field_rejected(self, tmp_path):
        from repro.core.campaign import CampaignRunner, CheckpointSchemaError
        from repro.core.vqe import VQE
        from repro.serve.store import ProblemCache

        (tmp_path / "vqe_params.json").write_text(
            json.dumps({"version": 1, "parameters": [0.1]})  # no energy/eval
        )
        problem = ProblemCache().get(JobSpec(tenant="t", kind="vqe"))
        vqe = VQE(
            problem["hamiltonian"],
            generators=problem["generators"],
            reference_state=problem["reference"],
        )
        with pytest.raises(CheckpointSchemaError, match="missing required"):
            CampaignRunner(str(tmp_path)).run_vqe(vqe)

    def test_schema_errors_are_value_errors(self):
        from repro.core.campaign import CheckpointSchemaError

        assert issubclass(CheckpointSchemaError, ValueError)


# -- satellite: per-fault-kind comm metrics -----------------------------------


class TestCommFaultKindMetrics:
    def test_fault_and_retry_counters_by_kind(self):
        from repro.hpc.comm import SimComm
        from repro.hpc.faults import FaultInjector
        from repro.utils.retry import RetryPolicy

        injector = FaultInjector(
            [
                FaultSpec("transient_exchange", at_step=0),
                FaultSpec("corruption", at_step=1, bit_flips=1),
            ],
            seed=0,
        )
        comm = SimComm(
            2,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=4, seed=1),
        )
        a, b = np.arange(2.0), np.arange(2.0) + 5
        comm.exchange([a, b], [1, 0])
        assert comm.stats.faults_by_kind.get("transient_exchange", 0) >= 1
        assert comm.stats.retries_by_kind.get("transient_exchange", 0) >= 1
        # corruption fires on the second op (the retried exchange)
        total_faults = sum(comm.stats.faults_by_kind.values())
        total_retries = sum(comm.stats.retries_by_kind.values())
        assert total_retries == comm.stats.retries
        assert total_faults >= comm.stats.transient_errors

    def test_obs_metrics_emitted_per_kind(self):
        from repro import obs
        from repro.hpc.comm import SimComm
        from repro.hpc.faults import FaultInjector
        from repro.utils.retry import RetryPolicy

        obs.reset()
        obs.configure(enabled=True)
        try:
            injector = FaultInjector(
                [FaultSpec("transient_exchange", at_step=0)], seed=0
            )
            comm = SimComm(
                2,
                fault_injector=injector,
                retry_policy=RetryPolicy(max_attempts=3, seed=1),
            )
            a, b = np.arange(2.0), np.arange(2.0) + 5
            comm.exchange([a, b], [1, 0])
            snaps = {
                (s["name"], tuple(sorted((s.get("labels") or {}).items()))): s[
                    "value"
                ]
                for s in obs.get_registry().snapshot()
            }
            key = (
                "repro_comm_faults_total",
                (("kind", "transient_exchange"),),
            )
            assert snaps.get(key, 0) >= 1
            key = (
                "repro_comm_retries_by_kind_total",
                (("kind", "transient_exchange"),),
            )
            assert snaps.get(key, 0) >= 1
        finally:
            obs.disable()
            obs.reset()

    def test_reset_clears_kind_maps(self):
        from repro.hpc.comm import CommStats

        stats = CommStats()
        stats.record_fault("corruption")
        stats.retries_by_kind["corruption"] = 2
        stats.reset()
        assert stats.faults_by_kind == {}
        assert stats.retries_by_kind == {}
