"""Tests for the live-operations layer (PR 7).

Covers the structured event bus (durability, rotation, torn tails,
seq continuation, subscribers, schema versioning), the per-tenant SLO
engine (quantile math, multi-window burn alerts, simulated-clock
determinism), the convergence flight recorder (synthetic stall /
divergence / barren-plateau traces), the `repro top` dashboard, and
the end-to-end acceptance path: injected stall + deadline-miss burst
-> events -> SLO burn alert -> flight verdict, all visible through
``repro top --json`` purely from on-disk artifacts.
"""

import json
import os

import pytest

from repro import obs
from repro.cli import main
from repro.obs import events as obs_events
from repro.obs.dashboard import Dashboard
from repro.obs.events import Event, EventBus, read_events
from repro.obs.flight import (
    VERDICT_BARREN,
    VERDICT_DIVERGING,
    VERDICT_OK,
    VERDICT_STALLED,
    FlightConfig,
    FlightRecorder,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import FLEET, SLOConfig, SLOEngine
from repro.serve import CampaignServer, JobSpec, JobState, ServerConfig


@pytest.fixture(autouse=True)
def _clean_obs():
    """Isolate the process-global observability state per test."""
    obs.disable()
    obs_events.set_bus(None)
    yield
    obs.disable()
    obs_events.set_bus(None)


# -- event bus ----------------------------------------------------------------


class TestEventBus:
    def test_roundtrip_and_none_attr_dropping(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        bus = EventBus(path=path)
        bus.emit("job.admitted", tenant="t", job_id="j1", reason=None)
        bus.emit("job.completed", tenant="t", job_id="j1", energy=-1.5)
        bus.close()
        events = read_events(path)
        assert [e.type for e in events] == ["job.admitted", "job.completed"]
        assert [e.seq for e in events] == [1, 2]
        assert "reason" not in events[0].attrs  # None attrs are dropped
        assert events[1].attrs["energy"] == -1.5
        assert all(e.version == obs_events.EVENT_SCHEMA_VERSION for e in events)

    def test_seq_continues_across_reopen(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        bus = EventBus(path=path)
        bus.emit("a")
        bus.emit("b")
        bus.close()
        bus2 = EventBus(path=path)
        ev = bus2.emit("c")
        bus2.close()
        assert ev.seq == 3
        assert [e.seq for e in read_events(path)] == [1, 2, 3]

    def test_torn_tail_truncated_on_open(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        bus = EventBus(path=path)
        bus.emit("a")
        bus.emit("b")
        bus.close()
        with open(path, "a") as fh:
            fh.write('{"v": 1, "seq": 3, "type": "torn')  # kill -9 mid-write
        bus2 = EventBus(path=path)  # truncates the torn tail
        ev = bus2.emit("c")
        bus2.close()
        events = read_events(path)
        assert [e.type for e in events] == ["a", "b", "c"]
        # the torn record never merged with the new one
        assert ev.seq == 3

    def test_rotation_bounds_live_file(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        bus = EventBus(path=path, max_bytes=1024)
        for i in range(40):
            bus.emit("tick", filler="x" * 64, i=i)
        bus.close()
        assert os.path.getsize(path) < 2048  # live file stays bounded
        assert os.path.isfile(path + ".1")
        events = read_events(path)  # rotated generation still read
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs)
        assert len(events) > 10

    def test_subscribers_fan_out_live(self, tmp_path):
        bus = EventBus(path=None)  # in-memory: subscribers only
        seen = []
        fn = bus.subscribe(lambda e: seen.append(e.type))
        bus.emit("x")
        bus.unsubscribe(fn)
        bus.emit("y")
        assert seen == ["x"]

    def test_future_schema_version_rejected_not_misparsed(self, tmp_path):
        with pytest.raises(ValueError, match="schema version"):
            Event.from_dict({"v": 99, "seq": 1, "type": "x", "t_wall": 0.0})
        path = str(tmp_path / "events.jsonl")
        bus = EventBus(path=path)
        bus.emit("ok")
        bus.close()
        with open(path, "a") as fh:
            fh.write('{"v": 99, "seq": 2, "type": "future", "t_wall": 0.0}\n')
        events = read_events(path)  # skipped, not crashed on
        assert [e.type for e in events] == ["ok"]

    def test_global_emit_is_noop_without_bus(self):
        assert obs_events.get_bus() is None
        assert obs_events.emit("anything", x=1) is None

    def test_close_uninstalls_global_bus(self, tmp_path):
        bus = EventBus(path=str(tmp_path / "e.jsonl"))
        obs_events.set_bus(bus)
        assert obs_events.get_bus() is bus
        bus.close()
        assert obs_events.get_bus() is None

    def test_sim_clock_stamps(self, tmp_path):
        class Clock:
            now = 42.0

        bus = EventBus(path=str(tmp_path / "e.jsonl"), sim_clock=Clock())
        ev = bus.emit("x")
        bus.close()
        assert ev.t_sim == 42.0
        assert ev.time("sim") == 42.0
        assert ev.time("wall") == ev.t_wall


# -- SLO engine ---------------------------------------------------------------


def _ev(seq, type, t, **attrs):
    """Synthetic event with a deterministic sim stamp."""
    return Event(seq=seq, type=type, t_wall=t, t_sim=t, attrs=attrs)


class TestSLOEngine:
    def test_healthy_stream_no_alerts(self):
        eng = SLOEngine(SLOConfig(), time_source="sim")
        for i in range(10):
            t = float(i)
            eng.ingest(_ev(2 * i + 1, "job.admitted", t, tenant="t"))
            eng.ingest(
                _ev(
                    2 * i + 2,
                    "job.dispatched",
                    t + 0.5,
                    tenant="t",
                    queue_latency_s=0.5,
                )
            )
            eng.ingest(_ev(100 + i, "job.completed", t + 1.0, tenant="t"))
        report = eng.report()
        assert report.alerts == []
        slis = report.tenants["t"]
        assert slis["deadline_hit_ratio"]["ratio"] == 1.0
        assert slis["shed_rate"]["rate"] == 0.0
        assert slis["queue_latency_s"]["p95"] == pytest.approx(0.5)

    def test_deadline_miss_burst_fires_multiwindow_burn(self):
        eng = SLOEngine(SLOConfig(), time_source="sim")
        for i in range(4):
            eng.ingest(_ev(i + 1, "job.timed_out", 10.0 + i, tenant="burst"))
        report = eng.report()
        fired = [a for a in report.alerts if a.tenant == "burst"]
        assert any(a.sli == "deadline_hit_ratio" for a in fired)
        alert = next(a for a in fired if a.sli == "deadline_hit_ratio")
        # 100% misses against a 5% budget: burn = 20x on both windows
        assert alert.burn_short == pytest.approx(20.0)
        assert alert.burn_long == pytest.approx(20.0)
        assert "missed their deadline" in alert.detail
        # the fleet pseudo-tenant mirrors per-tenant series
        assert report.tenants[FLEET]["deadline_hit_ratio"]["n"] == 4

    def test_min_events_suppresses_blips(self):
        eng = SLOEngine(SLOConfig(min_events=3), time_source="sim")
        eng.ingest(_ev(1, "job.timed_out", 1.0, tenant="t"))
        eng.ingest(_ev(2, "job.timed_out", 2.0, tenant="t"))
        assert eng.report().alerts == []  # 2 < min_events
        eng.ingest(_ev(3, "job.timed_out", 3.0, tenant="t"))
        assert eng.report().alerting("t")  # third sample crosses it

    def test_short_window_recovery_silences_alert(self):
        # a long-ago burst with a clean short window must not alert
        cfg = SLOConfig(short_window_s=10.0, long_window_s=100.0)
        eng = SLOEngine(cfg, time_source="sim")
        for i in range(5):
            eng.ingest(_ev(i + 1, "job.timed_out", float(i), tenant="t"))
        for i in range(20):
            eng.ingest(
                _ev(10 + i, "job.completed", 50.0 + i, tenant="t")
            )
        report = eng.report(now=70.0)
        assert report.alerting("t") == []

    def test_sim_time_source_is_deterministic(self):
        def build():
            eng = SLOEngine(SLOConfig(), time_source="sim")
            for i in range(6):
                eng.ingest(
                    _ev(
                        i + 1,
                        "job.dispatched",
                        float(i),
                        tenant="t",
                        queue_latency_s=float(i),
                    )
                )
            return eng.report()  # now defaults to the last event's time

        r1, r2 = build(), build()
        assert r1.at == r2.at == 5.0
        assert r1.to_dict() == r2.to_dict()

    def test_shed_rate_alert(self):
        eng = SLOEngine(SLOConfig(shed_rate_max=0.05), time_source="sim")
        for i in range(6):
            eng.ingest(_ev(i + 1, "job.admitted", float(i), tenant="t"))
        for i in range(4):
            eng.ingest(_ev(10 + i, "job.shed", 6.0 + i, tenant="t"))
        report = eng.report()
        alert = next(a for a in report.alerting("t") if a.sli == "shed_rate")
        assert "submissions shed" in alert.detail
        assert report.tenants["t"]["shed_rate"]["rate"] == pytest.approx(0.4)

    def test_tick_duration_is_fleet_scoped(self):
        eng = SLOEngine(SLOConfig(), time_source="sim")
        eng.ingest(_ev(1, "server.tick", 1.0, duration_s=0.1))
        eng.ingest(_ev(2, "server.tick", 2.0, duration_s=0.3))
        report = eng.report()
        assert list(report.tenants) == [FLEET]
        td = report.tenants[FLEET]["tick_duration_s"]
        assert td["n"] == 2
        assert td["p50"] == pytest.approx(0.2)

    def test_evals_per_s_from_metric_deltas(self):
        eng = SLOEngine(SLOConfig(min_evals_per_s=100.0), time_source="sim")
        eng.ingest(_ev(1, "server.tick", 0.0, duration_s=0.1))
        row = {"name": "repro_vqe_energy_evaluations_total", "value": 10.0}
        eng.observe_metrics([row], now=0.0)
        eng.observe_metrics([dict(row, value=30.0)], now=10.0)
        report = eng.report(now=10.0)
        ev = report.tenants[FLEET]["evals_per_s"]
        assert ev["rate"] == pytest.approx(2.0)
        assert any(a.sli == "evals_per_s" for a in report.alerting(FLEET))

    def test_config_validation_and_loading(self, tmp_path):
        with pytest.raises(ValueError):
            SLOConfig(queue_latency_quantile=1.5)
        with pytest.raises(ValueError):
            SLOConfig(short_window_s=100.0, long_window_s=10.0)
        with pytest.raises(ValueError, match="unknown"):
            SLOConfig.from_dict({"not_a_field": 1})
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"deadline_hit_target": 0.5}))
        cfg = SLOConfig.load(str(path))
        assert cfg.deadline_hit_target == 0.5
        assert SLOConfig.from_dict(cfg.to_dict()) == cfg
        with pytest.raises(ValueError):
            SLOEngine(time_source="lunar")


# -- flight recorder ----------------------------------------------------------


class TestFlightRecorder:
    def test_descending_trace_is_ok(self):
        rec = FlightRecorder(kind="vqe")
        for i in range(20):
            rec.record(-1.0 - 0.1 * i, index=i)
        assert rec.verdict == VERDICT_OK

    def test_flat_trace_stalls(self):
        rec = FlightRecorder(kind="vqe", config=FlightConfig(stall_window=4))
        for i in range(10):
            rec.record(-1.0, index=i)
        assert rec.verdict == VERDICT_STALLED
        assert "improved" in rec.verdict_detail
        assert rec.verdict_at is not None

    def test_rising_trace_diverges(self):
        cfg = FlightConfig(divergence_window=3, divergence_margin=1e-6)
        rec = FlightRecorder(kind="vqe", config=cfg)
        rec.record(-2.0, index=0)
        for i in range(1, 6):
            rec.record(-2.0 + 0.5 * i, index=i)
        assert rec.verdict == VERDICT_DIVERGING

    def test_tiny_gradients_flag_barren_plateau(self):
        cfg = FlightConfig(barren_window=4, barren_grad_threshold=1e-7)
        rec = FlightRecorder(kind="adapt", config=cfg)
        for i in range(4):
            rec.record(-1.0 - 0.1 * i, grad_norm=1e-9, index=i)
        assert rec.verdict == VERDICT_BARREN

    def test_detector_priority_divergence_over_stall(self):
        # a parked-above-best trace satisfies both stall and divergence;
        # divergence (the more alarming diagnosis) must win
        rec = FlightRecorder(config=FlightConfig())
        rec.record(-5.0, index=0)
        for i in range(1, 10):
            rec.record(-1.0, index=i)
        assert rec.verdict == VERDICT_DIVERGING

    def test_recovery_emits_verdict_change_back_to_ok(self):
        bus = EventBus(path=None)
        obs_events.set_bus(bus)
        verdicts = []
        bus.subscribe(
            lambda e: verdicts.append(e.attrs["verdict"])
            if e.type == "flight.verdict"
            else None
        )
        rec = FlightRecorder(
            kind="vqe",
            config=FlightConfig(stall_window=4),
            context={"job_id": "j1", "tenant": "t"},
        )
        for i in range(8):
            rec.record(-1.0, index=i)  # stall...
        for i in range(8, 12):
            rec.record(-1.0 - 0.5 * (i - 7), index=i)  # ...then descend
        assert verdicts == [VERDICT_STALLED, VERDICT_OK]
        assert rec.verdict == VERDICT_OK
        bus.close()

    def test_verdict_event_carries_context(self):
        bus = EventBus(path=None)
        obs_events.set_bus(bus)
        seen = []
        bus.subscribe(seen.append)
        rec = FlightRecorder(context={"job_id": "j9", "tenant": "acme"})
        for i in range(10):
            rec.record(-1.0, index=i)
        bus.close()
        ev = next(e for e in seen if e.type == "flight.verdict")
        assert ev.attrs["job_id"] == "j9"
        assert ev.attrs["tenant"] == "acme"
        assert ev.attrs["verdict"] == VERDICT_STALLED

    def test_step_norm_and_drift_track_adapt_growth(self):
        rec = FlightRecorder(kind="adapt")
        rec.record(-1.0, params=[0.1], index=1)
        s = rec.record(-1.1, params=[0.1, 0.2], index=2)  # grew by one
        # shared prefix unchanged; the new parameter moved 0.2 from its
        # zero warm start
        assert s.step_norm == pytest.approx(0.2)
        assert s.drift == pytest.approx(0.2)

    def test_ring_bound_and_export(self):
        cfg = FlightConfig(max_samples=16)
        rec = FlightRecorder(config=cfg)
        for i in range(50):
            rec.record(-1.0 - i, index=i)
        assert len(rec.samples) == 16
        assert rec.num_samples == 50
        d = rec.to_dict(max_samples=5)
        assert len(d["samples"]) == 5
        assert d["num_samples"] == 50
        assert d["best_energy"] == pytest.approx(-50.0)
        assert d["verdict"] == VERDICT_OK
        json.dumps(d)  # JSON-able

    def test_windows_validated(self):
        with pytest.raises(ValueError):
            FlightConfig(stall_window=1)
        with pytest.raises(ValueError):
            FlightConfig(max_samples=4)


# -- satellites: metrics atomicity, quantiles, tenant gauges ------------------


class TestMetricsSatellites:
    def test_write_jsonl_is_atomic_and_leaves_no_tmp(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("repro_x_total").inc(3)
        path = str(tmp_path / "metrics.jsonl")
        reg.write_jsonl(path)
        reg.write_prometheus(str(tmp_path / "metrics.prom"))
        leftovers = [f for f in os.listdir(tmp_path) if "tmp" in f]
        assert leftovers == []
        rows = [json.loads(line) for line in open(path)]
        assert any(r["name"] == "repro_x_total" for r in rows)

    def test_histogram_quantiles_in_snapshot(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds")
        for v in [0.1, 0.2, 0.3, 0.4, 1.0]:
            h.observe(v)
        q = h.quantiles()
        assert q["p50"] == pytest.approx(0.3)
        assert q["p95"] >= q["p50"]
        row = next(
            r for r in reg.snapshot() if r["name"] == "repro_lat_seconds"
        )
        assert "quantiles" in row
        empty = reg.histogram("repro_empty_seconds")
        assert empty.quantiles()["p50"] is None  # NaN -> None, JSON-safe

    def test_report_summary_renders_quantiles_and_flight(self):
        obs.enable()
        h = obs.get_registry().histogram("repro_step_seconds")
        for v in (0.01, 0.02, 0.03):
            h.observe(v)
        report = obs.collect_report(
            meta={"kind": "vqe"},
            flight={
                "verdict": "stalled",
                "verdict_detail": "no improvement",
                "num_samples": 7,
                "best_energy": -1.25,
                "verdict_at": 5,
            },
        )
        text = report.summary()
        assert "flight recorder" in text
        assert "stalled" in text
        assert "histogram quantiles" in text
        assert "p50" in text
        # round-trips through serialization with the flight section
        clone = type(report).from_dict(report.to_dict())
        assert clone.flight["verdict"] == "stalled"

    def test_stale_tenant_gauges_zeroed_after_drain(self, tmp_path):
        obs.enable()
        srv = CampaignServer(
            str(tmp_path / "srv"), ServerConfig(num_ranks=1)
        )
        # one rank, two jobs: after the first tick one job is terminal
        # and the other is still queued, so the queued gauge goes live
        srv.submit(JobSpec(tenant="acme", molecule="h2", max_iterations=2))
        srv.submit(
            JobSpec(tenant="acme", molecule="h2", geometry=0.9, max_iterations=2)
        )
        srv.tick()

        def gauge(state):
            g = obs.get_registry().gauge(
                "repro_serve_tenant_jobs",
                labels={"tenant": "acme", "state": state},
            )
            return g.value

        assert gauge(JobState.QUEUED) + gauge(JobState.RUNNING) > 0
        for _ in range(60):
            srv.tick()
            if srv.state.jobs and all(
                j.state == JobState.SUCCEEDED
                for j in srv.state.jobs.values()
            ):
                break
        # terminal everywhere: both live-state gauges must read 0, not
        # their last nonzero value forever
        assert gauge(JobState.QUEUED) == 0.0
        assert gauge(JobState.RUNNING) == 0.0
        srv.close()


# -- dashboard ----------------------------------------------------------------


class TestDashboard:
    def test_renders_from_disk_only(self, tmp_path):
        d = str(tmp_path)
        bus = EventBus(path=os.path.join(d, "events.jsonl"))
        bus.emit("job.admitted", tenant="t", job_id="j1")
        bus.emit(
            "job.dispatched", tenant="t", job_id="j1", queue_latency_s=0.2
        )
        bus.emit("job.completed", tenant="t", job_id="j1", energy=-1.0)
        bus.close()
        with open(os.path.join(d, "status.json"), "w") as fh:
            json.dump(
                {
                    "health": {
                        "status": "ready",
                        "alive_ranks": [0, 1],
                        "lost_ranks": [],
                        "ticks": 3,
                        "queue_depth": 0,
                        "running": 0,
                        "jobs": {"succeeded": 1},
                    },
                    "jobs": [
                        {"job_id": "j1", "tenant": "t", "state": "succeeded"}
                    ],
                },
                fh,
            )
        dash = Dashboard(d)
        snap = dash.snapshot()
        assert snap["events_total"] == 3
        assert snap["tenants"]["t"]["succeeded"] == 1
        assert "t" in snap["slo"]["tenants"]
        text = dash.render(snap)
        assert "repro top" in text
        assert "[ready]" in text
        assert "recent events" in text

    def test_empty_state_dir_degrades_gracefully(self, tmp_path):
        dash = Dashboard(str(tmp_path))
        snap = dash.snapshot()
        assert snap["events_total"] == 0
        assert snap["alerts"] == []
        dash.render(snap)  # must not raise

    def test_no_server_internals_imported(self):
        import repro.obs.dashboard as mod

        source = open(mod.__file__).read()
        assert "repro.serve" not in source
        assert "repro.core" not in source


# -- end-to-end acceptance ----------------------------------------------------


class TestEndToEnd:
    def test_stall_and_deadline_burst_reach_repro_top(self, tmp_path, capsys):
        """The acceptance path: an injected optimizer stall plus a
        deadline-miss burst flow from fault injection through the event
        log into an SLO burn alert and a flight-recorder verdict, all
        visible in ``repro top --json`` — read purely from disk."""
        state_dir = str(tmp_path / "srv")
        clock = {"t": 0.0}
        srv = CampaignServer(
            state_dir,
            ServerConfig(
                num_ranks=2,
                clock=lambda: clock["t"],
                # never converge by gradient: ADAPT plateaus until
                # max_iterations — the injected stall
                adapt_gradient_tolerance=0.0,
            ),
        )
        stall = srv.submit(
            JobSpec(
                tenant="acme", kind="adapt", molecule="h2", max_iterations=10
            )
        )
        for _ in range(80):
            srv.tick()
            if srv.state.jobs[stall.job_id].state in (
                JobState.SUCCEEDED,
                JobState.FAILED,
            ):
                break
        assert srv.state.jobs[stall.job_id].state == JobState.SUCCEEDED
        # the plateau was detected and recorded on the job itself
        assert srv.state.jobs[stall.job_id].flight_verdict in (
            VERDICT_STALLED,
            VERDICT_BARREN,
        )

        # deadline-miss burst: submissions whose deadline passes in queue
        for i in range(4):
            srv.submit(
                JobSpec(tenant="burst", molecule="h2", deadline_s=1.0)
            )
        clock["t"] += 100.0
        for _ in range(10):
            srv.tick()
        timed_out = [
            j
            for j in srv.state.jobs.values()
            if j.state == JobState.TIMED_OUT
        ]
        assert len(timed_out) == 4
        srv.close()

        # every hop is on disk: events, status, verdicts
        events = read_events(os.path.join(state_dir, "events.jsonl"))
        types = {e.type for e in events}
        assert {
            "job.admitted",
            "job.dispatched",
            "job.completed",
            "job.timed_out",
            "server.tick",
            "flight.verdict",
        } <= types
        verdict_events = [e for e in events if e.type == "flight.verdict"]
        assert any(
            e.attrs.get("job_id") == stall.job_id
            and e.attrs["verdict"] != VERDICT_OK
            for e in verdict_events
        )

        # `repro top --json` sees it all out-of-process
        rc = main(["top", "--state-dir", state_dir, "--json"])
        assert rc == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["command"] == "top"
        burn = [
            a
            for a in snap["alerts"]
            if a["tenant"] == "burst" and a["sli"] == "deadline_hit_ratio"
        ]
        assert burn, f"expected a burn alert, got {snap['alerts']}"
        assert burn[0]["burn_short"] >= 2.0
        flight = snap["flight"].get(stall.job_id)
        assert flight is not None
        assert flight["verdict"] in (VERDICT_STALLED, VERDICT_BARREN)
        # healthy tenant stays quiet
        assert not [
            a for a in snap["alerts"] if a["tenant"] == "acme"
        ]

    def test_top_once_renders_text(self, tmp_path, capsys):
        state_dir = str(tmp_path / "srv")
        srv = CampaignServer(state_dir, ServerConfig(num_ranks=2))
        srv.submit(JobSpec(tenant="t", molecule="h2", max_iterations=2))
        for _ in range(40):
            srv.tick()
        srv.close()
        rc = main(["top", "--state-dir", state_dir, "--once"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "tenant" in out

    def test_top_missing_dir_errors(self, tmp_path, capsys):
        rc = main(["top", "--state-dir", str(tmp_path / "nope")])
        assert rc == 1
