"""Tests for the cross-campaign evaluation broker (``repro.serve.broker``).

Covers the batched-vs-scalar plan equivalence claim (Hypothesis over
random ansatz families and widths, plus directed coverage of every
diagonal fast-path gate), the wave protocol's determinism and error
containment, group-atomic LPT placement, the end-to-end serve claim —
eight same-molecule campaigns batched to the same energies as
sequential serving — and the broker's ledger/stats surfaces.
"""

import os
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.hpc.scheduler import BatchScheduler, Job
from repro.ir.circuit import Circuit
from repro.ir.gates import Parameter
from repro.ir.library import hardware_efficient_ansatz
from repro.ir.pauli import PauliSum
from repro.serve import (
    CampaignServer,
    Journal,
    JobSpec,
    JobState,
    ServerConfig,
)
from repro.serve.broker import BrokeredEstimator, EvaluationBroker
from repro.serve.spec import estimate_group_memory
from repro.serve.store import ProblemCache
from repro.sim.batched import BatchedStatevectorSimulator
from repro.sim.expectation import expectation_direct
from repro.sim.plan import compile_circuit
from repro.sim.statevector import StatevectorSimulator


@pytest.fixture(autouse=True)
def _fresh_obs():
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


def _scalar_reference(plan, rows):
    """One-row-at-a-time plan execution (the pre-broker path)."""
    out = []
    for row in rows:
        sim = StatevectorSimulator(plan.num_qubits)
        sim.run_plan(plan, row)
        out.append(sim.statevector(copy=True))
    return np.array(out)


def _random_observable(num_qubits, rng, terms=4):
    labels = {}
    for _ in range(terms):
        label = "".join(rng.choice(list("IXYZ")) for _ in range(num_qubits))
        labels[label] = float(rng.uniform(-1, 1))
    return PauliSum.from_label_dict(labels)


# -- batched plan execution == scalar plan execution --------------------------


class TestBatchedPlanEquivalence:
    @settings(max_examples=20)
    @given(
        num_qubits=st.integers(min_value=2, max_value=5),
        layers=st.integers(min_value=1, max_value=2),
        batch=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_hea_plans_match_scalar(self, num_qubits, layers, batch, seed):
        rng = np.random.default_rng(seed)
        ansatz = hardware_efficient_ansatz(num_qubits, layers=layers)
        plan = compile_circuit(ansatz)
        rows = rng.uniform(-np.pi, np.pi, size=(batch, plan.num_parameters))
        sim = BatchedStatevectorSimulator(num_qubits, batch)
        got = sim.run_plan(plan, rows)
        ref = _scalar_reference(plan, rows)
        assert np.allclose(got, ref, atol=1e-10)

    @settings(max_examples=10)
    @given(
        batch=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_uccsd_plans_match_scalar(self, batch, seed):
        from repro.chem.uccsd import build_uccsd_circuit

        rng = np.random.default_rng(seed)
        circuit = build_uccsd_circuit(4, 2).circuit
        plan = compile_circuit(circuit)
        rows = rng.uniform(-0.5, 0.5, size=(batch, plan.num_parameters))
        sim = BatchedStatevectorSimulator(4, batch)
        got = sim.run_plan(plan, rows)
        ref = _scalar_reference(plan, rows)
        assert np.allclose(got, ref, atol=1e-10)

    @pytest.mark.parametrize(
        "gate", ["rz", "p", "rzz", "cp", "crz", "rx", "ry", "rxx", "ryy"]
    )
    def test_every_parametric_gate_matches_scalar(self, gate, rng):
        """Directed coverage of the diagonal fast path (rz/p/rzz/cp/crz)
        and the dense batched matrices — including the 2q controlled
        phases the batched simulator used to reject."""
        c = Circuit(3).h(0).h(1).h(2)
        nq = 2 if gate in ("rzz", "rxx", "ryy", "cp", "crz") else 1
        c.add(gate, [0, 2][:nq], Parameter("a", coeff=0.7, offset=-0.2))
        c.cx(0, 1)
        plan = compile_circuit(c)
        batch = 5
        rows = rng.uniform(-2 * np.pi, 2 * np.pi, size=(batch, 1))
        sim = BatchedStatevectorSimulator(3, batch)
        got = sim.run_plan(plan, rows)
        ref = _scalar_reference(plan, rows)
        assert np.allclose(got, ref, atol=1e-12)

    def test_direct_run_supports_cp_and_crz(self, rng):
        """The ``run`` (circuit template) path shares ``_batched_matrix``
        with the plan path; cp/crz work there too."""
        for gate in ("cp", "crz"):
            c = Circuit(2).h(0).h(1)
            c.add(gate, [0, 1], Parameter("a"))
            batch = 3
            table = {"a": rng.uniform(-np.pi, np.pi, size=batch)}
            sim = BatchedStatevectorSimulator(2, batch)
            sim.run(c, table)
            for b in range(batch):
                ref = StatevectorSimulator(2).run(
                    c.bind({"a": float(table["a"][b])})
                )
                assert np.allclose(sim.states[b], ref, atol=1e-12)

    def test_unsupported_gate_error_names_gate(self):
        with pytest.raises(ValueError, match="u3"):
            BatchedStatevectorSimulator._batched_matrix("u3", np.zeros(2))


# -- the wave protocol --------------------------------------------------------


def _run_workers(broker, worker_fns):
    """Server-tick shape: register workers, start threads, pump."""
    results = {}
    errors = {}

    def wrap(i, fn):
        try:
            results[i] = fn()
        except Exception as err:  # noqa: BLE001 — asserted by tests
            errors[i] = err
        finally:
            broker.worker_finished()

    threads = []
    for i, fn in enumerate(worker_fns):
        broker.worker_started()
        threads.append(threading.Thread(target=wrap, args=(i, fn), daemon=True))
    for t in threads:
        t.start()
    broker.pump()
    for t in threads:
        t.join()
    return results, errors


class TestEvaluationBroker:
    def _setup(self, rng, num_qubits=3):
        ansatz = hardware_efficient_ansatz(num_qubits, layers=1)
        plan = compile_circuit(ansatz)
        ham = _random_observable(num_qubits, rng)
        return plan, ham

    def test_same_physics_campaigns_share_one_group(self, rng):
        plan, ham = self._setup(rng)
        broker = EvaluationBroker(batch_size=8)
        xs = rng.uniform(-1, 1, size=(4, plan.num_parameters))

        def make_worker(k):
            est = BrokeredEstimator(broker, group_key="phys", tag=f"j{k}")
            return lambda: est.estimate_plan(plan, xs[k], ham)

        results, errors = _run_workers(broker, [make_worker(k) for k in range(4)])
        assert not errors
        ref = _scalar_reference(plan, xs)
        for k in range(4):
            assert results[k] == pytest.approx(
                expectation_direct(ref[k], ham), abs=1e-10
            )
        stats = broker.stats()
        assert stats["waves"] == 1
        assert stats["groups_executed"] == 1
        assert stats["batched_evals"] == 4
        assert stats["solo_evals"] == 0
        assert stats["max_occupancy"] == 4

    def test_distinct_physics_split_into_groups(self, rng):
        plan_a, ham_a = self._setup(rng, num_qubits=2)
        plan_b, ham_b = self._setup(rng, num_qubits=3)
        broker = EvaluationBroker(batch_size=8)
        xa = rng.uniform(-1, 1, size=plan_a.num_parameters)
        xb = rng.uniform(-1, 1, size=plan_b.num_parameters)
        est_a = BrokeredEstimator(broker, group_key="a")
        est_b = BrokeredEstimator(broker, group_key="b")
        results, errors = _run_workers(
            broker,
            [
                lambda: est_a.estimate_plan(plan_a, xa, ham_a),
                lambda: est_b.estimate_plan(plan_b, xb, ham_b),
            ],
        )
        assert not errors
        stats = broker.stats()
        assert stats["groups_executed"] == 2
        assert stats["solo_evals"] == 2
        assert stats["batched_evals"] == 0

    def test_block_submission_is_atomic_and_ordered(self, rng):
        """A multi-row submission (an FD sweep) resolves as one block,
        in submission row order."""
        plan, ham = self._setup(rng)
        broker = EvaluationBroker(batch_size=4)  # smaller than the block
        rows = rng.uniform(-1, 1, size=(7, plan.num_parameters))
        est = BrokeredEstimator(broker, group_key="phys", tag="j0")
        results, errors = _run_workers(
            broker, [lambda: est.estimate_plan_many(plan, rows, ham)]
        )
        assert not errors
        ref = _scalar_reference(plan, rows)
        expected = [expectation_direct(s, ham) for s in ref]
        assert np.allclose(results[0], expected, atol=1e-10)

    def test_multi_round_campaigns_stay_in_lockstep(self, rng):
        """Workers that evaluate repeatedly re-batch on every wave:
        R rounds of W workers = R waves of occupancy W, regardless of
        thread scheduling.  Run twice to pin determinism of the stats."""
        plan, ham = self._setup(rng)
        rounds, workers = 3, 4

        def run_once():
            broker = EvaluationBroker(batch_size=8)

            def make_worker(k):
                est = BrokeredEstimator(broker, group_key="phys", tag=f"j{k}")

                def work():
                    out = []
                    for r in range(rounds):
                        x = np.full(plan.num_parameters, 0.1 * (k + 1) + 0.01 * r)
                        out.append(est.estimate_plan(plan, x, ham))
                    return out

                return work

            results, errors = _run_workers(
                broker, [make_worker(k) for k in range(workers)]
            )
            assert not errors
            return results, broker.stats()

        results1, stats1 = run_once()
        results2, stats2 = run_once()
        assert stats1 == stats2
        assert stats1["waves"] == rounds
        assert stats1["max_occupancy"] == workers
        assert stats1["batched_evals"] == rounds * workers
        for k in range(workers):
            assert results1[k] == results2[k]

    def test_group_failure_reaches_only_its_workers(self, rng):
        """A bad request poisons its own group; other groups in the
        same wave still resolve."""
        plan, ham = self._setup(rng)
        broker = EvaluationBroker(batch_size=8)
        good = BrokeredEstimator(broker, group_key="good")
        bad = BrokeredEstimator(broker, group_key="bad")
        x = rng.uniform(-1, 1, size=plan.num_parameters)
        wrong = rng.uniform(-1, 1, size=plan.num_parameters + 1)
        results, errors = _run_workers(
            broker,
            [
                lambda: good.estimate_plan(plan, x, ham),
                lambda: bad.estimate_plan(plan, wrong, ham),
            ],
        )
        assert 0 in results and 1 in errors
        assert isinstance(errors[1], ValueError)

    def test_pump_with_no_workers_returns(self):
        EvaluationBroker().pump()  # no hang, nothing to do

    def test_rejects_silly_batch_size(self):
        with pytest.raises(ValueError):
            EvaluationBroker(batch_size=0)

    def test_occupancy_metrics_emitted_when_enabled(self, rng):
        obs.enable()
        plan, ham = self._setup(rng)
        broker = EvaluationBroker(batch_size=8)
        xs = rng.uniform(-1, 1, size=(3, plan.num_parameters))

        def make_worker(k):
            est = BrokeredEstimator(broker, group_key="phys", tag=f"j{k}")
            return lambda: est.estimate_plan(plan, xs[k], ham)

        _run_workers(broker, [make_worker(k) for k in range(3)])
        snaps = {m["name"]: m for m in obs.get_registry().snapshot()}
        assert snaps["repro_serve_batched_evals_total"]["value"] == 3.0
        occ = snaps["repro_serve_batch_occupancy"]
        assert occ["count"] == 1 and occ["sum"] == 3.0

    def test_ledger_sees_serve_batch_category(self, rng):
        obs.enable()
        plan, ham = self._setup(rng)
        broker = EvaluationBroker(batch_size=8)
        est = BrokeredEstimator(broker, group_key="phys")
        x = rng.uniform(-1, 1, size=plan.num_parameters)
        _run_workers(broker, [lambda: est.estimate_plan(plan, x, ham)])
        peaks = obs.get_memory_ledger().peak_by_category
        assert peaks.get("serve.batch", 0) > 0


# -- physics-tier problem sharing ---------------------------------------------


class TestPhysicsSharing:
    def test_physics_key_ignores_solver_knobs(self):
        a = JobSpec(tenant="alice", molecule="h2", seed=1)
        b = JobSpec(tenant="bob", molecule="h2", seed=2, priority=3)
        c = JobSpec(tenant="bob", molecule="h2", geometry=0.9)
        assert a.physics_key() == b.physics_key()
        assert a.content_key() != b.content_key()
        assert a.physics_key() != c.physics_key()

    def test_problem_cache_aliases_same_physics(self):
        cache = ProblemCache()
        a = cache.get(JobSpec(tenant="t", molecule="h2", seed=1))
        b = cache.get(JobSpec(tenant="t", molecule="h2", seed=2))
        assert a is b  # same dict => same plan object => one batch group
        assert cache.physics_hits == 1
        assert a.get("ansatz") is not None

    def test_group_memory_estimate_scales_by_rows_not_jobs(self):
        from repro.serve.spec import estimate_job_memory

        spec = JobSpec(tenant="t", molecule="h2")
        one = estimate_group_memory([spec])
        eight = estimate_group_memory([spec] * 8)
        assert one == estimate_job_memory(spec)
        # 7 extra amplitude rows, NOT 7 extra full jobs
        assert eight == one + 7 * 16 * (1 << 4)
        assert eight < 8 * one


# -- group-atomic scheduling --------------------------------------------------


class TestGroupScheduling:
    def test_groups_stay_whole_on_one_rank(self):
        jobs = [Job(f"j{i}", num_qubits=4, num_gates=50) for i in range(6)]
        sched = BatchScheduler(num_ranks=4)
        placed = sched.schedule_groups([(jobs[:4], 1000), (jobs[4:], 500)])
        homes = {}
        for rank, members in placed.assignments.items():
            for job in members:
                homes[job.name] = rank
        assert len({homes[f"j{i}"] for i in range(4)}) == 1
        assert len({homes[f"j{i}"] for i in range(4, 6)}) == 1
        assert placed.rank_bytes[homes["j0"]] >= 1000

    def test_group_bytes_respect_rank_capacity(self):
        jobs_a = [Job("a0", 4, 50), Job("a1", 4, 50)]
        jobs_b = [Job("b0", 4, 50), Job("b1", 4, 50)]
        sched = BatchScheduler(num_ranks=2)
        placed = sched.schedule_groups(
            [(jobs_a, 900), (jobs_b, 900)], rank_capacity_bytes=1000
        )
        ranks = {
            job.name: rank
            for rank, members in placed.assignments.items()
            for job in members
        }
        assert ranks["a0"] != ranks["b0"]  # both on one rank would burst 1000

    def test_empty_groups_skipped(self):
        sched = BatchScheduler(num_ranks=2)
        placed = sched.schedule_groups([([], 100), ([Job("x", 4, 10)], 64)])
        assert sum(len(v) for v in placed.assignments.values()) == 1


# -- end-to-end serving -------------------------------------------------------


def _submit_fleet(srv, n, molecule="h2"):
    jobs = []
    for k in range(n):
        jobs.append(
            srv.submit(JobSpec(tenant=f"t{k}", molecule=molecule, seed=k))
        )
    return jobs


class TestServeBatched:
    def test_eight_campaigns_batch_to_sequential_energies(self, tmp_path):
        """The headline equivalence claim: 8 same-molecule campaigns
        with distinct seeds served batched reach the same energies as
        --no-batch sequential serving, to 1e-10."""
        n = 8
        batched = CampaignServer(
            str(tmp_path / "batched"), ServerConfig(num_ranks=2)
        )
        _submit_fleet(batched, n)
        batched.run(stop_when_idle=True, max_ticks=40)
        batched_energies = {
            j.spec.content_key(): j.energy for j in batched.jobs.values()
        }
        assert all(
            j.state == JobState.SUCCEEDED for j in batched.jobs.values()
        )
        stats = batched.broker.stats()
        assert stats["batched_evals"] > 0
        assert stats["max_occupancy"] >= 2
        batched.close()

        solo = CampaignServer(
            str(tmp_path / "solo"),
            ServerConfig(num_ranks=2, batch_enabled=False),
        )
        assert solo.broker is None
        _submit_fleet(solo, n)
        solo.run(stop_when_idle=True, max_ticks=40)
        for j in solo.jobs.values():
            assert j.state == JobState.SUCCEEDED
            assert j.energy == pytest.approx(
                batched_energies[j.spec.content_key()], abs=1e-10
            )
        solo.close()

    def test_distinct_seeds_are_distinct_campaigns(self, tmp_path):
        """Seeded jitter makes same-molecule different-seed submissions
        genuinely independent optimizations (distinct content keys, no
        dedup), which is what gives the broker real work to batch."""
        srv = CampaignServer(str(tmp_path / "srv"), ServerConfig(num_ranks=2))
        jobs = _submit_fleet(srv, 4)
        assert len({j.spec.content_key() for j in jobs}) == 4
        srv.run(stop_when_idle=True, max_ticks=40)
        assert not any(srv.jobs[j.job_id].dedup_hit for j in jobs)
        srv.close()

    def test_health_reports_batch_stats(self, tmp_path):
        srv = CampaignServer(str(tmp_path / "srv"), ServerConfig(num_ranks=2))
        _submit_fleet(srv, 3)
        srv.run(stop_when_idle=True, max_ticks=40)
        batch = srv.health()["batch"]
        assert batch["enabled"]
        assert batch["evals_total"] > 0
        assert batch["mean_occupancy"] > 0
        srv.close()

        off = CampaignServer(
            str(tmp_path / "off"),
            ServerConfig(num_ranks=2, batch_enabled=False),
        )
        assert off.health()["batch"] == {"enabled": False}
        off.close()

    def test_dashboard_surfaces_batch_stats(self, tmp_path):
        from repro.obs.dashboard import Dashboard

        srv = CampaignServer(str(tmp_path / "srv"), ServerConfig(num_ranks=2))
        _submit_fleet(srv, 2)
        srv.run(stop_when_idle=True, max_ticks=40)
        srv.close()
        snap = Dashboard(str(tmp_path / "srv")).snapshot()
        assert snap["batch"]["enabled"]
        assert snap["batch"]["evals_total"] > 0
        screen = Dashboard(str(tmp_path / "srv")).render(snap)
        assert "batch:" in screen

    def test_kill_restart_no_duplicate_completions(self, tmp_path):
        """kill -9 mid-batched-service: the restarted server resumes
        in-flight campaigns, reaches control energies, and no job
        completes twice."""
        cfg = ServerConfig(num_ranks=2)
        control = CampaignServer(str(tmp_path / "control"), cfg)
        _submit_fleet(control, 4)
        control.run(stop_when_idle=True, max_ticks=40)
        control_energies = {
            j.spec.content_key(): j.energy for j in control.jobs.values()
        }
        control.close()

        srv = CampaignServer(str(tmp_path / "srv"), cfg)
        _submit_fleet(srv, 4)
        srv.tick()
        srv.close()  # kill -9: broker, executions, caches all gone

        srv2 = CampaignServer(str(tmp_path / "srv"), cfg)
        srv2.run(stop_when_idle=True, max_ticks=40)
        for j in srv2.jobs.values():
            assert j.state == JobState.SUCCEEDED
            assert j.energy == pytest.approx(
                control_energies[j.spec.content_key()], abs=1e-10
            )
        completions = {}
        journal = Journal(os.path.join(srv2.state_dir, "journal.jsonl"))
        for rec in journal.replay():
            if rec.type == "completed":
                jid = rec.payload["job_id"]
                completions[jid] = completions.get(jid, 0) + 1
        assert completions and all(n == 1 for n in completions.values())
        srv2.close()
