"""Tests for determinant-basis CI (Slater–Condon) and the Davidson
eigensolver."""

import numpy as np
import pytest

from repro.chem.ci import (
    build_ci_matrix,
    cisd_determinants,
    davidson,
    enumerate_determinants,
    run_ci,
)
from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h2, h2o, h4_chain, lih
from repro.chem.scf import run_rhf


class TestDeterminantEnumeration:
    def test_sector_sizes(self):
        # 4 spin orbitals, 2 electrons, Sz=0: 1 alpha x 1 beta = 4
        assert len(enumerate_determinants(4, 2, sz=0)) == 4
        # no spin restriction: C(4,2) = 6
        assert len(enumerate_determinants(4, 2, sz=None)) == 6

    def test_h2o_active_sector(self):
        # 12 spin orbitals, 8 electrons, Sz=0: C(6,4)^2 = 225
        assert len(enumerate_determinants(12, 8, sz=0)) == 225

    def test_particle_number(self):
        for det in enumerate_determinants(6, 4, sz=0):
            assert bin(det).count("1") == 4

    def test_cisd_subset_of_fci(self):
        fci = set(enumerate_determinants(8, 4, sz=0))
        cisd = set(cisd_determinants(8, 4, sz=0))
        assert cisd <= fci
        assert (1 << 4) - 1 in cisd  # reference included

    def test_cisd_smaller_than_fci(self):
        assert len(cisd_determinants(8, 4)) < len(enumerate_determinants(8, 4))


@pytest.fixture(scope="module")
def h4_system():
    scf = run_rhf(h4_chain())
    mh = build_molecular_hamiltonian(scf)
    return scf, mh


class TestSlaterCondon:
    def test_diagonal_is_hf_for_reference(self, h4_system):
        scf, mh = h4_system
        dets = [((1 << 4) - 1)]  # just the reference determinant
        mat = build_ci_matrix(mh, dets)
        assert np.isclose(mat[0, 0], scf.energy, atol=1e-8)

    def test_matrix_symmetric(self, h4_system):
        _, mh = h4_system
        dets = enumerate_determinants(8, 4, sz=0)
        mat = build_ci_matrix(mh, dets)
        assert np.allclose(mat, mat.T, atol=1e-10)

    def test_matches_qubit_hamiltonian_block(self, h4_system):
        """The CI matrix must be exactly the qubit Hamiltonian
        restricted to the sector determinants — Slater–Condon vs JW."""
        _, mh = h4_system
        dets = enumerate_determinants(8, 4, sz=0)
        mat = build_ci_matrix(mh, dets)
        hq = mh.to_qubit().to_sparse()
        block = hq[np.ix_(dets, dets)].toarray().real
        assert np.allclose(mat, block, atol=1e-8)


class TestCIEnergies:
    @pytest.mark.parametrize("factory,n_e", [(h2, 2), (h4_chain, 4)])
    def test_det_fci_equals_qubit_fci(self, factory, n_e):
        scf = run_rhf(factory())
        mh = build_molecular_hamiltonian(scf)
        e_q = exact_ground_energy(mh.to_qubit(), num_particles=n_e, sz=0)
        res = run_ci(mh, "fci")
        assert np.isclose(res.energy, e_q, atol=1e-8)

    def test_variational_hierarchy(self, h4_system):
        """E_HF >= E_CISD >= E_FCI."""
        scf, mh = h4_system
        fci = run_ci(mh, "fci")
        cisd = run_ci(mh, "cisd")
        assert scf.energy >= cisd.energy - 1e-10
        assert cisd.energy >= fci.energy - 1e-10
        assert cisd.dimension < fci.dimension

    def test_h2o_active_space_fast(self):
        """225 determinants instead of 4096 amplitudes; same energy."""
        scf = run_rhf(h2o())
        act = build_molecular_hamiltonian(scf).active_space(
            [0], [1, 2, 3, 4, 5, 6]
        )
        res = run_ci(act, "fci")
        assert res.dimension == 225
        e_q = exact_ground_energy(act.to_qubit(), num_particles=8, sz=0)
        assert np.isclose(res.energy, e_q, atol=1e-7)

    def test_bad_space(self, h4_system):
        _, mh = h4_system
        with pytest.raises(ValueError):
            run_ci(mh, "casscf")

    def test_eigenvector_normalized(self, h4_system):
        _, mh = h4_system
        res = run_ci(mh, "fci")
        assert np.isclose(np.linalg.norm(res.eigenvector), 1.0, atol=1e-8)


class TestDavidson:
    def test_matches_eigh_dense_path(self, rng):
        a = rng.normal(size=(40, 40))
        a = 0.5 * (a + a.T)
        vals, vecs = davidson(a, num_roots=2)
        ref = np.linalg.eigvalsh(a)[:2]
        assert np.allclose(vals, ref, atol=1e-8)

    def test_large_diagonal_dominant(self, rng):
        """Davidson's home turf: large, diagonally dominant matrices."""
        dim = 400
        diag = np.sort(rng.uniform(-5, 5, size=dim))
        a = np.diag(diag) + 0.01 * rng.normal(size=(dim, dim))
        a = 0.5 * (a + a.T)
        vals, vecs = davidson(a, num_roots=3, tol=1e-8)
        ref = np.linalg.eigvalsh(a)[:3]
        assert np.allclose(vals, ref, atol=1e-6)
        # residual check
        for k in range(3):
            r = a @ vecs[:, k] - vals[k] * vecs[:, k]
            assert np.linalg.norm(r) < 1e-6

    def test_num_roots_clamped(self, rng):
        a = np.diag(rng.uniform(size=5))
        vals, _ = davidson(a, num_roots=10)
        assert len(vals) == 5
