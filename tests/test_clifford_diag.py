"""Tests for Clifford conjugation and simultaneous diagonalization of
general commuting Pauli groups."""

import numpy as np
import pytest

from repro.ir.circuit import Circuit
from repro.ir.clifford import (
    conjugate_pauli,
    conjugate_through_circuit,
    diagonalizing_clifford,
    measure_general_group,
)
from repro.ir.gates import Gate
from repro.ir.pauli import PauliString, PauliSum
from repro.sim.expectation import expectation_direct
from repro.utils.linalg import random_statevector
from tests.test_stabilizer_cafqa import random_clifford_circuit


def random_commuting_set(n, k, seed):
    """Commuting strings built by conjugating Z-type strings through a
    random Clifford circuit (guaranteed mutually commuting)."""
    rng = np.random.default_rng(seed)
    c = random_clifford_circuit(n, 20, seed)
    out = []
    for _ in range(k):
        z = int(rng.integers(1, 1 << n))
        _, p = conjugate_through_circuit(c, 1.0, PauliString(n, 0, z))
        out.append(p)
    return out


class TestConjugation:
    def test_h_swaps_x_z(self):
        sign, p = conjugate_pauli(Gate("h", (0,)), 1.0, PauliString.from_label("X"))
        assert p.label() == "Z" and sign == 1.0
        sign, p = conjugate_pauli(Gate("h", (0,)), 1.0, PauliString.from_label("Y"))
        assert p.label() == "Y" and sign == -1.0

    def test_s_maps_x_to_y(self):
        sign, p = conjugate_pauli(Gate("s", (0,)), 1.0, PauliString.from_label("X"))
        assert p.label() == "Y" and sign == 1.0

    def test_cx_propagates_x(self):
        # CX(0->1): X_0 -> X_0 X_1
        sign, p = conjugate_pauli(
            Gate("cx", (0, 1)), 1.0, PauliString.from_label("IX")
        )
        assert p.label() == "XX" and sign == 1.0

    def test_cz_entangles_x(self):
        sign, p = conjugate_pauli(
            Gate("cz", (0, 1)), 1.0, PauliString.from_label("IX")
        )
        assert p.label() == "ZX" and sign == 1.0

    def test_matches_dense_conjugation(self, rng):
        """Random gate/Pauli pairs: compare against dense U P U^dag."""
        gates = [
            Gate("h", (0,)), Gate("s", (1,)), Gate("sdg", (2,)),
            Gate("x", (0,)), Gate("y", (1,)), Gate("z", (2,)),
            Gate("cx", (0, 2)), Gate("cz", (1, 2)), Gate("swap", (0, 1)),
        ]
        n = 3
        for g in gates:
            for _ in range(5):
                p = PauliString(
                    n, int(rng.integers(1 << n)), int(rng.integers(1 << n))
                )
                sign, q = conjugate_pauli(g, 1.0, p)
                u = Circuit(n, [g]).to_matrix()
                expected = u @ p.to_matrix() @ u.conj().T
                assert np.allclose(expected, sign * q.to_matrix(), atol=1e-9)

    def test_non_clifford_rejected(self):
        with pytest.raises(ValueError):
            conjugate_pauli(Gate("t", (0,)), 1.0, PauliString.from_label("X"))


class TestDiagonalization:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_commuting_sets(self, seed):
        n = 4
        strings = random_commuting_set(n, 5, seed)
        circ = diagonalizing_clifford(strings, n)
        for p in strings:
            _, rot = conjugate_through_circuit(circ, 1.0, p)
            assert rot.x == 0  # Z-type after rotation

    def test_already_diagonal_needs_nothing(self):
        strings = [PauliString.from_label("ZZ"), PauliString.from_label("IZ")]
        circ = diagonalizing_clifford(strings, 2)
        assert len(circ) == 0

    def test_bell_basis_group(self):
        """{XX, ZZ, YY} (the Bell-basis stabilizers) need entanglement:
        qubit-wise they are incompatible, generally they co-diagonalize."""
        strings = [
            PauliString.from_label("XX"),
            PauliString.from_label("ZZ"),
            PauliString.from_label("YY"),
        ]
        assert not strings[0].qubitwise_commutes_with(strings[1])
        circ = diagonalizing_clifford(strings, 2)
        assert circ.count_2q() > 0  # entangling rotation required
        for p in strings:
            _, rot = conjugate_through_circuit(circ, 1.0, p)
            assert rot.x == 0

    def test_anticommuting_rejected(self):
        with pytest.raises(ValueError):
            diagonalizing_clifford(
                [PauliString.from_label("X"), PauliString.from_label("Z")], 1
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_measure_general_group(self, seed, rng):
        n = 4
        strings = random_commuting_set(n, 5, seed + 20)
        coeffs = rng.normal(size=len(strings))
        group = [(complex(c), p) for c, p in zip(coeffs, strings)]
        state = random_statevector(n, rng)
        val, _ = measure_general_group(state, group, n)
        h = PauliSum.zero(n)
        for c, p in group:
            h.add_term(p, c.real)
        assert np.isclose(val, expectation_direct(state, h), atol=1e-8)

    def test_chemistry_groups_diagonalize(self):
        """Every general-commuting group of the H2 Hamiltonian must be
        measurable through one Clifford rotation, reproducing the exact
        energy."""
        from repro.chem.hamiltonian import build_molecular_hamiltonian
        from repro.chem.molecule import h2
        from repro.chem.reference import hartree_fock_state
        from repro.chem.scf import run_rhf

        hq = build_molecular_hamiltonian(run_rhf(h2())).to_qubit()
        state = hartree_fock_state(4, 2)
        total = 0.0
        groups = hq.group_general_commuting()
        for group in groups:
            val, _ = measure_general_group(state, group, 4)
            total += val
        assert np.isclose(total, expectation_direct(state, hq), atol=1e-8)
        # fewer bases than qubit-wise grouping
        assert len(groups) < len(hq.group_qubitwise_commuting())
