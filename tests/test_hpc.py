"""Tests for the HPC substrate: communicator, distributed statevector,
performance model, and batch scheduler."""

import numpy as np
import pytest

from repro.hpc.cluster import MACHINES, get_machine
from repro.hpc.comm import SimComm
from repro.hpc.distributed import DistributedStatevector
from repro.hpc.perfmodel import (
    count_exchanges,
    estimate_circuit_time,
    max_qubits_for_memory,
    strong_scaling_curve,
    weak_scaling_curve,
)
from repro.hpc.scheduler import BatchScheduler, Job
from repro.ir.circuit import Circuit
from repro.ir.pauli import PauliSum
from repro.sim.expectation import expectation_direct
from repro.sim.statevector import StatevectorSimulator
from tests.test_statevector import random_circuit


class TestSimComm:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            SimComm(3)

    def test_exchange_symmetric(self):
        comm = SimComm(2)
        a = np.array([1.0, 2.0])
        b = np.array([3.0, 4.0])
        out = comm.exchange([a, b], [1, 0])
        assert np.array_equal(out[0], b)
        assert np.array_equal(out[1], a)
        assert comm.stats.point_to_point_messages == 2
        assert comm.stats.point_to_point_bytes == a.nbytes + b.nbytes

    def test_asymmetric_rejected(self):
        comm = SimComm(4)
        bufs = [np.zeros(1)] * 4
        with pytest.raises(ValueError):
            comm.exchange(bufs, [1, 2, 3, 0])  # not an involution

    def test_self_partner_free(self):
        comm = SimComm(2)
        a = np.array([1.0])
        out = comm.exchange([a, None], [0, 1])
        assert np.array_equal(out[0], a)
        assert comm.stats.point_to_point_bytes == 0

    def test_allreduce(self):
        comm = SimComm(4)
        assert comm.allreduce([1, 2, 3, 4]) == 10
        assert comm.stats.allreduce_calls == 1
        assert comm.stats.allreduce_bytes > 0

    def test_gather(self):
        comm = SimComm(2)
        out = comm.gather([np.array([1.0]), np.array([2.0])])
        assert np.array_equal(out, [1.0, 2.0])


class TestDistributedStatevector:
    def test_power_of_two_ranks(self):
        with pytest.raises(ValueError):
            DistributedStatevector(6, 3)

    def test_minimum_local_qubits(self):
        with pytest.raises(ValueError):
            DistributedStatevector(4, 8)  # would leave 1 local qubit

    @pytest.mark.parametrize("ranks", [1, 2, 4, 8])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_serial(self, ranks, seed):
        n = 6
        c = random_circuit(n, 35, seed)
        ref = StatevectorSimulator(n).run(c).copy()
        d = DistributedStatevector(n, ranks)
        d.run(c)
        assert np.allclose(d.gather(), ref, atol=1e-9)

    def test_norm_preserved(self):
        d = DistributedStatevector(6, 4)
        d.run(random_circuit(6, 40, 3))
        assert np.isclose(d.norm(), 1.0, atol=1e-9)

    def test_local_gates_no_communication(self):
        """Gates on initially-local qubits must not communicate."""
        d = DistributedStatevector(6, 4)  # local qubits 0..3
        c = Circuit(6).h(0).cx(0, 1).rz(0.3, 2).cx(2, 3)
        d.run(c)
        assert d.exchanges == 0
        assert d.comm.stats.point_to_point_bytes == 0

    def test_global_gate_communicates(self):
        d = DistributedStatevector(6, 4)  # qubits 4, 5 are global
        d.run(Circuit(6).h(5))
        assert d.exchanges == 1
        assert d.comm.stats.point_to_point_bytes > 0

    def test_relocation_amortized(self):
        """Repeated gates on a relocated qubit pay once."""
        d = DistributedStatevector(6, 4)
        d.run(Circuit(6).h(5).rz(0.1, 5).rz(0.2, 5).h(5))
        assert d.exchanges == 1

    def test_expectation_matches_serial(self):
        n = 6
        c = random_circuit(n, 30, 7)
        h = PauliSum.from_label_dict(
            {"XXIIII": 0.5, "IZZIII": -1.2, "YIIYII": 0.3,
             "ZIIIIZ": 0.9, "IIXZII": 0.4, "IIIIII": 0.25}
        )
        ref_state = StatevectorSimulator(n).run(c).copy()
        e_ref = expectation_direct(ref_state, h)
        for ranks in (1, 2, 4):
            d = DistributedStatevector(n, ranks)
            d.run(c)
            assert np.isclose(d.expectation(h), e_ref, atol=1e-9)

    def test_memory_per_rank(self):
        d = DistributedStatevector(10, 4)
        assert d.memory_per_rank_bytes() == (1 << 8) * 16

    def test_gather_respects_layout(self):
        """After relocations, gather() must untangle the layout."""
        n = 6
        c = Circuit(6).h(5).cx(5, 0).h(4).cx(4, 5)
        ref = StatevectorSimulator(n).run(c).copy()
        d = DistributedStatevector(n, 4)
        d.run(c)
        assert d.layout != list(range(n))  # relocations happened
        assert np.allclose(d.gather(), ref, atol=1e-10)

    def test_unbound_rejected(self):
        from repro.ir.gates import Parameter

        d = DistributedStatevector(6, 2)
        with pytest.raises(ValueError):
            d.run(Circuit(6).rz(Parameter("x"), 0))


class TestPerfModel:
    def test_exchange_count_matches_engine(self):
        """The model's layout replay must agree with the execution
        engine's actual exchange counter."""
        for seed in (0, 1, 2):
            n, ranks = 6, 4
            c = random_circuit(n, 30, seed)
            d = DistributedStatevector(n, ranks)
            d.run(c)
            predicted = count_exchanges(c, n, ranks)
            # engine adds no expectation exchanges here
            assert predicted == d.exchanges

    def test_strong_scaling_compute_drops(self):
        curve = strong_scaling_curve(28, 10000, [1, 2, 4, 8, 16])
        computes = [curve[r].compute for r in (1, 2, 4, 8, 16)]
        assert all(b < a for a, b in zip(computes, computes[1:]))

    def test_strong_scaling_has_communication_cost(self):
        curve = strong_scaling_curve(28, 10000, [1, 16])
        assert curve[1].communication == 0.0
        assert curve[16].communication > 0.0

    def test_weak_scaling_slice_constant(self):
        curve = weak_scaling_curve(26, 10000, [1, 2, 4, 8])
        computes = [curve[r].compute for r in (1, 2, 4, 8)]
        # constant per-rank slice -> constant compute time
        assert np.allclose(computes, computes[0], rtol=1e-9)

    def test_machine_presets_exist(self):
        for name in ("perlmutter", "summit", "frontier", "cpu-node"):
            assert get_machine(name).mem_bandwidth > 0
        with pytest.raises(KeyError):
            get_machine("lumi")

    def test_perlmutter_faster_than_summit(self):
        tp = estimate_circuit_time(10000, 28, 4, "perlmutter")
        ts = estimate_circuit_time(10000, 28, 4, "summit")
        assert tp.total < ts.total

    def test_max_qubits_for_memory(self):
        # A100 40 GB: 2^31 amplitudes = 32 GiB fits, 2^32 does not.
        assert max_qubits_for_memory("perlmutter", 1) == 31
        # doubling ranks adds one qubit
        assert max_qubits_for_memory("perlmutter", 2) == 32


class TestBatchScheduler:
    def test_speedup_with_many_jobs(self):
        jobs = [Job(f"j{k}", 20, 5000) for k in range(32)]
        sched = BatchScheduler(8).schedule(jobs)
        assert sched.speedup > 6.0  # near-perfect for uniform jobs
        assert 0.9 < sched.utilization <= 1.0

    def test_single_rank_serial(self):
        jobs = [Job(f"j{k}", 16, 1000) for k in range(4)]
        sched = BatchScheduler(1).schedule(jobs)
        assert np.isclose(sched.speedup, 1.0)

    def test_all_jobs_assigned(self):
        jobs = [Job(f"j{k}", 18, 100 * (k + 1)) for k in range(10)]
        sched = BatchScheduler(3).schedule(jobs)
        assigned = [j.name for js in sched.assignments.values() for j in js]
        assert sorted(assigned) == sorted(j.name for j in jobs)

    def test_lpt_beats_worst_case(self):
        """Makespan must be within 4/3 of the trivial lower bound."""
        rng = np.random.default_rng(5)
        jobs = [Job(f"j{k}", 20, int(rng.integers(100, 10000))) for k in range(40)]
        scheduler = BatchScheduler(4)
        sched = scheduler.schedule(jobs)
        lower = max(
            sched.serial_time / 4, max(scheduler.job_cost(j) for j in jobs)
        )
        assert sched.makespan <= lower * (4 / 3) + 1e-12
