"""Tests for the lattice-model Hamiltonians against analytic results."""

import numpy as np
import pytest

from repro.chem.fci import exact_ground_energy
from repro.chem.lattice import (
    fermi_hubbard,
    fermi_hubbard_qubit,
    heisenberg_xxz,
    transverse_field_ising,
)
from repro.chem.reference import hartree_fock_state
from repro.chem.uccsd import uccsd_generators
from repro.core.vqe import VQE


class TestTFIM:
    def test_term_count(self):
        h = transverse_field_ising(5)
        assert h.num_terms == 4 + 5  # 4 bonds + 5 fields

    def test_classical_limit(self):
        """h = 0: ground energy is the classical ferromagnet -J(n-1)."""
        h = transverse_field_ising(5, j=1.0, h=0.0)
        assert np.isclose(exact_ground_energy(h), -4.0)

    def test_paramagnet_limit(self):
        """J = 0: every spin aligns with the field, E = -h n."""
        h = transverse_field_ising(4, j=0.0, h=2.0)
        assert np.isclose(exact_ground_energy(h), -8.0)

    def test_critical_point_energy(self):
        """At J = h = 1 (open chain, n=2): E0 = -sqrt(J^2+... analytic
        2-site value: eigenvalues of -ZZ - X1 - X2 are -sqrt(5), ...)."""
        h = transverse_field_ising(2, j=1.0, h=1.0)
        assert np.isclose(exact_ground_energy(h), -np.sqrt(5.0), atol=1e-10)

    def test_periodic_adds_bond(self):
        open_chain = transverse_field_ising(4)
        ring = transverse_field_ising(4, periodic=True)
        assert ring.num_terms == open_chain.num_terms + 1


class TestHeisenberg:
    def test_two_site_singlet(self):
        """Two-site antiferromagnet: ground state is the singlet with
        E = -3 J (XX+YY+ZZ eigenvalue -3 on the singlet)."""
        h = heisenberg_xxz(2, j_xy=1.0, j_z=1.0)
        assert np.isclose(exact_ground_energy(h), -3.0)

    def test_ising_limit(self):
        """j_xy = 0 reduces to classical Ising: E = -j_z (n-1) for
        the antiferromagnetic Neel state with j_z > 0."""
        h = heisenberg_xxz(4, j_xy=0.0, j_z=1.0)
        assert np.isclose(exact_ground_energy(h), -3.0)

    def test_field_shifts_sectors(self):
        h0 = heisenberg_xxz(3, field=0.0)
        h1 = heisenberg_xxz(3, field=-10.0)
        # strong negative field polarizes: lower energy
        assert exact_ground_energy(h1) < exact_ground_energy(h0)


class TestFermiHubbard:
    def test_hermitian(self):
        hq = fermi_hubbard_qubit(3)
        assert hq.is_hermitian()

    def test_two_site_analytic(self):
        """2-site Hubbard, 2 electrons, Sz=0:
        E0 = (U - sqrt(U^2 + 16 t^2)) / 2."""
        t, u = 1.0, 4.0
        hq = fermi_hubbard_qubit(2, tunneling=t, interaction=u)
        e = exact_ground_energy(hq, num_particles=2, sz=0)
        expected = (u - np.sqrt(u * u + 16 * t * t)) / 2
        assert np.isclose(e, expected, atol=1e-10)

    def test_atomic_limit(self):
        """t = 0: half filling avoids double occupancy, E = 0."""
        hq = fermi_hubbard_qubit(2, tunneling=0.0, interaction=4.0)
        assert np.isclose(
            exact_ground_energy(hq, num_particles=2, sz=0), 0.0, atol=1e-10
        )

    def test_noninteracting_limit(self):
        """U = 0: tight-binding; 2-site, 2 electrons -> E = -2t."""
        hq = fermi_hubbard_qubit(2, tunneling=1.0, interaction=0.0)
        assert np.isclose(
            exact_ground_energy(hq, num_particles=2, sz=0), -2.0, atol=1e-10
        )

    def test_number_conservation(self):
        op = fermi_hubbard(3)
        assert op.conserves_particle_number()

    def test_vqe_on_hubbard(self):
        """The chemistry-mode VQE drives the Hubbard model unchanged —
        one framework, any second-quantized workload.  The reference is
        the Neel-like configuration (one electron per site, Sz = 0):
        the aufbau determinant double-occupies a site and sits at a
        stationary point of the landscape."""
        t, u = 1.0, 4.0
        hq = fermi_hubbard_qubit(2, tunneling=t, interaction=u)
        gens = [a for _, a in uccsd_generators(4, 2, generalized=True)]
        neel = np.zeros(16, dtype=complex)
        neel[0b1001] = 1.0  # up on site 0 (qubit 0), down on site 1 (qubit 3)
        vqe = VQE(hq, generators=gens, reference_state=neel)
        res = vqe.run()
        expected = (u - np.sqrt(u * u + 16 * t * t)) / 2
        assert abs(res.energy - expected) < 1e-6

    def test_chemical_potential(self):
        mu = 0.7
        h_no = fermi_hubbard_qubit(2, chemical_potential=0.0)
        h_mu = fermi_hubbard_qubit(2, chemical_potential=mu)
        # at fixed particle number N, -mu N is a constant shift
        e_no = exact_ground_energy(h_no, num_particles=2, sz=0)
        e_mu = exact_ground_energy(h_mu, num_particles=2, sz=0)
        assert np.isclose(e_mu, e_no - 2 * mu, atol=1e-10)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            fermi_hubbard(1)
        with pytest.raises(ValueError):
            transverse_field_ising(1)
