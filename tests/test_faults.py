"""Tests for the fault-injection layer: specs, ledger, retry policy,
faulty communicator, distributed execution under faults, and graceful
scheduler/ensemble degradation."""

import numpy as np
import pytest

from repro.hpc.comm import SimComm
from repro.hpc.distributed import DistributedStatevector
from repro.hpc.ensemble import EnsembleExecutor
from repro.hpc.faults import (
    FaultInjector,
    FaultSpec,
    RankFailure,
    TransientCommError,
)
from repro.hpc.perfmodel import SimulatedClock
from repro.hpc.scheduler import BatchScheduler, Job
from repro.ir.circuit import Circuit
from repro.ir.library import hardware_efficient_ansatz
from repro.ir.pauli import PauliSum
from repro.sim.statevector import StatevectorSimulator
from repro.utils.retry import RetryExhaustedError, RetryPolicy
from tests.test_statevector import random_circuit


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor_strike", at_step=0)

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("rank_crash", at_step=0, scope="cosmic")

    def test_needs_a_trigger(self):
        with pytest.raises(ValueError):
            FaultSpec("transient_exchange")

    def test_crash_defaults_to_single_trigger(self):
        assert FaultSpec("rank_crash", at_step=3).max_triggers == 1
        assert FaultSpec("transient_exchange", probability=0.5).max_triggers is None


class TestRetryPolicy:
    def test_succeeds_first_try(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.call(lambda: 42) == 42
        assert policy.stats.retries == 0

    def test_retries_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientCommError("drop")
            return "ok"

        clock = SimulatedClock()
        policy = RetryPolicy(max_attempts=5, base_delay=0.01, seed=4)
        out = policy.call(flaky, retry_on=(TransientCommError,), clock=clock)
        assert out == "ok"
        assert len(attempts) == 3
        assert policy.stats.retries == 2
        # backoff is simulated, accumulated on the clock, never slept
        assert clock.now == pytest.approx(policy.stats.backoff_seconds)
        assert clock.now > 0.0

    def test_exhaustion_raises_with_cause(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.0)

        def always_fails():
            raise TransientCommError("nope")

        with pytest.raises(RetryExhaustedError) as exc:
            policy.call(always_fails, retry_on=(TransientCommError,))
        assert isinstance(exc.value.last_error, TransientCommError)
        assert policy.stats.failures == 1

    def test_non_retryable_propagates_immediately(self):
        policy = RetryPolicy(max_attempts=5)
        calls = []

        def fails_hard():
            calls.append(1)
            raise ValueError("fatal")

        with pytest.raises(ValueError):
            policy.call(fails_hard, retry_on=(TransientCommError,))
        assert len(calls) == 1

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=10,
            base_delay=0.1,
            backoff_factor=2.0,
            max_delay=0.5,
            jitter=0.0,
        )
        delays = [policy.backoff_delay(k) for k in range(1, 6)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_is_seeded(self):
        a = RetryPolicy(max_attempts=3, jitter=0.5, seed=9)
        b = RetryPolicy(max_attempts=3, jitter=0.5, seed=9)
        assert [a.backoff_delay(1) for _ in range(4)] == [
            b.backoff_delay(1) for _ in range(4)
        ]


class TestFaultInjectorDeterminism:
    def _event_trace(self, seed):
        injector = FaultInjector(
            [
                FaultSpec("transient_exchange", probability=0.3),
                FaultSpec("corruption", probability=0.2),
            ],
            seed=seed,
        )
        comm = SimComm(
            2,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=20, seed=seed),
        )
        buf = np.arange(8, dtype=np.complex128)
        for _ in range(30):
            comm.exchange([buf, buf + 1], [1, 0])
        return [(e.kind, e.step) for e in injector.ledger.events]

    def test_same_seed_same_fault_sequence(self):
        assert self._event_trace(13) == self._event_trace(13)

    def test_different_seed_different_sequence(self):
        assert self._event_trace(13) != self._event_trace(14)


class TestSimCommFaults:
    def test_transient_without_policy_escalates(self):
        injector = FaultInjector(
            [FaultSpec("transient_exchange", at_step=0)], seed=0
        )
        comm = SimComm(2, fault_injector=injector)
        with pytest.raises(TransientCommError):
            comm.exchange([np.ones(2), np.ones(2)], [1, 0])
        assert comm.stats.transient_errors == 1

    def test_transient_with_policy_recovers(self):
        injector = FaultInjector(
            [FaultSpec("transient_exchange", at_step=0)], seed=0
        )
        comm = SimComm(
            2,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=3, seed=1),
        )
        a, b = np.arange(2.0), np.arange(2.0) + 5
        out = comm.exchange([a, b], [1, 0])
        assert np.array_equal(out[0], b)
        assert comm.stats.retries == 1
        assert comm.stats.retry_backoff_s > 0.0
        assert injector.ledger.count("transient_exchange") == 1

    def test_rank_crash_not_retried(self):
        injector = FaultInjector(
            [FaultSpec("rank_crash", rank=1, at_step=0)], seed=0
        )
        comm = SimComm(
            2,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=5, seed=1),
        )
        with pytest.raises(RankFailure) as exc:
            comm.exchange([np.ones(2), np.ones(2)], [1, 0])
        assert exc.value.rank == 1
        assert comm.stats.retries == 0
        assert 1 in injector.crashed_ranks

    def test_detectable_corruption_is_retried_clean(self):
        """A checksum-detected bit flip triggers retransmission; the
        delivered payload must be the uncorrupted original."""
        injector = FaultInjector(
            [FaultSpec("corruption", rank=0, at_step=0, bit_flips=3)], seed=5
        )
        comm = SimComm(
            2,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=3, seed=1),
        )
        a = np.arange(16, dtype=np.complex128)
        b = a + 100
        out = comm.exchange([a, b], [1, 0])
        assert np.array_equal(out[1], a)  # delivered clean after retry
        assert comm.stats.corrupted_messages == 1
        assert injector.ledger.count("corruption") == 1

    def test_undetectable_corruption_propagates(self):
        injector = FaultInjector(
            [
                FaultSpec(
                    "corruption", rank=0, at_step=0, bit_flips=1, detectable=False
                )
            ],
            seed=5,
        )
        comm = SimComm(2, fault_injector=injector)
        a = np.arange(16, dtype=np.complex128)
        b = a + 100
        out = comm.exchange([a, b], [1, 0])
        assert not np.array_equal(out[1], a)  # silently corrupted
        assert comm.stats.corrupted_messages == 0  # checksum never saw it

    def test_straggler_counted(self):
        injector = FaultInjector(
            [FaultSpec("straggler", at_step=0, latency_multiplier=8.0)], seed=0
        )
        comm = SimComm(2, fault_injector=injector)
        comm.exchange([np.ones(2), np.ones(2)], [1, 0])
        assert comm.stats.straggler_ops == 1
        assert injector.ledger.count("straggler") == 1

    def test_allreduce_transient_recovered(self):
        injector = FaultInjector(
            [FaultSpec("transient_exchange", at_step=0)], seed=0
        )
        comm = SimComm(
            2,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=3, seed=1),
        )
        assert comm.allreduce([1.0, 2.0]) == pytest.approx(3.0)
        assert comm.stats.retries == 1

    def test_stats_reset_clears_fault_counters(self):
        injector = FaultInjector(
            [FaultSpec("transient_exchange", at_step=0)], seed=0
        )
        comm = SimComm(
            2,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=3, seed=1),
        )
        comm.exchange([np.ones(2), np.ones(2)], [1, 0])
        comm.stats.reset()
        assert comm.stats.retries == 0
        assert comm.stats.retry_backoff_s == 0.0
        assert comm.stats.transient_errors == 0


class TestDistributedUnderFaults:
    def test_transient_faults_do_not_change_the_state(self):
        """A faulty-but-retried distributed run must be bit-identical
        to the fault-free one, with every fault in the ledger."""
        n = 6
        c = random_circuit(n, 40, 2)
        clean = DistributedStatevector(n, 4)
        clean.run(c)
        injector = FaultInjector(
            [
                FaultSpec("transient_exchange", probability=0.2),
                FaultSpec("corruption", probability=0.1, bit_flips=2),
            ],
            seed=21,
        )
        faulty = DistributedStatevector(
            n,
            4,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=12, seed=3),
        )
        faulty.run(c)
        assert np.allclose(faulty.gather(), clean.gather(), atol=0.0)
        stats = faulty.comm.stats
        assert stats.retries == stats.transient_errors
        # every detected fault is retried: transients plus
        # checksum-caught corruptions
        assert (
            injector.ledger.count("transient_exchange") + stats.corrupted_messages
            == stats.transient_errors
        )
        assert stats.transient_errors > 0  # the scenario actually fired
        assert injector.ledger.count("corruption") > 0

    def test_expectation_survives_faults(self):
        n = 6
        c = random_circuit(n, 30, 7)
        h = PauliSum.from_label_dict(
            {"XXIIII": 0.5, "IZZIII": -1.2, "ZIIIIZ": 0.9, "IIIIII": 0.25}
        )
        clean = DistributedStatevector(n, 4)
        clean.run(c)
        e_ref = clean.expectation(h)
        injector = FaultInjector(
            [FaultSpec("transient_exchange", probability=0.25)], seed=8
        )
        faulty = DistributedStatevector(
            n,
            4,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=12, seed=8),
        )
        faulty.run(c)
        assert faulty.expectation(h) == pytest.approx(e_ref, abs=1e-12)

    def test_gate_scope_crash_interrupts_run(self):
        injector = FaultInjector(
            [FaultSpec("rank_crash", scope="gate", at_step=5, rank=2)], seed=0
        )
        d = DistributedStatevector(6, 4, fault_injector=injector)
        with pytest.raises(RankFailure) as exc:
            d.run(random_circuit(6, 30, 1))
        assert exc.value.rank == 2
        assert d.gates_applied == 5

    def test_retry_exhaustion_escalates(self):
        injector = FaultInjector(
            [FaultSpec("transient_exchange", probability=1.0)], seed=0
        )
        d = DistributedStatevector(
            6,
            2,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=3, seed=0),
        )
        with pytest.raises(RetryExhaustedError):
            d.run(Circuit(6).h(5))

    def test_explicit_comm_plus_injector_rejected(self):
        comm = SimComm(2)
        injector = FaultInjector(
            [FaultSpec("transient_exchange", at_step=0)], seed=0
        )
        with pytest.raises(ValueError):
            DistributedStatevector(6, 2, comm=comm, fault_injector=injector)


class TestSchedulerDegradation:
    def _jobs(self, count=12):
        return [Job(f"j{k}", 18, 500 + 100 * (k % 5)) for k in range(count)]

    def test_schedule_on_survivors_only(self):
        sched = BatchScheduler(4).schedule(self._jobs(), available_ranks=[0, 2, 3])
        assert sorted(sched.assignments) == [0, 2, 3]
        assert sched.failed_ranks == [1]
        assert sched.num_survivors == 3

    def test_no_survivors_rejected(self):
        with pytest.raises(ValueError):
            BatchScheduler(2).schedule(self._jobs(), available_ranks=[])

    def test_reschedule_preserves_all_unfinished_jobs(self):
        scheduler = BatchScheduler(4)
        jobs = self._jobs()
        healthy = scheduler.schedule(jobs)
        victim_jobs = [j.name for j in healthy.assignments[1]]
        done = victim_jobs[:1]
        degraded = scheduler.reschedule_after_failure(healthy, 1, completed=done)
        assert degraded.failed_ranks == [1]
        assert 1 not in degraded.assignments
        surviving = [
            j.name for js in degraded.assignments.values() for j in js
        ]
        # every job is either completed on the dead rank or reassigned
        assert sorted(surviving + done) == sorted(j.name for j in jobs)

    def test_degraded_makespan_never_improves(self):
        scheduler = BatchScheduler(4)
        healthy = scheduler.schedule(self._jobs())
        degraded = scheduler.reschedule_after_failure(healthy, 0)
        assert degraded.makespan >= healthy.makespan
        assert degraded.speedup <= healthy.speedup
        assert degraded.serial_time == healthy.serial_time

    def test_reschedule_unknown_rank_rejected(self):
        scheduler = BatchScheduler(2)
        healthy = scheduler.schedule(self._jobs(4))
        with pytest.raises(ValueError):
            scheduler.reschedule_after_failure(healthy, 5)


class TestEnsembleDegradation:
    def _setup(self):
        n = 4
        ansatz = hardware_efficient_ansatz(n, layers=1)
        rng = np.random.default_rng(3)
        circuits = [
            ansatz.bind(list(rng.uniform(-1, 1, ansatz.num_parameters)))
            for _ in range(8)
        ]
        h = PauliSum.from_label_dict({"ZIII": 1.0, "IZII": 0.5, "XXII": 0.25})
        return circuits, h

    def test_values_unchanged_by_rank_death(self):
        circuits, h = self._setup()
        clean = EnsembleExecutor(4).evaluate(circuits, h)
        injector = FaultInjector(
            [FaultSpec("rank_crash", scope="batch", at_step=2)], seed=0
        )
        faulty = EnsembleExecutor(4, fault_injector=injector).evaluate(circuits, h)
        assert np.allclose(faulty.values, clean.values, atol=0.0)
        assert len(faulty.failed_ranks) == 1
        assert injector.ledger.count("rank_crash") == 1

    def test_degraded_schedule_accounting(self):
        circuits, h = self._setup()
        clean = EnsembleExecutor(4).evaluate(circuits, h)
        injector = FaultInjector(
            [FaultSpec("rank_crash", scope="batch", at_step=0)], seed=0
        )
        faulty = EnsembleExecutor(4, fault_injector=injector).evaluate(circuits, h)
        assert faulty.makespan >= clean.makespan
        assert faulty.speedup <= clean.speedup
        dead = faulty.failed_ranks[0]
        assert dead not in faulty.schedule.assignments

    def test_pre_crashed_rank_excluded_upfront(self):
        circuits, h = self._setup()
        injector = FaultInjector(
            [FaultSpec("rank_crash", scope="batch", at_step=0)], seed=0
        )
        executor = EnsembleExecutor(4, fault_injector=injector)
        first = executor.evaluate(circuits, h)
        dead = first.failed_ranks[0]
        second = executor.evaluate(circuits, h)
        # the crash spec is exhausted; the dead rank stays excluded
        assert dead not in second.schedule.assignments
        assert second.failed_ranks == first.failed_ranks
