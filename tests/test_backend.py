"""Tests for the backend registry — the XACC-style execution seam."""

import numpy as np
import pytest

from repro.ir.circuit import Circuit
from repro.ir.pauli import PauliSum
from repro.sim.backend import (
    Backend,
    available_backends,
    get_backend,
    register_backend,
)


@pytest.fixture()
def bell_and_observable():
    circuit = Circuit(4).h(0).cx(0, 1).cx(1, 2).cx(2, 3)
    h = PauliSum.from_label_dict({"ZZZZ": 1.0, "XXXX": 1.0, "ZIII": 0.5})
    return circuit, h


class TestRegistry:
    def test_builtin_backends_listed(self):
        names = available_backends()
        for expected in ("statevector", "sampled", "distributed"):
            assert expected in names

    def test_unknown_backend(self):
        with pytest.raises(KeyError):
            get_backend("quantum-annealer")

    def test_register_custom(self, bell_and_observable):
        circuit, h = bell_and_observable

        class FixedBackend(Backend):
            name = "fixed"

            def expectation(self, c, o):
                return 42.0

        register_backend("fixed-test", FixedBackend)
        try:
            assert get_backend("fixed-test").expectation(circuit, h) == 42.0
        finally:
            from repro.sim import backend as backend_mod

            backend_mod._REGISTRY.pop("fixed-test", None)


class TestBackendAgreement:
    def test_statevector_backend(self, bell_and_observable):
        circuit, h = bell_and_observable
        b = get_backend("statevector")
        # GHZ state: <ZZZZ> = <XXXX> = 1, <ZIII> = 0
        assert np.isclose(b.expectation(circuit, h), 2.0, atol=1e-10)
        state = b.statevector(circuit)
        assert np.isclose(abs(state[0]) ** 2, 0.5, atol=1e-10)

    def test_distributed_backend_matches(self, bell_and_observable):
        circuit, h = bell_and_observable
        ref = get_backend("statevector").expectation(circuit, h)
        dist = get_backend("distributed", num_ranks=4)
        assert np.isclose(dist.expectation(circuit, h), ref, atol=1e-9)
        assert np.allclose(
            dist.statevector(circuit),
            get_backend("statevector").statevector(circuit),
            atol=1e-9,
        )

    def test_sampled_backend_converges(self, bell_and_observable):
        circuit, h = bell_and_observable
        ref = get_backend("statevector").expectation(circuit, h)
        sampled = get_backend("sampled", shots_per_group=20000, seed=3)
        assert abs(sampled.expectation(circuit, h) - ref) < 0.1

    def test_vqe_runs_on_any_backend_estimator(self):
        """The circuit-mode VQE driver is backend-agnostic: direct and
        caching estimators agree on the optimized H2 energy."""
        from repro.chem.hamiltonian import build_molecular_hamiltonian
        from repro.chem.molecule import h2
        from repro.chem.scf import run_rhf
        from repro.chem.uccsd import build_uccsd_circuit
        from repro.core.estimator import make_estimator
        from repro.core.vqe import VQE
        from repro.opt.scipy_wrap import Cobyla

        hq = build_molecular_hamiltonian(run_rhf(h2())).to_qubit()
        ansatz = build_uccsd_circuit(4, 2).circuit
        energies = {}
        for name in ("direct", "caching"):
            vqe = VQE(
                hq, ansatz=ansatz,
                estimator=make_estimator(name),
                optimizer=Cobyla(max_iterations=500),
            )
            energies[name] = vqe.run().energy
        assert np.isclose(energies["direct"], energies["caching"], atol=1e-6)
