"""End-to-end tests of the Fig. 2 workflow pipeline."""

import numpy as np
import pytest

from repro.chem.molecule import h2, lih
from repro.core.workflow import run_vqe_workflow


class TestWorkflow:
    def test_h2_full_space(self):
        res = run_vqe_workflow(h2(), downfold=False)
        assert res.num_qubits == 4
        assert res.num_electrons == 2
        assert res.exact_energy is not None
        assert res.error_vs_exact < 1e-5
        # correlation recovered relative to SCF
        assert res.energy < res.scf.energy - 0.01

    def test_lih_frozen_core_downfolded(self):
        """LiH with the Li 1s frozen: 10 qubits, downfolding active."""
        res = run_vqe_workflow(
            lih(), core_orbitals=[0], active_orbitals=[1, 2, 3, 4, 5]
        )
        assert res.num_qubits == 10
        assert res.num_electrons == 2
        assert res.downfolding is not None
        assert res.downfolding.sigma_norm1 > 0
        # VQE on the downfolded Hamiltonian reaches its own FCI closely
        assert res.error_vs_exact < 1e-4

    def test_lih_without_downfolding(self):
        res = run_vqe_workflow(
            lih(),
            core_orbitals=[0],
            active_orbitals=[1, 2, 3, 4, 5],
            downfold=False,
        )
        assert res.downfolding is None
        assert res.num_qubits == 10
        assert res.error_vs_exact < 1e-4

    def test_downfolding_changes_energy(self):
        """Downfolded and bare active-space energies must differ (the
        external-space correlation is being folded in)."""
        bare = run_vqe_workflow(
            lih(), core_orbitals=[0], active_orbitals=[1, 2, 3, 4, 5],
            downfold=False, compute_exact=False,
        )
        folded = run_vqe_workflow(
            lih(), core_orbitals=[0], active_orbitals=[1, 2, 3, 4, 5],
            downfold=True, compute_exact=False,
        )
        assert abs(bare.energy - folded.energy) > 1e-7
        assert folded.energy < bare.energy  # extra correlation lowers E
