"""The memory observatory: allocation ledger, capacity model, and
memory-aware admission.

Four layers under test:

* ledger invariants (Hypothesis): allocated - freed == live, peak >=
  live, per-category totals sum to the fleet total — over arbitrary
  interleavings of alloc/free/resize;
* honesty (tracemalloc): the ledger's statevector bytes line up with
  what NumPy actually allocated;
* the capacity model: ``estimate_job_memory`` within ±10% of the
  measured ledger peak for 8–14 qubit serve-path jobs;
* the service: oversized jobs rejected at admission with a reason
  starting ``memory``, visible through ``repro top``'s snapshot, and
  (time, bytes)-aware LPT respecting rank byte budgets.
"""

import gc
import tracemalloc

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import obs
from repro.obs.memory import (
    MemoryLedger,
    estimate_statevector_job_bytes,
    observable_bytes,
)
from repro.obs.report import RunReport, format_bytes


@pytest.fixture(autouse=True)
def _fresh_obs():
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


# -- ledger invariants (Hypothesis) -------------------------------------------

# an op is (kind, category_idx, nbytes); "free" frees the oldest live
# handle, "resize" resizes it
_OPS = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "free", "resize"]),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=1 << 20),
    ),
    max_size=60,
)


def _replay(ops):
    ledger = MemoryLedger()
    live_handles = []
    for kind, cat_idx, nbytes in ops:
        category = f"cat{cat_idx}"
        if kind == "alloc":
            live_handles.append(
                ledger.alloc(category, nbytes, rank=cat_idx % 2)
            )
        elif kind == "free" and live_handles:
            ledger.free(live_handles.pop(0))
        elif kind == "resize" and live_handles:
            ledger.resize(live_handles[0], nbytes)
    return ledger


@given(_OPS)
def test_ledger_allocated_minus_freed_is_live(ops):
    ledger = _replay(ops)
    assert (
        ledger.allocated_bytes_total - ledger.freed_bytes_total
        == ledger.live_bytes
    )


@given(_OPS)
def test_ledger_peak_bounds_live(ops):
    ledger = _replay(ops)
    assert ledger.peak_bytes >= ledger.live_bytes
    for category, peak in ledger.peak_by_category.items():
        assert peak >= ledger.live_by_category.get(category, 0)


@given(_OPS)
def test_ledger_category_totals_sum_to_fleet_total(ops):
    ledger = _replay(ops)
    assert sum(ledger.live_by_category.values()) == ledger.live_bytes
    assert sum(ledger.live_by_rank.values()) == ledger.live_bytes


@given(_OPS)
def test_ledger_reset_rebases_and_keeps_invariants(ops):
    ledger = _replay(ops)
    survivors = ledger.live_bytes
    ledger.reset()
    assert ledger.live_bytes == survivors
    assert ledger.peak_bytes == survivors
    assert ledger.allocated_bytes_total == survivors
    assert ledger.freed_bytes_total == 0
    assert sum(ledger.live_by_category.values()) == survivors


def test_ledger_free_is_idempotent_and_handle_zero_is_noop():
    ledger = MemoryLedger()
    assert ledger.free(0) == 0
    handle = ledger.alloc("x", 100)
    assert ledger.free(handle) == 100
    assert ledger.free(handle) == 0  # double free tolerated
    assert ledger.free(9999) == 0  # unknown handle tolerated
    assert ledger.live_bytes == 0


# -- honesty: ledger vs tracemalloc -------------------------------------------


def test_ledger_statevector_bytes_match_tracemalloc():
    """The ledger's statevector accounting is within a few percent of
    what NumPy actually allocated (tracemalloc is ground truth)."""
    from repro.sim.statevector import StatevectorSimulator

    obs.configure(enabled=True)
    gc.collect()
    tracemalloc.start()
    base, _ = tracemalloc.get_traced_memory()
    ledger_before = obs.get_memory_ledger().live_by_category.get(
        "statevector", 0
    )
    sims = [StatevectorSimulator(n) for n in (8, 10, 12)]
    current, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    ledger_bytes = (
        obs.get_memory_ledger().live_by_category.get("statevector", 0)
        - ledger_before
    )
    expected = sum(16 * (1 << n) for n in (8, 10, 12))
    assert ledger_bytes == expected
    actual = current - base
    # tracemalloc sees the amplitude buffers plus python-object noise
    assert actual >= expected
    assert actual <= expected * 1.10 + 64 * 1024
    del sims


def test_mem_track_frees_on_garbage_collection():
    obs.configure(enabled=True)
    ledger = obs.get_memory_ledger()

    class _Owner:
        pass

    owner = _Owner()
    obs.mem_track(owner, "gc_test", 4096)
    assert ledger.live_by_category.get("gc_test", 0) == 4096
    del owner
    gc.collect()
    assert ledger.live_by_category.get("gc_test", 0) == 0


def test_disabled_ledger_is_noop():
    obs.disable()
    handle = obs.mem_alloc("anything", 1 << 20)
    assert handle == 0
    assert obs.get_memory_ledger().live_bytes == 0


# -- capacity model vs measured reality ---------------------------------------


def _measured_job_peak(molecule: str) -> int:
    """Run the serve-path workload of one VQE job (problem build +
    one energy evaluation — the optimizer loop reuses these buffers)
    and return the ledger peak it produced."""
    from repro.core.vqe import VQE
    from repro.serve.spec import JobSpec
    from repro.serve.store import ProblemCache

    gc.collect()  # flush prior tests' buffers before rebasing
    obs.configure(enabled=True)
    obs.get_memory_ledger().reset()
    spec = JobSpec(tenant="t", molecule=molecule)
    problem = ProblemCache().get(spec)
    vqe = VQE(
        problem["hamiltonian"],
        generators=problem["generators"],
        reference_state=problem["reference"],
    )
    vqe.energy(np.zeros(len(problem["generators"])))
    return obs.get_memory_ledger().peak_bytes


@pytest.mark.parametrize("molecule", ["h4", "lih"])
def test_estimate_job_memory_within_ten_percent(molecule):
    from repro.serve.spec import JobSpec, estimate_job_memory

    measured = _measured_job_peak(molecule)
    predicted = estimate_job_memory(JobSpec(tenant="t", molecule=molecule))
    assert measured > 0
    ratio = predicted / measured
    assert 0.9 <= ratio <= 1.1, (
        f"{molecule}: predicted {predicted} vs measured {measured} "
        f"({ratio:.3f}x) — capacity model out of calibration"
    )


def test_estimate_scales_exponentially_and_rejects_unknown_backend():
    small = estimate_statevector_job_bytes(8)["total"]
    big = estimate_statevector_job_bytes(20)["total"]
    assert big > small * 1000
    with pytest.raises(ValueError):
        estimate_statevector_job_bytes(8, backend="density_matrix")
    assert observable_bytes(4, 2) == 2 * 16 * 16 + 1 * 8 * 16


def test_qubits_for_molecule_prices_hydrogen_chains():
    from repro.serve.spec import qubits_for_molecule

    assert qubits_for_molecule("h2") == 4
    assert qubits_for_molecule("h2o") == 14  # table beats the h<N> rule
    assert qubits_for_molecule("h17") == 34
    assert qubits_for_molecule("unobtainium") == 8


# -- memory-aware admission / the service -------------------------------------


def test_oversized_job_rejected_at_admission(tmp_path):
    from repro.serve.server import CampaignServer, ServerConfig
    from repro.serve.spec import JobSpec

    server = CampaignServer(str(tmp_path), ServerConfig(num_ranks=2))
    try:
        job = server.submit(JobSpec(tenant="acme", molecule="h17"))
        assert job.state == "rejected"
        assert job.detail.startswith("memory")
        ok = server.submit(JobSpec(tenant="acme", molecule="h2"))
        assert ok.state == "queued"
        assert ok.est_bytes > 0
        server.tick()
    finally:
        server.close()


def test_rejection_visible_in_top_snapshot(tmp_path):
    from repro.obs.dashboard import Dashboard
    from repro.serve.server import CampaignServer, ServerConfig
    from repro.serve.spec import JobSpec

    server = CampaignServer(str(tmp_path), ServerConfig(num_ranks=2))
    try:
        server.submit(JobSpec(tenant="acme", molecule="h17"))
        server.tick()
    finally:
        server.close()
    snap = Dashboard(str(tmp_path)).snapshot()
    rejected = [
        e
        for e in snap["recent_events"]
        if e["type"] == "job.rejected"
        and str(e["attrs"].get("reason", "")).startswith("memory")
    ]
    assert rejected, "job.rejected reason=memory... must reach repro top"
    assert snap["memory"]["rank_memory_bytes"] > 0
    rendered = Dashboard(str(tmp_path)).render(snap)
    assert "memory:" in rendered


def test_health_reports_memory_section(tmp_path):
    from repro.serve.server import CampaignServer, ServerConfig
    from repro.serve.spec import JobSpec, estimate_job_memory

    spec = JobSpec(tenant="t", molecule="h4", priority=1)
    server = CampaignServer(
        str(tmp_path), ServerConfig(num_ranks=1, rank_memory_bytes=1 << 20)
    )
    try:
        job = server.submit(spec)
        assert job.state == "queued"
        health = server.health()
        assert health["memory"]["queued_est_bytes"] == estimate_job_memory(spec)
        assert health["memory"]["fleet_capacity_bytes"] == 1 << 20
    finally:
        server.close()


def test_rank_loss_sheds_by_memory_pressure(tmp_path):
    from repro.serve.server import CampaignServer, ServerConfig
    from repro.serve.spec import JobSpec, JobState, estimate_job_memory

    per_job = estimate_job_memory(JobSpec(tenant="t", molecule="h4"))
    # two ranks, byte pool sized so ~3 h4 jobs fit per alive rank; the
    # count-based limit alone would keep all jobs
    config = ServerConfig(
        num_ranks=2,
        global_queue_limit=64,
        rank_memory_bytes=3 * per_job,
        memory_queue_factor=1,
    )
    server = CampaignServer(str(tmp_path), config)
    try:
        for i in range(8):
            job = server.submit(
                JobSpec(tenant="t", molecule="h4", seed=i, priority=i)
            )
            assert job.state == "queued", job.detail
        server.inject_rank_loss(1)
        server._shed_overload()
        jobs = list(server.jobs.values())
        shed = [j for j in jobs if j.state == JobState.SHED]
        queued = [j for j in jobs if j.state == JobState.QUEUED]
        # 8 jobs queued, pool shrinks to 1 rank * 3 jobs worth of bytes
        assert sum(j.est_bytes for j in queued) <= 3 * per_job
        assert shed, "rank loss must shed by memory pressure"
        # lowest priorities shed first
        assert max(j.spec.priority for j in shed) < min(
            j.spec.priority for j in queued
        )
        assert any("memory pressure" in j.detail for j in shed)
    finally:
        server.close()


def test_scheduler_respects_rank_byte_budget():
    from repro.hpc.scheduler import BatchScheduler, Job

    scheduler = BatchScheduler(2)
    jobs = [Job(f"j{i}", 8, 100, mem_bytes=600) for i in range(4)]
    schedule = scheduler.schedule(jobs, rank_capacity_bytes=1200)
    assert sum(schedule.rank_bytes.values()) == 4 * 600
    assert all(b <= 1200 for b in schedule.rank_bytes.values())
    # capacity smaller than any pair: overcommit rather than starve
    tight = scheduler.schedule(jobs, rank_capacity_bytes=700)
    assert sum(len(js) for js in tight.assignments.values()) == 4


# -- estimator pool (byte-capped LRU) -----------------------------------------


def test_estimator_pool_evicts_by_bytes():
    from repro.core.estimator import DirectEstimator

    # cap fits the 10-qubit simulator (16 KiB) plus slack, not two
    est = DirectEstimator(pool_capacity_bytes=20 * 1024)
    sim10 = est._simulator(10)
    assert est.pool_bytes == sim10.state.nbytes
    est._simulator(9)  # 8 KiB: evicts the 16 KiB LRU entry
    assert est.pool_evictions == 1
    assert 10 not in est._sims and 9 in est._sims
    # the active width always fits, even alone over the cap
    est._simulator(12)
    assert 12 in est._sims
    assert est.pool_bytes <= 20 * 1024 or list(est._sims) == [12]


def test_estimator_pool_lru_refreshes_on_hit():
    from repro.core.estimator import DirectEstimator

    est = DirectEstimator(pool_capacity_bytes=1 << 20)
    est._simulator(6)
    est._simulator(7)
    est._simulator(6)  # refresh: 7 becomes LRU
    # room for the incoming 4 KiB simulator after exactly one eviction
    est.pool_capacity_bytes = 6 * 1024
    est._simulator(8)
    assert 7 not in est._sims and 6 in est._sims


# -- report v4 / rendering ----------------------------------------------------


def test_run_report_v4_memory_roundtrip():
    obs.configure(enabled=True)
    obs.mem_alloc("statevector", 4096)
    report = obs.collect_report(meta={"run": "mem-test"})
    assert report.memory["peak_bytes"] >= 4096
    clone = RunReport.from_dict(report.to_dict())
    assert clone.memory == report.memory
    assert "-- memory --" in clone.summary()


def test_format_bytes():
    assert format_bytes(0) == "0B"
    assert format_bytes(2048) == "2.0KiB"
    assert format_bytes(16 << 30) == "16.0GiB"


def test_bench_diff_flags_doubled_peak_bytes():
    """The acceptance gate: an injected 2x allocation fails bench-diff."""
    from repro.obs.bench import BenchEntry, BenchReport, compare

    old = BenchReport(
        entries=[BenchEntry("b::t", wall_s=1.0, peak_bytes=64 << 20)]
    )
    new = BenchReport(
        entries=[BenchEntry("b::t", wall_s=1.0, peak_bytes=128 << 20)]
    )
    diff = compare(old, new, threshold=1.5)
    assert diff.has_regressions
    (delta,) = diff.regressions
    assert delta.mem_regressed and not delta.regressed
    assert "MEM REGRESSED" in diff.render()
    # below the noise floor nothing flags
    tiny_old = BenchReport(entries=[BenchEntry("b::t", 1.0, peak_bytes=100)])
    tiny_new = BenchReport(entries=[BenchEntry("b::t", 1.0, peak_bytes=900)])
    assert not compare(tiny_old, tiny_new, threshold=1.5).has_regressions


def test_bench_counter_deltas_rank_by_relative_change():
    from repro.obs.bench import BenchEntry, counter_deltas

    old = BenchEntry("b", 1.0, counters={"a_total": 100.0, "b_total": 10.0})
    new = BenchEntry("b", 1.0, counters={"a_total": 150.0, "b_total": 40.0})
    rows = counter_deltas(old, new, top_k=5)
    assert rows[0][0] == "b_total"  # 4x beats 1.5x
    assert rows[1][0] == "a_total"
