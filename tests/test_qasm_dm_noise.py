"""Tests for QASM I/O, the density-matrix simulator, and noise channels."""

import numpy as np
import pytest

from repro.ir.circuit import Circuit
from repro.ir.pauli import PauliSum
from repro.ir.qasm import from_qasm, to_qasm
from repro.sim.density_matrix import DensityMatrixSimulator
from repro.sim.noise import (
    AmplitudeDampingChannel,
    BitFlipChannel,
    DepolarizingChannel,
    NoiseModel,
    PhaseDampingChannel,
    PhaseFlipChannel,
)
from repro.sim.statevector import StatevectorSimulator
from tests.test_statevector import random_circuit


class TestQasm:
    def test_roundtrip_simple(self):
        c = Circuit(2).h(0).cx(0, 1).rz(0.5, 1)
        c2 = from_qasm(to_qasm(c))
        assert np.allclose(c2.to_matrix(), c.to_matrix(), atol=1e-12)

    def test_roundtrip_random(self):
        c = random_circuit(3, 25, 4)
        c2 = from_qasm(to_qasm(c))
        assert np.allclose(c2.to_matrix(), c.to_matrix(), atol=1e-9)

    def test_rzz_decomposed(self):
        c = Circuit(2).add("rzz", [0, 1], 0.7)
        text = to_qasm(c)
        assert "cx" in text and "rz" in text
        c2 = from_qasm(text)
        assert np.allclose(c2.to_matrix(), c.to_matrix(), atol=1e-12)

    def test_pi_expression(self):
        text = 'OPENQASM 2.0;\nqreg q[1];\nrz(pi/2) q[0];\n'
        c = from_qasm(text)
        assert np.isclose(float(c.gates[0].params[0]), np.pi / 2)

    def test_unbound_rejected(self):
        from repro.ir.gates import Parameter

        with pytest.raises(ValueError):
            to_qasm(Circuit(1).rz(Parameter("x"), 0))

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError):
            from_qasm('OPENQASM 2.0;\nqreg q[1];\nfoo bar;\n')


class TestChannels:
    @pytest.mark.parametrize(
        "channel",
        [
            DepolarizingChannel(0.1),
            AmplitudeDampingChannel(0.2),
            PhaseDampingChannel(0.3),
            BitFlipChannel(0.25),
            PhaseFlipChannel(0.15),
        ],
    )
    def test_cptp(self, channel):
        assert channel.is_cptp(1)

    def test_depolarizing_2q_cptp(self):
        assert DepolarizingChannel(0.05).is_cptp(2)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            DepolarizingChannel(1.5)
        with pytest.raises(ValueError):
            AmplitudeDampingChannel(-0.1)

    def test_full_depolarizing_gives_mixed(self):
        sim = DensityMatrixSimulator(1)
        sim.run(Circuit(1).h(0))
        sim.apply_channel(DepolarizingChannel(0.75), (0,))
        # p=3/4 depolarizing maps any state to I/2.
        assert np.allclose(sim.rho, np.eye(2) / 2, atol=1e-10)

    def test_amplitude_damping_decays_excited(self):
        sim = DensityMatrixSimulator(1)
        sim.run(Circuit(1).x(0))
        sim.apply_channel(AmplitudeDampingChannel(1.0), (0,))
        assert np.isclose(sim.rho[0, 0].real, 1.0)


class TestDensityMatrix:
    def test_pure_evolution_matches_statevector(self):
        c = random_circuit(3, 20, 2)
        dm = DensityMatrixSimulator(3)
        dm.run(c)
        sv = StatevectorSimulator(3).run(c)
        assert np.allclose(dm.rho, np.outer(sv, sv.conj()), atol=1e-9)

    def test_trace_preserved_with_noise(self):
        model = NoiseModel().add_all_qubit_channel(DepolarizingChannel(0.02))
        dm = DensityMatrixSimulator(2, noise_model=model)
        dm.run(Circuit(2).h(0).cx(0, 1).rz(0.4, 1))
        assert np.isclose(np.trace(dm.rho).real, 1.0, atol=1e-10)

    def test_noise_reduces_purity(self):
        model = NoiseModel().add_all_qubit_channel(DepolarizingChannel(0.05))
        dm = DensityMatrixSimulator(2, noise_model=model)
        dm.run(Circuit(2).h(0).cx(0, 1))
        assert dm.purity() < 1.0 - 1e-6

    def test_expectation_matches_statevector_when_noiseless(self, rng):
        c = random_circuit(3, 15, 7)
        h = PauliSum.from_label_dict({"ZZI": 1.0, "XIX": 0.5, "IYY": -0.3})
        dm = DensityMatrixSimulator(3)
        dm.run(c)
        sv = StatevectorSimulator(3).run(c)
        from repro.sim.expectation import expectation_direct

        assert np.isclose(dm.expectation(h), expectation_direct(sv, h), atol=1e-9)

    def test_noisy_expectation_damped_toward_zero(self):
        """Depolarizing noise shrinks |<ZZ>| on a Bell state."""
        h = PauliSum.from_label_dict({"ZZ": 1.0})
        bell = Circuit(2).h(0).cx(0, 1)
        clean = DensityMatrixSimulator(2)
        clean.run(bell)
        noisy = DensityMatrixSimulator(
            2, NoiseModel().add_all_qubit_channel(DepolarizingChannel(0.1))
        )
        noisy.run(bell)
        assert abs(noisy.expectation(h)) < abs(clean.expectation(h))

    def test_sample_counts(self, rng):
        dm = DensityMatrixSimulator(2)
        dm.run(Circuit(2).h(0).cx(0, 1))
        counts = dm.sample_counts(2000, rng)
        assert set(counts) <= {0b00, 0b11}

    def test_width_guard(self):
        with pytest.raises(ValueError):
            DensityMatrixSimulator(14)
