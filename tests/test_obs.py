"""Tests for repro.obs — tracing, metrics, run reports — plus the
dormant-Timer regression coverage (simulator/estimator/VQE plumbing)."""

import json
import math

import numpy as np
import pytest

from repro import obs
from repro.ir.circuit import Circuit, Parameter
from repro.ir.pauli import PauliSum
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.report import RunReport, as_plain_dict
from repro.obs.trace import NULL_SPAN, Tracer
from repro.utils.profiling import Timer


@pytest.fixture(autouse=True)
def _clean_global_obs():
    """Each test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# -- tracer -------------------------------------------------------------------


class TestTracer:
    def test_span_records_name_and_duration(self):
        tr = Tracer()
        with tr.span("work"):
            pass
        assert len(tr.spans) == 1
        rec = tr.spans[0]
        assert rec.name == "work"
        assert rec.duration_us >= 0.0
        assert rec.parent_id is None
        assert rec.depth == 0

    def test_nesting_parent_ids_and_depth(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("middle"):
                with tr.span("inner"):
                    pass
            with tr.span("sibling"):
                pass
        by_name = {s.name: s for s in tr.spans}
        # children close before parents
        assert [s.name for s in tr.spans] == [
            "inner", "middle", "sibling", "outer",
        ]
        assert by_name["outer"].parent_id is None
        assert by_name["middle"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].parent_id == by_name["middle"].span_id
        assert by_name["sibling"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].depth == 2
        assert by_name["outer"].depth == 0

    def test_attributes_and_post_close_set_attribute(self):
        tr = Tracer()
        with tr.span("s", gates=5) as sp:
            sp.set_attribute("during", 1)
        sp.set_attribute("after", 2)  # same dict object as the record's
        rec = tr.spans[0]
        assert rec.attributes == {"gates": 5, "during": 1, "after": 2}

    def test_totals_aggregates_by_name(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("loop"):
                pass
        totals = tr.totals()
        assert totals["loop"][1] == 3
        assert totals["loop"][0] >= 0.0

    def test_disabled_tracer_is_noop(self):
        tr = Tracer(enabled=False)
        sp = tr.span("ignored", k=1)
        assert sp is NULL_SPAN
        with sp:
            sp.set_attribute("x", 1)
        assert tr.spans == []

    def test_max_spans_drops_not_grows(self):
        tr = Tracer(max_spans=2)
        for _ in range(5):
            with tr.span("s"):
                pass
        assert len(tr.spans) == 2
        assert tr.dropped_spans == 3

    def test_chrome_trace_schema(self, tmp_path):
        tr = Tracer()
        with tr.span("outer", qubits=4):
            with tr.span("inner"):
                pass
        payload = tr.to_chrome_trace()
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == 2
        # sorted by start timestamp: outer opened first
        assert [e["name"] for e in events] == ["outer", "inner"]
        for e in events:
            assert e["ph"] == "X"
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"}
        assert events[0]["args"] == {"qubits": 4}
        path = tmp_path / "trace.json"
        tr.write_chrome_trace(str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(payload))

    def test_simulated_clock_attributes(self):
        class FakeClock:
            now = 0.0

        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("sim"):
            clock.now += 2.5
        rec = tr.spans[0]
        assert rec.sim_start_s == 0.0
        assert rec.sim_duration_s == pytest.approx(2.5)

    def test_reset(self):
        tr = Tracer()
        with tr.span("s"):
            pass
        tr.reset()
        assert tr.spans == []
        with tr.span("t"):
            pass
        assert tr.spans[0].span_id == 0


# -- metrics ------------------------------------------------------------------


class TestMetrics:
    def test_counter_inc_and_negative_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", help="h")
        c.inc()
        c.inc(2.0)
        assert c.value == 3.0
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_invalid_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert len(reg) == 1
        # distinct label sets are distinct series
        reg.counter("a_total", labels={"mode": "x"})
        assert len(reg) == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("thing")
        with pytest.raises(TypeError):
            reg.gauge("thing")

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(5.0)
        g.inc(2.0)
        g.dec(3.0)
        assert g.value == 4.0

    def test_histogram_bucket_boundaries_le_semantics(self):
        h = Histogram("h_seconds", buckets=(1.0, 2.0, 4.0))
        # exactly on a bound lands in that bucket (v <= bound)
        for v in (0.5, 1.0, 1.5, 2.0, 4.0, 9.0):
            h.observe(v)
        assert h.counts == [2, 2, 1, 1]  # (<=1, <=2, <=4, +Inf raw)
        assert h.cumulative_counts() == [2, 4, 5, 6]
        assert h.count == 6
        assert h.sum == pytest.approx(18.0)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, math.inf))

    def test_quantile_golden_values(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 3.0):
            h.observe(v)
        # cumulative = [2, 4, 8]; median rank=4 -> upper edge of (1,2]
        assert h.quantile(0.5) == pytest.approx(2.0)
        # q=0.25 -> rank 2, first bucket [0,1], interpolate to its top
        assert h.quantile(0.25) == pytest.approx(1.0)
        # q=0.75 -> rank 6, bucket (2,4], 2 of 4 in-bucket -> 3.0
        assert h.quantile(0.75) == pytest.approx(3.0)
        assert math.isnan(Histogram("e", buckets=(1.0,)).quantile(0.5))

    def test_quantile_inf_bucket_clamps(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(100.0)
        assert h.quantile(0.99) == pytest.approx(1.0)

    def test_prometheus_exposition_golden(self):
        reg = MetricsRegistry()
        reg.counter("repro_runs_total", help="Total runs").inc(3)
        reg.gauge("repro_energy", labels={"mol": "h2"}).set(-1.5)
        h = reg.histogram("repro_step_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        assert reg.expose() == (
            "# TYPE repro_energy gauge\n"
            "repro_energy{mol=\"h2\"} -1.5\n"
            "# HELP repro_runs_total Total runs\n"
            "# TYPE repro_runs_total counter\n"
            "repro_runs_total 3\n"
            "# TYPE repro_step_seconds histogram\n"
            "repro_step_seconds_bucket{le=\"0.1\"} 1\n"
            "repro_step_seconds_bucket{le=\"1\"} 2\n"
            "repro_step_seconds_bucket{le=\"+Inf\"} 3\n"
            "repro_step_seconds_sum 5.55\n"
            "repro_step_seconds_count 3\n"
        )

    def test_gauge_has_type_line(self):
        reg = MetricsRegistry()
        reg.gauge("repro_energy").set(2.0)
        assert "# TYPE repro_energy gauge" in reg.expose()

    def test_label_variants_share_one_family_header(self):
        reg = MetricsRegistry()
        reg.counter("c_total", help="c", labels={"m": "a"}).inc()
        reg.counter("c_total", help="c", labels={"m": "b"}).inc(2)
        text = reg.expose()
        assert text.count("# TYPE c_total counter") == 1
        assert 'c_total{m="a"} 1' in text
        assert 'c_total{m="b"} 2' in text

    def test_jsonl_snapshot(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(2)
        reg.histogram("b_seconds", buckets=(1.0,)).observe(0.5)
        path = tmp_path / "m.jsonl"
        reg.write_jsonl(str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in rows] == ["a_total", "b_seconds"]
        assert rows[0] == {
            "name": "a_total", "type": "counter", "labels": {}, "value": 2.0,
        }
        assert rows[1]["counts"] == [1, 0]
        assert rows[1]["count"] == 1

    def test_write_prometheus(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        path = tmp_path / "m.prom"
        reg.write_prometheus(str(path))
        assert path.read_text() == reg.expose()


# -- global helpers -----------------------------------------------------------


class TestGlobalObs:
    def test_disabled_helpers_are_noops(self):
        assert not obs.enabled()
        assert obs.span("s") is NULL_SPAN
        obs.inc("repro_x_total")
        obs.observe("repro_x_seconds", 1.0)
        obs.gauge_set("repro_x", 2.0)
        assert len(obs.get_registry()) == 0
        assert obs.get_tracer().spans == []

    def test_enable_disable_roundtrip(self):
        obs.enable()
        assert obs.enabled()
        with obs.span("s"):
            obs.inc("repro_y_total")
        assert len(obs.get_tracer().spans) == 1
        assert obs.get_registry().counter("repro_y_total").value == 1.0
        obs.disable()
        assert obs.span("s") is NULL_SPAN


# -- run reports --------------------------------------------------------------


class CommLike:
    """Duck-typed stats object (public scalar attrs)."""

    retries = 3
    p2p_bytes = 1024

    def method(self):  # callables must be ignored
        return None


class TestRunReport:
    def test_collect_embeds_ledger_sections(self):
        obs.enable()
        with obs.span("phase"):
            obs.inc("repro_z_total")
        report = obs.collect_report(
            meta={"kind": "test"},
            comm_stats=CommLike(),
            cache_stats={"hits": 5, "misses": 2},
            fault_ledger=None,
            convergence={"energy": [1.0, 0.5]},
            wall_time_s=0.1,
        )
        assert report.meta["kind"] == "test"
        assert report.comm["retries"] == 3
        assert report.cache == {"hits": 5, "misses": 2}
        assert report.faults == {}  # key always present, empty ok
        assert report.convergence == {"energy": [1.0, 0.5]}
        assert [s["name"] for s in report.spans] == ["phase"]
        assert report.metrics[0]["name"] == "repro_z_total"

    def test_fault_ledger_duck_typing(self):
        from repro.hpc.faults import FaultLedger

        ledger = FaultLedger()
        d = as_plain_dict(ledger)
        assert d["events"] == 0
        assert d["by_kind"] == {}

    def test_save_load_roundtrip(self, tmp_path):
        report = RunReport.collect(
            meta={"kind": "rt"},
            tracer=Tracer(),
            registry=MetricsRegistry(),
            convergence={"energy": [1.0]},
            wall_time_s=2.0,
        )
        path = tmp_path / "r.json"
        report.save(str(path))
        loaded = RunReport.load(str(path))
        assert loaded.meta == {"kind": "rt"}
        assert loaded.convergence == {"energy": [1.0]}
        assert loaded.wall_time_s == 2.0
        assert loaded.version == report.version

    def test_version_check(self):
        with pytest.raises(ValueError, match="version"):
            RunReport.from_dict({"version": 99})

    def test_summary_mentions_sections(self):
        report = RunReport(meta={"command": "repro test"})
        text = report.summary()
        assert "repro test" in text
        assert "-- comm --" in text
        assert "-- cache --" in text
        assert "-- faults --" in text


# -- driver integration -------------------------------------------------------


def _toy_problem():
    h = PauliSum.from_label_dict({"ZZ": 0.5, "XX": 0.3, "IZ": -0.2})
    gen = PauliSum.from_label_dict({"XY": 1.0j, "YX": -1.0j})
    ref = np.zeros(4, dtype=complex)
    ref[1] = 1.0
    return h, gen, ref


class TestDriverReports:
    def test_vqe_report_attached_when_enabled(self):
        from repro.core.vqe import VQE

        h, gen, ref = _toy_problem()
        obs.enable()
        result = VQE(h, generators=[gen], reference_state=ref).run()
        assert result.report is not None
        span_names = {s["name"] for s in result.report.spans}
        assert "vqe.run" in span_names
        assert "vqe.energy_eval" in span_names
        assert result.report.convergence["energy"] == list(result.history)
        # comm/cache/faults sections exist even for a single-node run
        assert result.report.comm == {}
        assert result.report.faults == {}

    def test_vqe_report_none_when_disabled(self):
        from repro.core.vqe import VQE

        h, gen, ref = _toy_problem()
        result = VQE(h, generators=[gen], reference_state=ref).run()
        assert result.report is None
        assert obs.get_tracer().spans == []


class TestTimerPlumbing:
    """Regression: the pre-existing ``timer=`` params must actually fill."""

    def test_statevector_simulator_timer(self):
        from repro.sim.statevector import StatevectorSimulator

        c = Circuit(2)
        c.h(0).cx(0, 1)
        t = Timer()
        StatevectorSimulator(2, timer=t).run(c)
        assert "run_circuit" in t.totals
        assert t.counts["run_circuit"] == 1

    def test_estimator_timer_reaches_simulator(self):
        from repro.core.estimator import make_estimator

        h = PauliSum.from_label_dict({"ZZ": 1.0})
        c = Circuit(2)
        c.ry(Parameter("a"), 0)
        for name in ("direct", "caching", "sampling"):
            t = Timer()
            est = make_estimator(name, timer=t)
            est.estimate(c.bind([0.3]), h)
            assert "run_circuit" in t.totals, name

    def test_vqe_chemistry_mode_timer_sections(self):
        from repro.core.vqe import VQE

        h, gen, ref = _toy_problem()
        t = Timer()
        VQE(h, generators=[gen], reference_state=ref, timer=t).run()
        assert "vqe_energy" in t.totals
        assert t.counts["vqe_energy"] >= 1

    def test_vqe_circuit_mode_timer_reaches_simulator(self):
        from repro.core.vqe import VQE

        h = PauliSum.from_label_dict({"ZZ": 1.0, "XI": 0.2})
        c = Circuit(2)
        c.ry(Parameter("a"), 0)
        c.cx(0, 1)
        t = Timer()
        VQE(h, ansatz=c, timer=t).run()
        assert "run_circuit" in t.totals
        assert "vqe_energy" in t.totals

    def test_adapt_timer_sections(self):
        from repro.chem.pools import qubit_pool
        from repro.chem.reference import hartree_fock_state
        from repro.core.adapt import AdaptVQE

        h = PauliSum.from_label_dict(
            {"ZZII": 0.4, "XXII": 0.2, "IZZI": -0.3, "IIXX": 0.1}
        )
        t = Timer()
        adapt = AdaptVQE(
            h,
            qubit_pool(4, 2),
            hartree_fock_state(4, 2),
            max_iterations=2,
            timer=t,
        )
        result = adapt.run()
        if result.iterations:  # reoptimized at least once
            assert "adapt_reoptimize" in t.totals
