"""Tests for the benchmark-report schema, the regression comparator,
``repro bench-diff``, and the ``benchmarks/run_suite.py`` harness."""

import importlib.util
import json
from pathlib import Path

import pytest

from repro import obs
from repro.cli import main
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchEntry,
    BenchReport,
    compare,
)


@pytest.fixture(autouse=True)
def _clean_global_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _report(mode="smoke", **walls):
    return BenchReport(
        mode=mode,
        entries=[BenchEntry(name=n, wall_s=w) for n, w in walls.items()],
    )


class TestBenchSchema:
    def test_save_load_round_trip(self, tmp_path):
        rep = _report(fast=0.01, slow=2.5)
        rep.entries[1].sim_s = 12.5
        rep.entries[1].counters = {"repro_sim_gates_total": 420.0}
        rep.skipped.append("bench_x.py (no tests collected)")
        path = tmp_path / "BENCH_t.json"
        rep.save(str(path))
        loaded = BenchReport.load(str(path))
        assert loaded.schema_version == BENCH_SCHEMA_VERSION
        assert loaded.mode == "smoke"
        assert loaded.entry("slow").sim_s == 12.5
        assert loaded.entry("slow").counters == {"repro_sim_gates_total": 420.0}
        assert loaded.skipped == rep.skipped
        assert set(loaded.machine) >= {
            "hostname",
            "platform",
            "python",
            "cpu_count",
            "git_sha",
        }

    def test_unknown_schema_version_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        payload = _report(a=1.0).to_dict()
        payload["schema_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema version"):
            BenchReport.load(str(path))


class TestComparator:
    def test_identical_reports_have_no_regressions(self):
        diff = compare(_report(a=1.0, b=0.2), _report(a=1.0, b=0.2))
        assert not diff.has_regressions
        assert len(diff.deltas) == 2

    def test_synthetic_regression_is_flagged(self):
        diff = compare(_report(a=1.0), _report(a=1.6), threshold=1.5)
        assert diff.has_regressions
        assert diff.regressions[0].name == "a"
        assert diff.regressions[0].ratio == pytest.approx(1.6)

    def test_noise_floor_suppresses_fast_tests(self):
        # 3x slower but both sides under the floor: noise, not regression
        diff = compare(
            _report(a=0.001), _report(a=0.003), threshold=1.5, min_wall_s=0.05
        )
        assert not diff.has_regressions
        assert diff.deltas[0].below_floor

    def test_new_failure_counts_as_regression(self):
        old = _report(a=1.0)
        new = _report(a=1.0)
        new.entries[0].ok = False
        diff = compare(old, new)
        assert diff.has_regressions
        assert diff.failed == ["a"]

    def test_membership_drift_reported_not_regressed(self):
        diff = compare(_report(a=1.0, gone=1.0), _report(a=1.0, new=1.0))
        assert diff.missing == ["gone"]
        assert diff.added == ["new"]
        assert not diff.has_regressions

    def test_mode_mismatch_refused(self):
        with pytest.raises(ValueError, match="smoke"):
            compare(_report(mode="smoke", a=1.0), _report(mode="full", a=1.0))

    def test_threshold_must_exceed_one(self):
        with pytest.raises(ValueError, match="threshold"):
            compare(_report(a=1.0), _report(a=1.0), threshold=1.0)

    def test_improvements_counted(self):
        diff = compare(_report(a=2.0), _report(a=1.0))
        assert diff.deltas[0].improved
        assert "1 improvement(s)" in diff.render()


class TestBenchDiffCLI:
    def test_exit_zero_when_clean(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        _report(a=1.0, b=0.5).save(str(old))
        _report(a=1.02, b=0.49).save(str(new))
        rc = main(["bench-diff", str(old), str(new)])
        assert rc == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_exit_nonzero_on_injected_regression(self, tmp_path, capsys):
        """The acceptance gate: a synthetic slowdown must fail the diff."""
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        _report(a=1.0, b=0.5).save(str(old))
        _report(a=2.7, b=0.5).save(str(new))  # a regressed 2.7x
        rc = main(["bench-diff", str(old), str(new), "--threshold", "2.0"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "1 regression(s)" in out

    def test_json_output(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        _report(a=1.0).save(str(old))
        _report(a=5.0).save(str(new))
        rc = main(["bench-diff", str(old), str(new), "--json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["has_regressions"] is True
        assert payload["deltas"][0]["ratio"] == pytest.approx(5.0)


class TestRunSuiteHarness:
    @pytest.fixture(scope="class")
    def run_suite_mod(self):
        path = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "run_suite.py"
        )
        spec = importlib.util.spec_from_file_location("run_suite", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def test_discovery_finds_every_bench_file(self, run_suite_mod):
        names = {p.name for p in run_suite_mod.discover()}
        assert "bench_fig1_scaling.py" in names
        assert "bench_obs_overhead.py" in names
        assert len(names) >= 14
        assert run_suite_mod.discover("fig1") == [
            run_suite_mod.BENCH_DIR / "bench_fig1_scaling.py"
        ]

    def test_smoke_run_emits_valid_bench_file(self, run_suite_mod, tmp_path):
        report = run_suite_mod.run_suite(mode="smoke", filter_substr="fig1")
        assert report.mode == "smoke"
        assert report.entries, "fig1 benchmarks collected nothing"
        assert all(e.ok for e in report.entries)
        assert all(e.wall_s >= 0.0 for e in report.entries)
        assert all(
            e.name.startswith("benchmarks/bench_fig1_scaling.py::")
            for e in report.entries
        )
        out = tmp_path / "BENCH_ci.json"
        report.save(str(out))
        loaded = BenchReport.load(str(out))
        assert [e.name for e in loaded.entries] == [
            e.name for e in report.entries
        ]
        # the harness tears the global observability state back down
        assert not obs.enabled()

    def test_committed_baseline_is_loadable_and_smoke(self):
        baseline = (
            Path(__file__).resolve().parent.parent
            / "benchmarks"
            / "results"
            / "BENCH_baseline.json"
        )
        report = BenchReport.load(str(baseline))
        assert report.mode == "smoke"
        assert len(report.entries) >= 30
        assert all(e.ok for e in report.entries)
