"""Tests for the single-device statevector simulator and kernels."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.circuit import Circuit
from repro.ir.gates import GATE_SET, Gate
from repro.sim.statevector import StatevectorSimulator
from repro.utils.linalg import global_phase_aligned, random_statevector, random_unitary

angles = st.floats(min_value=-6.3, max_value=6.3, allow_nan=False)


def random_circuit(num_qubits: int, num_gates: int, seed: int) -> Circuit:
    rng = np.random.default_rng(seed)
    names_1q = ["x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "rx", "ry", "rz", "p", "u3"]
    names_2q = ["cx", "cz", "swap", "rzz", "rxx", "ryy", "cp", "crz"]
    c = Circuit(num_qubits)
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < 0.4:
            name = str(rng.choice(names_2q))
            q = rng.choice(num_qubits, size=2, replace=False)
            qubits = (int(q[0]), int(q[1]))
        else:
            name = str(rng.choice(names_1q))
            qubits = (int(rng.integers(num_qubits)),)
        npar = GATE_SET[name][1]
        params = tuple(float(x) for x in rng.uniform(-np.pi, np.pi, size=npar))
        c.append(Gate(name, qubits, params))
    return c


class TestSimulatorBasics:
    def test_initial_state(self):
        sim = StatevectorSimulator(3)
        assert np.isclose(sim.state[0], 1.0)
        assert np.isclose(np.linalg.norm(sim.state), 1.0)

    def test_bell(self):
        sim = StatevectorSimulator(2)
        sim.run(Circuit(2).h(0).cx(0, 1))
        probs = sim.probabilities()
        assert np.isclose(probs[0b00], 0.5)
        assert np.isclose(probs[0b11], 0.5)

    def test_ghz(self):
        n = 5
        c = Circuit(n).h(0)
        for i in range(n - 1):
            c.cx(i, i + 1)
        sim = StatevectorSimulator(n)
        sim.run(c)
        probs = sim.probabilities()
        assert np.isclose(probs[0], 0.5)
        assert np.isclose(probs[(1 << n) - 1], 0.5)

    def test_x_flips(self):
        sim = StatevectorSimulator(3)
        sim.run(Circuit(3).x(1))
        assert np.isclose(abs(sim.state[0b010]), 1.0)

    def test_rejects_unbound(self):
        from repro.ir.gates import Parameter

        sim = StatevectorSimulator(1)
        with pytest.raises(ValueError):
            sim.run(Circuit(1).rz(Parameter("t"), 0))

    def test_rejects_mismatched_width(self):
        sim = StatevectorSimulator(2)
        with pytest.raises(ValueError):
            sim.run(Circuit(3).h(0))

    def test_width_guard(self):
        with pytest.raises(ValueError):
            StatevectorSimulator(31)

    def test_memory_bytes(self):
        sim = StatevectorSimulator(10)
        assert sim.memory_bytes() == (1 << 10) * 16


class TestKernelsAgainstDense:
    """Every gate kernel must match the dense embedded unitary."""

    @given(st.sampled_from(sorted(GATE_SET)), st.data())
    def test_each_gate_matches_dense(self, name, data):
        nq, npar, _ = GATE_SET[name]
        n = 3
        params = tuple(data.draw(angles) for _ in range(npar))
        perm = data.draw(st.permutations(range(n)))
        qubits = tuple(perm[:nq])
        gate = Gate(name, qubits, params)
        circ = Circuit(n, [gate])
        state0 = random_statevector(n, np.random.default_rng(42))
        sim = StatevectorSimulator(n)
        sim.set_state(state0)
        sim.apply_gate(gate)
        expected = circ.to_matrix() @ state0
        assert np.allclose(sim.state, expected, atol=1e-10)

    def test_opaque_matrix_gates(self, rng):
        n = 4
        state0 = random_statevector(n, rng)
        u = random_unitary(4, rng)
        gate = Gate("fused2", (1, 3), (), u)
        sim = StatevectorSimulator(n)
        sim.set_state(state0)
        sim.apply_gate(gate)
        expected = Circuit(n, [gate]).to_matrix() @ state0
        assert np.allclose(sim.state, expected, atol=1e-10)

    def test_3q_dense_kernel(self, rng):
        n = 4
        state0 = random_statevector(n, rng)
        u = random_unitary(8, rng)
        gate = Gate("fused3", (0, 2, 3), (), u)
        sim = StatevectorSimulator(n)
        sim.set_state(state0)
        sim.apply_gate(gate)
        expected = Circuit(n, [gate]).to_matrix() @ state0
        assert np.allclose(sim.state, expected, atol=1e-10)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_circuits_match_dense(self, seed):
        n = 4
        c = random_circuit(n, 30, seed)
        sim = StatevectorSimulator(n)
        sim.run(c)
        expected = c.to_matrix()[:, 0]
        assert np.allclose(sim.state, expected, atol=1e-9)

    def test_norm_preserved_long_circuit(self):
        c = random_circuit(5, 200, 9)
        sim = StatevectorSimulator(5)
        sim.run(c)
        assert np.isclose(np.linalg.norm(sim.state), 1.0, atol=1e-9)


class TestMeasurement:
    def test_sample_counts_bell(self, rng):
        sim = StatevectorSimulator(2)
        sim.run(Circuit(2).h(0).cx(0, 1))
        counts = sim.sample_counts(4000, rng)
        assert set(counts) <= {0b00, 0b11}
        assert abs(counts.get(0, 0) - 2000) < 300

    def test_measure_collapses(self, rng):
        sim = StatevectorSimulator(2)
        sim.run(Circuit(2).h(0).cx(0, 1))
        outcome = sim.measure_qubit(0, rng)
        # After measuring one qubit of a Bell pair, the state is a
        # definite computational basis state.
        probs = sim.probabilities()
        assert np.isclose(probs.max(), 1.0)
        idx = int(np.argmax(probs))
        assert (idx >> 0) & 1 == outcome
        assert (idx >> 1) & 1 == outcome

    def test_suffix_execution(self, rng):
        """apply_circuit continues from the current state (caching path)."""
        sim = StatevectorSimulator(2)
        sim.run(Circuit(2).h(0))
        sim.apply_circuit(Circuit(2).cx(0, 1))
        probs = sim.probabilities()
        assert np.isclose(probs[0b00], 0.5)
        assert np.isclose(probs[0b11], 0.5)
