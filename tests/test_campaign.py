"""Tests for the checkpointed campaign layer: stepwise ADAPT, the
CampaignRunner's crash/rollback/resume semantics, the acceptance
scenario (deterministic recovery to the fault-free energy), and the
checkpoint-period performance model."""

import json
import math
import os

import numpy as np
import pytest

from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h2, h4_chain
from repro.chem.pools import uccsd_pool
from repro.chem.reference import hartree_fock_state
from repro.chem.scf import run_rhf
from repro.core.adapt import AdaptVQE
from repro.core.campaign import CampaignFailedError, CampaignResult, CampaignRunner
from repro.core.vqe import VQE
from repro.hpc.faults import FaultInjector, FaultSpec, RankFailure
from repro.hpc.perfmodel import (
    campaign_runtime_with_failures,
    checkpoint_write_time,
    optimal_checkpoint_period,
)
from repro.utils.retry import RetryPolicy


@pytest.fixture(scope="module")
def h2_problem():
    scf = run_rhf(h2())
    hq = build_molecular_hamiltonian(scf).to_qubit()
    e_fci = exact_ground_energy(hq, num_particles=2, sz=0)
    return hq, e_fci


@pytest.fixture(scope="module")
def h4_problem():
    scf = run_rhf(h4_chain())
    hq = build_molecular_hamiltonian(scf).to_qubit()
    e_fci = exact_ground_energy(hq, num_particles=4, sz=0)
    return hq, e_fci


def _make_adapt(hq, e_ref, n, n_elec, max_iterations=8):
    return AdaptVQE(
        hq,
        uccsd_pool(n, n_elec),
        hartree_fock_state(n, n_elec),
        max_iterations=max_iterations,
        reference_energy=e_ref,
        energy_tolerance=1e-6,
    )


class TestStepwiseAdapt:
    def test_run_equals_manual_stepping(self, h2_problem):
        hq, e_ref = h2_problem
        result = _make_adapt(hq, e_ref, 4, 2).run()
        adapt = _make_adapt(hq, e_ref, 4, 2)
        st = adapt.initial_state()
        while not st.converged and st.iteration < adapt.max_iterations:
            adapt.step(st)
        stepped = adapt.result(st)
        assert stepped.energy == result.energy
        assert stepped.operator_labels == result.operator_labels
        assert len(stepped.iterations) == len(result.iterations)

    def test_statevector_recomputable_from_parameters(self, h2_problem):
        hq, e_ref = h2_problem
        adapt = _make_adapt(hq, e_ref, 4, 2)
        st = adapt.step(adapt.initial_state())
        recomputed = adapt.prepare_statevector(st)
        assert np.allclose(recomputed, st.statevector, atol=1e-12)

    def test_step_on_converged_state_is_noop(self, h2_problem):
        hq, e_ref = h2_problem
        adapt = _make_adapt(hq, e_ref, 4, 2)
        st = adapt.initial_state()
        while not st.converged and st.iteration < adapt.max_iterations:
            adapt.step(st)
        before = (st.iteration, list(st.chosen_indices))
        adapt.step(st)
        assert (st.iteration, list(st.chosen_indices)) == before


class TestCampaignResume:
    def test_walltime_kill_resume(self, h2_problem, tmp_path):
        """Stop a campaign midway (walltime kill), then re-run over the
        same checkpoint directory: it must resume, not start over, and
        finish at the uninterrupted energy."""
        hq, e_ref = h2_problem
        baseline = _make_adapt(hq, e_ref, 4, 2).run()

        adapt = _make_adapt(hq, e_ref, 4, 2)
        runner = CampaignRunner(str(tmp_path), checkpoint_period=1)
        st = adapt.initial_state()
        adapt.step(st)
        runner._save_adapt_state(st)  # the state the kill left behind

        resumed = CampaignRunner(str(tmp_path), checkpoint_period=1).run_adapt(
            _make_adapt(hq, e_ref, 4, 2)
        )
        assert resumed.resumed_from == 1
        assert resumed.energy == pytest.approx(baseline.energy, abs=1e-12)

    def test_rerun_of_finished_campaign_is_idempotent(self, h2_problem, tmp_path):
        hq, e_ref = h2_problem
        first = CampaignRunner(str(tmp_path)).run_adapt(
            _make_adapt(hq, e_ref, 4, 2)
        )
        second = CampaignRunner(str(tmp_path)).run_adapt(
            _make_adapt(hq, e_ref, 4, 2)
        )
        assert second.energy == first.energy
        assert second.restarts == 0

    def test_corrupt_campaign_checkpoint_rejected(self, h2_problem, tmp_path):
        hq, e_ref = h2_problem
        (tmp_path / "adapt_state.json").write_text("{not json")
        with pytest.raises(ValueError, match="corrupt campaign checkpoint"):
            CampaignRunner(str(tmp_path)).run_adapt(_make_adapt(hq, e_ref, 4, 2))

    def test_checkpoint_from_wrong_pool_rejected(self, h2_problem, tmp_path):
        hq, e_ref = h2_problem
        payload = {
            "version": 1,
            "iteration": 1,
            "chosen_indices": [999],
            "parameters": [0.1],
            "energy": -1.0,
            "converged": False,
            "records": [],
        }
        (tmp_path / "adapt_state.json").write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="outside the pool"):
            CampaignRunner(str(tmp_path)).run_adapt(_make_adapt(hq, e_ref, 4, 2))


class TestCrashRecovery:
    def test_acceptance_scenario_deterministic_recovery(self, h4_problem, tmp_path):
        """The ISSUE acceptance criterion: a seeded rank crash
        mid-ADAPT plus transient exchange faults; the campaign resumes
        from the last checkpoint, converges to the fault-free energy
        within 1e-8 Ha, and the fault ledger + retry counters report
        every injected event."""
        hq, e_ref = h4_problem
        n = hq.num_qubits
        baseline = _make_adapt(hq, e_ref, n, 4, max_iterations=4).run()

        def run_once(subdir):
            injector = FaultInjector(
                [
                    FaultSpec("rank_crash", scope="campaign", at_step=3),
                    FaultSpec("transient_exchange", probability=0.3),
                ],
                seed=17,
            )
            runner = CampaignRunner(
                str(tmp_path / subdir),
                checkpoint_period=2,
                fault_injector=injector,
                retry_policy=RetryPolicy(max_attempts=10, seed=5),
                distributed_ranks=2,
            )
            result = runner.run_adapt(_make_adapt(hq, e_ref, n, 4, max_iterations=4))
            return result, runner

        result, runner = run_once("a")
        # crash fired at iteration 3, checkpoint was at 2: one restart,
        # iterations recomputed < checkpoint period
        assert result.restarts == 1
        assert result.iterations_recomputed == 0  # crash hit before step 3 ran
        assert result.fault_ledger.count("rank_crash") == 1
        # transient faults were injected into the distributed
        # cross-check and every one was retried
        transients = result.fault_ledger.count("transient_exchange")
        assert transients > 0
        assert runner.comm_stats.retries == transients
        assert runner.comm_stats.transient_errors == transients
        # converged to the fault-free energy
        assert abs(result.energy - baseline.energy) < 1e-8
        assert result.simulated_backoff_s > 0.0

        # the whole faulty campaign replays identically
        replay, _ = run_once("b")
        assert replay.energy == result.energy
        assert replay.restarts == result.restarts
        assert [
            (e.kind, e.scope, e.step) for e in replay.fault_ledger.events
        ] == [(e.kind, e.scope, e.step) for e in result.fault_ledger.events]

    def test_lost_work_scales_with_checkpoint_period(self, h4_problem, tmp_path):
        """With the checkpoint at iteration 1 and a crash while running
        iteration 3, one completed iteration must be recomputed."""
        hq, e_ref = h4_problem
        n = hq.num_qubits
        injector = FaultInjector(
            [FaultSpec("rank_crash", scope="campaign", at_step=3)], seed=0
        )
        runner = CampaignRunner(
            str(tmp_path),
            checkpoint_period=4,  # only the post-convergence save lands
            fault_injector=injector,
        )
        result = runner.run_adapt(_make_adapt(hq, e_ref, n, 4, max_iterations=4))
        assert result.restarts == 1
        assert result.iterations_recomputed == 2  # iterations 1-2 redone
        assert result.fault_ledger.count("rank_crash") == 1

    def test_gives_up_after_max_restarts(self, h2_problem, tmp_path):
        hq, e_ref = h2_problem
        injector = FaultInjector(
            [
                FaultSpec(
                    "rank_crash", scope="campaign", at_step=1, max_triggers=10
                )
            ],
            seed=0,
        )
        runner = CampaignRunner(
            str(tmp_path), fault_injector=injector, max_restarts=2
        )
        with pytest.raises(CampaignFailedError):
            runner.run_adapt(_make_adapt(hq, e_ref, 4, 2))


class TestVQECampaign:
    def test_vqe_campaign_recovers_from_crash(self, h2_problem, tmp_path):
        hq, _ = h2_problem
        n_qubits = hq.num_qubits
        pool = uccsd_pool(n_qubits, 2)
        gens = [op.generator for op in pool]
        ref = hartree_fock_state(n_qubits, 2)

        baseline = VQE(hq, generators=gens, reference_state=ref).run()

        injector = FaultInjector(
            [FaultSpec("rank_crash", scope="campaign", at_step=6)], seed=0
        )
        vqe = VQE(hq, generators=gens, reference_state=ref)
        runner = CampaignRunner(
            str(tmp_path), checkpoint_period=2, fault_injector=injector
        )
        result = runner.run_vqe(vqe)
        assert result.restarts == 1
        assert result.fault_ledger.count("rank_crash") == 1
        assert result.energy == pytest.approx(baseline.energy, abs=1e-8)
        # callback restored after the campaign
        assert vqe.evaluation_callback is None

    def test_vqe_checkpoint_file_roundtrip(self, h2_problem, tmp_path):
        hq, _ = h2_problem
        pool = uccsd_pool(4, 2)
        gens = [op.generator for op in pool]
        ref = hartree_fock_state(4, 2)
        runner = CampaignRunner(str(tmp_path), checkpoint_period=1)
        result = runner.run_vqe(VQE(hq, generators=gens, reference_state=ref))
        saved = runner._load_vqe_params()
        assert saved is not None
        assert np.allclose(
            saved["parameters"], result.result.optimal_parameters, atol=0.0
        )
        assert runner.checkpoints_written > 0


class TestRecoveryPerfModel:
    def test_checkpoint_write_time_scales_with_slice(self):
        t_small = checkpoint_write_time(20, 4)
        t_big = checkpoint_write_time(24, 4)
        assert t_big > t_small
        # doubling ranks halves the per-rank slice
        assert checkpoint_write_time(24, 8) < checkpoint_write_time(24, 4)

    def test_young_optimum(self):
        assert optimal_checkpoint_period(10.0, 2000.0) == pytest.approx(
            math.sqrt(2 * 10.0 * 2000.0)
        )
        with pytest.raises(ValueError):
            optimal_checkpoint_period(1.0, 0.0)

    def test_daly_runtime_minimized_near_young_period(self):
        work, cost, mtbf = 3600.0, 5.0, 1800.0
        tau_star = optimal_checkpoint_period(cost, mtbf)
        t_star = campaign_runtime_with_failures(work, tau_star, cost, mtbf)
        for tau in (tau_star / 8, tau_star * 8):
            assert campaign_runtime_with_failures(work, tau, cost, mtbf) > t_star

    def test_hopeless_failure_rate_is_infinite(self):
        assert campaign_runtime_with_failures(100.0, 50.0, 10.0, 20.0) == math.inf

    def test_no_failures_limit(self):
        # MTBF -> huge: runtime approaches work + checkpoint overhead
        t = campaign_runtime_with_failures(100.0, 10.0, 1.0, 1e12)
        assert t == pytest.approx(110.0, rel=1e-6)
