"""Tests for gate fusion (paper §4.3): the fused circuit must implement
the same unitary with fewer gates, never exceeding 2-qubit blocks."""

import numpy as np
import pytest

from repro.ir.circuit import Circuit
from repro.sim.fusion import embed_1q_in_2q, fuse_circuit
from repro.sim.statevector import StatevectorSimulator
from repro.utils.linalg import global_phase_aligned
from tests.test_statevector import random_circuit


class TestEmbedding:
    def test_embed_low_slot(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        m = embed_1q_in_2q(x, 0)
        # acts on low bit: |00> -> |01>
        v = np.zeros(4)
        v[0] = 1
        assert np.argmax(np.abs(m @ v)) == 0b01

    def test_embed_high_slot(self):
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        m = embed_1q_in_2q(x, 1)
        v = np.zeros(4)
        v[0] = 1
        assert np.argmax(np.abs(m @ v)) == 0b10


class TestFusionCorrectness:
    def test_1q_run_fuses_to_one(self):
        c = Circuit(1).h(0).t(0).s(0).x(0)
        res = fuse_circuit(c)
        assert res.fused_gates == 1
        assert np.allclose(
            res.circuit.to_matrix(), c.to_matrix(), atol=1e-10
        )

    def test_1q_absorbed_into_2q(self):
        c = Circuit(2).h(0).cx(0, 1).rz(0.3, 1)
        res = fuse_circuit(c)
        assert res.fused_gates == 1
        assert np.allclose(res.circuit.to_matrix(), c.to_matrix(), atol=1e-10)

    def test_no_cross_entangler_fusion(self):
        # Gates on (0,1) then (1,2) cannot fuse (union = 3 qubits).
        c = Circuit(3).cx(0, 1).cx(1, 2)
        res = fuse_circuit(c)
        assert res.fused_gates == 2

    def test_reduction_property(self):
        c = Circuit(2).h(0).h(1).cx(0, 1).rz(0.1, 0).rz(0.2, 1).cx(0, 1)
        res = fuse_circuit(c)
        assert res.original_gates == 6
        assert res.fused_gates < 6
        assert 0 < res.reduction < 1

    @pytest.mark.parametrize("seed", range(6))
    def test_random_circuits_same_state(self, seed):
        n = 4
        c = random_circuit(n, 40, seed)
        res = fuse_circuit(c)
        assert res.fused_gates <= res.original_gates
        s1 = StatevectorSimulator(n)
        s2 = StatevectorSimulator(n)
        s1.run(c)
        s2.run(res.circuit)
        assert np.allclose(s1.state, s2.state, atol=1e-9)

    def test_all_fused_blocks_within_2_qubits(self):
        c = random_circuit(5, 60, 11)
        res = fuse_circuit(c)
        assert all(g.num_qubits <= 2 for g in res.circuit.gates)

    def test_max_qubits_1(self):
        c = Circuit(2).h(0).t(0).cx(0, 1).s(1).s(1)
        res = fuse_circuit(c, max_qubits=1)
        # h,t fuse; cx untouched; s,s fuse
        assert res.fused_gates == 3
        assert np.allclose(res.circuit.to_matrix(), c.to_matrix(), atol=1e-10)

    def test_invalid_max_qubits(self):
        with pytest.raises(ValueError):
            fuse_circuit(Circuit(1).h(0), max_qubits=3)

    def test_parameterized_gate_is_barrier(self):
        from repro.ir.gates import Parameter

        c = Circuit(1).h(0).rz(Parameter("t"), 0).h(0)
        res = fuse_circuit(c)
        # symbolic rz cannot fuse; h's stay separate around it
        assert res.fused_gates == 3

    def test_interleaved_qubit_blocks(self):
        # cx(0,1), x(2), rz on 1 -> rz fuses into the cx even though x(2)
        # appears in between (disjoint support commutes).
        c = Circuit(3).cx(0, 1).x(2).rz(0.5, 1)
        res = fuse_circuit(c)
        assert res.fused_gates == 2
        s1, s2 = StatevectorSimulator(3), StatevectorSimulator(3)
        s1.run(c)
        s2.run(res.circuit)
        assert np.allclose(s1.state, s2.state, atol=1e-10)

    def test_swapped_qubit_order_2q_fusion(self):
        # rzz(1,0) then rzz(0,1): same pair in different order must fuse.
        c = Circuit(2).add("rzz", [1, 0], 0.3).add("rzz", [0, 1], 0.4)
        res = fuse_circuit(c)
        assert res.fused_gates == 1
        assert np.allclose(res.circuit.to_matrix(), c.to_matrix(), atol=1e-10)
