"""Tests for the core layer: VQE driver, estimators, caching, counting."""

import numpy as np
import pytest

from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import (
    build_molecular_hamiltonian,
    synthetic_two_body_hamiltonian,
)
from repro.chem.molecule import h2
from repro.chem.reference import hartree_fock_state
from repro.chem.scf import run_rhf
from repro.chem.uccsd import build_uccsd_circuit, uccsd_generators
from repro.core.cache import CachedEnergyEvaluator, PostAnsatzCache
from repro.core.counting import (
    energy_evaluation_gate_counts,
    jw_pauli_term_count,
    statevector_memory_bytes,
    uccsd_gate_count,
)
from repro.core.estimator import make_estimator
from repro.core.vqe import VQE
from repro.ir.pauli import PauliSum
from repro.opt.scipy_wrap import Cobyla


@pytest.fixture(scope="module")
def h2_setup():
    scf = run_rhf(h2())
    hq = build_molecular_hamiltonian(scf).to_qubit()
    e_fci = exact_ground_energy(hq, num_particles=2, sz=0)
    return scf, hq, e_fci


class TestVQEDriver:
    def test_chemistry_mode_reaches_fci(self, h2_setup):
        _, hq, e_fci = h2_setup
        gens = [a for _, a in uccsd_generators(4, 2)]
        vqe = VQE(hq, generators=gens, reference_state=hartree_fock_state(4, 2))
        res = vqe.run()
        assert abs(res.energy - e_fci) < 1e-6
        assert res.mode == "chemistry"

    def test_circuit_mode_reaches_fci(self, h2_setup):
        _, hq, e_fci = h2_setup
        ansatz = build_uccsd_circuit(4, 2)
        vqe = VQE(hq, ansatz=ansatz.circuit, optimizer=Cobyla())
        res = vqe.run()
        assert abs(res.energy - e_fci) < 1e-4
        assert res.mode == "circuit"

    def test_modes_agree(self, h2_setup):
        """Same ansatz family: both modes find the same minimum."""
        _, hq, _ = h2_setup
        gens = [a for _, a in uccsd_generators(4, 2)]
        chem = VQE(hq, generators=gens, reference_state=hartree_fock_state(4, 2)).run()
        circ = VQE(hq, ansatz=build_uccsd_circuit(4, 2).circuit, optimizer=Cobyla()).run()
        assert abs(chem.energy - circ.energy) < 1e-4

    def test_energy_at_zero_is_hf(self, h2_setup):
        scf, hq, _ = h2_setup
        gens = [a for _, a in uccsd_generators(4, 2)]
        vqe = VQE(hq, generators=gens, reference_state=hartree_fock_state(4, 2))
        assert np.isclose(vqe.energy(np.zeros(3)), scf.energy, atol=1e-8)

    def test_non_hermitian_rejected(self):
        h = PauliSum.from_label_dict({"XY": 1j})
        with pytest.raises(ValueError):
            VQE(h, generators=[], reference_state=np.array([1, 0, 0, 0]))

    def test_requires_an_ansatz(self, h2_setup):
        _, hq, _ = h2_setup
        with pytest.raises(ValueError):
            VQE(hq)

    def test_wrong_initial_params(self, h2_setup):
        _, hq, _ = h2_setup
        gens = [a for _, a in uccsd_generators(4, 2)]
        vqe = VQE(hq, generators=gens, reference_state=hartree_fock_state(4, 2))
        with pytest.raises(ValueError):
            vqe.run(np.zeros(7))


class TestEstimators:
    def test_direct_and_caching_agree(self, h2_setup):
        _, hq, _ = h2_setup
        ansatz = build_uccsd_circuit(4, 2)
        bound = ansatz.circuit.bind([0.05, -0.03, 0.1])
        direct = make_estimator("direct")
        caching = make_estimator("caching")
        assert np.isclose(
            direct.estimate(bound, hq), caching.estimate(bound, hq), atol=1e-9
        )

    def test_sampling_close(self, h2_setup):
        _, hq, _ = h2_setup
        ansatz = build_uccsd_circuit(4, 2)
        bound = ansatz.circuit.bind([0.05, -0.03, 0.1])
        direct = make_estimator("direct").estimate(bound, hq)
        sampled = make_estimator("sampling", shots_per_group=30000, seed=5).estimate(
            bound, hq
        )
        assert abs(direct - sampled) < 0.02

    def test_caching_tracks_extra_gates(self, h2_setup):
        _, hq, _ = h2_setup
        ansatz = build_uccsd_circuit(4, 2)
        bound = ansatz.circuit.bind([0.0, 0.0, 0.0])
        est = make_estimator("caching")
        est.estimate(bound, hq)
        assert est.extra_gates > 0

    def test_unknown_estimator(self):
        with pytest.raises(KeyError):
            make_estimator("magic")


class TestPostAnsatzCache:
    def test_hit_miss_accounting(self):
        cache = PostAnsatzCache()
        params = np.array([0.1, 0.2])
        assert cache.get(params) is None
        cache.put(params, np.ones(4, dtype=complex))
        assert cache.get(params) is not None
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = PostAnsatzCache(max_entries=2)
        for k in range(3):
            cache.put(np.array([float(k)]), np.ones(4, dtype=complex))
        assert len(cache) == 2
        assert cache.get(np.array([0.0])) is None  # evicted

    def test_device_capacity_spill(self):
        """States beyond device capacity are host-resident (§4.1.4)."""
        state = np.ones(1 << 10, dtype=complex)  # 16 KiB
        cache = PostAnsatzCache(device_capacity_bytes=20_000, max_entries=4)
        cache.put(np.array([1.0]), state)
        assert cache.host_spills == 0
        cache.put(np.array([2.0]), state)  # exceeds 20 KB -> host
        assert cache.host_spills == 1
        cache.get(np.array([2.0]))  # host access counts again
        assert cache.host_spills == 2


class TestCachedEnergyEvaluator:
    def test_caching_equals_noncaching_energy(self, h2_setup):
        _, hq, _ = h2_setup
        ansatz = build_uccsd_circuit(4, 2)
        params = np.array([0.07, -0.02, 0.11])
        on = CachedEnergyEvaluator(ansatz.circuit, hq, use_caching=True)
        off = CachedEnergyEvaluator(ansatz.circuit, hq, use_caching=False)
        assert np.isclose(on.energy(params), off.energy(params), atol=1e-9)

    def test_caching_runs_ansatz_once(self, h2_setup):
        _, hq, _ = h2_setup
        ansatz = build_uccsd_circuit(4, 2)
        params = np.zeros(3)
        on = CachedEnergyEvaluator(ansatz.circuit, hq, use_caching=True)
        on.energy(params)
        assert on.ledger.ansatz_executions == 1
        # Re-evaluating at the same point hits the cache: still 1.
        on.energy(params)
        assert on.ledger.ansatz_executions == 1
        assert on.ledger.cache_hits == 1

    def test_noncaching_reruns_per_group(self, h2_setup):
        _, hq, _ = h2_setup
        ansatz = build_uccsd_circuit(4, 2)
        off = CachedEnergyEvaluator(ansatz.circuit, hq, use_caching=False)
        off.energy(np.zeros(3))
        assert off.ledger.ansatz_executions >= off.num_groups - 1

    def test_gate_savings(self, h2_setup):
        """The Fig. 3 effect at H2 scale: caching saves most gates."""
        _, hq, _ = h2_setup
        ansatz = build_uccsd_circuit(4, 2)
        params = np.zeros(3)
        on = CachedEnergyEvaluator(ansatz.circuit, hq, use_caching=True)
        off = CachedEnergyEvaluator(ansatz.circuit, hq, use_caching=False)
        on.energy(params)
        off.energy(params)
        assert on.ledger.total_gates < off.ledger.total_gates / 2

    def test_per_term_mode(self, h2_setup):
        _, hq, _ = h2_setup
        ansatz = build_uccsd_circuit(4, 2)
        ungrouped = CachedEnergyEvaluator(
            ansatz.circuit, hq, use_caching=True, group_terms=False
        )
        grouped = CachedEnergyEvaluator(ansatz.circuit, hq, use_caching=True)
        p = np.array([0.03, 0.01, -0.06])
        assert np.isclose(ungrouped.energy(p), grouped.energy(p), atol=1e-9)
        assert ungrouped.num_groups >= grouped.num_groups


class TestCounting:
    @pytest.mark.parametrize("n_spatial", [4, 6, 8])
    def test_term_count_formula_exact(self, n_spatial):
        """The closed-form Fig. 1b census must match explicit JW
        construction term for term."""
        hq = synthetic_two_body_hamiltonian(n_spatial, seed=1).to_qubit()
        assert jw_pauli_term_count(2 * n_spatial) == hq.num_terms

    def test_odd_qubits_rejected(self):
        with pytest.raises(ValueError):
            jw_pauli_term_count(13)

    def test_memory_counts(self):
        assert statevector_memory_bytes(30) == (1 << 30) * 16  # 16 GiB
        assert statevector_memory_bytes(10) == 16384

    def test_uccsd_count_monotone(self):
        counts = [uccsd_gate_count(n) for n in range(12, 32, 2)]
        assert all(b > a for a, b in zip(counts, counts[1:]))
        assert counts[-1] > 1e6  # ~millions of gates at 30 qubits (Fig 1a)

    def test_fig3_savings_range(self):
        """The paper reports 3 to 5 orders of magnitude of savings."""
        for n in range(12, 32, 2):
            cost = energy_evaluation_gate_counts(n)
            assert 2.5 <= cost.savings_orders_of_magnitude <= 5.5
        assert energy_evaluation_gate_counts(12).non_caching_gates > 1e7
        assert energy_evaluation_gate_counts(30).non_caching_gates < 1e12

    def test_caching_cost_is_ansatz_plus_basis(self):
        cost = energy_evaluation_gate_counts(16)
        assert cost.caching_gates == cost.ansatz_gates + cost.basis_change_gates
        assert (
            cost.non_caching_gates
            == cost.num_pauli_terms * cost.ansatz_gates + cost.basis_change_gates
        )
