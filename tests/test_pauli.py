"""Tests for the Pauli-string / Pauli-sum algebra."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.pauli import PauliString, PauliSum
from repro.utils.linalg import random_statevector

I2 = np.eye(2, dtype=complex)
MX = np.array([[0, 1], [1, 0]], dtype=complex)
MY = np.array([[0, -1j], [1j, 0]], dtype=complex)
MZ = np.array([[1, 0], [0, -1]], dtype=complex)
MATS = {"I": I2, "X": MX, "Y": MY, "Z": MZ}


def dense_from_label(label: str) -> np.ndarray:
    """Literal tensor product, label[0] = highest qubit."""
    out = np.eye(1, dtype=complex)
    for ch in label:
        out = np.kron(out, MATS[ch])
    return out


labels = st.text(alphabet="IXYZ", min_size=1, max_size=5)


class TestPauliString:
    def test_label_roundtrip(self):
        for lbl in ["X", "IZ", "XYZ", "IIII", "YXZI"]:
            assert PauliString.from_label(lbl).label() == lbl

    def test_from_ops(self):
        p = PauliString.from_ops(3, {0: "X", 2: "Z"})
        assert p.label() == "ZIX"

    def test_invalid_char(self):
        with pytest.raises(ValueError):
            PauliString.from_label("XQ")

    @given(labels)
    def test_matrix_matches_tensor_product(self, lbl):
        p = PauliString.from_label(lbl)
        assert np.allclose(p.to_matrix(), dense_from_label(lbl))

    @given(labels)
    def test_hermitian(self, lbl):
        m = PauliString.from_label(lbl).to_matrix()
        assert np.allclose(m, m.conj().T)

    @given(labels, labels)
    def test_product_phase(self, a, b):
        n = max(len(a), len(b))
        a = a.rjust(n, "I")
        b = b.rjust(n, "I")
        pa, pb = PauliString.from_label(a), PauliString.from_label(b)
        phase, pc = pa.mul(pb)
        assert np.allclose(
            phase * pc.to_matrix(), dense_from_label(a) @ dense_from_label(b)
        )

    @given(labels, labels)
    def test_commutation_predicate(self, a, b):
        n = max(len(a), len(b))
        a, b = a.rjust(n, "I"), b.rjust(n, "I")
        pa, pb = PauliString.from_label(a), PauliString.from_label(b)
        ma, mb = dense_from_label(a), dense_from_label(b)
        commutes = np.allclose(ma @ mb, mb @ ma)
        assert pa.commutes_with(pb) == commutes

    def test_qubitwise_commutes(self):
        a = PauliString.from_label("XIZ")
        b = PauliString.from_label("XZI")
        c = PauliString.from_label("ZIZ")
        assert a.qubitwise_commutes_with(b)
        assert not a.qubitwise_commutes_with(c)

    @given(labels)
    def test_apply_matches_matrix(self, lbl):
        p = PauliString.from_label(lbl)
        state = random_statevector(len(lbl), np.random.default_rng(3))
        assert np.allclose(p.apply(state), p.to_matrix() @ state)

    @given(labels)
    def test_expectation_real(self, lbl):
        p = PauliString.from_label(lbl)
        state = random_statevector(len(lbl), np.random.default_rng(5))
        val = p.expectation(state)
        assert abs(val.imag) < 1e-10
        assert -1.0 - 1e-9 <= val.real <= 1.0 + 1e-9

    def test_support_and_weight(self):
        p = PauliString.from_label("XIYZ")
        assert p.support == (0, 1, 3)
        assert p.weight == 3
        assert not p.is_identity
        assert PauliString.identity(4).is_identity

    def test_diagonal(self):
        assert PauliString.from_label("ZIZ").is_diagonal
        assert not PauliString.from_label("XIZ").is_diagonal


class TestPauliSum:
    def test_add_collapses(self):
        h = PauliSum.from_label_dict({"XX": 1.0, "ZZ": 2.0})
        g = PauliSum.from_label_dict({"XX": -1.0})
        s = h + g
        assert s.num_terms == 1
        assert s.coefficient(PauliString.from_label("ZZ")) == 2.0

    def test_scalar_mul(self):
        h = PauliSum.from_label_dict({"XY": 2.0})
        assert (h * 0.5).coefficient(PauliString.from_label("XY")) == 1.0

    @given(labels, labels)
    def test_dot_matches_dense(self, a, b):
        n = max(len(a), len(b))
        a, b = a.rjust(n, "I"), b.rjust(n, "I")
        ha = PauliSum.from_label_dict({a: 1.5})
        hb = PauliSum.from_label_dict({b: -0.5j})
        prod = ha.dot(hb)
        assert np.allclose(
            prod.to_matrix(),
            1.5 * dense_from_label(a) @ (-0.5j * dense_from_label(b)),
        )

    def test_commutator_matches_dense(self):
        h = PauliSum.from_label_dict({"XX": 1.0, "ZI": 0.5, "IY": -0.25})
        g = PauliSum.from_label_dict({"ZZ": 0.7, "XI": 0.2})
        comm = h.commutator(g)
        mh, mg = h.to_matrix(), g.to_matrix()
        assert np.allclose(comm.to_matrix(), mh @ mg - mg @ mh)

    def test_commutator_of_commuting_is_zero(self):
        h = PauliSum.from_label_dict({"ZZ": 1.0})
        g = PauliSum.from_label_dict({"ZI": 2.0, "IZ": -1.0})
        assert h.commutator(g).num_terms == 0

    def test_hermiticity_checks(self):
        h = PauliSum.from_label_dict({"XX": 1.0, "ZZ": -0.5})
        assert h.is_hermitian()
        a = PauliSum.from_label_dict({"XY": 1j})
        assert a.is_anti_hermitian()
        assert not a.is_hermitian()

    def test_apply_and_expectation(self, rng):
        h = PauliSum.from_label_dict({"XX": 1.0, "ZZ": 1.0, "II": 0.5})
        state = random_statevector(2, rng)
        dense = h.to_matrix()
        assert np.allclose(h.apply(state), dense @ state)
        assert np.isclose(
            h.expectation(state).real, np.vdot(state, dense @ state).real
        )

    def test_ground_energy_small(self):
        # H = Z has ground energy -1.
        h = PauliSum.from_label_dict({"Z": 1.0})
        assert np.isclose(h.ground_energy(), -1.0)

    def test_ground_energy_sparse_path(self):
        # 7 qubits forces the eigsh path; transverse-field-free Ising chain
        # ZZ couplings with all -1 coefficients: ground energy = -(n-1).
        n = 7
        terms = {}
        for i in range(n - 1):
            lbl = ["I"] * n
            lbl[n - 1 - i] = "Z"
            lbl[n - 2 - i] = "Z"
            terms["".join(lbl)] = -1.0
        h = PauliSum.from_label_dict(terms)
        assert np.isclose(h.ground_energy(), -(n - 1))

    def test_chop(self):
        h = PauliSum.from_label_dict({"XX": 1.0, "ZZ": 1e-15})
        assert h.chop(1e-12).num_terms == 1

    def test_grouping_covers_all_terms(self):
        h = PauliSum.from_label_dict(
            {"XX": 1.0, "ZZ": 0.5, "XI": 0.3, "IZ": 0.2, "YY": -0.1}
        )
        groups = h.group_qubitwise_commuting()
        total_terms = sum(len(g) for g in groups)
        assert total_terms == h.num_terms
        for group in groups:
            for i, (_, a) in enumerate(group):
                for _, b in group[i + 1:]:
                    assert a.qubitwise_commutes_with(b)

    def test_norm1(self):
        h = PauliSum.from_label_dict({"XX": 3.0, "ZZ": -4.0})
        assert h.norm1() == 7.0
