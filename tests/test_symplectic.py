"""Property tests for the packed symplectic Pauli engine and Z2 qubit
tapering: engine kernels vs the per-term reference loops, phase
conventions, GF(2) linear algebra, and tapered-vs-full ground energies."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.chem.mappings as mappings
from repro import obs
from repro.chem.fermion import FermionOperator
from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import (
    build_molecular_hamiltonian,
    synthetic_two_body_hamiltonian,
)
from repro.chem.mappings import map_fermion_operator
from repro.chem.molecule import h2, lih
from repro.chem.reference import hartree_fock_bitstring, hartree_fock_state
from repro.chem.scf import run_rhf
from repro.chem.tapering import (
    TaperingError,
    find_z2_symmetries,
    sector_from_reference,
    taper_hamiltonian,
)
from repro.ir.pauli import PauliString, PauliSum
from repro.ir.symplectic import (
    SymplecticPauli,
    gf2_kernel,
    gf2_rref,
    pack_masks,
    pauli_mul_batch,
    unpack_masks,
)

coeffs = st.complex_numbers(
    min_magnitude=0.1, max_magnitude=2.0, allow_nan=False, allow_infinity=False
)


@st.composite
def pauli_sums(draw, n=6, min_terms=1, max_terms=8):
    out = PauliSum.zero(n)
    for _ in range(draw(st.integers(min_terms, max_terms))):
        x = draw(st.integers(0, (1 << n) - 1))
        z = draw(st.integers(0, (1 << n) - 1))
        out.add_term(PauliString(n, x, z), draw(coeffs))
    return out


def _terms_close(a: PauliSum, b: PauliSum, atol=1e-9):
    keys = set(a.terms) | set(b.terms)
    return all(
        abs(a.terms.get(k, 0.0) - b.terms.get(k, 0.0)) < atol for k in keys
    )


# -- packing ------------------------------------------------------------------


class TestPacking:
    @given(
        st.integers(1, 140),
        st.lists(st.integers(0, (1 << 140) - 1), min_size=0, max_size=6),
    )
    def test_pack_unpack_round_trip(self, n, masks):
        masks = [m & ((1 << n) - 1) for m in masks]
        packed = pack_masks(masks, n)
        assert packed.shape == (len(masks), (n + 63) // 64)
        assert unpack_masks(packed) == masks

    @given(pauli_sums(n=6))
    def test_pauli_sum_round_trip(self, ps):
        symp = SymplecticPauli.from_pauli_sum(ps)
        back = symp.to_pauli_sum()
        assert _terms_close(ps, back)

    @given(pauli_sums(n=70, max_terms=5))
    def test_multiword_round_trip(self, ps):
        symp = SymplecticPauli.from_pauli_sum(ps)
        assert symp.num_words == 2
        assert _terms_close(ps, symp.to_pauli_sum())

    def test_labels_match_pauli_strings(self):
        ps = PauliSum.from_label_dict({"XZYI": 1.0, "IIXY": 2.0, "ZZZZ": 3.0})
        symp = ps.to_symplectic()
        expect = {p.label() for _, p in ps}
        assert set(symp.labels()) == expect


# -- engine vs per-term loops -------------------------------------------------


class TestEngineMatchesPerTerm:
    @given(pauli_sums(n=6), pauli_sums(n=6))
    def test_product(self, a, b):
        reference = a._dot_per_term(b)
        engine = PauliSum(6, a.to_symplectic().mul(b.to_symplectic()).to_terms_dict())
        assert _terms_close(reference, engine)

    @given(pauli_sums(n=70, max_terms=5), pauli_sums(n=70, max_terms=5))
    def test_product_multiword(self, a, b):
        reference = a._dot_per_term(b)
        engine = PauliSum(
            70, a.to_symplectic().mul(b.to_symplectic()).to_terms_dict()
        )
        assert _terms_close(reference, engine)

    @given(pauli_sums(n=6), pauli_sums(n=6))
    def test_commutator(self, a, b):
        reference = a._commutator_per_term(b)
        engine = PauliSum(
            6, a.to_symplectic().commutator(b.to_symplectic()).to_terms_dict()
        )
        assert _terms_close(reference, engine)

    def test_phase_convention_vs_pauli_string(self):
        rng = np.random.default_rng(7)
        n = 9
        for _ in range(200):
            x1, z1, x2, z2 = (int(v) for v in rng.integers(0, 1 << n, 4))
            phase, p3 = PauliString(n, x1, z1).mul(PauliString(n, x2, z2))
            x3, z3, c3 = pauli_mul_batch(
                pack_masks([x1], n),
                pack_masks([z1], n),
                np.array([1.0 + 0j]),
                pack_masks([x2], n),
                pack_masks([z2], n),
                np.array([1.0 + 0j]),
            )
            assert unpack_masks(x3) == [p3.x]
            assert unpack_masks(z3) == [p3.z]
            assert abs(c3[0] - phase) < 1e-12

    @given(pauli_sums(n=6, min_terms=2, max_terms=10))
    def test_dedup_collapses_duplicates(self, ps):
        symp = ps.to_symplectic()
        doubled = SymplecticPauli(
            6,
            np.concatenate([symp.x, symp.x]),
            np.concatenate([symp.z, symp.z]),
            np.concatenate([symp.coeffs, symp.coeffs]),
        ).dedup()
        assert _terms_close(
            PauliSum(6, doubled.to_terms_dict()), PauliSum(6, ps.terms) * 2.0
        )


# -- operator protocol (scalar algebra) ---------------------------------------


class TestScalarProtocol:
    def setup_method(self):
        self.a = PauliSum.from_label_dict({"XY": 1.5, "ZI": -0.5j, "II": 2.0})

    def test_zero_scalar_gives_zero_sum(self):
        out = self.a * 0
        assert out.num_terms == 0
        assert out.num_qubits == self.a.num_qubits

    def test_scalar_scales_every_term(self):
        out = self.a * (2.0 - 1.0j)
        for key, c in self.a.terms.items():
            assert out.terms[key] == c * (2.0 - 1.0j)

    def test_rmul_matches_mul(self):
        assert (3.0 * self.a).terms == (self.a * 3.0).terms

    def test_truediv(self):
        out = self.a / 2.0
        for key, c in self.a.terms.items():
            assert abs(out.terms[key] - c / 2.0) < 1e-15

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            self.a / 0.0

    def test_simplify_merges_and_chops(self):
        ps = PauliSum.zero(2)
        ps.add_term(PauliString(2, 1, 0), 1.0)
        ps.add_term(PauliString(2, 1, 0), -1.0 + 1e-12)
        ps.add_term(PauliString(2, 0, 3), 0.5)
        out = ps.simplify(threshold=1e-9)
        assert out.terms == {(0, 3): 0.5}


# -- grouping -----------------------------------------------------------------


class TestQWCGrouping:
    def _random_sum(self, n_terms, n=8, seed=3):
        rng = np.random.default_rng(seed)
        ps = PauliSum.zero(n)
        for _ in range(n_terms):
            ps.add_term(
                PauliString(
                    n,
                    int(rng.integers(0, 1 << n)),
                    int(rng.integers(0, 1 << n)),
                ),
                complex(rng.normal(), rng.normal()),
            )
        return ps

    @pytest.mark.parametrize("n_terms", [20, 120])  # per-term and engine paths
    def test_groups_partition_and_commute(self, n_terms):
        ps = self._random_sum(n_terms)
        groups = ps.group_qubitwise_commuting()
        seen = []
        for g in groups:
            for _, p in g:
                seen.append((p.x, p.z))
            for i in range(len(g)):
                for j in range(i + 1, len(g)):
                    assert g[i][1].qubitwise_commutes_with(g[j][1])
        assert sorted(seen) == sorted(ps.terms.keys())

    def test_engine_matches_per_term_groups(self):
        ps = self._random_sum(150, seed=11)
        a = ps._group_qwc_per_term()
        b = ps._group_qwc_engine()
        key = lambda g: sorted((p.x, p.z) for _, p in g)  # noqa: E731
        assert sorted(map(key, a)) == sorted(map(key, b))


# -- GF(2) linear algebra -----------------------------------------------------


class TestGF2:
    @given(
        st.integers(2, 24),
        st.lists(st.integers(0, (1 << 24) - 1), min_size=1, max_size=10),
    )
    def test_kernel_orthogonal_and_rank_nullity(self, n, rows):
        rows = [r & ((1 << n) - 1) for r in rows]
        mat = pack_masks(rows, n)
        kernel = gf2_kernel(mat, n)
        _, pivots = gf2_rref(mat, n)
        assert len(kernel) == n - len(pivots)  # rank-nullity
        for k in unpack_masks(kernel) if len(kernel) else []:
            for r in rows:
                assert bin(k & r).count("1") % 2 == 0

    @given(
        st.integers(2, 16),
        st.lists(st.integers(1, (1 << 16) - 1), min_size=1, max_size=6),
    )
    def test_rref_preserves_row_space(self, n, rows):
        rows = [r & ((1 << n) - 1) for r in rows if r & ((1 << n) - 1)]
        if not rows:
            return
        rref, pivots = gf2_rref(pack_masks(rows, n), n)
        spans = unpack_masks(rref)
        # pivot columns are exclusive to their row, so reducing an
        # original row by each pivot bit must reach exactly zero
        for r in rows:
            acc = r
            for s, col in zip(spans, pivots):
                if acc & (1 << col):
                    acc ^= s
            assert acc == 0


# -- batched fermionic mapping ------------------------------------------------

ladder_ops = st.lists(
    st.tuples(st.integers(0, 5), st.booleans()), min_size=0, max_size=4
)


@st.composite
def fermion_operators(draw, max_terms=6):
    op = FermionOperator()
    for _ in range(draw(st.integers(1, max_terms))):
        op = op + FermionOperator.term(draw(ladder_ops), draw(coeffs))
    return op


class TestBatchedMapping:
    @pytest.mark.parametrize(
        "mapping", ["jordan-wigner", "parity", "bravyi-kitaev"]
    )
    @given(op=fermion_operators())
    def test_batched_matches_per_term(self, mapping, op):
        # Force the batched path regardless of operator size.
        old = mappings._BATCH_TERM_CUTOFF
        mappings._BATCH_TERM_CUTOFF = 0
        try:
            batched = map_fermion_operator(op, 6, mapping)
        finally:
            mappings._BATCH_TERM_CUTOFF = old
        reference = mappings._map_fermion_operator_per_term(op, 6, mapping)
        assert _terms_close(reference, batched, atol=1e-10)


# -- Z2 tapering --------------------------------------------------------------


class TestTapering:
    def test_h2_tapers_to_one_qubit(self):
        scf = run_rhf(h2())
        mh = build_molecular_hamiltonian(scf)
        h = mh.to_qubit("jordan-wigner")
        hf = hartree_fock_bitstring(h.num_qubits, mh.num_electrons)
        tapering = taper_hamiltonian(h, reference_index=hf)
        assert tapering.qubits_removed >= 3
        e_full = exact_ground_energy(h, num_particles=mh.num_electrons, sz=0)
        e_tapered = exact_ground_energy(tapering.hamiltonian)
        assert abs(e_full - e_tapered) < 1e-8

    def test_lih_tapers_at_least_three_qubits(self):
        scf = run_rhf(lih())
        mh = build_molecular_hamiltonian(scf)
        h = mh.to_qubit("jordan-wigner")
        hf = hartree_fock_bitstring(h.num_qubits, mh.num_electrons)
        tapering = taper_hamiltonian(h, reference_index=hf)
        assert tapering.qubits_removed >= 3
        e_full = exact_ground_energy(h, num_particles=mh.num_electrons, sz=0)
        e_tapered = exact_ground_energy(tapering.hamiltonian)
        assert abs(e_full - e_tapered) < 1e-8

    def test_hf_expectation_preserved(self):
        scf = run_rhf(h2())
        mh = build_molecular_hamiltonian(scf)
        h = mh.to_qubit("jordan-wigner")
        n = h.num_qubits
        hf = hartree_fock_bitstring(n, mh.num_electrons)
        tapering = taper_hamiltonian(h, reference_index=hf)
        state = hartree_fock_state(n, mh.num_electrons)
        e_before = np.vdot(state, h.to_matrix() @ state).real
        tn = tapering.tapered_num_qubits
        tstate = np.zeros(1 << tn, dtype=np.complex128)
        tstate[tapering.taper_index(hf)] = 1.0
        e_after = np.vdot(
            tstate, tapering.hamiltonian.to_matrix() @ tstate
        ).real
        assert abs(e_before - e_after) < 1e-10

    def test_synthetic_has_spin_parity_symmetries(self):
        # Dense two-body integrals leave exactly the two spin-parity
        # symmetries (Z on all alpha qubits, Z on all beta qubits) —
        # the closed form behind counting.z2_symmetry_count.
        mh = synthetic_two_body_hamiltonian(3)
        h = mh.to_qubit("jordan-wigner")
        syms = find_z2_symmetries(h)
        n = h.num_qubits
        alpha = sum(1 << q for q in range(0, n, 2))
        beta = sum(1 << q for q in range(1, n, 2))
        # the kernel basis spans {alpha, beta}; any two independent
        # members of that span are an equivalent answer
        assert len(syms) == 2
        span = {0, alpha, beta, alpha ^ beta}
        assert all(s in span for s in syms)

    def test_sector_from_reference_signs(self):
        # even overlap -> +1, odd overlap -> -1
        assert sector_from_reference([0b0011, 0b0101], 0b0011) == [1, -1]

    def test_strict_raises_on_symmetry_breaking_operator(self):
        mh = synthetic_two_body_hamiltonian(2)
        h = mh.to_qubit("jordan-wigner")
        hf = hartree_fock_bitstring(h.num_qubits, mh.num_electrons)
        tapering = taper_hamiltonian(h, reference_index=hf)
        # a single X on qubit 0 flips one spin: breaks spin parity
        bad = PauliSum.from_string(PauliString(h.num_qubits, x=1))
        with pytest.raises(TaperingError):
            tapering.taper_operator(bad, strict=True)
        dropped = tapering.taper_operator(bad, strict=False)
        assert dropped.num_terms == 0

    def test_taper_emits_obs_counter(self):
        obs.reset()
        obs.configure(enabled=True)
        try:
            mh = synthetic_two_body_hamiltonian(2)
            h = mh.to_qubit("jordan-wigner")
            hf = hartree_fock_bitstring(h.num_qubits, mh.num_electrons)
            tapering = taper_hamiltonian(h, reference_index=hf)
            snap = {
                m["name"]: m["value"]
                for m in obs.get_registry().snapshot()
                if m.get("type") == "counter"
            }
            assert (
                snap.get("repro_taper_qubits_removed", 0.0)
                >= tapering.qubits_removed
            )
        finally:
            obs.disable()
            obs.reset()
