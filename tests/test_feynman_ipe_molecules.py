"""Tests for the Schrödinger–Feynman simulator, iterative QPE, and the
extra benchmark molecules."""

import numpy as np
import pytest

from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import beh2, h2, hydrogen_fluoride
from repro.chem.reference import hartree_fock_state
from repro.chem.scf import run_rhf
from repro.core.qpe import run_iterative_qpe
from repro.ir.circuit import Circuit
from repro.ir.gates import gate_matrix
from repro.ir.pauli import PauliSum
from repro.sim.feynman import SchrodingerFeynmanSimulator, schmidt_decompose_gate
from repro.sim.statevector import StatevectorSimulator
from tests.test_statevector import random_circuit


class TestSchmidtDecomposition:
    @pytest.mark.parametrize(
        "name,params,rank",
        [("cx", (), 2), ("cz", (), 2), ("rzz", (0.7,), 2), ("swap", (), 4)],
    )
    def test_known_ranks(self, name, params, rank):
        m = gate_matrix(name, *params)
        terms = schmidt_decompose_gate(m)
        assert len(terms) == rank
        rebuilt = sum(np.kron(b, a) for a, b in terms)
        assert np.allclose(rebuilt, m, atol=1e-10)

    def test_product_gate_rank_one(self):
        # RZ (x) RX is a product operator: Schmidt rank 1
        m = np.kron(gate_matrix("rx", 0.5), gate_matrix("rz", 0.3))
        assert len(schmidt_decompose_gate(m)) == 1

    def test_rzz_small_angle_rank(self):
        # rzz(theta) = cos(t/2) II - i sin(t/2) ZZ: rank 2 for any t != 0
        m = gate_matrix("rzz", 1e-3)
        assert len(schmidt_decompose_gate(m)) == 2

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            schmidt_decompose_gate(np.eye(2))


class TestSchrodingerFeynman:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_dense(self, seed):
        n = 6
        c = random_circuit(n, 20, seed)
        ref = StatevectorSimulator(n).run(c).copy()
        sf = SchrodingerFeynmanSimulator(n, cut=3)
        assert np.allclose(sf.run(c), ref, atol=1e-8)

    def test_no_cross_gates_single_path(self):
        c = Circuit(4).h(0).cx(0, 1).h(2).cx(2, 3)
        sf = SchrodingerFeynmanSimulator(4, cut=2)
        state = sf.run(c)
        assert sf.accounting.num_paths == 1
        assert sf.accounting.num_cross_gates == 0
        ref = StatevectorSimulator(4).run(c).copy()
        assert np.allclose(state, ref, atol=1e-10)

    def test_path_count_multiplies(self):
        # two CX across the cut: 2 * 2 = 4 paths
        c = Circuit(4).h(0).cx(1, 2).cx(0, 3)
        sf = SchrodingerFeynmanSimulator(4, cut=2)
        sf.run(c)
        assert sf.accounting.num_cross_gates == 2
        assert sf.accounting.num_paths == 4

    def test_memory_per_path_halves_register(self):
        sf = SchrodingerFeynmanSimulator(8, cut=4)
        sf.run(Circuit(8).h(0))
        # two 2^4 complex vectors instead of one 2^8
        assert sf.accounting.bytes_per_path == 2 * (1 << 4) * 16

    def test_bad_cut_rejected(self):
        with pytest.raises(ValueError):
            SchrodingerFeynmanSimulator(4, cut=0)
        with pytest.raises(ValueError):
            SchrodingerFeynmanSimulator(4, cut=4)

    def test_cut_position_irrelevant_to_result(self):
        c = random_circuit(6, 15, 9)
        ref = StatevectorSimulator(6).run(c).copy()
        for cut in (2, 3, 4):
            sf = SchrodingerFeynmanSimulator(6, cut=cut)
            assert np.allclose(sf.run(c), ref, atol=1e-8)


class TestIterativeQPE:
    def test_eigenstate_deterministic(self):
        h = PauliSum.from_label_dict({"ZI": 0.5, "IZ": 0.25})
        state = np.zeros(4, dtype=complex)
        state[0b11] = 1.0  # eigenvalue -0.75
        res = run_iterative_qpe(h, state, num_bits=8, energy_window=(-1.0, 1.0))
        assert abs(res.energy - (-0.75)) <= res.resolution
        assert res.num_ancillas == 1

    def test_h2_ground_energy(self):
        scf = run_rhf(h2())
        hq = build_molecular_hamiltonian(scf).to_qubit()
        e_fci = exact_ground_energy(hq, num_particles=2, sz=0)
        res = run_iterative_qpe(
            hq, hartree_fock_state(4, 2), num_bits=10,
            energy_window=(-2.0, 0.0), rng=np.random.default_rng(3),
        )
        assert abs(res.energy - e_fci) <= 2 * res.resolution

    def test_reproducible_given_rng(self):
        scf = run_rhf(h2())
        hq = build_molecular_hamiltonian(scf).to_qubit()
        kwargs = dict(num_bits=8, energy_window=(-2.0, 0.0))
        r1 = run_iterative_qpe(
            hq, hartree_fock_state(4, 2), rng=np.random.default_rng(1), **kwargs
        )
        r2 = run_iterative_qpe(
            hq, hartree_fock_state(4, 2), rng=np.random.default_rng(1), **kwargs
        )
        assert r1.energy == r2.energy


class TestExtraMolecules:
    def test_beh2_rhf(self):
        res = run_rhf(beh2())
        assert res.converged
        # literature RHF/STO-3G BeH2: about -15.56 Ha
        assert np.isclose(res.energy, -15.56, atol=0.02)
        assert res.num_orbitals == 7

    def test_hf_molecule_rhf(self):
        res = run_rhf(hydrogen_fluoride())
        assert res.converged
        # literature RHF/STO-3G HF: about -98.57 Ha
        assert np.isclose(res.energy, -98.57, atol=0.02)

    def test_beh2_dipole_zero_by_symmetry(self):
        from repro.chem.properties import dipole_moment

        _, mag = dipole_moment(run_rhf(beh2()))
        assert mag < 1e-6

    def test_hf_molecule_dipole(self):
        from repro.chem.properties import AU_TO_DEBYE, dipole_moment

        _, mag = dipole_moment(run_rhf(hydrogen_fluoride()))
        # RHF/STO-3G HF dipole: ~1.25 Debye
        assert 0.8 < mag * AU_TO_DEBYE < 1.6
