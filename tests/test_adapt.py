"""Tests for ADAPT-VQE (paper §5.3)."""

import numpy as np
import pytest

from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h2, h4_chain
from repro.chem.pools import qubit_pool, uccsd_pool
from repro.chem.reference import hartree_fock_state
from repro.chem.scf import run_rhf
from repro.core.adapt import AdaptVQE
from repro.opt.gradient import AnsatzObjective, finite_difference_gradient


@pytest.fixture(scope="module")
def h2_problem():
    scf = run_rhf(h2())
    hq = build_molecular_hamiltonian(scf).to_qubit()
    e_fci = exact_ground_energy(hq, num_particles=2, sz=0)
    return hq, e_fci


@pytest.fixture(scope="module")
def h4_problem():
    scf = run_rhf(h4_chain())
    hq = build_molecular_hamiltonian(scf).to_qubit()
    e_fci = exact_ground_energy(hq, num_particles=4, sz=0)
    return hq, e_fci


class TestPoolGradients:
    def test_gradient_formula_matches_derivative(self, h2_problem):
        """<[H, A]> on |HF> must equal dE/dtheta at theta = 0."""
        hq, _ = h2_problem
        pool = uccsd_pool(4, 2)
        ref = hartree_fock_state(4, 2)
        adapt = AdaptVQE(hq, pool, ref)
        grads = adapt.pool_gradients(ref)
        for k, op in enumerate(pool):
            obj = AnsatzObjective(ref, [op.generator], hq)
            fd = finite_difference_gradient(obj.energy, np.zeros(1))[0]
            assert np.isclose(grads[k], fd, atol=1e-6)

    def test_double_has_largest_gradient_for_h2(self, h2_problem):
        """For H2 the double excitation dominates (singles vanish by
        Brillouin's theorem on the HF state)."""
        hq, _ = h2_problem
        pool = uccsd_pool(4, 2)
        ref = hartree_fock_state(4, 2)
        grads = AdaptVQE(hq, pool, ref).pool_gradients(ref)
        labels = [op.label for op in pool]
        best = labels[int(np.argmax(np.abs(grads)))]
        assert best.startswith("d(")
        # Brillouin: single-excitation gradients are ~0.
        for lbl, g in zip(labels, grads):
            if lbl.startswith("s("):
                assert abs(g) < 1e-8


class TestAdaptConvergence:
    def test_h2_one_iteration(self, h2_problem):
        hq, e_fci = h2_problem
        adapt = AdaptVQE(
            hq,
            uccsd_pool(4, 2),
            hartree_fock_state(4, 2),
            max_iterations=5,
            reference_energy=e_fci,
            energy_tolerance=1e-6,
        )
        res = adapt.run()
        assert res.converged
        assert abs(res.energy - e_fci) < 1e-6
        assert len(res.operator_labels) <= 2

    def test_h4_reaches_chemical_accuracy(self, h4_problem):
        hq, e_fci = h4_problem
        adapt = AdaptVQE(
            hq,
            uccsd_pool(8, 4),
            hartree_fock_state(8, 4),
            max_iterations=25,
            reference_energy=e_fci,
            energy_tolerance=1e-3,
        )
        res = adapt.run()
        assert res.converged
        assert res.iterations_to_accuracy(1e-3) is not None

    def test_energy_monotone_nonincreasing(self, h4_problem):
        hq, e_fci = h4_problem
        adapt = AdaptVQE(
            hq,
            uccsd_pool(8, 4),
            hartree_fock_state(8, 4),
            max_iterations=8,
            reference_energy=e_fci,
        )
        res = adapt.run()
        energies = [it.energy for it in res.iterations]
        for a, b in zip(energies, energies[1:]):
            assert b <= a + 1e-9

    def test_one_parameter_per_iteration(self, h4_problem):
        """Each adaptive iteration grows the ansatz by one layer
        (the Fig. 5 caption's '+1 layer per iteration')."""
        hq, _ = h4_problem
        adapt = AdaptVQE(
            hq, uccsd_pool(8, 4), hartree_fock_state(8, 4), max_iterations=5
        )
        res = adapt.run()
        for k, it in enumerate(res.iterations, start=1):
            assert it.num_parameters == k

    def test_qubit_pool_also_converges_h2(self, h2_problem):
        hq, e_fci = h2_problem
        adapt = AdaptVQE(
            hq,
            qubit_pool(4, 2),
            hartree_fock_state(4, 2),
            max_iterations=10,
            reference_energy=e_fci,
            energy_tolerance=1e-5,
        )
        res = adapt.run()
        assert abs(res.energy - e_fci) < 1e-4

    def test_empty_pool_rejected(self, h2_problem):
        hq, _ = h2_problem
        with pytest.raises(ValueError):
            AdaptVQE(hq, [], hartree_fock_state(4, 2))

    def test_gradient_tolerance_stops(self, h2_problem):
        """With a huge tolerance ADAPT stops immediately, converged."""
        hq, _ = h2_problem
        adapt = AdaptVQE(
            hq,
            uccsd_pool(4, 2),
            hartree_fock_state(4, 2),
            gradient_tolerance=1e3,
        )
        res = adapt.run()
        assert res.converged
        assert len(res.iterations) == 0
