"""H2 dissociation curve with warm-started VQE (paper §6.2 incremental
optimization) and automatic comparison against exact diagonalization.

Produces the classic potential energy surface: RHF fails at
dissociation (no static correlation), UCCSD-VQE tracks FCI along the
whole curve, and warm starting each geometry from the previous
optimum reduces the optimizer work.

    python examples/h2_dissociation.py
"""

import numpy as np

from repro.chem.molecule import h2
from repro.core.scan import scan_potential_energy_surface


def main() -> None:
    lengths = [0.5, 0.6, 0.7, 0.8, 0.9, 1.1, 1.3, 1.6, 2.0, 2.5]
    scan = scan_potential_energy_surface(h2, lengths, warm_start=True)

    print(f"{'r (A)':>6} {'E_RHF':>12} {'E_VQE':>12} {'E_FCI':>12} "
          f"{'VQE-FCI (mHa)':>14} {'evals':>6}")
    for p in scan.points:
        print(
            f"{p.parameter:>6.2f} {p.scf_energy:>12.6f} {p.vqe_energy:>12.6f} "
            f"{p.exact_energy:>12.6f} "
            f"{(p.vqe_energy - p.exact_energy) * 1000:>14.6f} "
            f"{p.function_evaluations:>6}"
        )

    eq = scan.equilibrium()
    print(f"\nequilibrium: r = {eq.parameter:.2f} A, E = {eq.vqe_energy:.6f} Ha "
          "(experimental r_e = 0.741 A)")
    stretched = scan.points[-1]
    print(
        f"at r = {stretched.parameter:.1f} A the RHF error is "
        f"{(stretched.scf_energy - stretched.exact_energy) * 1000:.1f} mHa "
        f"while VQE stays within "
        f"{abs(stretched.vqe_energy - stretched.exact_energy) * 1000:.4f} mHa "
        "— the static-correlation regime VQE is for."
    )
    print(f"total optimizer evaluations (warm-started): "
          f"{scan.total_function_evaluations}")


if __name__ == "__main__":
    main()
