"""Noisy VQE validation with the density-matrix simulation mode.

The paper positions large-scale simulation as the way to characterize
and validate algorithms *before* hardware deployment.  This example
does that characterization for H2 UCCSD: the noiseless optimum is
found first (statevector mode), then the same optimal circuit is
re-evaluated under increasing depolarizing noise in density-matrix
mode, quantifying how much chemical accuracy survives at each error
rate.

    python examples/noisy_vqe.py
"""

import numpy as np

from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h2
from repro.chem.reference import hartree_fock_state
from repro.chem.scf import run_rhf
from repro.chem.uccsd import build_uccsd_circuit, uccsd_generators
from repro.core.vqe import VQE
from repro.sim.density_matrix import DensityMatrixSimulator
from repro.sim.fusion import fuse_circuit
from repro.sim.noise import DepolarizingChannel, NoiseModel


def main() -> None:
    scf = run_rhf(h2())
    hamiltonian = build_molecular_hamiltonian(scf)
    hq = hamiltonian.to_qubit()
    e_exact = exact_ground_energy(hq, num_particles=2, sz=0)

    # Noiseless optimization (chemistry mode).
    gens = [a for _, a in uccsd_generators(4, 2)]
    vqe = VQE(hq, generators=gens, reference_state=hartree_fock_state(4, 2))
    opt = vqe.run()
    print(f"noiseless VQE: {opt.energy:+.8f} Ha (exact {e_exact:+.8f})")

    # Bind the optimum into the portable circuit and fuse it — fewer
    # gates means fewer noise channel applications on hardware too.
    ansatz = build_uccsd_circuit(4, 2)
    bound = ansatz.circuit.bind(list(opt.optimal_parameters))
    fused = fuse_circuit(bound)
    print(
        f"circuit: {fused.original_gates} gates -> {fused.fused_gates} "
        f"after fusion ({100 * fused.reduction:.0f}% reduction)"
    )

    chem_acc = 1.594e-3
    worst_ok = 0.0
    print(f"\n{'1q error':>9} {'2q error':>9} {'energy (Ha)':>14} "
          f"{'error (mHa)':>12} {'chem. acc.':>10}")
    for p1 in (0.0, 1e-6, 1e-5, 1e-4, 1e-3, 5e-3):
        p2 = 10 * p1  # two-qubit gates are ~10x noisier, as on hardware
        model = NoiseModel()
        if p1 > 0:
            model.add_all_qubit_channel(DepolarizingChannel(p1), 1)
            model.add_all_qubit_channel(DepolarizingChannel(p2), 2)
        sim = DensityMatrixSimulator(4, noise_model=model if p1 > 0 else None)
        sim.run(bound)
        energy = sim.expectation(hq)
        err = abs(energy - e_exact)
        ok = err < chem_acc
        if ok:
            worst_ok = max(worst_ok, p2)
        print(
            f"{p1:>9.0e} {p2:>9.0e} {energy:>+14.8f} {err * 1000:>12.4f} "
            f"{'yes' if ok else 'NO':>10}"
        )

    floor = f"~{worst_ok:.0e}" if worst_ok > 0 else "well below 1e-5"
    print(f"\nNoise floors the achievable accuracy: with this {len(bound)}-gate "
          f"circuit, chemical accuracy requires a two-qubit error rate of "
          f"{floor} — the kind of pre-hardware characterization the "
          "simulator is for (and why the fused circuit matters on devices).")


if __name__ == "__main__":
    main()
