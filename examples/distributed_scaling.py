"""Distributed statevector simulation and HPC scaling projections.

Part 1 runs a GHZ + UCCSD-style circuit on the partitioned
distributed simulator at 1-8 ranks, verifies bit-exact agreement with
the serial simulator, and reports the communication ledger (exchanges,
bytes) that distribution costs.

Part 2 uses the analytic machine model (Perlmutter / Summit / Frontier
presets) to project strong- and weak-scaling behaviour at sizes no
laptop can hold — the regime the paper's title is about.

    python examples/distributed_scaling.py
"""

import numpy as np

from repro.chem.uccsd import build_uccsd_circuit, count_uccsd_gates
from repro.hpc.distributed import DistributedStatevector
from repro.hpc.perfmodel import (
    estimate_circuit_time,
    max_qubits_for_memory,
    strong_scaling_curve,
    weak_scaling_curve,
)
from repro.ir.circuit import Circuit
from repro.sim.statevector import StatevectorSimulator


def demo_circuit(n: int) -> Circuit:
    """GHZ prep + a layer of rotations + entangler ring."""
    c = Circuit(n).h(0)
    for q in range(n - 1):
        c.cx(q, q + 1)
    for q in range(n):
        c.ry(0.1 * (q + 1), q)
    for q in range(n):
        c.cx(q, (q + 1) % n)
    return c


def main() -> None:
    # --- Part 1: real distributed execution -------------------------------
    n = 12
    circuit = demo_circuit(n)
    print(f"circuit: {n} qubits, {len(circuit)} gates")
    reference = StatevectorSimulator(n).run(circuit).copy()

    print(f"{'ranks':>6} {'exchanges':>10} {'p2p bytes':>12} {'match':>6}")
    for ranks in (1, 2, 4, 8):
        dsv = DistributedStatevector(n, ranks)
        dsv.run(circuit)
        ok = np.allclose(dsv.gather(), reference, atol=1e-9)
        print(
            f"{ranks:>6} {dsv.exchanges:>10} "
            f"{dsv.comm.stats.point_to_point_bytes:>12} {str(ok):>6}"
        )
        assert ok

    # --- Part 2: machine-model projections --------------------------------
    print("\nmemory capacity (paper Fig. 1c logic):")
    for machine in ("perlmutter", "summit", "frontier"):
        for ranks in (1, 64, 4096):
            q = max_qubits_for_memory(machine, ranks)
            print(f"  {machine:12s} x{ranks:<5d} -> up to {q} qubits")

    n_big = 32
    gates = count_uccsd_gates(n_big)["total_gates"]
    print(f"\nstrong scaling, {n_big}-qubit UCCSD ({gates:,} gates), Perlmutter:")
    print(f"{'ranks':>6} {'compute s':>12} {'comm s':>10} {'total s':>10} {'comm %':>7}")
    for ranks, t in strong_scaling_curve(n_big, gates, [2, 8, 32, 128, 512]).items():
        print(
            f"{ranks:>6} {t.compute:>12.2f} {t.communication:>10.2f} "
            f"{t.total:>10.2f} {100 * t.communication_fraction:>6.1f}%"
        )

    print("\nweak scaling (+1 qubit per rank doubling), base 30 qubits:")
    print(f"{'ranks':>6} {'qubits':>7} {'total s':>10}")
    import math

    for ranks, t in weak_scaling_curve(30, gates, [1, 2, 4, 8, 16, 32]).items():
        q = 30 + int(math.log2(ranks))
        print(f"{ranks:>6} {q:>7} {t.total:>10.2f}")

    print("\nmachine comparison, 30-qubit circuit on 16 ranks:")
    for machine in ("perlmutter", "summit", "frontier", "cpu-node"):
        t = estimate_circuit_time(gates, 30, 16, machine)
        print(f"  {machine:12s} {t.total:>10.2f} s")


if __name__ == "__main__":
    main()
