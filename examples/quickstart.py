"""Quickstart: ground-state energy of H2 through the full Fig. 2 pipeline.

Runs real STO-3G integrals -> RHF -> Jordan-Wigner -> UCCSD VQE with
direct expectation values, and compares against exact diagonalization.

    python examples/quickstart.py
"""

from repro.chem.molecule import h2
from repro.core.workflow import run_vqe_workflow


def main() -> None:
    molecule = h2()
    print(f"molecule: {molecule}")

    result = run_vqe_workflow(molecule, downfold=False)

    print(f"qubits:            {result.num_qubits}")
    print(f"Pauli terms:       {result.qubit_hamiltonian.num_terms}")
    print(f"RHF energy:        {result.scf.energy:+.8f} Ha")
    print(f"VQE energy:        {result.vqe.energy:+.8f} Ha")
    print(f"exact (FCI):       {result.exact_energy:+.8f} Ha")
    print(f"error vs exact:    {result.error_vs_exact * 1000:.5f} mHa")
    print(f"energy evals:      {result.vqe.num_function_evaluations}")

    assert result.error_vs_exact < 1e-5, "VQE failed to reach FCI for H2"
    print("OK: VQE recovered the full correlation energy of H2.")


if __name__ == "__main__":
    main()
