"""Excited states (VQD) and error mitigation (ZNE) — the
validation-side capabilities the simulator stack enables.

Part 1: variational quantum deflation computes the three lowest
H2 eigenstates in the 2-electron/Sz=0 sector with the generalized
UCCSD ansatz, matched against exact diagonalization.

Part 2: zero-noise extrapolation on the noisy density-matrix
simulator: unitary folding amplifies depolarizing noise by 1x/3x/5x
and Richardson extrapolation recovers most of the lost accuracy.

    python examples/excited_states_and_mitigation.py
"""

import numpy as np

from repro.chem.fci import sector_indices
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h2
from repro.chem.reference import hartree_fock_state
from repro.chem.scf import run_rhf
from repro.chem.uccsd import build_uccsd_circuit, uccsd_generators
from repro.core.vqd import run_vqd
from repro.sim.expectation import expectation_direct
from repro.sim.mitigation import zne_expectation
from repro.sim.noise import DepolarizingChannel, NoiseModel
from repro.sim.statevector import StatevectorSimulator


def main() -> None:
    scf = run_rhf(h2())
    hq = build_molecular_hamiltonian(scf).to_qubit()

    # --- Part 1: VQD spectrum ------------------------------------------------
    mat = hq.to_sparse()
    keep = sector_indices(4, num_particles=2, sz=0)
    exact = np.linalg.eigvalsh(mat[np.ix_(keep, keep)].toarray())

    gens = [a for _, a in uccsd_generators(4, 2, generalized=True)]
    res = run_vqd(hq, gens, hartree_fock_state(4, 2), num_states=3, restarts=3)

    print("H2 spectrum (2 electrons, Sz = 0):")
    print(f"{'state':>6} {'VQD (Ha)':>12} {'exact (Ha)':>12} {'err (mHa)':>10}")
    for k, (e, x) in enumerate(zip(res.energies, exact)):
        print(f"{k:>6} {e:>12.6f} {x:>12.6f} {abs(e - x) * 1000:>10.4f}")
    print(f"first excitation energy: {res.gaps[0]:.4f} Ha "
          f"({res.gaps[0] * 27.2114:.2f} eV)")

    # --- Part 2: ZNE ---------------------------------------------------------
    ansatz = build_uccsd_circuit(4, 2)
    bound = ansatz.circuit.bind([0.0, 0.0, -0.107])
    noiseless = expectation_direct(StatevectorSimulator(4).run(bound), hq)
    noise = NoiseModel().add_all_qubit_channel(DepolarizingChannel(2e-4))
    mitigated, per_scale = zne_expectation(bound, hq, noise, (1, 3, 5))

    print("\nzero-noise extrapolation (depolarizing p = 2e-4 per gate):")
    for s, v in sorted(per_scale.items()):
        print(f"  scale {s}: E = {v:+.6f} Ha "
              f"(err {abs(v - noiseless) * 1000:7.3f} mHa)")
    print(f"  ZNE    : E = {mitigated:+.6f} Ha "
          f"(err {abs(mitigated - noiseless) * 1000:7.3f} mHa)")
    gain = abs(per_scale[1] - noiseless) / max(abs(mitigated - noiseless), 1e-12)
    print(f"  mitigation reduced the error {gain:.0f}x")


if __name__ == "__main__":
    main()
