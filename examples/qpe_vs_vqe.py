"""QPE and VQE side by side — the two algorithms the paper's abstract
reports running through the downfolding + framework + simulator stack.

For H2 (full space) and LiH (downfolded 10-qubit active space):
* VQE: variational, shallow circuits, energy exact up to optimizer
  convergence;
* QPE: one deep coherent circuit, energy quantized to the phase
  register's resolution but obtained without optimization.

Both use the identical Hamiltonian pipeline, reference preparation,
and simulator — the point of a hardware-agnostic framework.

    python examples/qpe_vs_vqe.py
"""

from repro.chem.downfolding import hermitian_downfold
from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h2, lih
from repro.chem.reference import hartree_fock_circuit, hartree_fock_state
from repro.chem.scf import run_rhf
from repro.chem.uccsd import uccsd_generators
from repro.core.qpe import run_qpe, run_qpe_trotter
from repro.core.vqe import VQE


def compare(name, qubit_h, n_so, n_e, window):
    e_exact = exact_ground_energy(qubit_h, num_particles=n_e, sz=0)
    gens = [a for _, a in uccsd_generators(n_so, n_e)]
    vqe = VQE(qubit_h, generators=gens, reference_state=hartree_fock_state(n_so, n_e))
    vqe_res = vqe.run()

    qpe_res = run_qpe(
        qubit_h, hartree_fock_state(n_so, n_e), num_ancillas=10,
        energy_window=window,
    )
    print(f"\n{name}: exact = {e_exact:+.6f} Ha")
    print(f"  VQE  : {vqe_res.energy:+.6f} Ha "
          f"(err {abs(vqe_res.energy - e_exact) * 1000:.4f} mHa, "
          f"{vqe_res.num_function_evaluations} evals)")
    print(f"  QPE  : {qpe_res.energy:+.6f} Ha "
          f"(err {abs(qpe_res.energy - e_exact) * 1000:.4f} mHa, "
          f"resolution {qpe_res.resolution * 1000:.3f} mHa, "
          f"p = {qpe_res.success_probability:.2f})")
    return e_exact


def main() -> None:
    # H2, full space (4 qubits)
    scf = run_rhf(h2())
    hq = build_molecular_hamiltonian(scf).to_qubit()
    e = compare("H2 / STO-3G (4 qubits)", hq, 4, 2, (-2.0, 0.0))

    # Fully gate-level QPE on H2 (the circuit-faithful path)
    res = run_qpe_trotter(
        hq, hartree_fock_circuit(4, 2), num_ancillas=7,
        energy_window=(-2.0, 0.0), trotter_steps=2,
    )
    print(f"  QPE (gate-level, Trotterized): {res.energy:+.6f} Ha "
          f"(err {abs(res.energy - e) * 1000:.3f} mHa)")

    # LiH, downfolded frozen-core active space (10 qubits)
    scf = run_rhf(lih())
    mh = build_molecular_hamiltonian(scf)
    down = hermitian_downfold(
        mh, scf.mo_energies, core_orbitals=[0], active_orbitals=[1, 2, 3, 4, 5]
    )
    heff = down.effective_hamiltonian.chop(1e-8)
    compare("LiH / downfolded (10 qubits)", heff, 10, 2, (-9.0, -7.0))


if __name__ == "__main__":
    main()
