"""CAFQA Clifford bootstrap (paper §6.1, ref [11]) on H2.

The hardware-efficient ansatz at all-zero angles prepares |0000> — a
terrible start for chemistry (zero electrons!).  CAFQA searches the
Clifford lattice {0, pi/2, pi, 3pi/2}^m with the polynomial-cost
stabilizer simulator and finds the Hartree–Fock determinant without a
single statevector simulation; continuous VQE then starts from there.

    python examples/cafqa_bootstrap.py
"""

import numpy as np

from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h2
from repro.chem.scf import run_rhf
from repro.core.cafqa import cafqa_search
from repro.core.estimator import DirectEstimator
from repro.ir.library import hardware_efficient_ansatz
from repro.opt.parameter_shift import batched_parameter_shift_gradient
from repro.opt.scipy_wrap import LBFGSB


def main() -> None:
    scf = run_rhf(h2())
    hq = build_molecular_hamiltonian(scf).to_qubit()
    e_fci = exact_ground_energy(hq, num_particles=2, sz=0)
    ansatz = hardware_efficient_ansatz(4, layers=2)
    est = DirectEstimator()

    def energy(p):
        return est.estimate(ansatz.bind(list(p)), hq)

    def gradient(p):
        # all 2m shifted evaluations in one batched simulation (§6.2)
        return batched_parameter_shift_gradient(ansatz, hq, p)

    zero = np.zeros(ansatz.num_parameters)
    print(f"|0...0> start energy:   {energy(zero):+.6f} Ha")
    print(f"RHF energy:             {scf.energy:+.6f} Ha")
    print(f"FCI energy:             {e_fci:+.6f} Ha")

    search = cafqa_search(ansatz, hq, restarts=3)
    print(f"\nCAFQA best Clifford:    {search.energy:+.6f} Ha "
          f"({search.evaluations} stabilizer evaluations, no statevector)")

    for label, start in (("cold (zeros)", zero), ("CAFQA warm", search.angles)):
        res = LBFGSB(max_iterations=400).minimize(energy, start, gradient=gradient)
        print(f"VQE from {label:13s}: {res.fun:+.8f} Ha "
              f"(err {abs(res.fun - e_fci) * 1000:.5f} mHa, {res.nfev} evals)")

    print("\nThe zero-angle start is a stationary point of this ansatz "
          "(all gradients vanish), so gradient-based VQE never leaves it; "
          "the CAFQA initialization escapes the saddle for free and "
          "converges straight to FCI.")


if __name__ == "__main__":
    main()
