"""The two NWQ-Sim execution optimizations of paper §4, measured live.

Part 1 (§4.1, Fig. 3): one VQE energy evaluation of an H4-chain UCCSD
circuit with and without post-ansatz state caching, using the gate
ledger of the caching evaluator — same energy, orders-of-magnitude
fewer gates.

Part 2 (§4.3, Fig. 4): gate fusion on UCCSD circuits at 4/6/8 qubits —
gate counts before/after and the wall-clock effect on simulation.

    python examples/caching_and_fusion.py
"""

import time

import numpy as np

from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h4_chain
from repro.chem.scf import run_rhf
from repro.chem.uccsd import build_uccsd_circuit
from repro.core.cache import CachedEnergyEvaluator
from repro.sim.fusion import fuse_circuit
from repro.sim.statevector import StatevectorSimulator


def main() -> None:
    # --- Part 1: caching --------------------------------------------------
    scf = run_rhf(h4_chain())
    hq = build_molecular_hamiltonian(scf).to_qubit()
    ansatz = build_uccsd_circuit(8, 4)
    rng = np.random.default_rng(0)
    params = rng.normal(scale=0.05, size=ansatz.num_parameters)

    print(f"H4 chain: {hq.num_qubits} qubits, {hq.num_terms} Pauli terms, "
          f"ansatz {len(ansatz.circuit)} gates")

    caching = CachedEnergyEvaluator(ansatz.circuit, hq, use_caching=True)
    plain = CachedEnergyEvaluator(ansatz.circuit, hq, use_caching=False)
    e_on = caching.energy(params)
    e_off = plain.energy(params)
    assert np.isclose(e_on, e_off, atol=1e-9)

    print("\none energy evaluation (paper Fig. 3 effect):")
    for name, ev in (("caching", caching), ("non-caching", plain)):
        led = ev.ledger
        print(
            f"  {name:12s} ansatz runs: {led.ansatz_executions:4d}  "
            f"total gates: {led.total_gates:8,d}"
        )
    ratio = plain.ledger.total_gates / caching.ledger.total_gates
    print(f"  gate reduction from caching: {ratio:.1f}x "
          f"(grows with system size; 1e3-1e5 x at 12-30 qubits)")

    # --- Part 2: fusion -----------------------------------------------------
    print("\ngate fusion on UCCSD circuits (paper Fig. 4):")
    print(f"{'qubits':>7} {'original':>9} {'fused':>7} {'reduction':>10} "
          f"{'t_orig':>8} {'t_fused':>8}")
    for n_so, ne in ((4, 2), (6, 2), (8, 4)):
        built = build_uccsd_circuit(n_so, ne)
        rng = np.random.default_rng(1)
        bound = built.circuit.bind(
            list(rng.normal(scale=0.1, size=built.num_parameters))
        )
        result = fuse_circuit(bound)

        sim = StatevectorSimulator(n_so)
        t0 = time.perf_counter()
        for _ in range(5):
            sim.run(bound)
        t_orig = (time.perf_counter() - t0) / 5
        t0 = time.perf_counter()
        for _ in range(5):
            sim.run(result.circuit)
        t_fused = (time.perf_counter() - t0) / 5

        print(
            f"{n_so:>7} {result.original_gates:>9,} {result.fused_gates:>7,} "
            f"{100 * result.reduction:>9.1f}% {t_orig * 1e3:>7.1f}ms "
            f"{t_fused * 1e3:>7.1f}ms"
        )
    print("\n>50% of gates fused away at every size, as in the paper.")


if __name__ == "__main__":
    main()
