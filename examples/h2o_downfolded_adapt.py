"""The paper's showcase experiment (Fig. 5): ADAPT-VQE on the
downfolded 6-orbital (12-qubit) H2O molecule.

Pipeline: STO-3G integrals -> RHF -> Hermitian CC downfolding (O 1s
core integrated out via the second-order commutator expansion, Eq. 2)
-> 12-qubit effective Hamiltonian -> ADAPT-VQE with the UCCSD pool.

Prints the per-iteration energy error against the exact (sparse-
diagonalized) ground state of the effective Hamiltonian — the Fig. 5
curve — and reports the iteration at which 1 mHa chemical accuracy is
reached (the paper observes ~16).

    python examples/h2o_downfolded_adapt.py [--max-iterations N]
"""

import argparse
import time

from repro.chem.downfolding import hermitian_downfold
from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h2o
from repro.chem.pools import uccsd_pool
from repro.chem.reference import hartree_fock_state
from repro.chem.scf import run_rhf
from repro.core.adapt import AdaptVQE


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--max-iterations", type=int, default=25)
    args = parser.parse_args()

    t0 = time.perf_counter()
    scf = run_rhf(h2o())
    print(f"RHF energy: {scf.energy:+.6f} Ha  ({time.perf_counter() - t0:.1f}s)")

    hamiltonian = build_molecular_hamiltonian(scf)
    t0 = time.perf_counter()
    downfolded = hermitian_downfold(
        hamiltonian, scf.mo_energies,
        core_orbitals=[0], active_orbitals=[1, 2, 3, 4, 5, 6],
    )
    heff = downfolded.effective_hamiltonian.chop(1e-8)
    print(
        f"downfolded: {downfolded.num_active_qubits} qubits, "
        f"{heff.num_terms} Pauli terms, |sigma|_1 = "
        f"{downfolded.sigma_norm1:.4f}  ({time.perf_counter() - t0:.1f}s)"
    )

    e_exact = exact_ground_energy(heff, num_particles=8, sz=0)
    print(f"exact ground state of H_eff: {e_exact:+.8f} Ha")

    pool = uccsd_pool(12, 8)
    reference = hartree_fock_state(12, 8)
    adapt = AdaptVQE(
        heff, pool, reference,
        max_iterations=args.max_iterations,
        reference_energy=e_exact,
        energy_tolerance=1e-3,  # 1 mHa chemical accuracy (Fig. 5)
    )
    t0 = time.perf_counter()
    result = adapt.run(verbose=True)
    print(f"ADAPT-VQE finished in {time.perf_counter() - t0:.1f}s")

    hit = result.iterations_to_accuracy(1e-3)
    print(f"final energy: {result.energy:+.8f} Ha")
    print(f"iterations to 1 mHa: {hit} (paper Fig. 5: ~16)")
    print("ansatz depth grew by exactly 1 layer per iteration: "
          f"{len(result.operator_labels)} layers total")


if __name__ == "__main__":
    main()
