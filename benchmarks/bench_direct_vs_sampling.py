"""Ablation of §4.2 — direct expectation vs traditional sampling.

Accuracy: the direct method is exact; sampling carries 1/sqrt(shots)
statistical error.  Runtime: the direct method evaluates the whole
observable in one amplitude-space pass, while sampling pays per-group
state copies, basis rotations, and random-number generation.  Both
claims of §4.2 are measured here on the H4-chain UCCSD state.
"""

import numpy as np

from _util import write_table
from repro.chem.uccsd import build_uccsd_circuit
from repro.core.estimator import make_estimator


def _setup(h4_hamiltonian):
    _, mh = h4_hamiltonian
    hq = mh.to_qubit()
    ansatz = build_uccsd_circuit(8, 4)
    rng = np.random.default_rng(3)
    bound = ansatz.circuit.bind(
        list(rng.normal(scale=0.05, size=ansatz.num_parameters))
    )
    return hq, bound


def test_direct_estimation_speed(benchmark, h4_hamiltonian):
    hq, bound = _setup(h4_hamiltonian)
    est = make_estimator("direct")
    benchmark(lambda: est.estimate(bound, hq))


def test_sampling_estimation_speed(benchmark, h4_hamiltonian):
    hq, bound = _setup(h4_hamiltonian)
    est = make_estimator("sampling", shots_per_group=4096)
    benchmark(lambda: est.estimate(bound, hq))


def test_sampling_error_vs_shots(benchmark, h4_hamiltonian):
    """RMS sampling error decays ~ 1/sqrt(shots); direct is exact."""
    hq, bound = _setup(h4_hamiltonian)
    exact = make_estimator("direct").estimate(bound, hq)

    def sweep():
        out = []
        for shots in (64, 256, 1024, 4096):
            errs = []
            for rep in range(6):
                est = make_estimator(
                    "sampling", shots_per_group=shots, seed=100 + rep
                )
                errs.append((est.estimate(bound, hq) - exact) ** 2)
            out.append((shots, float(np.sqrt(np.mean(errs)))))
        return out

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(s, f"{e:.5f}") for s, e in series]
    table = write_table(
        "direct_vs_sampling_error",
        ["shots_per_group", "rms_error_Ha"],
        rows,
        caption=f"Sampling error vs shots (direct method error: 0, "
        f"exact = {exact:+.8f} Ha)",
    )
    print("\n" + table)
    errors = [e for _, e in series]
    # 64x more shots should cut RMS error by ~8x; accept >= 2.5x for
    # statistical wiggle with 6 repetitions.
    assert errors[-1] < errors[0] / 2.5
