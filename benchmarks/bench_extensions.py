"""Benchmarks for the implemented §6 extensions: batched execution,
CAFQA Clifford bootstrap, warm-started scans, and ensemble gradients.

These are the paper's "future improvements" (§6.2) and related-work
integrations (§6.1) built out as working features; each benchmark
quantifies the win the paper anticipates.
"""

import numpy as np
import pytest

from _util import write_table
from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h2
from repro.chem.scf import run_rhf
from repro.core.cafqa import cafqa_search
from repro.core.scan import scan_potential_energy_surface
from repro.hpc.ensemble import EnsembleExecutor
from repro.ir.library import hardware_efficient_ansatz
from repro.opt.parameter_shift import (
    batched_parameter_shift_gradient,
    parameter_shift_gradient,
)


@pytest.fixture(scope="module")
def h2_problem(h2_hamiltonian):
    scf, mh = h2_hamiltonian
    return scf, mh.to_qubit()


def test_batched_gradient(benchmark, h2_problem):
    """§6.2 batch execution: the full parameter-shift gradient as one
    batched simulation."""
    _, hq = h2_problem
    ansatz = hardware_efficient_ansatz(4, layers=2)
    rng = np.random.default_rng(0)
    x = rng.normal(scale=0.2, size=ansatz.num_parameters)
    benchmark(lambda: batched_parameter_shift_gradient(ansatz, hq, x))


def test_serial_gradient_baseline(benchmark, h2_problem):
    """One-circuit-at-a-time baseline for the batching comparison."""
    _, hq = h2_problem
    ansatz = hardware_efficient_ansatz(4, layers=2)
    rng = np.random.default_rng(0)
    x = rng.normal(scale=0.2, size=ansatz.num_parameters)
    g_serial = benchmark(lambda: parameter_shift_gradient(ansatz, hq, x))
    g_batched = batched_parameter_shift_gradient(ansatz, hq, x)
    assert np.allclose(g_serial, g_batched, atol=1e-10)


def test_cafqa_bootstrap_quality(benchmark, h2_problem):
    """§6.1 CAFQA: the Clifford search must land at/below the HF energy
    starting from a state with ~zero correlation energy."""
    scf, hq = h2_problem
    ansatz = hardware_efficient_ansatz(4, layers=1)
    res = benchmark.pedantic(
        lambda: cafqa_search(ansatz, hq, restarts=3), rounds=1, iterations=1
    )
    e_zero_start = hq.expectation(
        np.eye(1, 16, 0, dtype=complex).ravel()
    ).real  # |0000>
    e_fci = exact_ground_energy(hq, num_particles=2, sz=0)
    write_table(
        "cafqa_bootstrap",
        ["point", "energy_Ha"],
        [
            ("|0000> (zero angles)", f"{e_zero_start:+.6f}"),
            ("CAFQA best Clifford", f"{res.energy:+.6f}"),
            ("RHF", f"{scf.energy:+.6f}"),
            ("FCI", f"{e_fci:+.6f}"),
        ],
        caption=f"CAFQA Clifford bootstrap on H2 ({res.evaluations} "
        "stabilizer evaluations)",
    )
    assert res.energy <= scf.energy + 1e-9
    assert res.energy < e_zero_start - 0.5  # massive initialization gain


def test_warm_start_scan(benchmark):
    """§6.2 incremental optimization on a stretched-H2 scan."""
    lengths = [1.5, 1.55, 1.6, 1.65, 1.7]

    def run_both():
        warm = scan_potential_energy_surface(
            h2, lengths, warm_start=True, compute_exact=False
        )
        cold = scan_potential_energy_surface(
            h2, lengths, warm_start=False, compute_exact=False
        )
        return warm, cold

    warm, cold = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert np.allclose(warm.energies, cold.energies, atol=1e-7)
    rows = [
        (f"{p.parameter:.2f}", w.function_evaluations, c.function_evaluations)
        for p, w, c in zip(warm.points, warm.points, cold.points)
    ]
    write_table(
        "warm_start_scan",
        ["bond_A", "warm_evals", "cold_evals"],
        rows,
        caption="Warm-started vs cold-started VQE along the H2 curve",
    )
    warm_tail = sum(p.function_evaluations for p in warm.points[1:])
    cold_tail = sum(p.function_evaluations for p in cold.points[1:])
    assert warm_tail < cold_tail


def test_ensemble_gradient(benchmark, h2_problem):
    """EQC-style ensembling of the gradient workload over 8 devices."""
    _, hq = h2_problem
    ansatz = hardware_efficient_ansatz(4, layers=2)
    rng = np.random.default_rng(1)
    x = rng.normal(scale=0.2, size=ansatz.num_parameters)
    ex = EnsembleExecutor(num_devices=8)
    grad, res = benchmark.pedantic(
        lambda: ex.parameter_shift_gradient(ansatz, hq, x),
        rounds=1,
        iterations=1,
    )
    serial = parameter_shift_gradient(ansatz, hq, x)
    assert np.allclose(grad, serial, atol=1e-9)
    write_table(
        "ensemble_gradient",
        ["metric", "value"],
        [
            ("evaluations", 2 * ansatz.num_parameters),
            ("devices", 8),
            ("ensemble speedup", f"{res.speedup:.2f}x"),
            ("utilization", f"{100 * res.schedule.utilization:.1f}%"),
        ],
        caption="EQC-style ensemble execution of one parameter-shift gradient",
    )
    assert res.speedup > 5.0
