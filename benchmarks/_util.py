"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or an
ablation) and records its table under ``benchmarks/results/`` so the
paper-vs-measured comparison in EXPERIMENTS.md is reproducible from
artifacts, not terminal scrollback.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_table(
    name: str,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    caption: str = "",
) -> str:
    """Write an aligned text table to benchmarks/results/<name>.txt and
    return its rendered form (also printed by the caller)."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    rows = [list(map(str, r)) for r in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(header)
    ]
    lines: List[str] = []
    if caption:
        lines.append(caption)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    text = "\n".join(lines) + "\n"
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write(text)
    return text
