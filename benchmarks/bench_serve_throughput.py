"""Campaign-server throughput (the VQE-as-a-service tentpole).

Measures the service path end to end: N submissions from several
tenants flow through admission, the write-ahead journal, LPT dispatch
over the rank pool, interleaved execution, and the content-addressed
store.  Two effects dominate the jobs/s number and both are the whole
point of running VQE *as a service* instead of as one-shot scripts:

* **dedup** — identical submissions (same physics, any tenant) cost
  one execution; the rest complete from the store, and
* **warm starts** — within a molecule family, later geometries start
  from the nearest converged neighbor's parameters.

The table reports a cold serial baseline (every job computed from
scratch, no sharing) against the served run, plus the journal
overhead, so regressions in either the service plumbing or the
sharing machinery show up as a throughput drop.
"""

import time

from _util import write_table
from repro.serve import CampaignServer, JobSpec, ServerConfig


def _workload():
    """12 jobs, 3 tenants: an h2 bond scan with repeats across tenants."""
    geometries = [0.68, 0.74, 0.80, 0.86]
    jobs = []
    for tenant in ("alice", "bob", "carol"):
        for g in geometries:
            jobs.append(JobSpec(tenant=tenant, kind="vqe", molecule="h2", geometry=g))
    return jobs


def test_serve_throughput(benchmark, tmp_path_factory):
    specs = _workload()
    runs = {"n": 0}

    def serve_batch():
        runs["n"] += 1
        state_dir = str(
            tmp_path_factory.mktemp(f"serve_bench_{runs['n']}")
        )
        # 2 ranks so the scan partly serializes: the later geometries
        # warm-start from the earlier ones' converged parameters
        server = CampaignServer(state_dir, ServerConfig(num_ranks=2))
        t0 = time.perf_counter()
        for spec in specs:
            server.submit(spec)
        server.run(stop_when_idle=True, max_ticks=200)
        wall = time.perf_counter() - t0
        health = server.health()
        server.close()
        return server, health, wall

    server, health, wall = benchmark(serve_batch)

    jobs_per_s = len(specs) / wall if wall > 0 else float("inf")
    executed = len(specs) - health["dedup_hits"]
    warm = sum(1 for j in server.jobs.values() if j.warm_started)
    rows = [
        ("jobs submitted", len(specs)),
        ("jobs succeeded", health["jobs"].get("succeeded", 0)),
        ("actually executed", executed),
        ("dedup hits", health["dedup_hits"]),
        ("warm starts", warm),
        ("server ticks", health["ticks"]),
        ("journal records", health["journal_seq"]),
        ("wall time (s)", f"{wall:.3f}"),
        ("throughput (jobs/s)", f"{jobs_per_s:.2f}"),
    ]
    table = write_table(
        "serve_throughput",
        ["metric", "value"],
        rows,
        caption="Campaign-server throughput (12 h2-scan jobs, 3 tenants, "
        "2 ranks; dedup + warm starts on)",
    )
    print("\n" + table)

    assert health["jobs"].get("succeeded", 0) == len(specs)
    # three tenants submit the same 4-point scan: 4 executions, 8 dedup hits
    assert health["dedup_hits"] == 8
    assert executed == 4
    # the scan warm-starts after its first geometry converges
    assert warm >= 1
