"""Campaign-server throughput (the VQE-as-a-service tentpole).

Measures the service path end to end: N submissions from several
tenants flow through admission, the write-ahead journal, LPT dispatch
over the rank pool, interleaved execution, and the content-addressed
store.  Two effects dominate the jobs/s number and both are the whole
point of running VQE *as a service* instead of as one-shot scripts:

* **dedup** — identical submissions (same physics, any tenant) cost
  one execution; the rest complete from the store, and
* **warm starts** — within a molecule family, later geometries start
  from the nearest converged neighbor's parameters.

The table reports a cold serial baseline (every job computed from
scratch, no sharing) against the served run, plus the journal
overhead, so regressions in either the service plumbing or the
sharing machinery show up as a throughput drop.

``test_serve_batched_throughput`` measures the third sharing effect —
the cross-campaign evaluation broker: N same-molecule campaigns with
*distinct* seeds (distinct optimizations, no dedup possible) served
batched versus ``--no-batch`` sequential ticks.  CI gates on a >= 3x
evals/s floor for the 8-campaign point; the measured ratio lands
around 5-7x on a quiet machine.
"""

import time

from _util import write_table
from repro.serve import CampaignServer, JobSpec, JobState, ServerConfig


def _workload():
    """12 jobs, 3 tenants: an h2 bond scan with repeats across tenants."""
    geometries = [0.68, 0.74, 0.80, 0.86]
    jobs = []
    for tenant in ("alice", "bob", "carol"):
        for g in geometries:
            jobs.append(JobSpec(tenant=tenant, kind="vqe", molecule="h2", geometry=g))
    return jobs


def test_serve_throughput(benchmark, tmp_path_factory):
    specs = _workload()
    runs = {"n": 0}

    def serve_batch():
        runs["n"] += 1
        state_dir = str(
            tmp_path_factory.mktemp(f"serve_bench_{runs['n']}")
        )
        # 2 ranks so the scan partly serializes: the later geometries
        # warm-start from the earlier ones' converged parameters
        server = CampaignServer(state_dir, ServerConfig(num_ranks=2))
        t0 = time.perf_counter()
        for spec in specs:
            server.submit(spec)
        server.run(stop_when_idle=True, max_ticks=200)
        wall = time.perf_counter() - t0
        health = server.health()
        server.close()
        return server, health, wall

    server, health, wall = benchmark(serve_batch)

    jobs_per_s = len(specs) / wall if wall > 0 else float("inf")
    executed = len(specs) - health["dedup_hits"]
    warm = sum(1 for j in server.jobs.values() if j.warm_started)
    rows = [
        ("jobs submitted", len(specs)),
        ("jobs succeeded", health["jobs"].get("succeeded", 0)),
        ("actually executed", executed),
        ("dedup hits", health["dedup_hits"]),
        ("warm starts", warm),
        ("server ticks", health["ticks"]),
        ("journal records", health["journal_seq"]),
        ("wall time (s)", f"{wall:.3f}"),
        ("throughput (jobs/s)", f"{jobs_per_s:.2f}"),
    ]
    table = write_table(
        "serve_throughput",
        ["metric", "value"],
        rows,
        caption="Campaign-server throughput (12 h2-scan jobs, 3 tenants, "
        "2 ranks; dedup + warm starts on)",
    )
    print("\n" + table)

    assert health["jobs"].get("succeeded", 0) == len(specs)
    # three tenants submit the same 4-point scan: 4 executions, 8 dedup hits
    assert health["dedup_hits"] == 8
    assert executed == 4
    # the scan warm-starts after its first geometry converges
    assert warm >= 1


# -- cross-campaign batched execution -----------------------------------------


def _run_fleet(state_dir, n, batch_enabled):
    """Serve n same-molecule distinct-seed campaigns; return
    (wall_s, total_evals, broker_stats)."""
    server = CampaignServer(
        str(state_dir), ServerConfig(num_ranks=2, batch_enabled=batch_enabled)
    )
    specs = [
        JobSpec(tenant=f"t{k}", kind="vqe", molecule="h2", seed=k)
        for k in range(n)
    ]
    # warm the shared physics tier outside the timed window in both
    # modes: the chemistry build is a fixed per-problem cost, not the
    # per-campaign serving cost this benchmark measures
    server.problems.get(specs[0])
    for spec in specs:
        server.submit(spec)
    t0 = time.perf_counter()
    server.run(stop_when_idle=True, max_ticks=400)
    wall = time.perf_counter() - t0
    assert all(j.state == JobState.SUCCEEDED for j in server.jobs.values())
    evals = sum(
        server.store.get_result(j.spec.content_key()).get("evaluations", 0)
        for j in server.jobs.values()
    )
    stats = server.broker.stats() if server.broker is not None else {}
    server.close()
    return wall, evals, stats


def test_serve_batched_throughput(benchmark, tmp_path_factory):
    fleet_sizes = (1, 4, 8, 16)
    runs = {"n": 0}

    def scenario():
        runs["n"] += 1
        root = tmp_path_factory.mktemp(f"serve_batched_{runs['n']}")
        out = {}
        for n in fleet_sizes:
            wb, eb, stats = _run_fleet(root / f"batched{n}", n, True)
            ws, es, _ = _run_fleet(root / f"solo{n}", n, False)
            # identical trajectories => identical evaluation counts;
            # a mismatch means the two modes diverged
            assert eb == es
            out[n] = {
                "batched_s": wb,
                "solo_s": ws,
                "evals": eb,
                "batched_eps": eb / wb if wb > 0 else float("inf"),
                "solo_eps": es / ws if ws > 0 else float("inf"),
                "stats": stats,
            }
        return out

    out = benchmark(scenario)

    rows = []
    for n in fleet_sizes:
        r = out[n]
        rows.append(
            (
                n,
                f"{r['solo_s']:.3f}",
                f"{r['batched_s']:.3f}",
                f"{r['solo_eps']:.0f}",
                f"{r['batched_eps']:.0f}",
                f"{r['batched_eps'] / r['solo_eps']:.2f}x",
                r["stats"].get("mean_occupancy", 0),
            )
        )
    table = write_table(
        "serve_batched_throughput",
        [
            "campaigns",
            "solo (s)",
            "batched (s)",
            "solo evals/s",
            "batched evals/s",
            "speedup",
            "mean occupancy",
        ],
        rows,
        caption="Cross-campaign batched serving vs --no-batch sequential "
        "ticks (same-molecule h2 campaigns, distinct seeds, 2 ranks)",
    )
    print("\n" + table)

    eight = out[8]
    # the broker actually batched: multi-campaign groups dominated
    assert eight["stats"]["batched_evals"] > 0
    assert eight["stats"]["max_occupancy"] >= 8
    # CI floor (headline target is >= 5x on a quiet machine; 3x leaves
    # headroom for loaded CI runners)
    speedup = eight["batched_eps"] / eight["solo_eps"]
    assert speedup >= 3.0, f"8-campaign batched speedup {speedup:.2f}x < 3x"
