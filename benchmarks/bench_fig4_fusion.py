"""Figure 4 — gate fusion on 4/6/8-qubit UCCSD circuits.

The paper's bars: 221 -> 68, 2,283 -> 954, 10,809 -> 5,208 — i.e.
>50% of gates fused away at every size.  Absolute counts depend on the
UCCSD compilation convention (Trotter ordering, CNOT-ladder shape), so
the reproduction target is the *shape*: consistent >50% reduction that
persists as circuits grow, verified on circuits whose fused form is
checked against the original statevector.
"""

import numpy as np

from _util import write_table
from repro.chem.uccsd import build_uccsd_circuit
from repro.sim.fusion import fuse_circuit
from repro.sim.statevector import StatevectorSimulator

CASES = [(4, 2), (6, 2), (8, 4)]
PAPER = {4: (221, 68), 6: (2283, 954), 8: (10809, 5208)}


def _build_bound(n_so: int, ne: int):
    ansatz = build_uccsd_circuit(n_so, ne)
    rng = np.random.default_rng(7)
    return ansatz.circuit.bind(
        list(rng.normal(scale=0.1, size=ansatz.num_parameters))
    )


def test_fig4_fusion_counts(benchmark):
    bound = {case: _build_bound(*case) for case in CASES}
    results = benchmark(
        lambda: {case: fuse_circuit(bound[case]) for case in CASES}
    )
    rows = []
    for (n_so, ne), res in results.items():
        p_orig, p_fused = PAPER[n_so]
        rows.append(
            (
                n_so,
                res.original_gates,
                res.fused_gates,
                f"{100 * res.reduction:.1f}%",
                f"{p_orig}->{p_fused}",
                f"{100 * (1 - p_fused / p_orig):.1f}%",
            )
        )
    table = write_table(
        "fig4_fusion",
        ["qubits", "original", "fused", "reduction", "paper", "paper_red"],
        rows,
        caption="Fig 4: UCCSD gate counts before/after fusion",
    )
    print("\n" + table)
    for (n_so, ne), res in results.items():
        # the paper's headline: >50% reduction at every size
        assert res.reduction > 0.5
        # fused circuits implement the same state
        s1 = StatevectorSimulator(n_so).run(bound[(n_so, ne)]).copy()
        s2 = StatevectorSimulator(n_so).run(res.circuit).copy()
        assert np.allclose(s1, s2, atol=1e-9)
    # reduction persists (does not collapse) as circuits grow
    reductions = [results[c].reduction for c in CASES]
    assert min(reductions) > 0.5


def test_fig4_fusion_runtime_effect(benchmark):
    """Fused circuits must simulate faster, not just count fewer gates
    (the ablation behind the paper's 'substantial performance
    improvements' claim)."""
    bound = _build_bound(8, 4)
    fused = fuse_circuit(bound).circuit
    sim = StatevectorSimulator(8)

    def run_fused():
        sim.run(fused)

    benchmark(run_fused)
    import time

    t0 = time.perf_counter()
    for _ in range(5):
        sim.run(bound)
    t_orig = (time.perf_counter() - t0) / 5
    t0 = time.perf_counter()
    for _ in range(5):
        sim.run(fused)
    t_fused = (time.perf_counter() - t0) / 5
    write_table(
        "fig4_fusion_runtime",
        ["circuit", "gates", "mean_seconds"],
        [
            ("original", len(bound), f"{t_orig:.5f}"),
            ("fused", len(fused), f"{t_fused:.5f}"),
        ],
        caption="Fusion runtime ablation (8-qubit UCCSD)",
    )
    assert t_fused < t_orig
