"""Compiled-observable engine: naive per-term vs x-mask-batched.

The direct expectation method (paper §4.2.2) pays one full-vector pass
per Hamiltonian term; ``repro.ir.compiled`` batches terms sharing an
x-mask into one gather + multiply + reduction per *distinct* mask.  On
the 12-qubit downfolded H2O Hamiltonian (the Fig. 5 system) that turns
~4.7k term passes into ~140 mask passes per energy/gradient call.

Run under pytest-benchmark for timing curves, or standalone in smoke
mode (used by CI) to check correctness and the pass-count reduction
without the benchmark harness:

    PYTHONPATH=src python benchmarks/bench_expectation_engine.py --smoke
"""

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _util import write_table
from repro.ir.compiled import CompiledPauliSum, compile_observable
from repro.ir.pauli import PauliSum
from repro.utils.linalg import random_statevector

# The naive reference must beat hand-written per-term loops, not a
# strawman: one vectorized pass per term, no H@psi materialization.
from repro.utils.bitops import I_POW, basis_indices, count_set_bits, popcount

MIN_PASS_REDUCTION = 5.0  # H2O actually achieves ~34x
MIN_SMOKE_SPEEDUP = 3.0   # acceptance floor; measured ~100x locally


def naive_expectation(state: np.ndarray, observable: PauliSum) -> complex:
    """<psi|H|psi> with one vectorized pass per term (the pre-compiled
    direct method, kept here as the timing/correctness reference)."""
    idx = basis_indices(observable.num_qubits)
    total = 0.0 + 0.0j
    for (x, z), coeff in observable.terms.items():
        src = idx ^ x
        signs = 1.0 - 2.0 * (count_set_bits(src & z) & 1)
        phase = I_POW[popcount(x & z) % 4]
        total += (coeff * phase) * np.vdot(state, state[src] * signs)
    return complex(total)


def naive_apply(state: np.ndarray, observable: PauliSum) -> np.ndarray:
    out = np.zeros_like(state, dtype=np.complex128)
    idx = basis_indices(observable.num_qubits)
    for (x, z), coeff in observable.terms.items():
        src = idx ^ x
        signs = 1.0 - 2.0 * (count_set_bits(src & z) & 1)
        phase = I_POW[popcount(x & z) % 4]
        out += (coeff * phase) * (state[src] * signs)
    return out


def build_h2o_effective_hamiltonian() -> PauliSum:
    """The Fig. 5 system: STO-3G H2O, O 1s downfolded out, 12 qubits."""
    from repro.chem.downfolding import hermitian_downfold
    from repro.chem.hamiltonian import build_molecular_hamiltonian
    from repro.chem.molecule import h2o
    from repro.chem.scf import run_rhf

    scf = run_rhf(h2o())
    mh = build_molecular_hamiltonian(scf)
    downfolded = hermitian_downfold(
        mh, scf.mo_energies, core_orbitals=[0],
        active_orbitals=[1, 2, 3, 4, 5, 6],
    )
    return downfolded.effective_hamiltonian.chop(1e-8)


# -- pytest-benchmark entry points ------------------------------------------


def test_naive_expectation_h2o(benchmark, h2o_hamiltonian):
    heff = _heff_from_fixture(h2o_hamiltonian)
    state = random_statevector(heff.num_qubits, np.random.default_rng(11))
    value = benchmark(naive_expectation, state, heff)
    assert abs(value.imag) < 1e-8


def test_compiled_expectation_h2o(benchmark, h2o_hamiltonian):
    heff = _heff_from_fixture(h2o_hamiltonian)
    state = random_statevector(heff.num_qubits, np.random.default_rng(11))
    compiled = compile_observable(heff)  # compile once, outside the timer
    value = benchmark(compiled.expectation, state)
    assert abs(value - naive_expectation(state, heff)) < 1e-10
    assert heff.num_terms >= MIN_PASS_REDUCTION * compiled.num_passes


def test_compiled_apply_h2o(benchmark, h2o_hamiltonian):
    heff = _heff_from_fixture(h2o_hamiltonian)
    state = random_statevector(heff.num_qubits, np.random.default_rng(11))
    compiled = compile_observable(heff)
    out = benchmark(compiled.apply, state)
    assert np.allclose(out, naive_apply(state, heff), atol=1e-10)


def _heff_from_fixture(h2o_hamiltonian):
    from repro.chem.downfolding import hermitian_downfold

    scf, mh = h2o_hamiltonian
    downfolded = hermitian_downfold(
        mh, scf.mo_energies, core_orbitals=[0],
        active_orbitals=[1, 2, 3, 4, 5, 6],
    )
    return downfolded.effective_hamiltonian.chop(1e-8)


# -- smoke mode (CI) ---------------------------------------------------------


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_smoke(repeats: int = 3) -> int:
    print("building 12-qubit downfolded H2O Hamiltonian ...")
    heff = build_h2o_effective_hamiltonian()
    state = random_statevector(heff.num_qubits, np.random.default_rng(11))

    t0 = time.perf_counter()
    compiled = CompiledPauliSum(heff)
    t_compile = time.perf_counter() - t0

    # correctness first: compiled must match the per-term reference
    e_naive = naive_expectation(state, heff)
    e_compiled = compiled.expectation(state)
    err_exp = abs(e_compiled - e_naive)
    err_apply = float(
        np.max(np.abs(compiled.apply(state) - naive_apply(state, heff)))
    )

    t_naive = _best_of(lambda: naive_expectation(state, heff), repeats)
    t_comp = _best_of(lambda: compiled.expectation(state), repeats)
    speedup = t_naive / t_comp
    reduction = heff.num_terms / max(1, compiled.num_passes)

    table = write_table(
        "expectation_engine",
        ["metric", "value"],
        [
            ("qubits", heff.num_qubits),
            ("terms", heff.num_terms),
            ("distinct_x_masks", compiled.num_passes),
            ("pass_reduction", f"{reduction:.1f}x"),
            ("compiled_bytes", compiled.nbytes()),
            ("compile_s", f"{t_compile:.4f}"),
            ("naive_expectation_s", f"{t_naive:.4f}"),
            ("compiled_expectation_s", f"{t_comp:.6f}"),
            ("speedup", f"{speedup:.1f}x"),
            ("expectation_abs_err", f"{err_exp:.2e}"),
            ("apply_max_abs_err", f"{err_apply:.2e}"),
        ],
        caption="Compiled-observable engine vs naive per-term direct method "
        "(12-qubit downfolded H2O)",
    )
    print("\n" + table)

    failures = []
    if err_exp > 1e-10:
        failures.append(f"expectation mismatch: {err_exp:.3e} > 1e-10")
    if err_apply > 1e-10:
        failures.append(f"apply mismatch: {err_apply:.3e} > 1e-10")
    if reduction < MIN_PASS_REDUCTION:
        failures.append(
            f"pass reduction {reduction:.1f}x < {MIN_PASS_REDUCTION}x"
        )
    if speedup < MIN_SMOKE_SPEEDUP:
        failures.append(f"speedup {speedup:.1f}x < {MIN_SMOKE_SPEEDUP}x")
    for f in failures:
        print(f"FAIL: {f}")
    if not failures:
        print(
            f"OK: {heff.num_terms} terms -> {compiled.num_passes} passes "
            f"({reduction:.1f}x), {speedup:.1f}x faster than naive"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(run_smoke())
