"""Observability overhead — disabled instrumentation must be free.

The telemetry layer (`repro.obs`) weaves span/counter hooks through
the VQE hot path.  Its contract: with observability *disabled* (the
default), those hooks cost < 5% of a 12-qubit VQE iteration.  The
disabled path executes only `obs.span()` (returning the shared no-op
span) and `obs.enabled()` guards, so the bound is checked two ways:

* an analytic bound — count the instrumentation events one enabled
  iteration emits, multiply by the measured per-event no-op cost, and
  compare against the disabled iteration time;
* a direct A/B — disabled vs fully-enabled iteration medians, reported
  for context (enabled mode is allowed to cost more; it records).

The event bus (`repro.obs.events`) joins the same contract: with no
bus installed, the module-level `emit()` is a constant-time guard, so
even one emit per instrumentation event stays under the same 5% bound.
So does the memory ledger (`repro.obs.memory`): with observability off,
`obs.mem_alloc` returns the no-op handle 0 after a single flag check
and `mem_free`/`mem_resize` of handle 0 are dictionary misses, so even
one ledger call per instrumentation event stays under the bound too.
"""

import statistics
import time

import numpy as np

from _util import write_table
from repro import obs
from repro.obs import events as obs_events
from repro.chem.pools import qubit_pool
from repro.chem.reference import hartree_fock_state
from repro.core.vqe import VQE
from repro.ir.pauli import PauliSum

N_QUBITS = 12
N_ELECTRONS = 6
OVERHEAD_BUDGET = 0.05  # the ISSUE's 5% ceiling


def _label(pairs):
    chars = ["I"] * N_QUBITS
    for pos, p in pairs:
        chars[pos] = p
    return "".join(chars)


def _hamiltonian() -> PauliSum:
    """Deterministic 12-qubit test Hamiltonian (TFIM-like + fields)."""
    labels = {}
    for q in range(N_QUBITS - 1):
        labels[_label([(q, "Z"), (q + 1, "Z")])] = 0.25 + 0.01 * q
    for q in range(N_QUBITS):
        labels[_label([(q, "X")])] = -0.5 + 0.02 * q
        labels[_label([(q, "Z")])] = 0.3 - 0.01 * q
    return PauliSum.from_label_dict(labels)


def _make_vqe() -> VQE:
    generators = [op.generator for op in qubit_pool(N_QUBITS, N_ELECTRONS)[:6]]
    return VQE(
        _hamiltonian(),
        generators=generators,
        reference_state=hartree_fock_state(N_QUBITS, N_ELECTRONS),
    )


def _median_iteration_s(vqe, params, rounds=7):
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        vqe.energy(params)
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _noop_event_cost_s(calls=200_000):
    """Per-event cost of the disabled hooks (span enter/exit + guard)."""
    t0 = time.perf_counter()
    for _ in range(calls):
        with obs.span("bench.noop"):
            pass
    span_cost = (time.perf_counter() - t0) / calls
    t0 = time.perf_counter()
    for _ in range(calls):
        if obs.enabled():  # the hot-path counter guard
            obs.inc("bench_noop_total")
    guard_cost = (time.perf_counter() - t0) / calls
    return max(span_cost, guard_cost)


def _noop_emit_cost_s(calls=200_000):
    """Per-call cost of `events.emit` with no bus installed."""
    assert obs_events.get_bus() is None
    t0 = time.perf_counter()
    for _ in range(calls):
        obs_events.emit("bench.noop", value=1)
    return (time.perf_counter() - t0) / calls


def _noop_mem_cost_s(calls=200_000):
    """Per-call cost of the disabled memory-ledger hooks: `mem_alloc`
    returning handle 0, and `mem_free`/`mem_resize` of handle 0."""
    assert not obs.enabled()
    t0 = time.perf_counter()
    for _ in range(calls):
        obs.mem_alloc("bench", 1024)
    alloc_cost = (time.perf_counter() - t0) / calls
    t0 = time.perf_counter()
    for _ in range(calls):
        obs.mem_free(0)
        obs.mem_resize(0, 2048)
    free_cost = (time.perf_counter() - t0) / (2 * calls)
    return max(alloc_cost, free_cost)


def _measure():
    obs.disable()
    obs.reset()
    obs_events.set_bus(None)
    vqe = _make_vqe()
    params = np.full(vqe.num_parameters, 0.05)
    vqe.energy(params)  # warm caches / JIT-free but fills lazy setup

    disabled_s = _median_iteration_s(vqe, params)
    per_event_s = _noop_event_cost_s()
    per_emit_s = _noop_emit_cost_s()
    per_mem_s = _noop_mem_cost_s()

    # One enabled iteration counts the instrumentation events the
    # disabled path still touches (spans entered + counter guards).
    # Count inc *calls*, not summed counter values: an amount-weighted
    # inc (e.g. "ops skipped" += 6) is still one guard evaluation when
    # observability is off.
    obs.configure(enabled=True)
    obs.reset()
    calls = {"n": 0}
    real_inc = obs.inc

    def counting_inc(*args, **kwargs):
        calls["n"] += 1
        return real_inc(*args, **kwargs)

    obs.inc = counting_inc
    try:
        vqe.energy(params)
    finally:
        obs.inc = real_inc
    spans = len(obs.get_tracer().spans)
    counter_events = calls["n"]
    enabled_s = _median_iteration_s(vqe, params)
    obs.disable()
    obs.reset()

    events = spans + counter_events
    bound_fraction = (events * per_event_s) / disabled_s
    # worst-case bus bound: one no-bus emit per instrumentation event
    bus_bound_fraction = (events * per_emit_s) / disabled_s
    # worst-case ledger bound: one disabled mem_* call per event
    mem_bound_fraction = (events * per_mem_s) / disabled_s
    return {
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "per_event_s": per_event_s,
        "per_emit_s": per_emit_s,
        "per_mem_s": per_mem_s,
        "events": events,
        "bound_fraction": bound_fraction,
        "bus_bound_fraction": bus_bound_fraction,
        "mem_bound_fraction": mem_bound_fraction,
    }


def test_disabled_obs_overhead_under_budget(benchmark):
    m = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = write_table(
        "obs_overhead",
        ["metric", "value"],
        [
            ("qubits", N_QUBITS),
            ("iteration disabled (s)", f"{m['disabled_s']:.4f}"),
            ("iteration enabled (s)", f"{m['enabled_s']:.4f}"),
            ("instrumentation events/iter", m["events"]),
            ("no-op cost/event (s)", f"{m['per_event_s']:.2e}"),
            ("no-bus cost/emit (s)", f"{m['per_emit_s']:.2e}"),
            ("no-ledger cost/mem call (s)", f"{m['per_mem_s']:.2e}"),
            ("disabled overhead bound", f"{m['bound_fraction']:.4%}"),
            ("event-bus overhead bound", f"{m['bus_bound_fraction']:.4%}"),
            ("mem-ledger overhead bound", f"{m['mem_bound_fraction']:.4%}"),
            ("budget", f"{OVERHEAD_BUDGET:.0%}"),
        ],
        caption="Disabled-observability overhead on a 12-qubit VQE "
        "iteration (bound = events x no-op cost / iteration time)",
    )
    print("\n" + table)
    assert m["events"] > 0  # the hot path is actually instrumented
    assert m["bound_fraction"] < OVERHEAD_BUDGET
    assert m["bus_bound_fraction"] < OVERHEAD_BUDGET
    assert m["mem_bound_fraction"] < OVERHEAD_BUDGET
