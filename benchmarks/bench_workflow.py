"""Figure 2 — the end-to-end execution flow, exercised as a benchmark.

Runs the complete pipeline (integrals -> SCF -> downfolding -> qubit
observable -> UCCSD VQE -> exact check) for H2 and LiH, confirming
every stage hands off to the next and the final energies are correct.
"""

import numpy as np

from _util import write_table
from repro.chem.molecule import h2, lih
from repro.core.workflow import run_vqe_workflow


def test_workflow_h2(benchmark):
    result = benchmark.pedantic(
        lambda: run_vqe_workflow(h2(), downfold=False), rounds=1, iterations=1
    )
    assert result.error_vs_exact < 1e-5
    write_table(
        "fig2_workflow_h2",
        ["stage", "value"],
        [
            ("RHF energy", f"{result.scf.energy:+.8f}"),
            ("qubits", result.num_qubits),
            ("Pauli terms", result.qubit_hamiltonian.num_terms),
            ("VQE energy", f"{result.vqe.energy:+.8f}"),
            ("exact", f"{result.exact_energy:+.8f}"),
            ("error (mHa)", f"{result.error_vs_exact * 1000:.5f}"),
        ],
        caption="Fig 2 workflow: H2 end to end",
    )


def test_workflow_lih_downfolded(benchmark):
    result = benchmark.pedantic(
        lambda: run_vqe_workflow(
            lih(), core_orbitals=[0], active_orbitals=[1, 2, 3, 4, 5]
        ),
        rounds=1,
        iterations=1,
    )
    assert result.downfolding is not None
    assert result.num_qubits == 10
    assert result.error_vs_exact < 1e-4
    write_table(
        "fig2_workflow_lih",
        ["stage", "value"],
        [
            ("RHF energy", f"{result.scf.energy:+.8f}"),
            ("sigma_ext |.|_1", f"{result.downfolding.sigma_norm1:.5f}"),
            ("effective terms", result.qubit_hamiltonian.num_terms),
            ("qubits", result.num_qubits),
            ("VQE energy", f"{result.vqe.energy:+.8f}"),
            ("exact(H_eff)", f"{result.exact_energy:+.8f}"),
            ("error (mHa)", f"{result.error_vs_exact * 1000:.5f}"),
        ],
        caption="Fig 2 workflow: LiH with frozen-core downfolding",
    )
