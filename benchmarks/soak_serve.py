"""Soak test: the campaign server survives a kill -9 mid-service.

Drives the real CLI in subprocesses, exactly like an operator would:

1. spool submissions from three tenants (``repro submit``),
2. start ``repro serve`` with an injected rank crash and durable
   (fsync) journaling, let campaigns get in flight,
3. ``SIGKILL`` the server — no atexit handlers, no flushing,
4. spool more submissions while the server is down,
5. restart the server and let it drain the backlog,
6. assert from ``repro status --json`` and the journal that every job
   reached a terminal state, the rank loss stuck, nothing was lost,
   and no job completed twice (idempotent replay, no duplicated work),
7. assert the structured event log survived the kill consistently:
   sequence numbers strictly increase across the restart, the stream
   parses around any torn tail, completion events never contradict the
   journal, and ``repro top --once --json`` renders the whole story
   out-of-process,
8. assert the memory ledger did not leak across the restart+replay:
   once the backlog is drained, the restarted server's ``status.json``
   must show zero predicted bytes still queued/running and a ledger
   live set holding only the shared problem cache and pooled
   simulators — never per-job buffers retained after their jobs
   reached a terminal state.

Run from the repository root:

    PYTHONPATH=src python benchmarks/soak_serve.py

Exit code 0 = the service behaved; anything else is a soak failure.
CI runs this as its own job (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.obs.events import read_events  # noqa: E402
from repro.serve.journal import Journal  # noqa: E402


def _cli(*args: str, check: bool = True) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        check=check,
        env=env,
        cwd=REPO_ROOT,
    )


def _submit(state_dir: str, tenant: str, **kw: str) -> None:
    args = ["submit", "--state-dir", state_dir, "--tenant", tenant]
    for key, value in kw.items():
        args += [f"--{key.replace('_', '-')}", str(value)]
    _cli(*args)


def _start_server(state_dir: str, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--state-dir",
            state_dir,
            "--ranks",
            "2",
            "--fsync",
            "--tick-sleep",
            "0.01",
            # enable observability so the allocation ledger runs and
            # status.json carries the memory section the soak asserts on
            "--profile",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        cwd=REPO_ROOT,
    )


def _wait_for_journal(state_dir: str, record_type: str, timeout_s: float) -> bool:
    """Poll the journal until a record of the given type exists."""
    path = os.path.join(state_dir, "journal.jsonl")
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if os.path.isfile(path):
            try:
                if any(r.type == record_type for r in Journal(path).replay()):
                    return True
            except Exception:
                pass
        time.sleep(0.1)
    return False


def main() -> int:
    state_dir = tempfile.mkdtemp(prefix="repro-soak-")
    print(f"soak state: {state_dir}")

    # 1. three tenants spool a mixed workload before the server starts
    _submit(state_dir, "alice", kind="adapt", molecule="h2", max_iterations="3")
    _submit(state_dir, "bob", kind="vqe", molecule="h2", geometry="0.9")
    _submit(state_dir, "carol", kind="vqe", molecule="h4")
    _submit(state_dir, "alice", kind="vqe", molecule="h2", geometry="0.8")

    # 2. serve with rank 1 doomed to crash on its first dispatch
    server = _start_server(state_dir, "--crash-rank", "1")
    try:
        # wait until campaigns are genuinely in flight (work started
        # and the injected rank crash has fired)
        if not _wait_for_journal(state_dir, "started", timeout_s=60):
            print("FAIL: no job started before the kill")
            return 1
        if not _wait_for_journal(state_dir, "rank_lost", timeout_s=60):
            print("FAIL: injected rank crash never fired")
            return 1
        # 3. kill -9: no graceful shutdown of any kind
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
        print("killed server mid-service (SIGKILL)")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)

    # 4. the outage doesn't stop tenants from spooling more work —
    # including four same-molecule campaigns with distinct seeds, which
    # the restarted server must serve through the evaluation broker as
    # one batch group (asserted from status.json below)
    _submit(state_dir, "bob", kind="vqe", molecule="h2", geometry="0.7")
    _submit(state_dir, "carol", kind="adapt", molecule="h2", max_iterations="2")
    for k, tenant in enumerate(("alice", "bob", "carol", "dave")):
        _submit(state_dir, tenant, kind="vqe", molecule="h2", seed=str(k))

    # 5. restart; the journal replays, in-flight campaigns resume from
    # their checkpoints, the backlog drains
    restarted = _start_server(
        state_dir, "--crash-rank", "1", "--stop-when-idle", "--max-ticks", "500"
    )
    out, err = restarted.communicate(timeout=600)
    print(out.decode().strip())
    if restarted.returncode != 0:
        print(f"FAIL: restarted server exited {restarted.returncode}")
        print(err.decode())
        return 1

    # 6. verdicts, from the operator-visible surfaces only
    status = _cli("status", "--state-dir", state_dir, "--json")
    view = json.loads(status.stdout)
    failures = []

    nonterminal = [
        j for j in view["jobs"] if j["state"] in ("queued", "running")
    ]
    if nonterminal:
        failures.append(f"jobs stuck non-terminal: {nonterminal}")
    succeeded = [j for j in view["jobs"] if j["state"] == "succeeded"]
    if len(succeeded) != 10:
        failures.append(
            f"expected all 10 jobs to succeed, got {view['by_state']}"
        )
    if view["lost_ranks"] != [1]:
        failures.append(f"rank loss not durable: {view['lost_ranks']}")
    for job in succeeded:
        if job["energy"] is None or job["energy"] >= 0:
            failures.append(f"implausible energy on {job['job_id']}: {job}")

    journal = Journal(os.path.join(state_dir, "journal.jsonl")).replay()
    completions: dict = {}
    for rec in journal:
        if rec.type == "completed":
            jid = rec.payload["job_id"]
            completions[jid] = completions.get(jid, 0) + 1
    duplicated = {j: n for j, n in completions.items() if n != 1}
    if duplicated:
        failures.append(f"duplicated completions after replay: {duplicated}")
    if not any(r.type == "recovered" for r in journal):
        failures.append("restart never journaled a recovery marker")

    # 7. event-log replay consistency across the kill -9
    events = read_events(os.path.join(state_dir, "events.jsonl"))
    if not events:
        failures.append("no structured events survived the soak")
    seqs = [e.seq for e in events]
    if sorted(seqs) != seqs or len(set(seqs)) != len(seqs):
        failures.append(
            "event seq not strictly increasing across the restart"
        )
    if not any(e.type == "server.recovered" for e in events):
        failures.append("restart never emitted a server.recovered event")
    event_completions: dict = {}
    for e in events:
        if e.type == "job.completed":
            jid = e.attrs["job_id"]
            event_completions[jid] = event_completions.get(jid, 0) + 1
    dup_events = {j: n for j, n in event_completions.items() if n != 1}
    if dup_events:
        failures.append(f"duplicated completion events: {dup_events}")
    # every completion event must correspond to a journaled completion
    # (the journal is the source of truth; the event log may at worst
    # lose the final pre-kill record, never invent one)
    phantom = set(event_completions) - set(completions)
    if phantom:
        failures.append(f"completion events with no journal record: {phantom}")

    # 8. memory-ledger hygiene across the kill: the restarted server
    # replayed the journal, resumed/re-ran the backlog, and went idle —
    # its final status.json must show the accounting fully unwound.
    memory = (view.get("health") or {}).get("memory") or {}
    if not memory:
        failures.append("status.json carries no memory section")
    else:
        if memory.get("rank_memory_bytes", 0) <= 0:
            failures.append(f"no rank memory budget published: {memory}")
        if memory.get("queued_est_bytes", 0) != 0:
            failures.append(
                "predicted bytes still queued at idle (est-byte leak "
                f"through replay): {memory}"
            )
        if memory.get("running_est_bytes", 0) != 0:
            failures.append(
                f"predicted bytes still running at idle: {memory}"
            )
        live = memory.get("ledger_live_bytes", 0)
        peak = memory.get("ledger_peak_bytes", 0)
        if not 0 <= live <= peak:
            failures.append(f"ledger live/peak inconsistent: {memory}")
        # at idle only the shared problem cache (~0.4 MiB for the h2/h4
        # Hamiltonians + UCCSD generator observables) and the pooled
        # 4/8-qubit simulators may stay live; retaining even one job's
        # buffers past its terminal state would blow through this
        if live > 2 << 20:
            failures.append(
                f"ledger leak: {live} bytes live after drain "
                "(per-job buffers retained past terminal state?)"
            )

    # 9. the restarted server batched the in-flight same-molecule
    # campaigns (replayed submissions join waves like fresh ones) and
    # no completion was duplicated for them — the journal check above
    # already covers every job, this pins that batching was live
    batch = (view.get("health") or {}).get("batch") or {}
    if not batch.get("enabled"):
        failures.append(f"batching not enabled on the restarted server: {batch}")
    elif batch.get("batched_evals", 0) <= 0:
        failures.append(
            "restarted server never executed a multi-campaign batch "
            f"group despite 4 same-physics campaigns: {batch}"
        )

    top = _cli("top", "--state-dir", state_dir, "--once", "--json", check=False)
    if top.returncode != 0:
        failures.append(f"repro top --once --json exited {top.returncode}")
    else:
        try:
            snap = json.loads(top.stdout)
            if snap.get("events_total", 0) < len(events):
                failures.append("repro top saw fewer events than the log holds")
        except json.JSONDecodeError:
            failures.append("repro top --json emitted unparseable output")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    resumed = sum(1 for j in view["jobs"] if j.get("resumed"))
    print(
        f"PASS: {len(succeeded)} jobs succeeded across the kill "
        f"({resumed} resumed from checkpoints, rank 1 lost and stayed lost, "
        f"{len(journal)} journal records, {len(events)} events replayed "
        f"consistently, no duplicated completions, "
        f"{batch.get('batched_evals', 0)} evaluations batched across "
        f"campaigns, "
        f"{memory.get('ledger_live_bytes', 0)} ledger bytes live at idle)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
