"""Shared fixtures for the benchmark harness: expensive chemistry
setups (SCF, downfolding) are computed once per session."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h2, h2o, h4_chain
from repro.chem.scf import run_rhf


@pytest.fixture(scope="session")
def h2_hamiltonian():
    scf = run_rhf(h2())
    return scf, build_molecular_hamiltonian(scf)


@pytest.fixture(scope="session")
def h4_hamiltonian():
    scf = run_rhf(h4_chain())
    return scf, build_molecular_hamiltonian(scf)


@pytest.fixture(scope="session")
def h2o_hamiltonian():
    scf = run_rhf(h2o())
    return scf, build_molecular_hamiltonian(scf)
