"""Distributed statevector scaling — the paper's headline capability.

Three measurements:

* **live strong scaling**: a fixed 14-qubit circuit on 1-8 simulated
  ranks, correctness checked against the serial simulator and the
  communication ledger recorded (real data movement, not a model);
* **projected strong scaling** on the Perlmutter machine model at
  32 qubits (a size only the paper's machines hold);
* **projected weak scaling**, the regime where distribution buys
  qubits: per-rank compute time stays flat as ranks and qubits grow.
"""

import math

import numpy as np

from _util import write_table
from repro.hpc.distributed import DistributedStatevector
from repro.hpc.perfmodel import strong_scaling_curve, weak_scaling_curve
from repro.ir.circuit import Circuit
from repro.sim.statevector import StatevectorSimulator


def _layered_circuit(n: int, layers: int = 3) -> Circuit:
    c = Circuit(n)
    for layer in range(layers):
        for q in range(n):
            c.ry(0.1 * (q + layer + 1), q)
        for q in range(n - 1):
            c.cx(q, q + 1)
    return c


def test_live_distributed_execution(benchmark):
    n = 14
    circuit = _layered_circuit(n)
    reference = StatevectorSimulator(n).run(circuit).copy()

    def run_on_4_ranks():
        dsv = DistributedStatevector(n, 4)
        dsv.run(circuit)
        return dsv

    dsv = benchmark(run_on_4_ranks)
    assert np.allclose(dsv.gather(), reference, atol=1e-9)

    rows = []
    for ranks in (1, 2, 4, 8):
        d = DistributedStatevector(n, ranks)
        d.run(circuit)
        ok = np.allclose(d.gather(), reference, atol=1e-9)
        assert ok
        rows.append(
            (
                ranks,
                d.exchanges,
                d.comm.stats.point_to_point_bytes,
                d.memory_per_rank_bytes(),
            )
        )
    table = write_table(
        "distributed_live",
        ["ranks", "exchanges", "p2p_bytes", "bytes_per_rank"],
        rows,
        caption=f"Live distributed execution, {n}-qubit circuit "
        f"({len(circuit)} gates), bit-exact vs serial",
    )
    print("\n" + table)
    # memory per rank halves with each rank doubling (the reason to
    # distribute at all)
    mems = [r[3] for r in rows]
    for a, b in zip(mems, mems[1:]):
        assert b == a // 2


def test_projected_strong_scaling(benchmark):
    n, gates = 32, 1_500_000
    ranks = [2, 8, 32, 128, 512]
    curve = benchmark(lambda: strong_scaling_curve(n, gates, ranks))
    rows = [
        (
            R,
            f"{curve[R].compute:.1f}",
            f"{curve[R].communication:.1f}",
            f"{curve[R].total:.1f}",
            f"{100 * curve[R].communication_fraction:.1f}%",
        )
        for R in ranks
    ]
    table = write_table(
        "distributed_strong_scaling",
        ["ranks", "compute_s", "comm_s", "total_s", "comm_frac"],
        rows,
        caption="Projected strong scaling, 32-qubit UCCSD-size circuit, "
        "Perlmutter model",
    )
    print("\n" + table)
    totals = [curve[R].total for R in ranks]
    # total time keeps falling with ranks ...
    assert all(b < a for a, b in zip(totals, totals[1:]))
    # ... but communication fraction grows: the strong-scaling knee.
    fracs = [curve[R].communication_fraction for R in ranks]
    assert all(b > a for a, b in zip(fracs, fracs[1:]))


def test_projected_weak_scaling(benchmark):
    gates = 100_000
    ranks = [1, 2, 4, 8, 16, 32, 64]
    curve = benchmark(lambda: weak_scaling_curve(28, gates, ranks))
    rows = [
        (R, 28 + int(math.log2(R)), f"{curve[R].compute:.2f}",
         f"{curve[R].total:.2f}")
        for R in ranks
    ]
    table = write_table(
        "distributed_weak_scaling",
        ["ranks", "qubits", "compute_s", "total_s"],
        rows,
        caption="Projected weak scaling (+1 qubit per rank doubling), "
        "Perlmutter model",
    )
    print("\n" + table)
    computes = [curve[R].compute for R in ranks]
    # flat per-rank compute: each rank doubling absorbs one more qubit
    assert np.allclose(computes, computes[0], rtol=1e-9)
    # total overhead vs serial stays bounded (< 4x here): scalable
    assert curve[64].total < 4 * curve[1].total
