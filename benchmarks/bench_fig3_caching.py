"""Figure 3 — gates per VQE energy evaluation: non-caching vs caching.

Two parts:

* the paper's 12-30 qubit analytic sweep (counts), asserting the
  quoted magnitudes — non-caching 1e7..1e11 gates, caching 1e4..1e6,
  savings of 3-5 orders of magnitude;
* a *live* cross-check at H2/H4 scale: the ``CachedEnergyEvaluator``
  gate ledger must match the analytic model's structure (ansatz once
  vs ansatz per measurement group) and both strategies must return the
  identical energy.
"""

import numpy as np

from _util import write_table
from repro.chem.uccsd import build_uccsd_circuit
from repro.core.cache import CachedEnergyEvaluator
from repro.core.counting import energy_evaluation_gate_counts

QUBITS = list(range(12, 32, 2))


def test_fig3_gate_counts(benchmark):
    costs = benchmark(
        lambda: [energy_evaluation_gate_counts(n) for n in QUBITS]
    )
    rows = [
        (
            c.num_qubits,
            f"{c.non_caching_gates:.3e}",
            f"{c.caching_gates:.3e}",
            f"{c.savings_orders_of_magnitude:.2f}",
        )
        for c in costs
    ]
    table = write_table(
        "fig3_caching_gates",
        ["qubits", "non_caching", "caching", "savings_oom"],
        rows,
        caption="Fig 3: gates per VQE energy evaluation "
        "(paper: 1e7..1e11 vs 1e4..1e6, 3-5 orders saved)",
    )
    print("\n" + table)
    assert 1e7 <= costs[0].non_caching_gates
    assert costs[-1].non_caching_gates <= 1e12
    assert 1e4 <= costs[0].caching_gates
    assert costs[-1].caching_gates <= 1e7
    for c in costs:
        assert 2.5 <= c.savings_orders_of_magnitude <= 5.5
    # Caching changes the scaling *shape*: the savings grow with size.
    assert (
        costs[-1].savings_orders_of_magnitude
        > costs[0].savings_orders_of_magnitude
    )


def test_fig3_live_ledger(benchmark, h4_hamiltonian):
    """Executable confirmation of the counting model at 8 qubits."""
    _, mh = h4_hamiltonian
    hq = mh.to_qubit()
    ansatz = build_uccsd_circuit(8, 4)
    params = np.zeros(ansatz.num_parameters)

    def evaluate_both():
        on = CachedEnergyEvaluator(ansatz.circuit, hq, use_caching=True)
        off = CachedEnergyEvaluator(ansatz.circuit, hq, use_caching=False)
        return on, off, on.energy(params), off.energy(params)

    on, off, e_on, e_off = benchmark.pedantic(
        evaluate_both, rounds=1, iterations=1
    )
    assert np.isclose(e_on, e_off, atol=1e-9)
    # caching: exactly one ansatz execution; non-caching: one per
    # non-trivial measurement group.
    assert on.ledger.ansatz_executions == 1
    assert off.ledger.ansatz_executions >= on.num_groups - 1
    assert off.ledger.total_gates > 10 * on.ledger.total_gates
    write_table(
        "fig3_live_ledger",
        ["strategy", "ansatz_runs", "total_gates", "energy"],
        [
            ("caching", on.ledger.ansatz_executions, on.ledger.total_gates, f"{e_on:.8f}"),
            ("non-caching", off.ledger.ansatz_executions, off.ledger.total_gates, f"{e_off:.8f}"),
        ],
        caption="Fig 3 live check at 8 qubits (H4 UCCSD)",
    )
