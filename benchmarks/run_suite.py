"""Unified benchmark harness: run every ``bench_*.py`` and emit one
schema-versioned ``BENCH_<tag>.json`` (see ``repro.obs.bench``).

Each benchmark file runs in its own in-process pytest session so a
broken file cannot take down the rest of the suite.  Observability is
enabled for the whole run: every test's entry carries the delta of the
key ``repro_*`` counters it moved (bytes exchanged, gates applied,
simulated schedule seconds, ...) next to its wall time, so a BENCH
file doubles as a coarse performance fingerprint of the commit.

Modes:

* ``--smoke`` (CI default) — pytest-benchmark fixtures run once
  without calibration (``--benchmark-disable``); the whole suite takes
  about a minute,
* ``--full`` — benchmarks calibrate and repeat as they were written.

Compare two BENCH files with ``repro bench-diff OLD NEW``; CI gates on
the committed ``benchmarks/results/BENCH_baseline.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import pytest  # noqa: E402

from repro import obs  # noqa: E402
from repro.obs.bench import (  # noqa: E402
    KEY_COUNTER_PREFIXES,
    BenchEntry,
    BenchReport,
)

# Simulated-time counters are reported as ``sim_s`` rather than mixed
# into the wall-clock counters.
_SIM_COUNTER = "repro_sched_rank_busy_sim_seconds_total"


def _counter_snapshot() -> Dict[str, float]:
    """Key counters summed over labels, keyed by bare metric name."""
    out: Dict[str, float] = {}
    for m in obs.get_registry().snapshot():
        name = m.get("name", "")
        if m.get("type") != "counter":
            continue
        if not name.startswith(KEY_COUNTER_PREFIXES):
            continue
        out[name] = out.get(name, 0.0) + float(m.get("value", 0.0))
    return out


class _Collector:
    """Pytest plugin: per-test wall time, outcome, and counter deltas."""

    def __init__(self, report: BenchReport):
        self.report = report
        self._pre: Dict[str, Dict[str, float]] = {}

    def pytest_runtest_setup(self, item) -> None:
        # benchmarks may reset/disable the global registry internally
        # (bench_obs_overhead does); re-arm before every test and clamp
        # the deltas below.
        obs.configure(enabled=True)
        # rebase the memory ledger (peak := live) so each entry's
        # peak_bytes reflects this benchmark, not the suite-wide high
        # water mark
        obs.get_memory_ledger().reset()
        self._pre[item.nodeid] = _counter_snapshot()

    def pytest_runtest_logreport(self, report) -> None:
        if report.when == "setup" and report.skipped:
            self.report.skipped.append(report.nodeid)
            self._pre.pop(report.nodeid, None)
            return
        if report.when != "call":
            return
        obs.configure(enabled=True)
        pre = self._pre.pop(report.nodeid, {})
        post = _counter_snapshot()
        deltas = {
            name: round(value - pre.get(name, 0.0), 6)
            for name, value in post.items()
            if value - pre.get(name, 0.0) > 0.0
        }
        sim_s = deltas.pop(_SIM_COUNTER, None)
        peak = int(obs.get_memory_ledger().peak_bytes)
        self.report.entries.append(
            BenchEntry(
                name=report.nodeid,
                wall_s=float(report.duration),
                ok=report.outcome == "passed",
                sim_s=sim_s,
                peak_bytes=peak if peak > 0 else None,
                counters=deltas,
            )
        )


def discover(filter_substr: str = "") -> List[Path]:
    files = sorted(BENCH_DIR.glob("bench_*.py"))
    if filter_substr:
        files = [f for f in files if filter_substr in f.name]
    return files


def run_suite(
    mode: str = "smoke",
    filter_substr: str = "",
    verbose: bool = False,
) -> BenchReport:
    report = BenchReport(mode=mode)
    files = discover(filter_substr)
    if not files:
        raise SystemExit(f"no bench_*.py files match {filter_substr!r}")
    obs.reset()
    obs.configure(enabled=True)
    extra = ["--benchmark-disable"] if mode == "smoke" else []
    try:
        for path in files:
            collector = _Collector(report)
            t0 = time.perf_counter()
            rc = pytest.main(
                [
                    str(path),
                    "-q",
                    "--no-header",
                    "-p",
                    "no:cacheprovider",
                    *extra,
                ],
                plugins=[collector],
            )
            dt = time.perf_counter() - t0
            if rc == 5:  # nothing collected (e.g. everything deselected)
                report.skipped.append(f"{path.name} (no tests collected)")
            elif rc not in (0, 1):  # 1 = test failures, already per-entry
                report.skipped.append(f"{path.name} (pytest exit code {rc})")
            if verbose:
                status = "ok" if rc == 0 else f"rc={rc}"
                print(f"  {path.name:<38} {dt:7.2f}s  {status}")
    finally:
        obs.disable()
        obs.reset()
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="run the benchmark suite and emit a BENCH_<tag>.json"
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke",
        action="store_true",
        help="single-pass benchmarks (--benchmark-disable); the CI mode",
    )
    mode.add_argument(
        "--full", action="store_true", help="calibrated pytest-benchmark runs"
    )
    parser.add_argument(
        "--json",
        default="",
        metavar="FILE",
        help="output path (default benchmarks/results/BENCH_<mode>.json)",
    )
    parser.add_argument(
        "--filter", default="", help="only files whose name contains this"
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    mode_name = "full" if args.full else "smoke"
    out = args.json or str(BENCH_DIR / "results" / f"BENCH_{mode_name}.json")
    report = run_suite(
        mode=mode_name, filter_substr=args.filter, verbose=args.verbose
    )
    report.save(out)
    failed = [e.name for e in report.entries if not e.ok]
    print(
        f"BENCH file written to {out}: {len(report.entries)} benchmarks, "
        f"{len(failed)} failed, {len(report.skipped)} skipped"
    )
    for name in failed:
        print(f"  FAILED {name}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
