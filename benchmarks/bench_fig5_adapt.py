"""Figure 5 — ADAPT-VQE convergence on the downfolded 6-orbital H2O.

The full paper experiment: STO-3G H2O, O 1s core downfolded out
(Hermitian commutator expansion), 12-qubit effective Hamiltonian,
ADAPT-VQE with the UCCSD pool, energy error vs exact diagonalization
per iteration.  Paper: monotone convergence reaching the 1 mHa
chemical-accuracy line around iteration 16, one ansatz layer added per
iteration.

This is the heavyweight benchmark (~2 minutes); it runs once.
"""

import numpy as np
import pytest

from _util import write_table
from repro.chem.downfolding import hermitian_downfold
from repro.chem.fci import exact_ground_energy
from repro.chem.pools import uccsd_pool
from repro.chem.reference import hartree_fock_state
from repro.core.adapt import AdaptVQE

MAX_ITERATIONS = 25
PAPER_ITERATIONS_TO_1MHA = 16


def test_fig5_adapt_h2o(benchmark, h2o_hamiltonian):
    scf, mh = h2o_hamiltonian
    downfolded = hermitian_downfold(
        mh, scf.mo_energies, core_orbitals=[0],
        active_orbitals=[1, 2, 3, 4, 5, 6],
    )
    heff = downfolded.effective_hamiltonian.chop(1e-8)
    e_exact = exact_ground_energy(heff, num_particles=8, sz=0)
    pool = uccsd_pool(12, 8)
    reference = hartree_fock_state(12, 8)

    def run_adapt():
        adapt = AdaptVQE(
            heff, pool, reference,
            max_iterations=MAX_ITERATIONS,
            reference_energy=e_exact,
            energy_tolerance=1e-3,
        )
        return adapt.run()

    result = benchmark.pedantic(run_adapt, rounds=1, iterations=1)

    rows = [
        (it.iteration, f"{it.energy:+.8f}", f"{it.error_vs_reference * 1000:.4f}",
         it.num_parameters, it.selected_label)
        for it in result.iterations
    ]
    table = write_table(
        "fig5_adapt_convergence",
        ["iter", "energy_Ha", "dE_mHa", "params", "operator"],
        rows,
        caption=(
            f"Fig 5: ADAPT-VQE on downfolded 12-qubit H2O "
            f"(exact {e_exact:+.8f} Ha; paper reaches 1 mHa at ~"
            f"{PAPER_ITERATIONS_TO_1MHA} iterations)"
        ),
    )
    print("\n" + table)

    hit = result.iterations_to_accuracy(1e-3)
    assert hit is not None, "never reached chemical accuracy"
    # Same regime as the paper's ~16 iterations.
    assert 10 <= hit <= MAX_ITERATIONS
    # One layer per iteration (Fig. 5 caption).
    for k, it in enumerate(result.iterations, start=1):
        assert it.num_parameters == k
    # Monotone non-increasing energy (variational).
    energies = [it.energy for it in result.iterations]
    for a, b in zip(energies, energies[1:]):
        assert b <= a + 1e-9
    # Downfolding did its job: starting error (HF vs exact) is tens of
    # mHa and the trajectory crosses 1 mHa.
    assert result.iterations[0].error_vs_reference > 1e-2
