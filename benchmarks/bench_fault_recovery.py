"""Recovery overhead of checkpointed campaigns under injected failures.

Two views of the checkpoint-period / lost-work tradeoff:

1. **Analytic** — Daly's expected-runtime model over a grid of
   checkpoint periods and failure rates (MTBF), with Young's optimum
   marked, using the measured-style checkpoint cost from
   ``checkpoint_write_time``.  This is the table an operator consults
   to pick a period for a given machine reliability.
2. **Live** — a real ADAPT campaign (H4) driven by ``CampaignRunner``
   with a seeded rank crash: iterations recomputed and checkpoints
   written as the period grows, demonstrating the same tradeoff in
   the actual recovery machinery rather than the closed form.
"""

import tempfile

from _util import write_table
from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import h4_chain
from repro.chem.pools import uccsd_pool
from repro.chem.reference import hartree_fock_state
from repro.chem.scf import run_rhf
from repro.core.adapt import AdaptVQE
from repro.core.campaign import CampaignRunner
from repro.hpc.faults import FaultInjector, FaultSpec
from repro.hpc.perfmodel import (
    campaign_runtime_with_failures,
    checkpoint_write_time,
    optimal_checkpoint_period,
)

WORK_S = 8 * 3600.0  # an 8-hour campaign of useful work


def test_checkpoint_period_tradeoff_model(benchmark):
    """Expected runtime vs checkpoint period for several MTBFs, 30
    qubits over 64 ranks on the Perlmutter model."""
    ckpt_cost = checkpoint_write_time(30, 64)

    def sweep():
        out = {}
        for mtbf_h in (1.0, 4.0, 24.0):
            mtbf = mtbf_h * 3600.0
            tau_star = optimal_checkpoint_period(ckpt_cost, mtbf)
            grid = [tau_star * f for f in (0.125, 0.5, 1.0, 2.0, 8.0)]
            out[mtbf_h] = (
                tau_star,
                [(tau, campaign_runtime_with_failures(WORK_S, tau, ckpt_cost, mtbf))
                 for tau in grid],
            )
        return out

    results = benchmark(sweep)
    rows = []
    for mtbf_h, (tau_star, curve) in results.items():
        for tau, t in curve:
            rows.append(
                (
                    f"{mtbf_h:g}",
                    f"{tau:.1f}",
                    f"{tau / tau_star:.3f}",
                    f"{t / 3600.0:.3f}",
                    f"{100.0 * (t - WORK_S) / WORK_S:.2f}%",
                )
            )
        # Young's optimum sits at the bottom of the sampled curve
        t_at_star = campaign_runtime_with_failures(
            WORK_S, tau_star, ckpt_cost, mtbf_h * 3600.0
        )
        assert t_at_star <= min(t for _, t in curve) + 1e-9
    # less reliable machines pay more overhead at their own optimum
    optima = [
        campaign_runtime_with_failures(
            WORK_S, results[m][0], ckpt_cost, m * 3600.0
        )
        for m in sorted(results)
    ]
    assert optima == sorted(optima, reverse=True)
    table = write_table(
        "fault_recovery_model",
        ["mtbf_h", "period_s", "period/tau*", "runtime_h", "overhead"],
        rows,
        caption=f"Daly expected runtime, 8h campaign, 30 qubits / 64 ranks "
        f"(checkpoint cost {ckpt_cost:.2f}s); tau* = Young optimum",
    )
    print("\n" + table)


def test_live_campaign_recovery_overhead(benchmark):
    """Iterations recomputed after a mid-campaign crash, as a function
    of the checkpoint period, in the real CampaignRunner."""
    scf = run_rhf(h4_chain())
    hq = build_molecular_hamiltonian(scf).to_qubit()
    e_fci = exact_ground_energy(hq, num_particles=4, sz=0)
    n = hq.num_qubits

    def mk_adapt():
        return AdaptVQE(
            hq,
            uccsd_pool(n, 4),
            hartree_fock_state(n, 4),
            max_iterations=4,
            reference_energy=e_fci,
            energy_tolerance=1e-6,
        )

    baseline = mk_adapt().run()

    def campaign(period, tmpdir):
        injector = FaultInjector(
            [FaultSpec("rank_crash", scope="campaign", at_step=3)], seed=0
        )
        runner = CampaignRunner(
            tmpdir, checkpoint_period=period, fault_injector=injector
        )
        return runner.run_adapt(mk_adapt())

    def sweep():
        out = {}
        for period in (1, 2, 4):
            with tempfile.TemporaryDirectory() as d:
                out[period] = campaign(period, d)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (
            period,
            r.restarts,
            r.iterations_recomputed,
            r.checkpoints_written,
            f"{abs(r.energy - baseline.energy):.2e}",
        )
        for period, r in results.items()
    ]
    table = write_table(
        "fault_recovery_live",
        ["ckpt_period", "restarts", "iters_recomputed", "ckpts_written", "|dE| vs clean"],
        rows,
        caption="H4 ADAPT campaign with a seeded rank crash at iteration 3: "
        "lost work grows with the checkpoint period, energy is unaffected",
    )
    print("\n" + table)
    recomputed = [r.iterations_recomputed for r in results.values()]
    written = [r.checkpoints_written for r in results.values()]
    # sparser checkpoints -> at least as much recomputation, less I/O
    assert recomputed == sorted(recomputed)
    assert written == sorted(written, reverse=True)
    # every variant recovers to the fault-free energy
    for r in results.values():
        assert r.restarts == 1
        assert abs(r.energy - baseline.energy) < 1e-8
