"""Figure 1 — the scaling-overhead motivation figures.

(a) UCCSD ansatz gate count vs qubits (12-30),
(b) Pauli terms of the downfolded two-body observable vs qubits,
(c) statevector memory vs qubits.

All three are resource counts: the benchmark times the counting
itself (fast) and regenerates the paper's series, asserting the
paper's qualitative claims — polynomial blow-ups in (a)/(b),
exponential in (c), and the quoted magnitudes at the endpoints.
"""

import numpy as np

from _util import write_table
from repro.core.counting import (
    jw_pauli_term_count,
    statevector_memory_bytes,
    uccsd_gate_count,
)

QUBITS = list(range(12, 32, 2))


def test_fig1a_uccsd_gate_count(benchmark):
    counts = benchmark(lambda: [uccsd_gate_count(n) for n in QUBITS])
    table = write_table(
        "fig1a_uccsd_gates",
        ["qubits", "gates"],
        zip(QUBITS, counts),
        caption="Fig 1a: UCCSD ansatz gate count vs qubits (paper: ~2.5e6 at 30)",
    )
    print("\n" + table)
    # Monotone growth, millions of gates at 30 qubits (paper's endpoint).
    assert all(b > a for a, b in zip(counts, counts[1:]))
    assert 1e6 < counts[-1] < 1e7
    # Super-cubic polynomial growth (doubling qubits x>8 the gates).
    assert counts[-1] / counts[QUBITS.index(14)] > 8


def test_fig1b_pauli_terms(benchmark):
    counts = benchmark(lambda: [jw_pauli_term_count(n) for n in QUBITS])
    table = write_table(
        "fig1b_pauli_terms",
        ["qubits", "pauli_terms"],
        zip(QUBITS, counts),
        caption="Fig 1b: Pauli terms of a dense two-body observable "
        "(paper: ~3e4 at 30 for the downfolded cc-pV5Z H2O)",
    )
    print("\n" + table)
    assert all(b > a for a, b in zip(counts, counts[1:]))
    # Tens of thousands of terms at 30 qubits; O(n^4) shape.
    assert 1e4 < counts[-1] < 1e5
    ratio = counts[-1] / counts[0]
    expected = (30 / 12) ** 4
    assert 0.3 * expected < ratio < 3 * expected


def test_fig1c_memory(benchmark):
    gib = benchmark(
        lambda: [statevector_memory_bytes(n) / (1 << 30) for n in QUBITS]
    )
    table = write_table(
        "fig1c_memory",
        ["qubits", "GiB"],
        [(n, f"{g:.6f}") for n, g in zip(QUBITS, gib)],
        caption="Fig 1c: statevector memory vs qubits (paper: ~16 GB at 30)",
    )
    print("\n" + table)
    # Exponential: each +2 qubits quadruples memory; 16 GiB at 30.
    for a, b in zip(gib, gib[1:]):
        assert np.isclose(b / a, 4.0)
    assert np.isclose(gib[-1], 16.0)
