"""Symplectic Pauli-algebra engine: packed-bit kernels vs per-term loops.

``repro.ir.symplectic`` stores a whole Pauli sum as packed (X|Z) uint64
bit-matrices and replaces the per-term dict loops of ``PauliSum`` with
vectorized kernels: sum x sum products with popcount phase tracking,
commutator adjacency, qubitwise-commuting (QWC) grouping, and batched
fermion-to-qubit mapping.  ``repro.chem.tapering`` sits on top and
removes the Hamiltonian's Z2 symmetry qubits.

Headline numbers come from the Fig. 5 system (12-qubit downfolded H2O,
4747 terms) and the full-space H2O / LiH Hamiltonians; the size sweep
uses synthetic two-body Hamiltonians at 8/12/16/20/28 qubits (same JW
term census as real active spaces of that size, per Fig. 1).

Run under pytest-benchmark for timing curves, or standalone in smoke
mode (used by CI) to check correctness and the speedup floors:

    PYTHONPATH=src python benchmarks/bench_pauli_algebra.py --smoke
"""

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _util import write_table
from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import (
    build_molecular_hamiltonian,
    synthetic_two_body_hamiltonian,
)
from repro.chem.mappings import (
    _map_fermion_operator_per_term,
    map_fermion_operator,
)
from repro.chem.molecule import h2o, lih
from repro.chem.reference import hartree_fock_bitstring
from repro.chem.scf import run_rhf
from repro.chem.tapering import taper_hamiltonian
from repro.ir.pauli import PauliSum

# Acceptance floors (12-qubit downfolded H2O / full-space H2O).
MIN_PRODUCT_SPEEDUP = 10.0  # full 4747-term sum x sum; measured ~15x
MIN_QWC_SPEEDUP = 10.0      # full 4747-term grouping; measured ~25x
MIN_JW_SPEEDUP = 5.0        # full-space H2O mapping; measured ~20x
MIN_TAPERED_QUBITS = 3      # LiH and H2O both lose 4
TAPER_ENERGY_TOL = 1e-8

SWEEP_SPATIAL_ORBITALS = (4, 6, 8, 10, 14)  # -> 8/12/16/20/28 qubits


def build_h2o_effective_hamiltonian() -> PauliSum:
    """The Fig. 5 system: STO-3G H2O, O 1s downfolded out, 12 qubits."""
    from repro.chem.downfolding import hermitian_downfold

    scf = run_rhf(h2o())
    mh = build_molecular_hamiltonian(scf)
    downfolded = hermitian_downfold(
        mh, scf.mo_energies, core_orbitals=[0],
        active_orbitals=[1, 2, 3, 4, 5, 6],
    )
    return downfolded.effective_hamiltonian.chop(1e-8)


def _top_slice(h: PauliSum, k: int) -> PauliSum:
    """The k largest-|coeff| terms of ``h`` as a new PauliSum."""
    terms = sorted(h, key=lambda t: -abs(t[0]))[:k]
    return PauliSum(h.num_qubits, {(p.x, p.z): c for c, p in terms})


def _max_term_diff(a: PauliSum, b: PauliSum) -> float:
    keys = set(a.terms) | set(b.terms)
    return max(abs(a.terms.get(k, 0.0) - b.terms.get(k, 0.0)) for k in keys)


# -- pytest-benchmark entry points ------------------------------------------


def _heff_from_fixture(h2o_hamiltonian):
    from repro.chem.downfolding import hermitian_downfold

    scf, mh = h2o_hamiltonian
    downfolded = hermitian_downfold(
        mh, scf.mo_energies, core_orbitals=[0],
        active_orbitals=[1, 2, 3, 4, 5, 6],
    )
    return downfolded.effective_hamiltonian.chop(1e-8)


def test_product_per_term_h2o_slice(benchmark, h2o_hamiltonian):
    sl = _top_slice(_heff_from_fixture(h2o_hamiltonian), 1200)
    result = benchmark(sl._dot_per_term, sl)
    assert result.num_terms > 0


def test_product_engine_h2o_slice(benchmark, h2o_hamiltonian):
    sl = _top_slice(_heff_from_fixture(h2o_hamiltonian), 1200)
    symp = sl.to_symplectic()  # pack once, outside the timer
    result = benchmark(symp.mul, symp)
    reference = sl._dot_per_term(sl)
    engine = PauliSum(sl.num_qubits, result.to_terms_dict())
    assert _max_term_diff(reference, engine) < 1e-9


def test_product_engine_h2o_full(benchmark, h2o_hamiltonian):
    heff = _heff_from_fixture(h2o_hamiltonian)
    symp = heff.to_symplectic()
    result = benchmark(symp.mul, symp)
    assert result.num_terms > heff.num_terms


def test_commutator_per_term_h2o(benchmark, h2o_hamiltonian):
    heff = _heff_from_fixture(h2o_hamiltonian)
    probe = _top_slice(heff, 64)
    result = benchmark(heff._commutator_per_term, probe)
    assert result.num_qubits == heff.num_qubits


def test_commutator_engine_h2o(benchmark, h2o_hamiltonian):
    heff = _heff_from_fixture(h2o_hamiltonian)
    probe = _top_slice(heff, 64)
    sh, sp = heff.to_symplectic(), probe.to_symplectic()
    result = benchmark(sh.commutator, sp)
    reference = heff._commutator_per_term(probe)
    engine = PauliSum(heff.num_qubits, result.to_terms_dict())
    assert _max_term_diff(reference, engine) < 1e-9


def test_qwc_per_term_h2o(benchmark, h2o_hamiltonian):
    heff = _heff_from_fixture(h2o_hamiltonian)
    groups = benchmark(heff._group_qwc_per_term)
    assert sum(len(g) for g in groups) == heff.num_terms


def test_qwc_engine_h2o(benchmark, h2o_hamiltonian):
    heff = _heff_from_fixture(h2o_hamiltonian)
    groups = benchmark(heff._group_qwc_engine)
    assert len(groups) == len(heff._group_qwc_per_term())


def test_jw_per_term_h2o(benchmark, h2o_hamiltonian):
    _, mh = h2o_hamiltonian
    fop = mh.to_fermion_operator()
    result = benchmark(_map_fermion_operator_per_term, fop, 2 * mh.num_orbitals)
    assert result.num_terms > 0


def test_jw_engine_h2o(benchmark, h2o_hamiltonian):
    _, mh = h2o_hamiltonian
    fop = mh.to_fermion_operator()
    n = 2 * mh.num_orbitals
    result = benchmark(map_fermion_operator, fop, n)
    reference = _map_fermion_operator_per_term(fop, n)
    assert _max_term_diff(reference, result) < 1e-10


def test_taper_h2o_full_space(benchmark, h2o_hamiltonian):
    _, mh = h2o_hamiltonian
    h = mh.to_qubit("jordan-wigner")
    hf = hartree_fock_bitstring(h.num_qubits, mh.num_electrons)
    result = benchmark(taper_hamiltonian, h, reference_index=hf)
    assert result.qubits_removed >= MIN_TAPERED_QUBITS


# -- smoke mode (CI) ---------------------------------------------------------


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _taper_case(name, molecule, failures):
    """Taper one molecule's full-space Hamiltonian and check the ground
    energy against the untapered sector-restricted reference."""
    scf = run_rhf(molecule)
    mh = build_molecular_hamiltonian(scf)
    h = mh.to_qubit("jordan-wigner")
    hf = hartree_fock_bitstring(h.num_qubits, mh.num_electrons)
    t_taper = _best_of(lambda: taper_hamiltonian(h, reference_index=hf), 3)
    tapering = taper_hamiltonian(h, reference_index=hf)
    e_full = exact_ground_energy(h, num_particles=mh.num_electrons, sz=0)
    e_tapered = exact_ground_energy(tapering.hamiltonian)
    err = abs(e_full - e_tapered)
    if tapering.qubits_removed < MIN_TAPERED_QUBITS:
        failures.append(
            f"{name}: only {tapering.qubits_removed} qubits tapered "
            f"< {MIN_TAPERED_QUBITS}"
        )
    if err > TAPER_ENERGY_TOL:
        failures.append(
            f"{name}: tapered ground energy off by {err:.2e} "
            f"> {TAPER_ENERGY_TOL}"
        )
    return (
        name,
        h.num_qubits,
        tapering.tapered_num_qubits,
        tapering.qubits_removed,
        f"{t_taper:.4f}",
        f"{err:.2e}",
    )


def run_smoke() -> int:
    failures = []

    print("building 12-qubit downfolded H2O Hamiltonian ...")
    heff = build_h2o_effective_hamiltonian()
    symp = heff.to_symplectic()

    # Sum x sum product: full 4747^2 pairs, per-term baseline run once.
    t0 = time.perf_counter()
    reference = heff._dot_per_term(heff)
    t_prod_pt = time.perf_counter() - t0
    t_prod_en = _best_of(lambda: symp.mul(symp), 3)
    prod_speedup = t_prod_pt / t_prod_en
    engine_prod = PauliSum(heff.num_qubits, symp.mul(symp).to_terms_dict())
    # The two paths accumulate in different orders; agreement is only
    # meaningful to the conditioning of the sums (coeffs up to ~80).
    prod_err = _max_term_diff(reference, engine_prod)
    if prod_err > 1e-8:
        failures.append(f"product mismatch: {prod_err:.3e} > 1e-8")
    if prod_speedup < MIN_PRODUCT_SPEEDUP:
        failures.append(
            f"product speedup {prod_speedup:.1f}x < {MIN_PRODUCT_SPEEDUP}x"
        )

    # Commutator with a 64-term probe (the ADAPT gradient shape).
    probe = _top_slice(heff, 64)
    sprobe = probe.to_symplectic()
    t_comm_pt = _best_of(lambda: heff._commutator_per_term(probe), 1)
    t_comm_en = _best_of(lambda: symp.commutator(sprobe), 3)

    # QWC grouping of the full Hamiltonian.
    t_qwc_pt = _best_of(heff._group_qwc_per_term, 1)
    t_qwc_en = _best_of(heff._group_qwc_engine, 3)
    qwc_speedup = t_qwc_pt / t_qwc_en
    n_groups = len(heff._group_qwc_engine())
    if len(heff._group_qwc_per_term()) != n_groups:
        failures.append("QWC engine/per-term group counts differ")
    if qwc_speedup < MIN_QWC_SPEEDUP:
        failures.append(
            f"QWC speedup {qwc_speedup:.1f}x < {MIN_QWC_SPEEDUP}x"
        )

    # JW mapping of the full-space (14-mode) H2O fermionic Hamiltonian.
    scf = run_rhf(h2o())
    mh = build_molecular_hamiltonian(scf)
    fop = mh.to_fermion_operator()
    n_modes = 2 * mh.num_orbitals
    t_jw_pt = _best_of(
        lambda: _map_fermion_operator_per_term(fop, n_modes), 2
    )
    t_jw_en = _best_of(lambda: map_fermion_operator(fop, n_modes), 3)
    jw_speedup = t_jw_pt / t_jw_en
    jw_err = _max_term_diff(
        _map_fermion_operator_per_term(fop, n_modes),
        map_fermion_operator(fop, n_modes),
    )
    if jw_err > 1e-10:
        failures.append(f"JW mismatch: {jw_err:.3e} > 1e-10")
    if jw_speedup < MIN_JW_SPEEDUP:
        failures.append(f"JW speedup {jw_speedup:.1f}x < {MIN_JW_SPEEDUP}x")

    table = write_table(
        "pauli_algebra",
        ["operation", "workload", "per_term_s", "engine_s", "speedup"],
        [
            (
                "sum x sum product",
                f"{heff.num_terms}^2 pairs (12q H2O)",
                f"{t_prod_pt:.3f}",
                f"{t_prod_en:.3f}",
                f"{prod_speedup:.1f}x",
            ),
            (
                "commutator",
                f"{heff.num_terms} x 64 (12q H2O)",
                f"{t_comm_pt:.3f}",
                f"{t_comm_en:.3f}",
                f"{t_comm_pt / t_comm_en:.1f}x",
            ),
            (
                "QWC grouping",
                f"{heff.num_terms} terms -> {n_groups} groups",
                f"{t_qwc_pt:.3f}",
                f"{t_qwc_en:.3f}",
                f"{qwc_speedup:.1f}x",
            ),
            (
                "JW mapping",
                f"{len(fop.terms)} fermionic terms (14 modes)",
                f"{t_jw_pt:.3f}",
                f"{t_jw_en:.3f}",
                f"{jw_speedup:.1f}x",
            ),
        ],
        caption="Symplectic engine vs per-term loops "
        "(12-qubit downfolded H2O and full-space H2O)",
    )
    print("\n" + table)

    # Z2 tapering on full-space molecular Hamiltonians.
    taper_rows = [
        _taper_case("LiH", lih(), failures),
        _taper_case("H2O", h2o(), failures),
    ]
    table = write_table(
        "pauli_tapering",
        ["molecule", "qubits", "tapered", "removed", "taper_s", "dE_vs_full"],
        taper_rows,
        caption="Z2 qubit tapering: sector from the HF reference, ground "
        "energy vs the untapered particle-sector eigensolve",
    )
    print("\n" + table)

    # Size sweep, engine paths only (per-term baselines are infeasible
    # beyond ~16 qubits; the head-to-head numbers above cover them).
    sweep_rows = []
    for nsp in SWEEP_SPATIAL_ORBITALS:
        smh = synthetic_two_body_hamiltonian(nsp)
        sfop = smh.to_fermion_operator()
        n = 2 * nsp
        t0 = time.perf_counter()
        sh = map_fermion_operator(sfop, n)
        t_jw = time.perf_counter() - t0
        t0 = time.perf_counter()
        groups = sh.group_qubitwise_commuting()
        t_qwc = time.perf_counter() - t0
        shf = hartree_fock_bitstring(n, smh.num_electrons)
        t0 = time.perf_counter()
        tr = taper_hamiltonian(sh, reference_index=shf)
        t_tap = time.perf_counter() - t0
        sweep_rows.append(
            (
                n,
                sh.num_terms,
                len(groups),
                tr.qubits_removed,
                f"{t_jw:.3f}",
                f"{t_qwc:.3f}",
                f"{t_tap:.3f}",
            )
        )
    table = write_table(
        "pauli_algebra_sweep",
        ["qubits", "terms", "groups", "tapered", "jw_s", "qwc_s", "taper_s"],
        sweep_rows,
        caption="Engine scaling on synthetic two-body Hamiltonians "
        "(dense integrals carry exactly the two spin-parity symmetries)",
    )
    print("\n" + table)

    for f in failures:
        print(f"FAIL: {f}")
    if not failures:
        print(
            f"OK: product {prod_speedup:.1f}x, QWC {qwc_speedup:.1f}x, "
            f"JW {jw_speedup:.1f}x; LiH/H2O lose "
            f"{taper_rows[0][3]}/{taper_rows[1][3]} qubits at "
            f"<= {TAPER_ENERGY_TOL} energy error"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(run_smoke())
