"""Measurement-strategy ablation: per-term vs qubit-wise groups vs
general commuting groups with Clifford diagonalization.

The paper's caching scheme (§4.1) pays one basis rotation per
qubit-wise group.  General commuting groups need entangling Clifford
rotations but there are far fewer of them — the classic measurement-
reduction trade.  This benchmark counts bases and basis-change gates
for each strategy on the H2O active-space Hamiltonian, and verifies
all strategies produce the identical energy on the HF state.
"""

import numpy as np
import pytest

from _util import write_table
from repro.chem.reference import hartree_fock_state
from repro.ir.clifford import measure_general_group
from repro.sim.expectation import basis_change_circuit, expectation_direct
from repro.sim.statevector import StatevectorSimulator
from repro.utils.bitops import count_set_bits


def test_measurement_strategy_ablation(benchmark, h2o_hamiltonian):
    _, mh = h2o_hamiltonian
    hq = mh.active_space([0], [1, 2, 3, 4, 5, 6]).to_qubit()
    n = hq.num_qubits
    state = hartree_fock_state(12, 8)
    exact = expectation_direct(state, hq)

    def census():
        per_term = sum(1 for _, p in hq if not p.is_identity)
        qwc = hq.group_qubitwise_commuting()
        gen = hq.group_general_commuting()
        return per_term, qwc, gen

    per_term, qwc, gen = benchmark.pedantic(census, rounds=1, iterations=1)

    # qubit-wise: single-qubit basis gates per group
    qwc_gates = 0
    qwc_value = 0.0
    sim = StatevectorSimulator(n)
    idx = np.arange(1 << n, dtype=np.int64)
    for group in qwc:
        strings = [p for _, p in group]
        if all(p.is_identity for p in strings):
            qwc_value += sum(c.real for c, _ in group)
            continue
        circ = basis_change_circuit(strings, n)
        qwc_gates += len(circ)
        sim.set_state(state, copy=True)
        sim.apply_circuit(circ)
        probs = sim.probabilities()
        for coeff, pstr in group:
            if pstr.is_identity:
                qwc_value += coeff.real
            else:
                mask = pstr.x | pstr.z
                signs = 1.0 - 2.0 * (count_set_bits(idx & mask) & 1)
                qwc_value += coeff.real * float(np.dot(probs, signs))

    # general groups: Clifford rotations
    gen_gates = 0
    gen_value = 0.0
    for group in gen:
        val, gates = measure_general_group(state, group, n)
        gen_value += val
        gen_gates += gates

    rows = [
        ("per-term", per_term, "-", "-"),
        ("qubit-wise (paper §4.1)", len(qwc), qwc_gates, f"{qwc_value:+.8f}"),
        ("general commuting", len(gen), gen_gates, f"{gen_value:+.8f}"),
    ]
    table = write_table(
        "measurement_strategies",
        ["strategy", "bases", "rotation_gates", "energy"],
        rows,
        caption=f"Measurement grouping ablation, 12-qubit H2O active "
        f"space ({hq.num_terms} terms; exact HF energy {exact:+.8f})",
    )
    print("\n" + table)
    assert np.isclose(qwc_value, exact, atol=1e-8)
    assert np.isclose(gen_value, exact, atol=1e-8)
    # strictly decreasing number of measured bases
    assert len(gen) < len(qwc) < per_term
