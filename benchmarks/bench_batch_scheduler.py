"""Batch circuit execution across ranks (paper §6.2 future work,
implemented here).

A VQE energy evaluation decomposes into independent measurement-group
circuits; a parameter sweep decomposes into independent VQE instances.
Both are embarrassingly batchable.  This benchmark schedules a
realistic mixed bag of such jobs over rank pools of growing size and
records makespan, speedup and utilization under the Perlmutter model.
"""

import numpy as np

from _util import write_table
from repro.chem.uccsd import count_uccsd_gates
from repro.hpc.scheduler import BatchScheduler, Job


def _vqe_sweep_jobs():
    """A bond-scan-style batch: 24 UCCSD instances at 10-14 qubits."""
    jobs = []
    rng = np.random.default_rng(11)
    for k in range(24):
        n = int(rng.choice([10, 12, 14]))
        gates = count_uccsd_gates(n)["total_gates"]
        jobs.append(Job(f"vqe_{k}_n{n}", n, gates))
    return jobs


def test_batch_scheduling_speedup(benchmark):
    jobs = _vqe_sweep_jobs()

    def sweep():
        return {R: BatchScheduler(R).schedule(jobs) for R in (1, 2, 4, 8, 16)}

    schedules = benchmark(sweep)
    rows = [
        (
            R,
            f"{s.makespan:.3f}",
            f"{s.speedup:.2f}x",
            f"{100 * s.utilization:.1f}%",
        )
        for R, s in schedules.items()
    ]
    table = write_table(
        "batch_scheduler",
        ["ranks", "makespan_s", "speedup", "utilization"],
        rows,
        caption="Batched VQE-instance execution (24 jobs, LPT schedule, "
        "Perlmutter model)",
    )
    print("\n" + table)
    speedups = [s.speedup for s in schedules.values()]
    assert all(b >= a - 1e-12 for a, b in zip(speedups, speedups[1:]))
    # with 8 ranks and 24 jobs, expect strong (>5x) speedup
    assert schedules[8].speedup > 5.0
    # speedup saturates once ranks outnumber the critical job
    assert schedules[16].speedup <= 24.0


def test_scheduler_scales_to_many_jobs(benchmark):
    rng = np.random.default_rng(5)
    jobs = [
        Job(f"group_{k}", 16, int(rng.integers(50, 5000))) for k in range(2000)
    ]
    sched = benchmark(lambda: BatchScheduler(64).schedule(jobs))
    assert sched.utilization > 0.95
    assert sum(len(js) for js in sched.assignments.values()) == 2000
