"""Design-choice ablations DESIGN.md calls out.

* Downfolding commutator order (0/1/2): how much accuracy each order
  of Eq. 2 buys on the LiH frozen-core problem (H2O-scale ablation is
  covered by the Fig. 5 bench).
* Qubit-mapping comparison: JW vs parity vs Bravyi–Kitaev term counts
  and Pauli weights for the same molecular Hamiltonian — the
  locality/term-count trade the mapping literature is about.
* Fusion max-block-size (1 vs 2 qubits): the paper's §4.3 design point
  that 2-qubit fusion is the sweet spot.
"""

import numpy as np
import pytest

from _util import write_table
from repro.chem.downfolding import hermitian_downfold
from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import lih
from repro.chem.scf import run_rhf
from repro.chem.uccsd import build_uccsd_circuit
from repro.sim.fusion import fuse_circuit


@pytest.fixture(scope="module")
def lih_problem():
    scf = run_rhf(lih())
    return scf, build_molecular_hamiltonian(scf)


def test_downfolding_order_ablation(benchmark, lih_problem):
    scf, mh = lih_problem
    core, active = [0], [1, 2, 3, 4, 5]
    e_full = exact_ground_energy(mh.to_qubit(), num_particles=4, sz=0)

    def sweep():
        out = {}
        for order in (0, 1, 2):
            res = hermitian_downfold(
                mh, scf.mo_energies, core, active, order=order
            )
            e = exact_ground_energy(
                res.effective_hamiltonian, num_particles=2, sz=0
            )
            out[order] = (e, res.effective_hamiltonian.num_terms)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (order, f"{e:+.8f}", f"{abs(e - e_full) * 1000:.4f}", terms)
        for order, (e, terms) in results.items()
    ]
    write_table(
        "downfolding_order",
        ["order", "E_eff_ground", "err_vs_full_mHa", "terms"],
        rows,
        caption=f"Downfolding order ablation, LiH frozen core "
        f"(full FCI {e_full:+.8f} Ha)",
    )
    errs = {k: abs(e - e_full) for k, (e, _) in results.items()}
    # each commutator order improves on the bare projection
    assert errs[2] < errs[0]
    assert errs[2] <= errs[1] + 1e-9


def test_mapping_comparison(benchmark, h2o_hamiltonian):
    """JW vs parity vs BK on the 12-qubit H2O active space."""
    _, mh = h2o_hamiltonian
    act = mh.active_space([0], [1, 2, 3, 4, 5, 6])

    def build_all():
        return {
            name: act.to_qubit(name)
            for name in ("jordan-wigner", "parity", "bravyi-kitaev")
        }

    mapped = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = []
    spectra = {}
    for name, hq in mapped.items():
        weights = [p.weight for _, p in hq]
        rows.append(
            (
                name,
                hq.num_terms,
                f"{np.mean(weights):.2f}",
                int(np.max(weights)),
            )
        )
        spectra[name] = exact_ground_energy(hq)
    write_table(
        "mapping_comparison",
        ["mapping", "terms", "mean_weight", "max_weight"],
        rows,
        caption="Qubit-mapping ablation on the 12-qubit H2O active space",
    )
    # all mappings are spectrally identical
    vals = list(spectra.values())
    assert np.allclose(vals, vals[0], atol=1e-7)
    # BK trades JW's O(n) strings for O(log n): lower max weight than
    # parity which is maximally nonlocal in the other direction
    jw_max = dict((r[0], r[3]) for r in rows)["jordan-wigner"]
    bk_max = dict((r[0], r[3]) for r in rows)["bravyi-kitaev"]
    assert bk_max <= jw_max + 2  # same ballpark at 12 qubits


def test_fusion_block_size_ablation(benchmark):
    """§4.3: 2-qubit fusion beats 1-qubit-only fusion."""
    ansatz = build_uccsd_circuit(8, 4)
    rng = np.random.default_rng(3)
    bound = ansatz.circuit.bind(
        list(rng.normal(scale=0.1, size=ansatz.num_parameters))
    )

    def sweep():
        return {k: fuse_circuit(bound, max_qubits=k) for k in (1, 2)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (k, res.original_gates, res.fused_gates, f"{100 * res.reduction:.1f}%")
        for k, res in results.items()
    ]
    write_table(
        "fusion_block_size",
        ["max_block_qubits", "original", "fused", "reduction"],
        rows,
        caption="Fusion block-size ablation (8-qubit UCCSD)",
    )
    assert results[2].fused_gates < results[1].fused_gates


def test_determinant_vs_qubit_fci(benchmark, h2o_hamiltonian):
    """Classical-reference ablation: determinant-basis FCI
    (Slater-Condon + Davidson, 225 determinants) vs qubit-space sparse
    diagonalization (4,096 amplitudes) on frozen-core H2O — identical
    energies, very different costs."""
    import time

    from repro.chem.ci import run_ci
    from repro.chem.fci import exact_ground_energy as qubit_fci

    _, mh = h2o_hamiltonian
    act = mh.active_space([0], [1, 2, 3, 4, 5, 6])

    res = benchmark.pedantic(lambda: run_ci(act, "fci"), rounds=1, iterations=1)

    t0 = time.perf_counter()
    e_qubit = qubit_fci(act.to_qubit(), num_particles=8, sz=0)
    t_qubit = time.perf_counter() - t0
    write_table(
        "determinant_vs_qubit_fci",
        ["method", "dimension", "energy"],
        [
            ("determinant FCI (Davidson)", res.dimension, f"{res.energy:+.8f}"),
            ("qubit-space sparse eigsh", 1 << 12, f"{e_qubit:+.8f}"),
        ],
        caption="Classical FCI reference: determinant basis vs qubit space "
        f"(qubit path took {t_qubit:.2f}s incl. JW build)",
    )
    assert np.isclose(res.energy, e_qubit, atol=1e-7)
    assert res.dimension == 225
