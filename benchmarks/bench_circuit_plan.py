"""Compiled circuit plans: per-gate bind+run vs plan vs plan+prefix.

The workload is the Fig. 5 system (12-qubit downfolded H2O) driven by
a hardware-efficient ansatz — the parameter-shift-eligible circuit the
VQE optimizer actually differentiates.  Three execution strategies are
compared on the two hot operations of one optimizer iteration:

* **per-gate** — ``bind()`` a full circuit copy, walk ``Gate`` objects
  through the ``apply_gate`` name dispatch, one expectation per shifted
  evaluation (the pre-plan path);
* **plan** — ``compile_circuit``: prepacked kernel ops, static-segment
  fusion and diagonal folding paid once, and the gradient read off one
  forward pass + one ``H|psi>`` + one backward sweep
  (``repro.opt.parameter_shift``'s reverse-mode default);
* **plan+prefix** — shifted evaluations with cross-evaluation
  prefix-state reuse (``ExecutionPlan``'s parked intermediate states).

Run under pytest-benchmark for timing curves, or standalone in smoke
mode (used by CI) to check the >=5x gradient and >=2x VQE-iteration
floors at bit-identical energies:

    PYTHONPATH=src python benchmarks/bench_circuit_plan.py --smoke
"""

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from _util import write_table
from repro.core.estimator import DirectEstimator
from repro.ir.library import hardware_efficient_ansatz
from repro.opt.parameter_shift import (
    _parameter_occurrences,
    _prefix_parameter_shift_gradient,
    parameter_shift_gradient,
)
from repro.sim.plan import ExecutionPlan, compile_circuit
from repro.sim.statevector import StatevectorSimulator

MIN_GRAD_SPEEDUP = 5.0   # acceptance floor; reverse-mode measures ~50x
MIN_ITER_SPEEDUP = 2.0   # acceptance floor for energy+gradient together
LAYERS = 2


def _workload(h2o_hamiltonian):
    from repro.chem.downfolding import hermitian_downfold

    scf, mh = h2o_hamiltonian
    heff = hermitian_downfold(
        mh, scf.mo_energies, core_orbitals=[0],
        active_orbitals=[1, 2, 3, 4, 5, 6],
    ).effective_hamiltonian.chop(1e-8)
    circ = hardware_efficient_ansatz(heff.num_qubits, layers=LAYERS)
    params = np.random.default_rng(5).uniform(-1, 1, circ.num_parameters)
    return heff, circ, params


def _naive_gradient(circ, heff, params):
    return parameter_shift_gradient(
        circ, heff, params, estimate=DirectEstimator().estimate
    )


# -- pytest-benchmark entry points ------------------------------------------


def test_pergate_gradient_h2o(benchmark, h2o_hamiltonian):
    heff, circ, params = _workload(h2o_hamiltonian)
    grad = benchmark(_naive_gradient, circ, heff, params)
    assert np.all(np.isfinite(grad))


def test_plan_gradient_h2o(benchmark, h2o_hamiltonian):
    heff, circ, params = _workload(h2o_hamiltonian)
    compile_circuit(circ)  # compile outside the timer
    grad = benchmark(parameter_shift_gradient, circ, heff, params)
    assert np.max(np.abs(grad - _naive_gradient(circ, heff, params))) < 1e-10


def test_plan_prefix_gradient_h2o(benchmark, h2o_hamiltonian):
    heff, circ, params = _workload(h2o_hamiltonian)
    occ = _parameter_occurrences(circ)
    compile_circuit(circ)
    grad = benchmark(
        _prefix_parameter_shift_gradient, circ, heff, params, occ
    )
    assert np.max(np.abs(grad - _naive_gradient(circ, heff, params))) < 1e-10


def test_pergate_energy_h2o(benchmark, h2o_hamiltonian):
    heff, circ, params = _workload(h2o_hamiltonian)
    est = DirectEstimator()
    benchmark(lambda: est.estimate(circ.bind(list(params)), heff))


def test_plan_energy_h2o(benchmark, h2o_hamiltonian):
    heff, circ, params = _workload(h2o_hamiltonian)
    est = DirectEstimator()
    plan = compile_circuit(circ)
    e_plan = benchmark(lambda: est.estimate_plan(plan, params, heff))
    assert abs(e_plan - est.estimate(circ.bind(list(params)), heff)) < 1e-10


def test_plan_prefix_shift_pattern_h2o(benchmark, h2o_hamiltonian):
    """The parameter-shift access pattern through ``plan.execute``:
    every second evaluation resumes from a parked prefix (the counters
    this moves are the BENCH-file fingerprint of prefix reuse)."""
    heff, circ, params = _workload(h2o_hamiltonian)
    plan = ExecutionPlan(circ)
    state = np.empty(plan.dim, dtype=np.complex128)

    def shift_sweep():
        plan.execute(state, params)
        for k in range(0, plan.num_parameters, 8):
            shifted = params.copy()
            shifted[k] += np.pi / 2
            plan.execute(state, shifted)
            plan.execute(state, params)

    benchmark(shift_sweep)
    assert plan.prefix_resumes > 0
    assert plan.prefix_ops_skipped > 0


# -- smoke mode (CI) ---------------------------------------------------------


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_smoke(repeats: int = 3) -> int:
    from bench_expectation_engine import build_h2o_effective_hamiltonian

    print("building 12-qubit downfolded H2O Hamiltonian ...")
    heff = build_h2o_effective_hamiltonian()
    circ = hardware_efficient_ansatz(heff.num_qubits, layers=LAYERS)
    params = np.random.default_rng(5).uniform(-1, 1, circ.num_parameters)
    occ = _parameter_occurrences(circ)
    est = DirectEstimator()

    t0 = time.perf_counter()
    plan = compile_circuit(circ)
    t_compile = time.perf_counter() - t0

    # correctness first: every strategy must agree to 1e-10
    g_naive = _naive_gradient(circ, heff, params)
    g_plan = parameter_shift_gradient(circ, heff, params)
    g_prefix = _prefix_parameter_shift_gradient(circ, heff, params, occ)
    err_plan = float(np.max(np.abs(g_plan - g_naive)))
    err_prefix = float(np.max(np.abs(g_prefix - g_naive)))
    e_naive = est.estimate(circ.bind(list(params)), heff)
    e_plan = est.estimate_plan(plan, params, heff)
    err_energy = abs(e_plan - e_naive)

    t_g_naive = _best_of(lambda: _naive_gradient(circ, heff, params), repeats)
    t_g_plan = _best_of(
        lambda: parameter_shift_gradient(circ, heff, params), repeats
    )
    t_g_prefix = _best_of(
        lambda: _prefix_parameter_shift_gradient(circ, heff, params, occ),
        repeats,
    )
    t_e_naive = _best_of(
        lambda: est.estimate(circ.bind(list(params)), heff), repeats
    )
    t_e_plan = _best_of(
        lambda: est.estimate_plan(plan, params, heff), repeats
    )
    grad_speedup = t_g_naive / t_g_plan
    iter_speedup = (t_g_naive + t_e_naive) / (t_g_plan + t_e_plan)

    # prefix-reuse fingerprint: the shift access pattern on plan.execute
    pplan = ExecutionPlan(circ)
    state = np.empty(pplan.dim, dtype=np.complex128)
    pplan.execute(state, params)
    for k in range(pplan.num_parameters):
        shifted = params.copy()
        shifted[k] += np.pi / 2
        pplan.execute(state, shifted)
        pplan.execute(state, params)

    table = write_table(
        "circuit_plan",
        ["metric", "value"],
        [
            ("qubits", heff.num_qubits),
            ("source_gates", len(circ)),
            ("parameters", circ.num_parameters),
            ("plan_ops", plan.num_ops),
            ("fused_gates_removed", plan.fused_gates_removed),
            ("diag_gates_folded", plan.diag_gates_folded),
            ("compile_s", f"{t_compile:.4f}"),
            ("pergate_gradient_s", f"{t_g_naive:.4f}"),
            ("plan_prefix_gradient_s", f"{t_g_prefix:.4f}"),
            ("plan_gradient_s", f"{t_g_plan:.5f}"),
            ("gradient_speedup", f"{grad_speedup:.1f}x"),
            ("pergate_energy_s", f"{t_e_naive:.5f}"),
            ("plan_energy_s", f"{t_e_plan:.5f}"),
            ("vqe_iteration_speedup", f"{iter_speedup:.1f}x"),
            ("gradient_max_abs_err", f"{max(err_plan, err_prefix):.2e}"),
            ("energy_abs_err", f"{err_energy:.2e}"),
            ("prefix_resumes", pplan.prefix_resumes),
            ("prefix_ops_skipped", pplan.prefix_ops_skipped),
        ],
        caption="Compiled circuit plans vs per-gate bind+run "
        "(12-qubit downfolded H2O, hardware-efficient ansatz)",
    )
    print("\n" + table)

    failures = []
    if err_plan > 1e-10 or err_prefix > 1e-10:
        failures.append(
            f"gradient mismatch: plan {err_plan:.3e} / prefix "
            f"{err_prefix:.3e} > 1e-10"
        )
    if err_energy > 1e-10:
        failures.append(f"energy mismatch: {err_energy:.3e} > 1e-10")
    if grad_speedup < MIN_GRAD_SPEEDUP:
        failures.append(
            f"gradient speedup {grad_speedup:.1f}x < {MIN_GRAD_SPEEDUP}x"
        )
    if iter_speedup < MIN_ITER_SPEEDUP:
        failures.append(
            f"iteration speedup {iter_speedup:.1f}x < {MIN_ITER_SPEEDUP}x"
        )
    if pplan.prefix_resumes == 0 or pplan.prefix_ops_skipped == 0:
        failures.append("prefix reuse never fired on the shift pattern")
    for f in failures:
        print(f"FAIL: {f}")
    if not failures:
        print(
            f"OK: gradient {grad_speedup:.1f}x, iteration "
            f"{iter_speedup:.1f}x, {pplan.prefix_ops_skipped} ops skipped "
            f"via prefix reuse, energies/gradients identical to 1e-10"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(run_smoke())
