"""The memory observatory: allocation ledger + capacity model.

The rest of ``repro.obs`` measures *time* — spans, counters, SLOs,
per-rank timelines.  This module measures *bytes*, the currency that
actually governs the paper's scaling story: a statevector job either
fits in the 2^n-amplitude memory wall or it does not, and at fleet
scale "will this job fit, and where?" dominates scheduling decisions.

Two halves:

* :class:`MemoryLedger` — a process-global allocation ledger every
  large buffer registers with (category, nbytes, owner span, rank):
  statevector amplitude buffers, distributed slices and exchange
  scratch, compiled-observable diagonals, execution-plan frozen data,
  parked prefix states, and the serve-layer problem cache.  The ledger
  maintains live bytes, per-category/per-rank peak watermarks, and
  per-span attribution; it folds into ``RunReport`` v4 and the
  per-rank memory view of :mod:`repro.obs.perf`.  Like the tracer and
  the event bus it follows the enable/no-op discipline: when
  observability is off the instrumentation helpers in ``repro.obs``
  hand out handle 0 and every ledger call short-circuits on it.
* :func:`estimate_statevector_job_bytes` — the predictive capacity
  model: 2^n amplitudes + workspace copies + compiled-observable
  passes + plan/prefix overheads, per backend.  ``repro.serve`` wraps
  it as ``estimate_job_memory(spec)`` to drive memory-aware admission
  and (time, bytes)-aware placement.

Like every ``repro.obs`` module this is a leaf: standard library only.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

__all__ = [
    "MemoryLedger",
    "estimate_statevector_job_bytes",
    "estimate_batched_group_bytes",
    "observable_bytes",
    "estimate_compiled_passes",
    "AMPLITUDE_BYTES",
    "LIVE_BYTES_GAUGE",
    "PEAK_BYTES_GAUGE",
    "RANK_MEMORY_GAUGE",
]

# One complex128 amplitude.
AMPLITUDE_BYTES = 16
# Gather tables are int64 indices.
_GATHER_BYTES = 8

# Gauge names the ledger mirrors into the metrics registry, so
# out-of-process pollers (metrics.jsonl, ``repro top``) see memory
# without access to the live ledger object.
LIVE_BYTES_GAUGE = "repro_memory_live_bytes"
PEAK_BYTES_GAUGE = "repro_memory_peak_bytes"
# Per-rank peak watermark, labelled {rank="k"} like the rank-time
# counters of repro.obs.perf.
RANK_MEMORY_GAUGE = "repro_rank_memory_peak_bytes"


class MemoryLedger:
    """Tracks every registered buffer: live bytes, peaks, attribution.

    ``alloc`` returns an integer handle (> 0); ``free``/``resize`` take
    it back.  Handle 0 is the no-op handle the disabled instrumentation
    path hands out — ``free(0)``/``resize(0, ...)`` return immediately,
    and unknown handles are tolerated (an object allocated before an
    ``obs.reset()`` may be garbage-collected after it).

    Invariants (property-tested in ``tests/test_memory.py``):

    * ``allocated_bytes_total - freed_bytes_total == live_bytes``
    * ``peak_bytes >= live_bytes`` at all times, per category and total
    * category live totals sum to the ledger live total
    """

    def __init__(self, gauge_hook: Optional[Callable[..., None]] = None):
        # gauge_hook(name, value, help=..., labels=...) — wired to
        # ``obs.gauge_set`` by ``repro.obs``; None keeps the ledger
        # registry-free for standalone unit tests.
        self.gauge_hook = gauge_hook
        self._lock = threading.Lock()
        self._next_handle = 1
        # handle -> (category, nbytes, rank, span)
        self._records: Dict[int, tuple] = {}
        self.live_bytes = 0
        self.peak_bytes = 0
        self.live_by_category: Dict[str, int] = {}
        self.peak_by_category: Dict[str, int] = {}
        self.live_by_rank: Dict[int, int] = {}
        self.peak_by_rank: Dict[int, int] = {}
        # cumulative bytes allocated while each span name was innermost
        self.span_bytes: Dict[str, int] = {}
        self.allocs_total = 0
        self.frees_total = 0
        self.allocated_bytes_total = 0
        self.freed_bytes_total = 0

    # -- mutation -------------------------------------------------------------

    def alloc(
        self,
        category: str,
        nbytes: int,
        rank: Optional[int] = None,
        span: str = "",
    ) -> int:
        """Register a buffer; returns its handle (always > 0)."""
        nbytes = max(0, int(nbytes))
        with self._lock:
            handle = self._next_handle
            self._next_handle += 1
            self._records[handle] = (category, nbytes, rank, span)
            self.allocs_total += 1
            self.allocated_bytes_total += nbytes
            if span:
                self.span_bytes[span] = self.span_bytes.get(span, 0) + nbytes
            self._apply(category, rank, nbytes)
        self._publish(category, rank)
        return handle

    def free(self, handle: int) -> int:
        """Unregister a buffer; returns the bytes released (0 for the
        no-op handle or a handle the ledger no longer knows)."""
        if not handle:
            return 0
        with self._lock:
            rec = self._records.pop(handle, None)
            if rec is None:
                return 0
            category, nbytes, rank, _ = rec
            self.frees_total += 1
            self.freed_bytes_total += nbytes
            self._apply(category, rank, -nbytes)
        self._publish(category, rank)
        return nbytes

    def resize(self, handle: int, nbytes: int) -> None:
        """Adjust a registered buffer to its new size (cache-style
        allocations that grow/shrink under one handle)."""
        if not handle:
            return
        nbytes = max(0, int(nbytes))
        with self._lock:
            rec = self._records.get(handle)
            if rec is None:
                return
            category, old, rank, span = rec
            delta = nbytes - old
            self._records[handle] = (category, nbytes, rank, span)
            if delta > 0:
                self.allocated_bytes_total += delta
                if span:
                    self.span_bytes[span] = self.span_bytes.get(span, 0) + delta
            else:
                self.freed_bytes_total -= delta
            self._apply(category, rank, delta)
        self._publish(category, rank)

    def _apply(self, category: str, rank: Optional[int], delta: int) -> None:
        self.live_bytes += delta
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)
        cat_live = self.live_by_category.get(category, 0) + delta
        self.live_by_category[category] = cat_live
        if cat_live > self.peak_by_category.get(category, 0):
            self.peak_by_category[category] = cat_live
        if rank is not None:
            rank_live = self.live_by_rank.get(rank, 0) + delta
            self.live_by_rank[rank] = rank_live
            if rank_live > self.peak_by_rank.get(rank, 0):
                self.peak_by_rank[rank] = rank_live

    def _publish(self, category: str, rank: Optional[int]) -> None:
        hook = self.gauge_hook
        if hook is None:
            return
        hook(
            LIVE_BYTES_GAUGE,
            float(self.live_bytes),
            help="Live bytes registered with the memory ledger",
        )
        hook(
            PEAK_BYTES_GAUGE,
            float(self.peak_bytes),
            help="Peak bytes registered with the memory ledger",
        )
        hook(
            LIVE_BYTES_GAUGE,
            float(self.live_by_category.get(category, 0)),
            help="Live bytes registered with the memory ledger",
            labels={"category": category},
        )
        hook(
            PEAK_BYTES_GAUGE,
            float(self.peak_by_category.get(category, 0)),
            help="Peak bytes registered with the memory ledger",
            labels={"category": category},
        )
        if rank is not None:
            hook(
                RANK_MEMORY_GAUGE,
                float(self.peak_by_rank.get(rank, 0)),
                help="Peak ledger bytes attributed to each rank",
                labels={"rank": str(rank)},
            )

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Rebase the watermarks: buffers that are still registered stay
        live (their owners outlive an ``obs.reset()``), peaks collapse
        to the current live level, and the cumulative counters restart
        so the ``allocated - freed == live`` invariant keeps holding."""
        with self._lock:
            self.live_bytes = 0
            self.live_by_category = {}
            self.live_by_rank = {}
            for category, nbytes, rank, _ in self._records.values():
                self.live_bytes += nbytes
                self.live_by_category[category] = (
                    self.live_by_category.get(category, 0) + nbytes
                )
                if rank is not None:
                    self.live_by_rank[rank] = (
                        self.live_by_rank.get(rank, 0) + nbytes
                    )
            self.peak_bytes = self.live_bytes
            self.peak_by_category = dict(self.live_by_category)
            self.peak_by_rank = dict(self.live_by_rank)
            self.span_bytes = {}
            self.allocs_total = len(self._records)
            self.frees_total = 0
            self.allocated_bytes_total = self.live_bytes
            self.freed_bytes_total = 0

    def __len__(self) -> int:
        return len(self._records)

    # -- views ----------------------------------------------------------------

    def top_spans(self, k: int = 10) -> Dict[str, int]:
        """The k spans that allocated the most cumulative bytes."""
        ranked = sorted(self.span_bytes.items(), key=lambda kv: -kv[1])
        return dict(ranked[: max(0, k)])

    def to_dict(self) -> Dict[str, Any]:
        """The ``RunReport.memory`` payload (plain JSON-able dict)."""
        with self._lock:
            return {
                "live_bytes": self.live_bytes,
                "peak_bytes": self.peak_bytes,
                "live_by_category": dict(sorted(self.live_by_category.items())),
                "peak_by_category": dict(sorted(self.peak_by_category.items())),
                "live_by_rank": {
                    str(k): v for k, v in sorted(self.live_by_rank.items())
                },
                "peak_by_rank": {
                    str(k): v for k, v in sorted(self.peak_by_rank.items())
                },
                "top_spans": self.top_spans(),
                "allocs_total": self.allocs_total,
                "frees_total": self.frees_total,
                "allocated_bytes_total": self.allocated_bytes_total,
                "freed_bytes_total": self.freed_bytes_total,
                "tracked_buffers": len(self._records),
            }


# -- the capacity model -------------------------------------------------------

# Measured distinct-x-mask pass counts of the compiled observable for
# the molecule families the campaign server accepts (STO-3G, no
# downfolding — the ``ProblemCache`` build path).  Passes drive the
# dominant allocation (passes * 2^n * 24 bytes), so known families use
# the measured value and only unknown widths fall back to the cubic
# fit below.
MEASURED_PASSES = {4: 2, 8: 27, 12: 84, 14: 162}


def estimate_compiled_passes(num_qubits: int) -> int:
    """Distinct x-masks of a JW-mapped chemistry Hamiltonian at width
    ``num_qubits`` — measured where known, ~n^3/17 (the one- and
    two-body excitation mask count) otherwise."""
    known = MEASURED_PASSES.get(num_qubits)
    if known is not None:
        return known
    return max(1, round(num_qubits**3 / 17))


def observable_bytes(num_qubits: int, passes: int) -> int:
    """Bytes held by a compiled observable: one complex128 diagonal per
    pass plus one int64 gather table per non-zero x-mask."""
    dim = 1 << num_qubits
    gathers = max(0, passes - 1)  # the x=0 pass is gather-free
    return passes * AMPLITUDE_BYTES * dim + gathers * _GATHER_BYTES * dim


def estimate_statevector_job_bytes(
    num_qubits: int,
    kind: str = "vqe",
    backend: str = "statevector",
    batch_size: int = 1,
    compiled_passes: Optional[int] = None,
    generator_terms: int = 0,
    prefix_states: int = 2,
    workspace_states: int = 3,
) -> Dict[str, int]:
    """Predict the peak ledger bytes of one statevector campaign.

    Components (all scale with dim = 2^n):

    * ``amplitudes`` — the simulator's state buffer(s);
    * ``workspace`` — transient full-vector copies the evaluation hot
      path holds at once (compiled expectation's gather + product
      temporaries, the reference state, the parameter-shift scratch);
    * ``observable`` — compiled-observable diagonals + gather tables
      for the Hamiltonian (``compiled_passes`` when the caller already
      compiled, else the per-width estimate), plus one single-pass
      compiled observable per ansatz generator / pool operator
      (``generator_terms``; each measures 16·dim diagonal + 8·dim
      gather — exactly what UCCSD excitation operators compile to);
    * ``prefix_cache`` — parked prefix states of the execution plan
      (ADAPT re-parks per iteration, plain VQE keeps the tail park).

    Returns the per-component breakdown plus ``total``.  Validated
    against measured ledger peaks at 8-14 qubits in
    ``tests/test_memory.py`` (±10%).
    """
    if num_qubits < 1:
        raise ValueError("num_qubits must be >= 1")
    if backend != "statevector":
        raise ValueError(
            f"no capacity model for backend {backend!r} yet; 'statevector' only"
        )
    dim = 1 << num_qubits
    passes = (
        compiled_passes
        if compiled_passes is not None
        else estimate_compiled_passes(num_qubits)
    )
    if kind == "adapt":
        # ADAPT screens a pool of candidate generators; the screening
        # path batches pool gradients through extra state copies.
        workspace_states += 1
    generator_bytes = (
        max(0, generator_terms) * (AMPLITUDE_BYTES + _GATHER_BYTES) * dim
    )
    breakdown = {
        "amplitudes": AMPLITUDE_BYTES * dim * max(1, batch_size),
        "workspace": AMPLITUDE_BYTES * dim * max(0, workspace_states),
        "observable": observable_bytes(num_qubits, passes) + generator_bytes,
        "prefix_cache": AMPLITUDE_BYTES * dim * max(0, prefix_states),
    }
    breakdown["total"] = sum(breakdown.values())
    return breakdown


def estimate_batched_group_bytes(
    num_qubits: int,
    group_size: int,
    kind: str = "vqe",
    compiled_passes: Optional[int] = None,
    generator_terms: int = 0,
) -> int:
    """Peak bytes of a batch group of ``group_size`` same-physics jobs
    executing through the evaluation broker.

    The group shares ONE compiled observable, one plan, and one
    Hamiltonian (that is the point of physics-keyed sharing), so only
    the amplitude block scales with the group: the (B, 2^n) batched
    statevector plus the stacked parameter rows and result buffers
    (negligible next to amplitudes).  Priced as one job's total plus
    ``group_size - 1`` extra amplitude vectors.
    """
    single = estimate_statevector_job_bytes(
        num_qubits,
        kind=kind,
        compiled_passes=compiled_passes,
        generator_terms=generator_terms,
    )["total"]
    extra = max(0, group_size - 1) * AMPLITUDE_BYTES * (1 << num_qubits)
    return int(single + extra)
