"""Exportable run reports: one serializable summary per run.

A :class:`RunReport` rolls everything the stack observed into a single
JSON-able object:

* per-span aggregates from the tracer (name, count, total seconds),
* the metrics registry snapshot,
* the pre-existing domain ledgers — ``CommStats`` byte counters,
  ``RetryStats``, the ``FaultLedger``, the cache ``GateLedger`` and
  ``PostAnsatzCache`` accounting — normalized into plain dicts,
* the performance analysis (``repro.obs.perf``): per-rank timelines,
  the rank-to-rank communication matrix, load-imbalance statistics,
  and the critical path through the span tree,
* convergence traces (per-iteration energy, gradient norm, error),
* free-form ``meta`` (command line, molecule, qubit count, ...).

The report is attached to driver results (``VQEResult.report``,
``AdaptResult.report``, ``CampaignResult.report``), embedded in
campaign checkpoints, and written/pretty-printed by the CLI
(``--report-out`` / ``repro report``).

This module imports nothing from ``repro`` outside ``repro.obs`` —
ledgers are converted by duck typing, so the observability layer stays
a leaf dependency every other layer may import.

Version history: v1 had no ``perf`` section; v2 added it; v3 added the
``flight`` section (convergence flight-recorder verdicts and samples,
:mod:`repro.obs.flight`); v4 added the ``memory`` section (allocation-
ledger watermarks, :mod:`repro.obs.memory`).  Loading an older payload
yields the newer sections empty.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["RunReport", "as_plain_dict", "format_bytes"]

REPORT_VERSION = 4
_READABLE_VERSIONS = (1, 2, 3, 4)


def as_plain_dict(obj: Any) -> Dict[str, Any]:
    """Best-effort conversion of a stats/ledger object to a JSON-able
    dict: dataclasses via ``asdict``, ``FaultLedger``-likes via their
    ``by_kind``/``count``, mappings verbatim, else public scalar attrs."""
    if obj is None:
        return {}
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if hasattr(obj, "by_kind") and hasattr(obj, "count"):  # FaultLedger
        return {
            "events": int(obj.count()),
            "by_kind": dict(obj.by_kind()),
            "summary": obj.summary() if hasattr(obj, "summary") else "",
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(obj).items()}
    out: Dict[str, Any] = {}
    for name in dir(obj):
        if name.startswith("_"):
            continue
        value = getattr(obj, name)
        if isinstance(value, (int, float, str, bool)):
            out[name] = value
    return out


def format_bytes(n: float) -> str:
    """Human-readable byte count (binary units)."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}TiB"


def _jsonable(v: Any) -> Any:
    if isinstance(v, (int, float, str, bool)) or v is None:
        return v
    if isinstance(v, dict):
        return {str(k): _jsonable(x) for k, x in v.items()}
    if isinstance(v, (list, tuple)):
        return [_jsonable(x) for x in v]
    return str(v)


@dataclass
class RunReport:
    """Aggregated observability summary of one run."""

    meta: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics: List[Dict[str, Any]] = field(default_factory=list)
    comm: Dict[str, Any] = field(default_factory=dict)
    cache: Dict[str, Any] = field(default_factory=dict)
    faults: Dict[str, Any] = field(default_factory=dict)
    perf: Dict[str, Any] = field(default_factory=dict)
    flight: Dict[str, Any] = field(default_factory=dict)
    memory: Dict[str, Any] = field(default_factory=dict)
    convergence: Dict[str, List[float]] = field(default_factory=dict)
    wall_time_s: Optional[float] = None
    created_unix: float = 0.0
    version: int = REPORT_VERSION

    # -- construction -------------------------------------------------------

    @classmethod
    def collect(
        cls,
        meta: Optional[Dict[str, Any]] = None,
        tracer: Optional[object] = None,
        registry: Optional[object] = None,
        comm_stats: Optional[object] = None,
        cache_stats: Optional[object] = None,
        fault_ledger: Optional[object] = None,
        convergence: Optional[Dict[str, List[float]]] = None,
        flight: Optional[Dict[str, Any]] = None,
        memory: Optional[object] = None,
        wall_time_s: Optional[float] = None,
    ) -> "RunReport":
        """Build a report from live objects.  ``tracer``/``registry``
        default to the process-global ones (``repro.obs``)."""
        if tracer is None or registry is None:
            from repro import obs  # local import: obs/__init__ imports us

            tracer = tracer if tracer is not None else obs.get_tracer()
            registry = registry if registry is not None else obs.get_registry()
        spans = [
            {
                "name": name,
                "count": count,
                "total_s": total,
                "mean_s": total / count if count else 0.0,
            }
            for name, (total, count) in sorted(
                tracer.totals().items(), key=lambda kv: -kv[1][0]
            )
        ]
        from repro.obs.perf import PerfAnalysis  # local: sibling leaf module

        analysis = PerfAnalysis.from_sources(
            spans=getattr(tracer, "spans", []),
            metrics=registry.snapshot(),
            comm=as_plain_dict(comm_stats),
        )
        if memory is None:
            from repro import obs

            memory = obs.get_memory_ledger()
        mem_payload: Dict[str, Any] = (
            memory.to_dict() if hasattr(memory, "to_dict") else dict(memory)
        )
        if not mem_payload.get("allocs_total") and not mem_payload.get("peak_bytes"):
            mem_payload = {}  # ledger never saw an allocation: omit the section
        return cls(
            meta=dict(meta or {}),
            spans=spans,
            metrics=registry.snapshot(),
            comm=as_plain_dict(comm_stats),
            cache=as_plain_dict(cache_stats),
            faults=as_plain_dict(fault_ledger),
            perf={} if analysis.is_empty else analysis.to_dict(),
            flight=dict(flight or {}),
            memory=mem_payload,
            convergence={
                k: [float(x) for x in v] for k, v in (convergence or {}).items()
            },
            wall_time_s=wall_time_s,
            created_unix=time.time(),
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "created_unix": self.created_unix,
            "meta": _jsonable(self.meta),
            "wall_time_s": self.wall_time_s,
            "spans": _jsonable(self.spans),
            "metrics": _jsonable(self.metrics),
            "comm": _jsonable(self.comm),
            "cache": _jsonable(self.cache),
            "faults": _jsonable(self.faults),
            "perf": _jsonable(self.perf),
            "flight": _jsonable(self.flight),
            "memory": _jsonable(self.memory),
            "convergence": _jsonable(self.convergence),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: str) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(self.to_json())
        os.replace(tmp, path)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunReport":
        version = payload.get("version")
        if version not in _READABLE_VERSIONS:
            raise ValueError(f"unsupported run-report version: {version!r}")
        return cls(
            meta=dict(payload.get("meta", {})),
            spans=list(payload.get("spans", [])),
            metrics=list(payload.get("metrics", [])),
            comm=dict(payload.get("comm", {})),
            cache=dict(payload.get("cache", {})),
            faults=dict(payload.get("faults", {})),
            perf=dict(payload.get("perf", {})),
            flight=dict(payload.get("flight", {})),
            memory=dict(payload.get("memory", {})),
            convergence={
                k: list(v) for k, v in payload.get("convergence", {}).items()
            },
            wall_time_s=payload.get("wall_time_s"),
            created_unix=float(payload.get("created_unix", 0.0)),
            version=int(version),
        )

    @classmethod
    def load(cls, path: str) -> "RunReport":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    # -- presentation -------------------------------------------------------

    def memory_summary(self) -> str:
        """Render the memory section alone (also used by
        ``repro analyze --memory``)."""
        mem = self.memory
        if not mem:
            return "-- memory --\n  (no allocations recorded)"
        lines = ["-- memory --"]
        lines.append(
            f"  {'peak_bytes':22s} {format_bytes(mem.get('peak_bytes', 0)):>10s}"
            f"   live={format_bytes(mem.get('live_bytes', 0))}"
            f"   buffers={mem.get('tracked_buffers', 0)}"
        )
        peaks = mem.get("peak_by_category", {})
        for cat in sorted(peaks, key=lambda c: -peaks[c]):
            live = mem.get("live_by_category", {}).get(cat, 0)
            lines.append(
                f"    {cat:20s} peak={format_bytes(peaks[cat]):>10s}"
                f"  live={format_bytes(live):>10s}"
            )
        rank_peaks = mem.get("peak_by_rank", {})
        if rank_peaks:
            cells = "  ".join(
                f"r{r}={format_bytes(rank_peaks[r])}"
                for r in sorted(rank_peaks, key=lambda x: int(x))
            )
            lines.append(f"  {'peak_by_rank':22s} {cells}")
        top = mem.get("top_spans", {})
        if top:
            lines.append("  top allocating spans:")
            for name, nbytes in list(top.items())[:8]:
                lines.append(f"    {name:30s} {format_bytes(nbytes):>10s}")
        return "\n".join(lines)

    def summary(self) -> str:
        """Human-readable multi-section report."""
        lines: List[str] = []
        title = self.meta.get("command", "run report")
        lines.append(f"=== {title} ===")
        for k, v in sorted(self.meta.items()):
            if k != "command":
                lines.append(f"  {k:22s} {v}")
        if self.wall_time_s is not None:
            lines.append(f"  {'wall_time_s':22s} {self.wall_time_s:.3f}")
        if self.spans:
            lines.append("-- spans (slowest first) --")
            for s in self.spans:
                lines.append(
                    f"  {s['name']:30s} {s['total_s']:10.4f}s  x{s['count']}"
                )
        if self.flight:
            lines.append("-- flight recorder --")
            verdict = self.flight.get("verdict", "ok")
            detail = self.flight.get("verdict_detail", "")
            lines.append(
                f"  {'verdict':22s} {verdict}"
                + (f" ({detail})" if detail else "")
            )
            for key in ("num_samples", "best_energy", "verdict_at"):
                if self.flight.get(key) is not None:
                    lines.append(f"  {key:22s} {self.flight[key]}")
        if self.memory:
            lines.append(self.memory_summary())
        if self.convergence:
            lines.append("-- convergence --")
            for name, values in sorted(self.convergence.items()):
                if not values:
                    continue
                lines.append(
                    f"  {name:22s} n={len(values)}  first={values[0]:+.6g}  "
                    f"last={values[-1]:+.6g}"
                )
        for section, data in (
            ("comm", self.comm),
            ("cache", self.cache),
            ("faults", self.faults),
        ):
            lines.append(f"-- {section} --")
            if not data:
                lines.append("  (none recorded)")
                continue
            for k, v in sorted(data.items()):
                if isinstance(v, dict):
                    v = ", ".join(f"{a}={b}" for a, b in sorted(v.items()))
                lines.append(f"  {k:22s} {v}")
        if self.perf:
            from repro.obs.perf import PerfAnalysis

            rendered = PerfAnalysis.from_dict(self.perf).render()
            if rendered and "(no performance data" not in rendered:
                lines.append(rendered)
        counters = [m for m in self.metrics if m.get("type") == "counter"]
        if counters:
            lines.append("-- counters --")
            for m in counters:
                label = "".join(
                    f"{{{a}={b}}}" for a, b in sorted(m.get("labels", {}).items())
                )
                lines.append(f"  {m['name'] + label:38s} {m['value']:g}")
        histograms = [
            m
            for m in self.metrics
            if m.get("type") == "histogram" and m.get("count")
        ]
        if histograms:
            lines.append("-- histogram quantiles --")
            for m in histograms:
                label = "".join(
                    f"{{{a}={b}}}" for a, b in sorted(m.get("labels", {}).items())
                )
                q = m.get("quantiles") or {}
                cells = "  ".join(
                    f"{name}={q[name]:.4g}"
                    for name in ("p50", "p95", "p99")
                    if q.get(name) is not None
                )
                lines.append(
                    f"  {m['name'] + label:38s} n={m['count']}"
                    + (f"  {cells}" if cells else "")
                )
        return "\n".join(lines)
