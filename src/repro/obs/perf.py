"""Performance analysis over recorded telemetry (the HPC observatory).

The tracer (``repro.obs.trace``) and metrics registry record *what
happened*; this module turns those records into the analysis the
paper's scaling figures actually need:

* **per-rank timelines** — seconds classified into compute / comm /
  wait per simulated rank, built from the rank-labelled counters the
  HPC substrate emits (``repro_rank_compute_seconds_total{rank=...}``
  and friends) or, for trace-only analysis, from the per-rank arrays
  attached to ``dsv.*`` span attributes;
* **load-imbalance statistics** — max/mean busy time, idle fraction;
* a rank x rank **communication matrix** (messages + bytes) from the
  per-pair ledger ``CommStats`` keeps next to its aggregate counters;
* **critical-path extraction** over the span tree: the root-to-leaf
  chain that dominates the run, and the top-k spans by *self time*
  (duration minus child durations) along it.

Everything is serializable: a :class:`PerfAnalysis` embeds into a
``RunReport`` (the ``perf`` section) and reconstructs from a saved
Chrome trace (span ids ride along in the events), so ``repro analyze``
works offline from either artifact.

Like the rest of ``repro.obs`` this module is a leaf: it imports only
its sibling ``trace`` module and the standard library, never the HPC
or driver layers it describes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.trace import SpanRecord

__all__ = [
    "RankTimeline",
    "ImbalanceStats",
    "CommMatrix",
    "CriticalPathEntry",
    "CriticalPath",
    "PerfAnalysis",
    "critical_path",
    "spans_from_chrome_trace",
]

# Counter families the HPC substrate emits with a {rank="k"} label.
RANK_COMPUTE_COUNTER = "repro_rank_compute_seconds_total"
RANK_COMM_COUNTER = "repro_rank_comm_seconds_total"
# Simulated-schedule busy time per rank (LPT scheduler / ensemble).
RANK_SCHED_BUSY_COUNTER = "repro_sched_rank_busy_sim_seconds_total"
# Peak ledger bytes per rank (repro.obs.memory mirrors this gauge).
RANK_MEMORY_GAUGE = "repro_rank_memory_peak_bytes"


# -- per-rank timelines -------------------------------------------------------


@dataclass
class RankTimeline:
    """Seconds one rank spent in each activity class.

    ``wait_s`` is imbalance wait: the gap between this rank's busy
    time (compute + comm) and the busiest rank's — the time it would
    sit at the next barrier in a real collective-synchronous run.
    """

    rank: int
    compute_s: float = 0.0
    comm_s: float = 0.0
    wait_s: float = 0.0

    @property
    def busy_s(self) -> float:
        return self.compute_s + self.comm_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rank": self.rank,
            "compute_s": self.compute_s,
            "comm_s": self.comm_s,
            "wait_s": self.wait_s,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RankTimeline":
        return cls(
            rank=int(d["rank"]),
            compute_s=float(d.get("compute_s", 0.0)),
            comm_s=float(d.get("comm_s", 0.0)),
            wait_s=float(d.get("wait_s", 0.0)),
        )


@dataclass
class ImbalanceStats:
    """Load-imbalance summary over a set of rank timelines."""

    max_busy_s: float = 0.0
    mean_busy_s: float = 0.0
    imbalance: float = 1.0  # max/mean; 1.0 = perfectly balanced
    idle_fraction: float = 0.0  # mean wait / makespan

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_busy_s": self.max_busy_s,
            "mean_busy_s": self.mean_busy_s,
            "imbalance": self.imbalance,
            "idle_fraction": self.idle_fraction,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ImbalanceStats":
        return cls(
            max_busy_s=float(d.get("max_busy_s", 0.0)),
            mean_busy_s=float(d.get("mean_busy_s", 0.0)),
            imbalance=float(d.get("imbalance", 1.0)),
            idle_fraction=float(d.get("idle_fraction", 0.0)),
        )

    @classmethod
    def from_timelines(
        cls, timelines: Sequence[RankTimeline]
    ) -> "ImbalanceStats":
        if not timelines:
            return cls()
        busy = [t.busy_s for t in timelines]
        max_busy = max(busy)
        mean_busy = sum(busy) / len(busy)
        makespan = max_busy
        idle = (
            sum(t.wait_s for t in timelines) / (len(timelines) * makespan)
            if makespan > 0
            else 0.0
        )
        return cls(
            max_busy_s=max_busy,
            mean_busy_s=mean_busy,
            imbalance=max_busy / mean_busy if mean_busy > 0 else 1.0,
            idle_fraction=idle,
        )


def _fill_wait(timelines: Sequence[RankTimeline]) -> None:
    """Set each timeline's wait to the gap behind the busiest rank."""
    if not timelines:
        return
    makespan = max(t.busy_s for t in timelines)
    for t in timelines:
        t.wait_s = max(0.0, makespan - t.busy_s)


# -- communication matrix -----------------------------------------------------


@dataclass
class CommMatrix:
    """Rank x rank point-to-point traffic (messages and bytes).

    Built from the per-pair ledger ``CommStats`` maintains; row = source
    rank, column = destination rank.  ``total_bytes``/``total_messages``
    equal the aggregate ``CommStats`` point-to-point counters by
    construction — the consistency the acceptance tests assert.
    """

    num_ranks: int = 0
    messages: List[List[int]] = field(default_factory=list)
    bytes: List[List[int]] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        return sum(sum(row) for row in self.messages)

    @property
    def total_bytes(self) -> int:
        return sum(sum(row) for row in self.bytes)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_ranks": self.num_ranks,
            "messages": self.messages,
            "bytes": self.bytes,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "CommMatrix":
        return cls(
            num_ranks=int(d.get("num_ranks", 0)),
            messages=[list(map(int, row)) for row in d.get("messages", [])],
            bytes=[list(map(int, row)) for row in d.get("bytes", [])],
        )

    @classmethod
    def from_pairs(
        cls,
        pair_messages: Mapping[str, int],
        pair_bytes: Mapping[str, int],
        num_ranks: Optional[int] = None,
    ) -> "CommMatrix":
        """Build from the ``"src->dst"``-keyed pair ledgers of
        ``CommStats`` (or their JSON round-trip)."""
        pairs: List[Tuple[int, int]] = []
        for key in list(pair_messages) + list(pair_bytes):
            src, _, dst = str(key).partition("->")
            pairs.append((int(src), int(dst)))
        if num_ranks is None:
            num_ranks = 1 + max((max(s, d) for s, d in pairs), default=-1)
        if num_ranks <= 0:
            return cls()
        msg = [[0] * num_ranks for _ in range(num_ranks)]
        byt = [[0] * num_ranks for _ in range(num_ranks)]
        for key, count in pair_messages.items():
            src, _, dst = str(key).partition("->")
            msg[int(src)][int(dst)] += int(count)
        for key, count in pair_bytes.items():
            src, _, dst = str(key).partition("->")
            byt[int(src)][int(dst)] += int(count)
        return cls(num_ranks=num_ranks, messages=msg, bytes=byt)


# -- critical path ------------------------------------------------------------


@dataclass
class CriticalPathEntry:
    """One span on the critical path."""

    name: str
    category: str
    depth: int
    duration_us: float
    self_us: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "depth": self.depth,
            "duration_us": self.duration_us,
            "self_us": self.self_us,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "CriticalPathEntry":
        return cls(
            name=str(d["name"]),
            category=str(d.get("category", "")),
            depth=int(d.get("depth", 0)),
            duration_us=float(d.get("duration_us", 0.0)),
            self_us=float(d.get("self_us", 0.0)),
        )


@dataclass
class CriticalPath:
    """The dominant root-to-leaf chain of the span tree.

    ``entries`` lists the chain root-first; ``duration_us`` is the root
    entry's duration (and therefore bounds every deeper entry).
    ``top_self`` is the top-k of the chain by self time — where on the
    critical path the run actually spent its exclusive time.
    """

    entries: List[CriticalPathEntry] = field(default_factory=list)
    top_self: List[CriticalPathEntry] = field(default_factory=list)

    @property
    def duration_us(self) -> float:
        return self.entries[0].duration_us if self.entries else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entries": [e.to_dict() for e in self.entries],
            "top_self": [e.to_dict() for e in self.top_self],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "CriticalPath":
        return cls(
            entries=[CriticalPathEntry.from_dict(e) for e in d.get("entries", [])],
            top_self=[CriticalPathEntry.from_dict(e) for e in d.get("top_self", [])],
        )


def critical_path(spans: Sequence[SpanRecord], top_k: int = 10) -> CriticalPath:
    """Extract the critical path from a span forest.

    Starting at the longest root span, repeatedly descend into the
    child with the largest duration until a leaf is reached.  Self
    time is a span's duration minus the summed durations of its direct
    children, clamped at zero (clock jitter can make children appear
    marginally longer than their parent).
    """
    if not spans:
        return CriticalPath()
    children: Dict[Optional[int], List[SpanRecord]] = {}
    for s in spans:
        children.setdefault(s.parent_id, []).append(s)
    known_ids = {s.span_id for s in spans}
    # roots: no parent, or a parent that fell outside the recording
    # window (max_spans drop, trace truncation)
    roots = [s for s in spans if s.parent_id is None or s.parent_id not in known_ids]
    if not roots:
        return CriticalPath()
    node = max(roots, key=lambda s: s.duration_us)
    chain: List[CriticalPathEntry] = []
    depth = 0
    while node is not None:
        kids = children.get(node.span_id, [])
        child_total = sum(k.duration_us for k in kids)
        chain.append(
            CriticalPathEntry(
                name=node.name,
                category=node.category,
                depth=depth,
                duration_us=node.duration_us,
                self_us=max(0.0, node.duration_us - child_total),
            )
        )
        node = max(kids, key=lambda s: s.duration_us) if kids else None
        depth += 1
    top = sorted(chain, key=lambda e: -e.self_us)[: max(0, top_k)]
    return CriticalPath(entries=chain, top_self=top)


def span_self_times(spans: Sequence[SpanRecord]) -> Dict[int, float]:
    """Self time (duration minus direct children, clamped >= 0) per
    span id, for the whole forest."""
    child_total: Dict[Optional[int], float] = {}
    for s in spans:
        child_total[s.parent_id] = child_total.get(s.parent_id, 0.0) + s.duration_us
    return {
        s.span_id: max(0.0, s.duration_us - child_total.get(s.span_id, 0.0))
        for s in spans
    }


# -- chrome-trace round trip --------------------------------------------------


def spans_from_chrome_trace(payload: Mapping[str, Any]) -> List[SpanRecord]:
    """Reconstruct :class:`SpanRecord` objects from a Chrome trace the
    tracer exported (span/parent ids ride along as ``sid``/``psid``)."""
    spans: List[SpanRecord] = []
    for k, ev in enumerate(payload.get("traceEvents", [])):
        if ev.get("ph") != "X":
            continue
        args = dict(ev.get("args", {}))
        spans.append(
            SpanRecord(
                span_id=int(ev.get("sid", k)),
                parent_id=(None if ev.get("psid") is None else int(ev["psid"])),
                name=str(ev.get("name", "")),
                category=str(ev.get("cat", "")),
                start_us=float(ev.get("ts", 0.0)),
                duration_us=float(ev.get("dur", 0.0)),
                thread_id=int(ev.get("tid", 0)),
                depth=0,
                attributes=args,
                sim_start_s=args.get("sim_start_s"),
                sim_duration_s=args.get("sim_duration_s"),
            )
        )
    return spans


# -- the aggregate analysis ---------------------------------------------------


def _rank_seconds_from_metrics(
    metrics: Sequence[Mapping[str, Any]], counter_name: str
) -> Dict[int, float]:
    out: Dict[int, float] = {}
    for m in metrics:
        if m.get("name") != counter_name:
            continue
        rank = m.get("labels", {}).get("rank")
        if rank is None:
            continue
        out[int(rank)] = out.get(int(rank), 0.0) + float(m.get("value", 0.0))
    return out


def _rank_seconds_from_spans(
    spans: Sequence[SpanRecord], attr: str
) -> Dict[int, float]:
    """Fallback for trace-only analysis: per-rank second arrays attached
    as span attributes (``rank_compute_s`` / ``rank_comm_s``)."""
    out: Dict[int, float] = {}
    for s in spans:
        values = s.attributes.get(attr)
        if not isinstance(values, (list, tuple)):
            continue
        for rank, v in enumerate(values):
            out[rank] = out.get(rank, 0.0) + float(v)
    return out


@dataclass
class PerfAnalysis:
    """The full observatory view of one run: rank timelines, comm
    matrix, imbalance statistics, and the critical path."""

    timelines: List[RankTimeline] = field(default_factory=list)
    imbalance: ImbalanceStats = field(default_factory=ImbalanceStats)
    comm_matrix: CommMatrix = field(default_factory=CommMatrix)
    path: CriticalPath = field(default_factory=CriticalPath)
    # simulated-schedule busy seconds per rank (LPT scheduler), kept
    # apart from the wall-clock timelines: different currency
    sched_busy_sim_s: Dict[int, float] = field(default_factory=dict)
    # peak ledger bytes per rank (third currency: memory)
    rank_memory_bytes: Dict[int, float] = field(default_factory=dict)

    @property
    def has_rank_data(self) -> bool:
        return bool(
            self.timelines or self.sched_busy_sim_s or self.rank_memory_bytes
        )

    @property
    def is_empty(self) -> bool:
        return not (
            self.timelines
            or self.sched_busy_sim_s
            or self.rank_memory_bytes
            or self.comm_matrix.num_ranks
            or self.path.entries
        )

    # -- construction --------------------------------------------------------

    @classmethod
    def from_sources(
        cls,
        spans: Sequence[SpanRecord] = (),
        metrics: Sequence[Mapping[str, Any]] = (),
        comm: Optional[Mapping[str, Any]] = None,
        top_k: int = 10,
    ) -> "PerfAnalysis":
        """Build from any combination of recorded spans, a metrics
        snapshot, and a ``CommStats``-shaped mapping."""
        compute = _rank_seconds_from_metrics(metrics, RANK_COMPUTE_COUNTER)
        comm_s = _rank_seconds_from_metrics(metrics, RANK_COMM_COUNTER)
        if not compute and not comm_s:
            compute = _rank_seconds_from_spans(spans, "rank_compute_s")
            comm_s = _rank_seconds_from_spans(spans, "rank_comm_s")
        ranks = sorted(set(compute) | set(comm_s))
        timelines = [
            RankTimeline(
                rank=k,
                compute_s=compute.get(k, 0.0),
                comm_s=comm_s.get(k, 0.0),
            )
            for k in ranks
        ]
        _fill_wait(timelines)
        matrix = CommMatrix()
        if comm:
            pair_messages = comm.get("pair_messages") or {}
            pair_bytes = comm.get("pair_bytes") or {}
            if pair_messages or pair_bytes:
                matrix = CommMatrix.from_pairs(pair_messages, pair_bytes)
        return cls(
            timelines=timelines,
            imbalance=ImbalanceStats.from_timelines(timelines),
            comm_matrix=matrix,
            path=critical_path(spans, top_k=top_k),
            sched_busy_sim_s=_rank_seconds_from_metrics(
                metrics, RANK_SCHED_BUSY_COUNTER
            ),
            rank_memory_bytes=_rank_seconds_from_metrics(
                metrics, RANK_MEMORY_GAUGE
            ),
        )

    @classmethod
    def from_tracer(
        cls,
        tracer: Optional[object] = None,
        registry: Optional[object] = None,
        comm_stats: Optional[object] = None,
        top_k: int = 10,
    ) -> "PerfAnalysis":
        """Build from live objects (defaults to the process globals)."""
        from repro import obs  # local: obs/__init__ imports this module

        tracer = tracer if tracer is not None else obs.get_tracer()
        registry = registry if registry is not None else obs.get_registry()
        comm: Optional[Dict[str, Any]] = None
        if comm_stats is not None:
            from repro.obs.report import as_plain_dict

            comm = as_plain_dict(comm_stats)
        return cls.from_sources(
            spans=list(tracer.spans),
            metrics=registry.snapshot(),
            comm=comm,
            top_k=top_k,
        )

    @classmethod
    def from_chrome_trace(
        cls, payload: Mapping[str, Any], top_k: int = 10
    ) -> "PerfAnalysis":
        return cls.from_sources(
            spans=spans_from_chrome_trace(payload), top_k=top_k
        )

    @classmethod
    def from_chrome_trace_file(cls, path: str, top_k: int = 10) -> "PerfAnalysis":
        with open(path) as fh:
            return cls.from_chrome_trace(json.load(fh), top_k=top_k)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "timelines": [t.to_dict() for t in self.timelines],
            "imbalance": self.imbalance.to_dict(),
            "comm_matrix": self.comm_matrix.to_dict(),
            "critical_path": self.path.to_dict(),
            "sched_busy_sim_s": {
                str(k): v for k, v in sorted(self.sched_busy_sim_s.items())
            },
            "rank_memory_bytes": {
                str(k): v for k, v in sorted(self.rank_memory_bytes.items())
            },
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "PerfAnalysis":
        return cls(
            timelines=[RankTimeline.from_dict(t) for t in d.get("timelines", [])],
            imbalance=ImbalanceStats.from_dict(d.get("imbalance", {})),
            comm_matrix=CommMatrix.from_dict(d.get("comm_matrix", {})),
            path=CriticalPath.from_dict(d.get("critical_path", {})),
            sched_busy_sim_s={
                int(k): float(v)
                for k, v in d.get("sched_busy_sim_s", {}).items()
            },
            rank_memory_bytes={
                int(k): float(v)
                for k, v in d.get("rank_memory_bytes", {}).items()
            },
        )

    # -- presentation --------------------------------------------------------

    def render(self, top_k: int = 10) -> str:
        """Human-readable multi-section performance report."""
        lines: List[str] = []
        if self.timelines:
            lines.append("-- per-rank timeline (wall seconds) --")
            lines.append(
                f"  {'rank':>4} {'compute_s':>12} {'comm_s':>12} "
                f"{'wait_s':>12} {'busy_s':>12}"
            )
            for t in self.timelines:
                lines.append(
                    f"  {t.rank:>4} {t.compute_s:>12.6f} {t.comm_s:>12.6f} "
                    f"{t.wait_s:>12.6f} {t.busy_s:>12.6f}"
                )
            imb = self.imbalance
            lines.append(
                f"  imbalance (max/mean): {imb.imbalance:.3f}   "
                f"idle fraction: {imb.idle_fraction:.1%}"
            )
        if self.sched_busy_sim_s:
            lines.append("-- scheduled busy time (simulated seconds) --")
            makespan = max(self.sched_busy_sim_s.values(), default=0.0)
            for k, busy in sorted(self.sched_busy_sim_s.items()):
                bar = "#" * int(30 * busy / makespan) if makespan > 0 else ""
                lines.append(f"  rank {k:>3} {busy:>12.6f}  {bar}")
        if self.rank_memory_bytes:
            from repro.obs.report import format_bytes  # sibling leaf module

            lines.append("-- per-rank memory (peak ledger bytes) --")
            peak = max(self.rank_memory_bytes.values(), default=0.0)
            for k, nbytes in sorted(self.rank_memory_bytes.items()):
                bar = "#" * int(30 * nbytes / peak) if peak > 0 else ""
                lines.append(
                    f"  rank {k:>3} {format_bytes(nbytes):>12}  {bar}"
                )
        if self.comm_matrix.num_ranks:
            m = self.comm_matrix
            lines.append(
                f"-- communication matrix ({m.num_ranks} ranks; "
                f"msgs / bytes; row=src, col=dst) --"
            )
            header = "  " + " " * 6 + "".join(
                f"{('r' + str(j)):>16}" for j in range(m.num_ranks)
            )
            lines.append(header)
            for i in range(m.num_ranks):
                cells = "".join(
                    f"{m.messages[i][j]:>6}/{m.bytes[i][j]:<9}"
                    for j in range(m.num_ranks)
                )
                lines.append(f"  r{i:<4} {cells}")
            lines.append(
                f"  totals: {m.total_messages} messages, {m.total_bytes} bytes"
            )
        if self.path.entries:
            lines.append("-- critical path (root -> leaf) --")
            for e in self.path.entries:
                lines.append(
                    f"  {'  ' * e.depth}{e.name:<30} "
                    f"{e.duration_us / 1e6:>10.6f}s  (self {e.self_us / 1e6:.6f}s)"
                )
            lines.append(f"-- top {min(top_k, len(self.path.top_self))} "
                         f"critical-path spans by self time --")
            for e in self.path.top_self[:top_k]:
                lines.append(
                    f"  {e.name:<30} self {e.self_us / 1e6:>10.6f}s  "
                    f"of {e.duration_us / 1e6:.6f}s"
                )
        if not lines:
            lines.append("(no performance data recorded)")
        return "\n".join(lines)
