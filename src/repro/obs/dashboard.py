"""``repro top`` — the live operator view of a campaign server.

Everything here is reconstructed **out-of-process from on-disk
artifacts only**: the atomically-published ``status.json``, the
append-only event log (``events.jsonl`` + one rotated generation), and
the optional metrics snapshot (``metrics.jsonl``).  No server
internals are imported — the dashboard works on a live server, a
killed one, or a copied-away state directory, and it can never disturb
the service it is watching.

* :meth:`Dashboard.snapshot` assembles one point-in-time view: fleet
  health, queue composition, per-tenant job states, SLO report with
  burn alerts (:mod:`repro.obs.slo` replayed over the event log),
  flight-recorder verdicts, and the recent event tail.
* :meth:`Dashboard.render` draws it as a fixed-layout text screen;
  ``repro top`` redraws it in place with plain ANSI cursor-home (no
  curses), and ``--once`` / ``--json`` serve scripting and CI.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional

from repro.obs.events import Event, read_events
from repro.obs.slo import FLEET, SLOConfig, SLOEngine

__all__ = ["Dashboard"]

# ANSI: cursor home + clear-to-end (redraw in place without flicker)
CLEAR = "\x1b[H\x1b[J"

_EVENTS_FILE = "events.jsonl"
_METRICS_FILE = "metrics.jsonl"
_STATUS_FILE = "status.json"


def _read_json(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def _read_jsonl(path: str) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    try:
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn tail
    except OSError:
        pass
    return rows


def _fmt(value: Optional[float], digits: int = 3) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}g}"


class Dashboard:
    """Read-only assembler/renderer of a server state directory."""

    def __init__(
        self,
        state_dir: str,
        slo_config: Optional[SLOConfig] = None,
        event_limit: int = 12,
    ):
        self.state_dir = state_dir
        self.slo_config = slo_config or SLOConfig()
        self.event_limit = event_limit

    # -- gathering ------------------------------------------------------------

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """One point-in-time view, purely from on-disk artifacts."""
        status = _read_json(os.path.join(self.state_dir, _STATUS_FILE)) or {}
        health = status.get("health", {})
        jobs = status.get("jobs", [])
        events = read_events(os.path.join(self.state_dir, _EVENTS_FILE))
        metrics = _read_jsonl(os.path.join(self.state_dir, _METRICS_FILE))

        engine = SLOEngine(self.slo_config, time_source="wall")
        for event in events:
            engine.ingest(event)
        if metrics:
            engine.observe_metrics(metrics, now=events[-1].t_wall if events else None)
        slo = engine.report(now=now)

        # last flight verdict per job (events carry job context)
        flight: Dict[str, Dict[str, Any]] = {}
        for event in events:
            if event.type == "flight.verdict":
                job_id = str(event.attrs.get("job_id", event.attrs.get("kind", "?")))
                flight[job_id] = {
                    "verdict": event.attrs.get("verdict"),
                    "detail": event.attrs.get("detail", ""),
                    "index": event.attrs.get("index"),
                    "tenant": event.attrs.get("tenant"),
                }
        # job-table flight column from status.json too (server mirrors
        # the recorder's verdict there), events win when present
        tenants: Dict[str, Dict[str, int]] = {}
        tenant_bytes: Dict[str, int] = {}
        for job in jobs:
            tenant = str(job.get("tenant", "?"))
            t = tenants.setdefault(tenant, {})
            state = str(job.get("state", "?"))
            t[state] = t.get(state, 0) + 1
            if state in ("queued", "running"):
                # live predicted footprint per tenant (capacity model)
                tenant_bytes[tenant] = tenant_bytes.get(tenant, 0) + int(
                    job.get("est_bytes", 0) or 0
                )

        return {
            "state_dir": self.state_dir,
            "at": now if now is not None else time.time(),
            "health": health,
            "tenants": tenants,
            "tenant_bytes": tenant_bytes,
            "memory": health.get("memory", {}),
            "batch": health.get("batch", {}),
            "jobs": jobs,
            "slo": slo.to_dict(),
            "alerts": [a.to_dict() for a in slo.alerts],
            "flight": flight,
            "events_total": len(events),
            "recent_events": [
                self._event_row(e) for e in events[-self.event_limit:]
            ],
        }

    @staticmethod
    def _event_row(event: Event) -> Dict[str, Any]:
        return {
            "seq": event.seq,
            "type": event.type,
            "t_wall": event.t_wall,
            "attrs": event.attrs,
        }

    # -- rendering ------------------------------------------------------------

    def render(self, snap: Optional[Dict[str, Any]] = None) -> str:
        """Fixed-layout text screen for one snapshot."""
        if snap is None:
            snap = self.snapshot()
        health = snap["health"]
        lines: List[str] = []
        status = health.get("status", "unknown")
        alive = health.get("alive_ranks", [])
        lost = health.get("lost_ranks", [])
        lines.append(
            f"repro top — {snap['state_dir']}   "
            f"[{status}]   ticks={health.get('ticks', '-')}   "
            f"seq={health.get('journal_seq', '-')}"
        )
        lines.append(
            f"fleet: {len(alive)} ranks alive"
            + (f", lost {lost}" if lost else "")
            + f"   queue={health.get('queue_depth', 0)}"
            + f" running={health.get('running', 0)}"
            + f" dedup={health.get('dedup_hits', 0)}"
            + f" shed={health.get('shed', 0)}"
        )
        by_state = health.get("jobs", {})
        if by_state:
            lines.append(
                "jobs:  "
                + "  ".join(f"{k}={v}" for k, v in sorted(by_state.items()))
            )
        mem = snap.get("memory") or {}
        if mem:
            from repro.obs.report import format_bytes

            lines.append(
                "memory: queued "
                f"{format_bytes(mem.get('queued_est_bytes', 0))}"
                f" + running {format_bytes(mem.get('running_est_bytes', 0))}"
                f" of pool {format_bytes(mem.get('fleet_capacity_bytes', 0))}"
                f"   ledger live {format_bytes(mem.get('ledger_live_bytes', 0))}"
                f" peak {format_bytes(mem.get('ledger_peak_bytes', 0))}"
            )
        batch = snap.get("batch") or {}
        if batch.get("enabled"):
            lines.append(
                "batch:  "
                f"waves={batch.get('waves', 0)}"
                f" groups={batch.get('groups_executed', 0)}"
                f" batched={batch.get('batched_evals', 0)}"
                f" solo={batch.get('solo_evals', 0)}"
                f"   occupancy mean/max "
                f"{batch.get('mean_occupancy', 0)}/"
                f"{batch.get('max_occupancy', 0)}"
            )
        elif batch:
            lines.append("batch:  disabled (--no-batch)")
        # per-tenant table with SLO columns
        slo_tenants = snap["slo"].get("tenants", {})
        tenant_names = sorted(set(snap["tenants"]) | set(slo_tenants) - {FLEET})
        if tenant_names:
            lines.append("")
            lines.append(
                f"{'tenant':12s} {'queued':>6} {'running':>7} {'done':>5} "
                f"{'mem':>9} "
                f"{'qlat p95':>9} {'hit%':>6} {'shed%':>6} {'alerts':>6}"
            )
            from repro.obs.report import format_bytes as _fb

            for name in tenant_names:
                counts = snap["tenants"].get(name, {})
                slis = slo_tenants.get(name, {})
                ql = slis.get("queue_latency_s", {})
                dh = slis.get("deadline_hit_ratio", {})
                sr = slis.get("shed_rate", {})
                n_alerts = sum(
                    1 for a in snap["alerts"] if a["tenant"] == name
                )
                done = sum(
                    v
                    for k, v in counts.items()
                    if k not in ("queued", "running")
                )
                hit = dh.get("ratio")
                shed = sr.get("rate")
                live_bytes = snap.get("tenant_bytes", {}).get(name, 0)
                lines.append(
                    f"{name[:12]:12s} {counts.get('queued', 0):>6} "
                    f"{counts.get('running', 0):>7} {done:>5} "
                    f"{(_fb(live_bytes) if live_bytes else '-'):>9} "
                    f"{_fmt(ql.get('p95')):>9} "
                    f"{_fmt(hit * 100 if hit is not None else None, 4):>6} "
                    f"{_fmt(shed * 100 if shed is not None else None, 3):>6} "
                    f"{n_alerts:>6}"
                )
        fleet = slo_tenants.get(FLEET, {})
        td = fleet.get("tick_duration_s")
        ev = fleet.get("evals_per_s")
        if td or ev:
            parts = []
            if td:
                parts.append(
                    f"tick p50/p95 {_fmt(td.get('p50'))}/"
                    f"{_fmt(td.get('p95'))}s (target {td.get('target_s')}s)"
                )
            if ev and ev.get("rate") is not None:
                parts.append(f"evals/s {_fmt(ev['rate'])}")
            lines.append("fleet SLIs: " + "   ".join(parts))
        if snap["alerts"]:
            lines.append("")
            lines.append("ALERTS (multi-window burn):")
            for a in snap["alerts"]:
                lines.append(
                    f"  !! {a['tenant']:10s} {a['sli']:20s} "
                    f"burn {a['burn_short']:g}x/{a['burn_long']:g}x  "
                    f"{a['detail']}"
                )
        if snap["flight"]:
            lines.append("")
            lines.append("flight recorder:")
            for job_id, verdict in sorted(snap["flight"].items()):
                lines.append(
                    f"  {job_id:20s} {str(verdict.get('verdict')):14s} "
                    f"{verdict.get('detail', '')}"
                )
        if snap["recent_events"]:
            lines.append("")
            lines.append(f"recent events ({snap['events_total']} total):")
            for row in snap["recent_events"]:
                attrs = row["attrs"]
                keys = (
                    "job_id",
                    "tenant",
                    "verdict",
                    "rank",
                    "reason",
                    "duration_s",
                )
                detail = " ".join(
                    f"{k}={attrs[k]}" for k in keys if k in attrs
                )
                lines.append(f"  #{row['seq']:<6d} {row['type']:22s} {detail}")
        return "\n".join(lines)

    # -- live loop ------------------------------------------------------------

    def run(
        self,
        interval_s: float = 1.0,
        max_frames: Optional[int] = None,
        out=None,
    ) -> int:
        """Redraw-in-place loop (the interactive ``repro top``)."""
        import sys

        stream = out or sys.stdout
        frames = 0
        try:
            while True:
                stream.write(CLEAR + self.render() + "\n")
                stream.flush()
                frames += 1
                if max_frames is not None and frames >= max_frames:
                    return 0
                time.sleep(interval_s)
        except KeyboardInterrupt:
            return 0
