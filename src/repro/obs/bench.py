"""Continuous-benchmark artifacts: the BENCH file schema and comparator.

``benchmarks/run_suite.py`` runs every benchmark and serializes one
schema-versioned ``BENCH_<tag>.json`` per invocation; this module owns
that schema (so the CLI, tests, and CI never parse ad-hoc JSON) and
the regression comparator behind ``repro bench-diff``.

A BENCH file records:

* ``machine`` — hostname, platform, Python, CPU count, git sha: enough
  to know whether two files are comparable at all;
* one :class:`BenchEntry` per benchmark test — wall seconds, outcome,
  and the delta of key observability counters the run generated
  (simulated comm seconds, bytes moved, gates applied, ...);
* the suite ``mode`` (smoke or full) — comparing a smoke file against
  a full file is refused.

The comparator flags a regression when a benchmark's wall time grows
beyond ``threshold`` times the old value *and* the benchmark is slow
enough to measure (``min_wall_s``) — sub-millisecond tests are pure
noise across machines.  Peak ledger bytes (when both files carry them)
are gated the same way: growth beyond ``mem_threshold`` above a
``min_bytes`` floor is a memory regression, because an accidental
extra statevector copy is as real a regression as a slow kernel.
Missing and new benchmarks are reported but are not regressions.

Like every ``repro.obs`` module this is a leaf: standard library only.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchEntry",
    "BenchReport",
    "BenchDiff",
    "machine_info",
    "compare",
    "counter_deltas",
]

BENCH_SCHEMA_VERSION = 1

# Counter families worth carrying into BENCH files when they moved
# during a benchmark (the "key counters" of the harness).
KEY_COUNTER_PREFIXES = (
    "repro_comm_",
    "repro_dsv_",
    "repro_sched_",
    "repro_ensemble_",
    "repro_rank_",
    "repro_sim_",
    "repro_compiled_",
    "repro_estimator_",
    "repro_plan_",
    "repro_cache_",
    "repro_memory_",
)


def machine_info() -> Dict[str, Any]:
    """Host fingerprint embedded in every BENCH file."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        sha = ""
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 0,
        "git_sha": sha,
    }


@dataclass
class BenchEntry:
    """One benchmark's measurement."""

    name: str
    wall_s: float
    ok: bool = True
    sim_s: Optional[float] = None  # simulated seconds, when the run advanced a clock
    peak_bytes: Optional[int] = None  # ledger peak delta during the benchmark
    counters: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "wall_s": self.wall_s,
            "ok": self.ok,
            "counters": dict(self.counters),
        }
        if self.sim_s is not None:
            out["sim_s"] = self.sim_s
        if self.peak_bytes is not None:
            out["peak_bytes"] = self.peak_bytes
        return out

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "BenchEntry":
        return cls(
            name=str(d["name"]),
            wall_s=float(d["wall_s"]),
            ok=bool(d.get("ok", True)),
            sim_s=(None if d.get("sim_s") is None else float(d["sim_s"])),
            peak_bytes=(
                None if d.get("peak_bytes") is None else int(d["peak_bytes"])
            ),
            counters={str(k): float(v) for k, v in d.get("counters", {}).items()},
        )


@dataclass
class BenchReport:
    """The full suite result — what one ``BENCH_<tag>.json`` holds."""

    mode: str = "smoke"
    machine: Dict[str, Any] = field(default_factory=machine_info)
    entries: List[BenchEntry] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    created_unix: float = 0.0
    schema_version: int = BENCH_SCHEMA_VERSION

    def entry(self, name: str) -> Optional[BenchEntry]:
        for e in self.entries:
            if e.name == name:
                return e
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "mode": self.mode,
            "created_unix": self.created_unix,
            "machine": dict(self.machine),
            "entries": [e.to_dict() for e in self.entries],
            "skipped": list(self.skipped),
        }

    def save(self, path: str) -> None:
        if not self.created_unix:
            self.created_unix = time.time()
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BenchReport":
        version = payload.get("schema_version")
        if version != BENCH_SCHEMA_VERSION:
            raise ValueError(f"unsupported BENCH schema version: {version!r}")
        return cls(
            mode=str(payload.get("mode", "smoke")),
            machine=dict(payload.get("machine", {})),
            entries=[BenchEntry.from_dict(e) for e in payload.get("entries", [])],
            skipped=[str(s) for s in payload.get("skipped", [])],
            created_unix=float(payload.get("created_unix", 0.0)),
            schema_version=int(version),
        )

    @classmethod
    def load(cls, path: str) -> "BenchReport":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


# -- comparison ---------------------------------------------------------------


@dataclass
class BenchDelta:
    """One benchmark compared across two BENCH files."""

    name: str
    old_wall_s: float
    new_wall_s: float
    ratio: float
    regressed: bool
    below_floor: bool  # too fast to judge on either side
    old_peak_bytes: Optional[int] = None
    new_peak_bytes: Optional[int] = None
    mem_ratio: Optional[float] = None  # None: not measured on both sides
    mem_regressed: bool = False

    @property
    def improved(self) -> bool:
        return not self.below_floor and self.ratio < 1.0


@dataclass
class BenchDiff:
    """Comparator output: per-benchmark deltas plus membership drift."""

    threshold: float
    min_wall_s: float
    deltas: List[BenchDelta] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)  # in old, not in new
    added: List[str] = field(default_factory=list)  # in new, not in old
    failed: List[str] = field(default_factory=list)  # ok in old, failed in new

    @property
    def regressions(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.regressed or d.mem_regressed]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions or self.failed)

    def render(self) -> str:
        lines = [
            f"benchmark comparison (threshold {self.threshold:.2f}x, "
            f"floor {self.min_wall_s * 1e3:.0f} ms)"
        ]
        lines.append(
            f"  {'benchmark':<58} {'old_s':>9} {'new_s':>9} {'ratio':>7}"
        )
        for d in sorted(self.deltas, key=lambda d: -d.ratio):
            flag = "  REGRESSED" if d.regressed else (
                "  (below floor)" if d.below_floor else ""
            )
            if d.mem_regressed:
                flag += (
                    f"  MEM REGRESSED ({d.old_peak_bytes} -> "
                    f"{d.new_peak_bytes} peak bytes, {d.mem_ratio:.2f}x)"
                )
            lines.append(
                f"  {d.name:<58} {d.old_wall_s:>9.4f} {d.new_wall_s:>9.4f} "
                f"{d.ratio:>6.2f}x{flag}"
            )
        for name in self.failed:
            lines.append(f"  {name}: FAILED in the new run")
        for name in self.missing:
            lines.append(f"  {name}: missing from the new run")
        for name in self.added:
            lines.append(f"  {name}: new benchmark (no baseline)")
        n_reg = len(self.regressions) + len(self.failed)
        lines.append(
            f"  => {n_reg} regression(s), "
            f"{sum(1 for d in self.deltas if d.improved)} improvement(s), "
            f"{len(self.deltas)} compared"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "threshold": self.threshold,
            "min_wall_s": self.min_wall_s,
            "has_regressions": self.has_regressions,
            "deltas": [
                {
                    "name": d.name,
                    "old_wall_s": d.old_wall_s,
                    "new_wall_s": d.new_wall_s,
                    "ratio": d.ratio,
                    "regressed": d.regressed,
                    "below_floor": d.below_floor,
                    "old_peak_bytes": d.old_peak_bytes,
                    "new_peak_bytes": d.new_peak_bytes,
                    "mem_ratio": d.mem_ratio,
                    "mem_regressed": d.mem_regressed,
                }
                for d in self.deltas
            ],
            "missing": list(self.missing),
            "added": list(self.added),
            "failed": list(self.failed),
        }


def compare(
    old: BenchReport,
    new: BenchReport,
    threshold: float = 1.25,
    min_wall_s: float = 0.05,
    mem_threshold: Optional[float] = None,
    min_bytes: int = 1 << 20,
) -> BenchDiff:
    """Diff two BENCH reports.

    A benchmark regresses when ``new_wall > threshold * old_wall`` and
    at least one side is above ``min_wall_s``.  When both files carry
    ``peak_bytes``, memory regresses when the peak grows beyond
    ``mem_threshold`` (defaults to ``threshold``) with at least one
    side above ``min_bytes`` — tiny allocations are noise, an extra
    statevector copy is not.  Files from different modes (smoke vs
    full) are not comparable.
    """
    if threshold <= 1.0:
        raise ValueError("threshold must be > 1.0")
    if mem_threshold is None:
        mem_threshold = threshold
    if mem_threshold <= 1.0:
        raise ValueError("mem_threshold must be > 1.0")
    if old.mode != new.mode:
        raise ValueError(
            f"cannot compare {old.mode!r} against {new.mode!r} BENCH files"
        )
    old_names = {e.name for e in old.entries}
    new_names = {e.name for e in new.entries}
    diff = BenchDiff(
        threshold=threshold,
        min_wall_s=min_wall_s,
        missing=sorted(old_names - new_names),
        added=sorted(new_names - old_names),
    )
    for old_entry in old.entries:
        new_entry = new.entry(old_entry.name)
        if new_entry is None:
            continue
        if old_entry.ok and not new_entry.ok:
            diff.failed.append(old_entry.name)
            continue
        below = max(old_entry.wall_s, new_entry.wall_s) < min_wall_s
        ratio = (
            new_entry.wall_s / old_entry.wall_s if old_entry.wall_s > 0 else 1.0
        )
        mem_ratio: Optional[float] = None
        mem_regressed = False
        if old_entry.peak_bytes is not None and new_entry.peak_bytes is not None:
            mem_below = max(old_entry.peak_bytes, new_entry.peak_bytes) < min_bytes
            mem_ratio = (
                new_entry.peak_bytes / old_entry.peak_bytes
                if old_entry.peak_bytes > 0
                else 1.0
            )
            mem_regressed = not mem_below and mem_ratio > mem_threshold
        diff.deltas.append(
            BenchDelta(
                name=old_entry.name,
                old_wall_s=old_entry.wall_s,
                new_wall_s=new_entry.wall_s,
                ratio=ratio,
                regressed=(not below and ratio > threshold),
                below_floor=below,
                old_peak_bytes=old_entry.peak_bytes,
                new_peak_bytes=new_entry.peak_bytes,
                mem_ratio=mem_ratio,
                mem_regressed=mem_regressed,
            )
        )
    return diff


def counter_deltas(
    old_entry: BenchEntry, new_entry: BenchEntry, top_k: int = 5
) -> List[Tuple[str, float, float]]:
    """Top-``top_k`` counter movements between two runs of a benchmark,
    sorted by relative change — the ``bench-diff --explain`` payload:
    when a regression flags, the counters that moved most are usually
    the why (2x gathers applied, 2x bytes exchanged, ...)."""

    def rel(old_v: float, new_v: float) -> float:
        if old_v == 0.0 and new_v == 0.0:
            return 0.0
        if old_v == 0.0:
            return float("inf")
        return abs(new_v - old_v) / abs(old_v)

    names = set(old_entry.counters) | set(new_entry.counters)
    rows = [
        (name, old_entry.counters.get(name, 0.0), new_entry.counters.get(name, 0.0))
        for name in names
    ]
    rows = [r for r in rows if r[1] != r[2]]
    rows.sort(key=lambda r: (-rel(r[1], r[2]), r[0]))
    return rows[:top_k]
