"""repro.obs — the unified observability layer.

Zero-dependency tracing + metrics + run reports for the whole stack:

* :mod:`repro.obs.trace` — hierarchical span tracer with Chrome
  trace-event export (view in Perfetto),
* :mod:`repro.obs.metrics` — process-wide counters / gauges /
  histograms with Prometheus text exposition and JSONL snapshots,
* :mod:`repro.obs.report` — the serializable :class:`RunReport`
  aggregating spans, metrics, and the domain ledgers,
* :mod:`repro.obs.perf` — the performance observatory: per-rank
  attribution, communication matrix, load imbalance, critical path,
* :mod:`repro.obs.bench` — schema-versioned benchmark reports and the
  regression comparator behind ``repro bench-diff``,
* :mod:`repro.obs.events` — the durable structured event bus (append-
  only, schema-versioned JSONL with rotation and subscribers),
* :mod:`repro.obs.slo` — per-tenant SLIs / SLO objectives with
  multi-window burn-rate alerting,
* :mod:`repro.obs.flight` — the convergence flight recorder with
  stall / divergence / barren-plateau detectors,
* :mod:`repro.obs.dashboard` — the out-of-process ``repro top`` view,
* :mod:`repro.obs.memory` — the allocation ledger + capacity model
  behind memory-aware admission and the RunReport memory section.

The module-level helpers below are the *instrumentation API* the hot
paths use.  They route to one process-global tracer/registry behind a
single ``_ENABLED`` flag, and when observability is off (the default)
every helper is a constant-time no-op — the disabled overhead budget
is enforced by ``benchmarks/bench_obs_overhead.py``.

Typical use::

    from repro import obs

    obs.enable()                       # or: repro vqe h2 --profile
    with obs.span("sim.run_circuit", gates=128):
        ...
    obs.inc("repro_sim_circuits_total")
    print(obs.get_registry().expose())
    obs.get_tracer().write_chrome_trace("trace.json")
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.bench import BenchDiff, BenchEntry, BenchReport, compare
from repro.obs.dashboard import Dashboard
from repro.obs.events import (
    Event,
    EventBus,
    get_bus as get_event_bus,
    read_events,
    set_bus as set_event_bus,
)
from repro.obs.events import emit as emit_event
from repro.obs.flight import FlightConfig, FlightRecorder, FlightSample
from repro.obs.memory import (
    MemoryLedger,
    estimate_statevector_job_bytes,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.perf import (
    CommMatrix,
    CriticalPath,
    ImbalanceStats,
    PerfAnalysis,
    RankTimeline,
    critical_path,
)
from repro.obs.report import RunReport, as_plain_dict
from repro.obs.slo import FLEET, SLOAlert, SLOConfig, SLOEngine, SLOReport
from repro.obs.trace import NULL_SPAN, SpanRecord, Tracer

__all__ = [
    "Tracer",
    "SpanRecord",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "RunReport",
    "as_plain_dict",
    "PerfAnalysis",
    "RankTimeline",
    "ImbalanceStats",
    "CommMatrix",
    "CriticalPath",
    "critical_path",
    "BenchReport",
    "BenchEntry",
    "BenchDiff",
    "compare",
    "Event",
    "EventBus",
    "read_events",
    "emit_event",
    "get_event_bus",
    "set_event_bus",
    "SLOConfig",
    "SLOAlert",
    "SLOReport",
    "SLOEngine",
    "FLEET",
    "FlightConfig",
    "FlightSample",
    "FlightRecorder",
    "Dashboard",
    "MemoryLedger",
    "estimate_statevector_job_bytes",
    "get_memory_ledger",
    "mem_alloc",
    "mem_free",
    "mem_resize",
    "mem_track",
    "configure",
    "enable",
    "disable",
    "enabled",
    "get_tracer",
    "get_registry",
    "span",
    "inc",
    "observe",
    "gauge_set",
]

_ENABLED = False
_TRACER = Tracer(enabled=False)
_REGISTRY = MetricsRegistry()
# The allocation ledger is a process-lifetime singleton: buffer owners
# (simulators, compiled observables, caches) hold handles into it, so it
# is never replaced — ``reset()`` rebases its watermarks instead.
_MEMORY = MemoryLedger(gauge_hook=lambda *a, **k: gauge_set(*a, **k))


def configure(
    enabled: bool = True,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    clock: Optional[object] = None,
) -> None:
    """(Re)configure the global observability state.

    ``clock`` attaches a simulated clock to the tracer so spans carry
    simulated time next to wall-clock.
    """
    global _ENABLED, _TRACER, _REGISTRY
    if tracer is not None:
        _TRACER = tracer
    if registry is not None:
        _REGISTRY = registry
    if clock is not None:
        _TRACER.clock = clock
    _ENABLED = bool(enabled)
    _TRACER.enabled = _ENABLED


def enable() -> None:
    configure(enabled=True)


def disable() -> None:
    configure(enabled=False)


def enabled() -> bool:
    return _ENABLED


def get_tracer() -> Tracer:
    return _TRACER


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def set_clock(clock: Optional[object]) -> None:
    """Attach (or detach, with None) a simulated clock to the tracer."""
    _TRACER.clock = clock


# -- hot-path helpers (constant-time no-ops when disabled) -------------------


def span(name: str, category: str = "repro", **attributes: Any):
    """Open a span on the global tracer (no-op span when disabled)."""
    if not _ENABLED:
        return NULL_SPAN
    return _TRACER.span(name, category, **attributes)


def inc(name: str, amount: float = 1.0, help: str = "", labels: Optional[Dict[str, str]] = None) -> None:
    """Increment a global counter (no-op when disabled)."""
    if not _ENABLED:
        return
    _REGISTRY.counter(name, help=help, labels=labels).inc(amount)


def observe(
    name: str,
    value: float,
    help: str = "",
    buckets: Sequence[float] = DEFAULT_BUCKETS,
    labels: Optional[Dict[str, str]] = None,
) -> None:
    """Record a histogram observation (no-op when disabled)."""
    if not _ENABLED:
        return
    _REGISTRY.histogram(name, help=help, buckets=buckets, labels=labels).observe(value)


def gauge_set(name: str, value: float, help: str = "", labels: Optional[Dict[str, str]] = None) -> None:
    """Set a global gauge (no-op when disabled)."""
    if not _ENABLED:
        return
    _REGISTRY.gauge(name, help=help, labels=labels).set(value)


def get_memory_ledger() -> MemoryLedger:
    return _MEMORY


def mem_alloc(category: str, nbytes: int, rank: Optional[int] = None) -> int:
    """Register a buffer with the memory ledger, attributed to the
    innermost open span.  Returns a handle for :func:`mem_free` /
    :func:`mem_resize`; returns the no-op handle 0 when disabled."""
    if not _ENABLED:
        return 0
    return _MEMORY.alloc(category, nbytes, rank=rank, span=_TRACER.current_span_name())


def mem_free(handle: int) -> None:
    """Release a ledger handle.  Deliberately *not* gated on the enabled
    flag: an owner allocated while enabled may be garbage-collected
    after a ``disable()``, and its bytes must still leave the ledger.
    Handle 0 (and any unknown handle) is a no-op."""
    _MEMORY.free(handle)


def mem_resize(handle: int, nbytes: int) -> None:
    """Adjust a registered buffer's size (no-op for handle 0)."""
    _MEMORY.resize(handle, nbytes)


def mem_track(obj: Any, category: str, nbytes: int, rank: Optional[int] = None) -> int:
    """Register a buffer whose lifetime follows ``obj``: the ledger
    entry is freed automatically when ``obj`` is garbage-collected.
    For owners with explicit close/replace points, prefer
    :func:`mem_alloc` + :func:`mem_free`."""
    if not _ENABLED:
        return 0
    handle = mem_alloc(category, nbytes, rank=rank)
    weakref.finalize(obj, _MEMORY.free, handle)
    return handle


def collect_report(**kwargs: Any) -> RunReport:
    """Build a :class:`RunReport` from the global tracer/registry."""
    return RunReport.collect(tracer=_TRACER, registry=_REGISTRY, memory=_MEMORY, **kwargs)


def reset() -> None:
    """Clear recorded spans and metrics (keeps the enabled flag).
    The memory ledger rebases: still-live buffers stay accounted, the
    watermarks restart from the current live level."""
    _TRACER.reset()
    _REGISTRY.reset()
    _MEMORY.reset()
