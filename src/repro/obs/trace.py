"""Hierarchical span tracer with Chrome trace-event export.

A *span* is one timed section of work — "run this circuit", "screen
the pool", "exchange these slices" — opened as a context manager and
closed when the block exits.  Spans nest: the tracer keeps a per-thread
stack, so every span knows its parent and depth, and the whole run
becomes a tree whose timeline can be inspected three ways:

* ``Tracer.totals()`` — per-name aggregate (the ``Timer`` view),
* ``Tracer.to_chrome_trace()`` — Chrome trace-event JSON (open the
  file in Perfetto / ``chrome://tracing`` for a flame chart),
* ``RunReport`` (``repro.obs.report``) — the serializable summary.

Two clocks are recorded per span: real wall-clock
(``time.perf_counter``) and, when a
:class:`repro.hpc.perfmodel.SimulatedClock` is attached, the simulated
time the HPC substrate advances for communication/backoff — so traces
of simulated campaigns show both currencies side by side.

Disabled mode is the common case and must cost ~nothing: a disabled
tracer hands out one shared no-op span object and touches no state.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SpanRecord", "Tracer", "NULL_SPAN"]


class _NullSpan:
    """Shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


@dataclass
class SpanRecord:
    """One completed span."""

    span_id: int
    parent_id: Optional[int]  # id of the enclosing span, None at root
    name: str
    category: str
    start_us: float  # relative to the tracer's epoch
    duration_us: float
    thread_id: int
    depth: int
    attributes: Dict[str, Any] = field(default_factory=dict)
    sim_start_s: Optional[float] = None
    sim_duration_s: Optional[float] = None

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


class _Span:
    """Live (open) span; becomes a :class:`SpanRecord` on exit."""

    __slots__ = ("_tracer", "name", "category", "attributes", "span_id", "_t0", "_sim0")

    def __init__(self, tracer: "Tracer", name: str, category: str, attributes: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.attributes = attributes
        self.span_id = -1

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        clock = self._tracer.clock
        self._sim0 = clock.now if clock is not None else None
        self._tracer._push(self)
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer._pop(self, time.perf_counter())
        return False


class Tracer:
    """Records a tree of timed spans.

    Parameters
    ----------
    enabled:
        When False, :meth:`span` returns the shared no-op span and the
        tracer records nothing.
    clock:
        Optional simulated clock (duck-typed: anything with a ``now``
        float attribute); spans then record simulated start/duration
        next to wall-clock.
    max_spans:
        Safety cap — once reached, further spans are counted in
        ``dropped_spans`` instead of stored, so a runaway loop cannot
        exhaust memory.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Optional[object] = None,
        max_spans: int = 200_000,
    ):
        self.enabled = enabled
        self.clock = clock
        self.max_spans = max_spans
        self.spans: List[SpanRecord] = []
        self.dropped_spans = 0
        self.epoch = time.perf_counter()
        self._next_id = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- recording ----------------------------------------------------------

    def span(self, name: str, category: str = "repro", **attributes: Any):
        """Open a named span as a context manager."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, category, attributes)

    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: _Span) -> None:
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
        self._stack().append(span)

    def _pop(self, span: _Span, t1: float) -> None:
        stack = self._stack()
        parent_id: Optional[int] = None
        if stack and stack[-1] is span:
            stack.pop()
        else:  # tolerate exotic exits (generator teardown etc.)
            try:
                stack.remove(span)
            except ValueError:
                pass
        if stack:
            parent_id = stack[-1].span_id
        depth = len(stack)
        with self._lock:
            if len(self.spans) >= self.max_spans:
                self.dropped_spans += 1
                return
            sim0 = span._sim0
            sim_dur = (
                self.clock.now - sim0
                if (sim0 is not None and self.clock is not None)
                else None
            )
            self.spans.append(
                SpanRecord(
                    span_id=span.span_id,
                    parent_id=parent_id,
                    name=span.name,
                    category=span.category,
                    start_us=(span._t0 - self.epoch) * 1e6,
                    duration_us=(t1 - span._t0) * 1e6,
                    thread_id=threading.get_ident(),
                    depth=depth,
                    attributes=span.attributes,
                    sim_start_s=sim0,
                    sim_duration_s=sim_dur,
                )
            )

    def current_span_name(self) -> str:
        """Name of the innermost open span on this thread ("" at root).
        Used by the memory ledger to attribute allocations to spans."""
        stack = getattr(self._local, "stack", None)
        if not stack:
            return ""
        return stack[-1].name

    # -- views --------------------------------------------------------------

    def totals(self) -> Dict[str, Tuple[float, int]]:
        """Per-name (total_seconds, count) aggregate, like ``Timer``."""
        out: Dict[str, Tuple[float, int]] = {}
        for s in self.spans:
            total, count = out.get(s.name, (0.0, 0))
            out[s.name] = (total + s.duration_us / 1e6, count + 1)
        return out

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Chrome trace-event JSON (the ``traceEvents`` array of
        complete-duration ``"X"`` events), loadable in Perfetto."""
        pid = os.getpid()
        events: List[Dict[str, Any]] = []
        for s in self.spans:
            args: Dict[str, Any] = dict(s.attributes)
            if s.sim_duration_s is not None:
                args["sim_start_s"] = s.sim_start_s
                args["sim_duration_s"] = s.sim_duration_s
            # sid/psid are repro extensions (ignored by Perfetto): they
            # let repro.obs.perf rebuild the span tree from a saved
            # trace for offline critical-path analysis.
            events.append(
                {
                    "name": s.name,
                    "cat": s.category,
                    "ph": "X",
                    "ts": s.start_us,
                    "dur": s.duration_us,
                    "pid": pid,
                    "tid": s.thread_id,
                    "sid": s.span_id,
                    "psid": s.parent_id,
                    "args": args,
                }
            )
        events.sort(key=lambda e: e["ts"])
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        """Serialize :meth:`to_chrome_trace` to ``path`` atomically."""
        payload = self.to_chrome_trace()
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)

    def reset(self) -> None:
        with self._lock:
            self.spans.clear()
            self.dropped_spans = 0
            self.epoch = time.perf_counter()
            self._next_id = 0
        self._local = threading.local()
