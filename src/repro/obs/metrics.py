"""Process-wide metrics registry: counters, gauges, histograms.

Prometheus's data model, minus the network: instruments are created
(or fetched) by name from a :class:`MetricsRegistry`, updated from the
instrumented hot paths, and exported two ways —

* :meth:`MetricsRegistry.expose` — Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` / samples), scrape-able or diff-able;
* :meth:`MetricsRegistry.write_jsonl` — one JSON object per metric
  per line, the benchmark-friendly snapshot format.

Histograms use fixed cumulative buckets (``observe(v)`` increments
every bucket whose upper bound is >= v, like Prometheus ``le``
semantics) and support quantile estimation by linear interpolation
inside the target bucket — the same math a PromQL
``histogram_quantile`` performs server-side.
"""

from __future__ import annotations

import json
import math
import os
import re
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

# One process-wide lock guards every metric mutation and registry
# get-or-create.  The campaign server's evaluation broker runs
# campaigns in worker threads that all increment the same counters;
# a read-modify-write on a float or a dict insert must not tear.
# Contention is negligible: updates are nanoseconds and the hot paths
# already gate on ``obs.enabled()``.
_LOCK = threading.Lock()


def _atomic_write(path: str, payload: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(payload)
    os.replace(tmp, path)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

# Log-spaced seconds-scale buckets, suitable for kernel and phase times.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class _Metric:
    """Common name/help/labels plumbing."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labels = dict(labels or {})
        for k in labels:
            if not _LABEL_RE.match(k):
                raise ValueError(f"invalid label name {k!r}")
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = {str(k): str(v) for k, v in labels.items()}


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None):
        super().__init__(name, help, labels)
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with _LOCK:
            self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": self.labels,
            "value": self.value,
        }

    def expose(self) -> List[str]:
        return [f"{self.name}{_format_labels(self.labels)} {_format_value(self.value)}"]


class Gauge(_Metric):
    """A value that can move in both directions."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None):
        super().__init__(name, help, labels)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        with _LOCK:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with _LOCK:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with _LOCK:
            self.value -= amount

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": self.labels,
            "value": self.value,
        }

    def expose(self) -> List[str]:
        return [f"{self.name}{_format_labels(self.labels)} {_format_value(self.value)}"]


class Histogram(_Metric):
    """Fixed-bucket cumulative histogram (Prometheus ``le`` semantics).

    ``buckets`` are finite upper bounds in increasing order; an
    implicit ``+Inf`` bucket catches everything above the last bound.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ):
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if any(math.isinf(b) for b in bounds):
            raise ValueError("+Inf bucket is implicit; pass finite bounds only")
        self.buckets = bounds
        # counts[i] = observations with v <= buckets[i]; counts[-1] = +Inf
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with _LOCK:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    def cumulative_counts(self) -> List[int]:
        """Per-bucket cumulative counts including the +Inf bucket."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def quantiles(self) -> Dict[str, Optional[float]]:
        """p50/p95/p99 summary (None where empty, for JSON safety)."""
        out: Dict[str, Optional[float]] = {}
        for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            value = self.quantile(q)
            out[label] = None if math.isnan(value) else value
        return out

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile by linear interpolation inside the
        target bucket (PromQL ``histogram_quantile`` math).  Returns
        NaN with no observations; values in the +Inf bucket clamp to
        the largest finite bound."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cumulative = self.cumulative_counts()
        for i, cum in enumerate(cumulative):
            if cum >= rank:
                if i == len(self.buckets):  # +Inf bucket
                    return self.buckets[-1]
                upper = self.buckets[i]
                lower = self.buckets[i - 1] if i > 0 else 0.0
                prev_cum = cumulative[i - 1] if i > 0 else 0
                in_bucket = cum - prev_cum
                if in_bucket == 0:
                    return upper
                return lower + (upper - lower) * (rank - prev_cum) / in_bucket
        return self.buckets[-1]

    def snapshot(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "type": self.kind,
            "labels": self.labels,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "quantiles": self.quantiles(),
        }

    def expose(self) -> List[str]:
        lines: List[str] = []
        labels = dict(self.labels)
        for bound, cum in zip(
            list(self.buckets) + [math.inf], self.cumulative_counts()
        ):
            le = "+Inf" if math.isinf(bound) else _format_value(bound)
            bucket_labels = dict(labels)
            bucket_labels["le"] = le
            lines.append(f"{self.name}_bucket{_format_labels(bucket_labels)} {cum}")
        suffix = _format_labels(labels)
        lines.append(f"{self.name}_sum{suffix} {_format_value(self.sum)}")
        lines.append(f"{self.name}_count{suffix} {self.count}")
        return lines


def _format_value(v: float) -> str:
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


class MetricsRegistry:
    """Owns every instrument; get-or-create by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], _Metric] = {}

    def _key(
        self, name: str, labels: Optional[Mapping[str, str]]
    ) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        return (name, tuple(sorted((labels or {}).items())))

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs) -> _Metric:
        key = self._key(name, labels)
        with _LOCK:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as {existing.kind}, "
                        f"not {cls.kind}"
                    )
                return existing
            metric = cls(name, help=help, labels=labels, **kwargs)
            self._metrics[key] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def collect(self) -> List[_Metric]:
        return list(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    # -- export -------------------------------------------------------------

    def expose(self) -> str:
        """Prometheus text exposition of every instrument."""
        lines: List[str] = []
        seen_families: set = set()
        for metric in sorted(self._metrics.values(), key=lambda m: m.name):
            if metric.name not in seen_families:
                seen_families.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> List[Dict[str, object]]:
        """One plain dict per instrument, sorted by name."""
        return [
            m.snapshot()
            for m in sorted(self._metrics.values(), key=lambda m: (m.name, sorted(m.labels.items())))
        ]

    def write_jsonl(self, path: str) -> None:
        """One JSON object per metric per line.  Written atomically
        (tmp + rename) so out-of-process pollers like ``repro top``
        never read a torn snapshot."""
        payload = "".join(json.dumps(snap) + "\n" for snap in self.snapshot())
        _atomic_write(path, payload)

    def write_prometheus(self, path: str) -> None:
        """Prometheus exposition file, written atomically."""
        _atomic_write(path, self.expose())

    def reset(self) -> None:
        self._metrics.clear()
