"""Per-tenant SLO engine: fold events + metrics into SLIs and alerts.

The campaign server's event stream (:mod:`repro.obs.events`) records
every job transition; this module turns that stream into the
service-level picture an operator actually acts on:

* **SLIs** (service-level indicators), per tenant and fleet-wide:
  queue latency (admission -> dispatch) p50/p95, server tick duration
  p50/p95, deadline-hit ratio, shed rate, and energy-evaluation
  throughput (from metric-counter deltas).
* **SLOs** (objectives): configurable targets per SLI
  (:class:`SLOConfig`), e.g. "95% of dispatches within 30 s",
  "deadline-hit ratio >= 0.95".
* **Multi-window burn-rate alerts**: for each objective the engine
  computes how fast the error budget is burning over a short and a
  long window; an alert fires only when *both* exceed the configured
  factor — the standard SRE construction that is simultaneously fast
  on real outages and quiet on blips.

The engine is clock-agnostic: every event carries a wall stamp and
(optionally) a simulated stamp, and ``time_source`` selects which one
windows are measured on — ``"sim"`` makes SLO math fully deterministic
under :class:`repro.hpc.perfmodel.SimulatedClock`, which is how the
tests drive injected deadline-miss bursts without sleeping.

Folding is pure: the same event sequence always produces the same
report, whether ingested live (bus subscription) or replayed from the
on-disk log (``repro top``).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.events import Event

__all__ = [
    "SLOConfig",
    "SLOAlert",
    "SLOReport",
    "SLOEngine",
    "FLEET",
]

# pseudo-tenant for fleet-wide SLIs (tick duration, eval throughput)
FLEET = "_fleet"


@dataclass
class SLOConfig:
    """Objectives and alerting windows.

    Latency objectives are quantile-style: "``quantile`` of samples
    must be <= ``target``" (the error budget is ``1 - quantile``).
    Ratio objectives bound the fraction of bad outcomes.
    """

    queue_latency_target_s: float = 30.0
    queue_latency_quantile: float = 0.95
    tick_duration_target_s: float = 2.0
    tick_duration_quantile: float = 0.95
    deadline_hit_target: float = 0.95
    shed_rate_max: float = 0.05
    min_evals_per_s: float = 0.0  # 0 disables the throughput objective
    short_window_s: float = 300.0
    long_window_s: float = 3600.0
    burn_alert_factor: float = 2.0
    min_events: int = 3  # don't alert on fewer bad-capable samples

    def __post_init__(self) -> None:
        if not 0.0 < self.queue_latency_quantile < 1.0:
            raise ValueError("queue_latency_quantile must be in (0, 1)")
        if not 0.0 < self.tick_duration_quantile < 1.0:
            raise ValueError("tick_duration_quantile must be in (0, 1)")
        if not 0.0 < self.deadline_hit_target <= 1.0:
            raise ValueError("deadline_hit_target must be in (0, 1]")
        if not 0.0 < self.shed_rate_max < 1.0:
            raise ValueError("shed_rate_max must be in (0, 1)")
        if self.short_window_s <= 0 or self.long_window_s < self.short_window_s:
            raise ValueError("need 0 < short_window_s <= long_window_s")
        if self.burn_alert_factor <= 0:
            raise ValueError("burn_alert_factor must be positive")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "queue_latency_target_s": self.queue_latency_target_s,
            "queue_latency_quantile": self.queue_latency_quantile,
            "tick_duration_target_s": self.tick_duration_target_s,
            "tick_duration_quantile": self.tick_duration_quantile,
            "deadline_hit_target": self.deadline_hit_target,
            "shed_rate_max": self.shed_rate_max,
            "min_evals_per_s": self.min_evals_per_s,
            "short_window_s": self.short_window_s,
            "long_window_s": self.long_window_s,
            "burn_alert_factor": self.burn_alert_factor,
            "min_events": self.min_events,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SLOConfig":
        known = set(cls.__dataclass_fields__)  # type: ignore[attr-defined]
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown SLO config field(s): {sorted(unknown)}")
        return cls(**payload)

    @classmethod
    def load(cls, path: str) -> "SLOConfig":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


@dataclass
class SLOAlert:
    """One firing multi-window burn alert."""

    tenant: str
    sli: str
    burn_short: float
    burn_long: float
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "sli": self.sli,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "detail": self.detail,
        }


@dataclass
class SLOReport:
    """Point-in-time SLO evaluation: per-tenant SLIs plus alerts."""

    at: float
    time_source: str
    tenants: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    alerts: List[SLOAlert] = field(default_factory=list)
    config: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "at": self.at,
            "time_source": self.time_source,
            "tenants": self.tenants,
            "alerts": [a.to_dict() for a in self.alerts],
            "config": self.config,
        }

    def alerting(self, tenant: Optional[str] = None) -> List[SLOAlert]:
        if tenant is None:
            return list(self.alerts)
        return [a for a in self.alerts if a.tenant == tenant]


def _quantile(samples: List[float], q: float) -> Optional[float]:
    """Exact sample quantile (nearest-rank with interpolation)."""
    if not samples:
        return None
    xs = sorted(samples)
    if len(xs) == 1:
        return xs[0]
    pos = q * (len(xs) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    return xs[lo] + (xs[hi] - xs[lo]) * (pos - lo)


class _Series:
    """Timestamped (t, value, bad) samples, pruned to the long window."""

    def __init__(self) -> None:
        self.samples: List[Tuple[float, float, bool]] = []

    def add(self, t: float, value: float, bad: bool) -> None:
        self.samples.append((t, value, bad))

    def prune(self, cutoff: float) -> None:
        if self.samples and self.samples[0][0] < cutoff:
            self.samples = [s for s in self.samples if s[0] >= cutoff]

    def window(self, now: float, width: float) -> List[Tuple[float, float, bool]]:
        lo = now - width
        return [s for s in self.samples if lo <= s[0] <= now]


class SLOEngine:
    """Folds events (and metric snapshots) into SLIs and burn alerts.

    Use it live (``bus.subscribe(engine.ingest)``) or offline
    (``for ev in read_events(path): engine.ingest(ev)``); both paths
    produce identical reports for identical streams.
    """

    def __init__(
        self,
        config: Optional[SLOConfig] = None,
        time_source: str = "wall",
    ):
        if time_source not in ("wall", "sim"):
            raise ValueError("time_source must be 'wall' or 'sim'")
        self.config = config or SLOConfig()
        self.time_source = time_source
        # per tenant: sli name -> series
        self._series: Dict[str, Dict[str, _Series]] = {}
        self._last_t = 0.0
        # (t, cumulative evals) pairs from successive metric snapshots
        self._eval_counter: List[Tuple[float, float]] = []
        self.events_ingested = 0

    # -- ingestion ------------------------------------------------------------

    def _get(self, tenant: str, sli: str) -> _Series:
        return self._series.setdefault(tenant, {}).setdefault(sli, _Series())

    def _add(self, tenant: str, sli: str, t: float, value: float, bad: bool) -> None:
        self._get(tenant, sli).add(t, value, bad)
        if tenant != FLEET:
            self._get(FLEET, sli).add(t, value, bad)

    def ingest(self, event: Event) -> None:
        """Fold one event into the SLI state."""
        t = event.time(self.time_source)
        self._last_t = max(self._last_t, t)
        self.events_ingested += 1
        cfg = self.config
        a = event.attrs
        tenant = str(a.get("tenant", FLEET))
        if event.type == "job.dispatched" and "queue_latency_s" in a:
            v = float(a["queue_latency_s"])
            self._add(tenant, "queue_latency_s", t, v, v > cfg.queue_latency_target_s)
        elif event.type == "server.tick" and "duration_s" in a:
            v = float(a["duration_s"])
            self._get(FLEET, "tick_duration_s").add(
                t, v, v > cfg.tick_duration_target_s
            )
        elif event.type == "job.completed":
            self._add(tenant, "deadline_hit", t, 1.0, False)
        elif event.type == "job.timed_out":
            self._add(tenant, "deadline_hit", t, 0.0, True)
        elif event.type == "job.admitted":
            self._add(tenant, "shed_rate", t, 0.0, False)
        elif event.type == "job.shed":
            self._add(tenant, "shed_rate", t, 1.0, True)
        # prune everything older than the long window
        cutoff = self._last_t - self.config.long_window_s
        for per_tenant in self._series.values():
            for series in per_tenant.values():
                series.prune(cutoff)

    def observe_metrics(
        self, snapshot: List[Dict[str, Any]], now: Optional[float] = None
    ) -> None:
        """Fold one metrics-registry snapshot (JSONL rows); successive
        calls turn cumulative counters into rates."""
        t = self._now(now)
        total = 0.0
        for row in snapshot:
            if row.get("name") == "repro_vqe_energy_evaluations_total":
                total += float(row.get("value", 0.0))
        if total:
            self._eval_counter.append((t, total))
            cutoff = t - self.config.long_window_s
            self._eval_counter = [
                (tt, v) for tt, v in self._eval_counter if tt >= cutoff
            ]

    # -- evaluation -----------------------------------------------------------

    def _now(self, now: Optional[float]) -> float:
        if now is not None:
            return now
        if self.time_source == "sim":
            return self._last_t  # deterministic: anchor at the last event
        return time.time()

    def _burn(
        self, series: _Series, now: float, width: float, budget: float
    ) -> Tuple[float, int, int]:
        """(burn rate, bad, total) over one window.  Burn = observed
        error fraction / budget fraction; 1.0 = burning exactly the
        budget, >1 = on course to exhaust it early."""
        window = series.window(now, width)
        total = len(window)
        bad = sum(1 for _, _, b in window if b)
        if total == 0:
            return 0.0, 0, 0
        error_rate = bad / total
        return (error_rate / budget if budget > 0 else 0.0), bad, total

    def _check_alert(
        self,
        tenant: str,
        sli: str,
        series: _Series,
        now: float,
        budget: float,
        detail: str,
    ) -> Optional[SLOAlert]:
        cfg = self.config
        burn_s, bad_s, n_s = self._burn(series, now, cfg.short_window_s, budget)
        burn_l, bad_l, n_l = self._burn(series, now, cfg.long_window_s, budget)
        if (
            n_l >= cfg.min_events
            and bad_s > 0
            and burn_s >= cfg.burn_alert_factor
            and burn_l >= cfg.burn_alert_factor
        ):
            return SLOAlert(
                tenant=tenant,
                sli=sli,
                burn_short=round(burn_s, 3),
                burn_long=round(burn_l, 3),
                detail=detail.format(bad=bad_l, total=n_l),
            )
        return None

    def report(self, now: Optional[float] = None) -> SLOReport:
        """Evaluate every tenant's SLIs and burn alerts."""
        cfg = self.config
        now_t = self._now(now)
        tenants: Dict[str, Dict[str, Any]] = {}
        alerts: List[SLOAlert] = []
        for tenant, per_sli in sorted(self._series.items()):
            slis: Dict[str, Any] = {}
            # queue latency: quantiles + burn on the over-target fraction
            ql = per_sli.get("queue_latency_s")
            if ql is not None:
                window = ql.window(now_t, cfg.long_window_s)
                values = [v for _, v, _ in window]
                slis["queue_latency_s"] = {
                    "n": len(values),
                    "p50": _quantile(values, 0.5),
                    "p95": _quantile(values, 0.95),
                    "target_s": cfg.queue_latency_target_s,
                }
                alert = self._check_alert(
                    tenant,
                    "queue_latency_s",
                    ql,
                    now_t,
                    1.0 - cfg.queue_latency_quantile,
                    "{bad}/{total} dispatches over "
                    f"{cfg.queue_latency_target_s:g}s",
                )
                if alert:
                    alerts.append(alert)
            # tick duration (fleet only by construction)
            td = per_sli.get("tick_duration_s")
            if td is not None:
                window = td.window(now_t, cfg.long_window_s)
                values = [v for _, v, _ in window]
                slis["tick_duration_s"] = {
                    "n": len(values),
                    "p50": _quantile(values, 0.5),
                    "p95": _quantile(values, 0.95),
                    "target_s": cfg.tick_duration_target_s,
                }
                alert = self._check_alert(
                    tenant,
                    "tick_duration_s",
                    td,
                    now_t,
                    1.0 - cfg.tick_duration_quantile,
                    "{bad}/{total} ticks over "
                    f"{cfg.tick_duration_target_s:g}s",
                )
                if alert:
                    alerts.append(alert)
            # deadline-hit ratio
            dh = per_sli.get("deadline_hit")
            if dh is not None:
                window = dh.window(now_t, cfg.long_window_s)
                total = len(window)
                hits = sum(1 for _, v, _ in window if v > 0)
                slis["deadline_hit_ratio"] = {
                    "n": total,
                    "ratio": (hits / total) if total else None,
                    "target": cfg.deadline_hit_target,
                }
                alert = self._check_alert(
                    tenant,
                    "deadline_hit_ratio",
                    dh,
                    now_t,
                    1.0 - cfg.deadline_hit_target,
                    "{bad}/{total} jobs missed their deadline",
                )
                if alert:
                    alerts.append(alert)
            # shed rate
            sr = per_sli.get("shed_rate")
            if sr is not None:
                window = sr.window(now_t, cfg.long_window_s)
                total = len(window)
                shed = sum(1 for _, v, _ in window if v > 0)
                slis["shed_rate"] = {
                    "n": total,
                    "rate": (shed / total) if total else None,
                    "max": cfg.shed_rate_max,
                }
                alert = self._check_alert(
                    tenant,
                    "shed_rate",
                    sr,
                    now_t,
                    cfg.shed_rate_max,
                    "{bad}/{total} submissions shed",
                )
                if alert:
                    alerts.append(alert)
            if slis:
                tenants[tenant] = slis
        # energy-evaluation throughput from counter deltas (fleet)
        if len(self._eval_counter) >= 2:
            (t0, v0), (t1, v1) = self._eval_counter[0], self._eval_counter[-1]
            rate = (v1 - v0) / (t1 - t0) if t1 > t0 else None
            tenants.setdefault(FLEET, {})["evals_per_s"] = {
                "rate": rate,
                "total": v1,
                "min": cfg.min_evals_per_s,
            }
            if (
                cfg.min_evals_per_s > 0
                and rate is not None
                and rate < cfg.min_evals_per_s
            ):
                alerts.append(
                    SLOAlert(
                        tenant=FLEET,
                        sli="evals_per_s",
                        burn_short=0.0,
                        burn_long=0.0,
                        detail=(
                            f"throughput {rate:.3g}/s below floor "
                            f"{cfg.min_evals_per_s:g}/s"
                        ),
                    )
                )
        return SLOReport(
            at=now_t,
            time_source=self.time_source,
            tenants=tenants,
            alerts=alerts,
            config=cfg.to_dict(),
        )
