"""Structured event bus: the durable "what happened" log.

Metrics say *how much*, traces say *how long* — events say *what
happened, in order*.  The campaign server and the recovery machinery
emit one :class:`Event` per state transition (admit, shed, dispatch,
complete, timeout, retry, breaker trip, rank loss, drain, checkpoint,
injected fault, flight-recorder verdict), and this module makes that
stream durable and consumable:

* **Append-only JSONL log** — one JSON object per line, written
  through an :class:`EventBus` bound to a file.  The format is
  schema-versioned (``v`` field) so readers can reject records from a
  future writer instead of misparsing them.
* **Crash-safe by construction** — a ``kill -9`` mid-write leaves at
  most one torn final line.  The writer truncates a torn tail before
  appending (so a partial record can never merge with the next one),
  and :func:`read_events` skips an unparseable final line.
* **Bounded size** — when the live file exceeds ``max_bytes`` it is
  rotated to ``<path>.1`` (one generation kept), so a long-running
  server's event history is bounded while ``repro top`` still sees a
  deep window.
* **In-process subscribers** — callables registered with
  :meth:`EventBus.subscribe` see every event as it is emitted; the SLO
  engine (:mod:`repro.obs.slo`) folds the stream live this way.
* **Sequence-numbered** — ``seq`` is strictly increasing and continues
  across process restarts (the bus scans the existing log tail on
  open), which is what the soak test's replay-consistency check keys
  on.

The module-level :func:`emit` routes to one process-global bus (set by
the campaign server, or by tests); with no bus installed it is a
constant-time no-op, so library code (``repro.core``, ``repro.hpc``)
can emit unconditionally without violating the disabled-overhead
budget enforced by ``benchmarks/bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "Event",
    "EventBus",
    "read_events",
    "set_bus",
    "get_bus",
    "emit",
]

EVENT_SCHEMA_VERSION = 1


@dataclass
class Event:
    """One structured occurrence on the bus."""

    seq: int
    type: str
    t_wall: float
    t_sim: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    version: int = EVENT_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "v": self.version,
            "seq": self.seq,
            "type": self.type,
            "t_wall": self.t_wall,
        }
        if self.t_sim is not None:
            out["t_sim"] = self.t_sim
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Event":
        version = payload.get("v")
        if not isinstance(version, int) or version > EVENT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported event schema version {version!r} "
                f"(this reader speaks <= {EVENT_SCHEMA_VERSION})"
            )
        return cls(
            seq=int(payload["seq"]),
            type=str(payload["type"]),
            t_wall=float(payload["t_wall"]),
            t_sim=(
                float(payload["t_sim"]) if payload.get("t_sim") is not None else None
            ),
            attrs=dict(payload.get("attrs", {})),
            version=version,
        )

    def time(self, source: str = "wall") -> float:
        """Event timestamp on the requested clock; ``sim`` falls back
        to wall time for events that carried no simulated stamp."""
        if source == "sim" and self.t_sim is not None:
            return self.t_sim
        return self.t_wall


def _truncate_torn_tail(path: str) -> None:
    """Drop a partial final line left by a crash mid-append, so the
    next append starts on a clean record boundary."""
    try:
        size = os.path.getsize(path)
    except OSError:
        return
    if size == 0:
        return
    with open(path, "rb+") as fh:
        fh.seek(-1, os.SEEK_END)
        if fh.read(1) == b"\n":
            return
        # walk back to the last newline (or the start) and truncate
        data = None
        with open(path, "rb") as rd:
            data = rd.read()
        cut = data.rfind(b"\n")
        fh.truncate(cut + 1 if cut >= 0 else 0)


def _last_seq(path: str) -> int:
    """Highest seq in an existing log (0 if none readable)."""
    last = 0
    for ev in _read_one_file(path):
        if ev.seq > last:
            last = ev.seq
    return last


def _read_one_file(path: str) -> List[Event]:
    if not os.path.isfile(path):
        return []
    out: List[Event] = []
    with open(path, "rb") as fh:
        lines = fh.read().split(b"\n")
    for i, raw in enumerate(lines):
        if not raw.strip():
            continue
        try:
            out.append(Event.from_dict(json.loads(raw.decode("utf-8"))))
        except (ValueError, KeyError, TypeError, UnicodeDecodeError):
            if i == len(lines) - 1:
                continue  # torn tail from a crash mid-write
            continue  # unreadable interior line: skip, don't abort
    return out


def read_events(path: str, include_rotated: bool = True) -> List[Event]:
    """Load the event log (rotated generation first), tolerating a torn
    tail and unreadable lines.  This is the out-of-process reader the
    ``repro top`` dashboard uses."""
    events: List[Event] = []
    if include_rotated:
        events.extend(_read_one_file(path + ".1"))
    events.extend(_read_one_file(path))
    events.sort(key=lambda e: e.seq)
    return events


class EventBus:
    """Append-only, size-bounded, subscriber-fanout event writer.

    Parameters
    ----------
    path:
        JSONL log file (``None`` = in-memory only: subscribers still
        fire, nothing is persisted — handy for tests).
    max_bytes:
        Rotate the live file to ``<path>.1`` once it grows past this.
    sim_clock:
        Optional object with a ``now`` attribute
        (:class:`repro.hpc.perfmodel.SimulatedClock`); when set, every
        event carries a ``t_sim`` stamp next to wall time.
    wall_clock:
        Injectable wall-time source (default ``time.time``).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        max_bytes: int = 4_000_000,
        sim_clock: Optional[object] = None,
        wall_clock: Callable[[], float] = time.time,
    ):
        if max_bytes < 1024:
            raise ValueError("max_bytes must be >= 1024")
        self.path = path
        self.max_bytes = max_bytes
        self.sim_clock = sim_clock
        self.wall_clock = wall_clock
        self._subscribers: List[Callable[[Event], None]] = []
        self._fh = None
        # campaigns running in broker worker threads emit concurrently;
        # the lock keeps seq strictly increasing and lines un-torn
        self._lock = threading.Lock()
        self.seq = 0
        self.emitted = 0
        if path is not None:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            _truncate_torn_tail(path)
            self.seq = max(_last_seq(path), _last_seq(path + ".1"))
            self._fh = open(path, "a", encoding="utf-8")

    # -- emission -------------------------------------------------------------

    def emit(self, type: str, **attrs: Any) -> Event:
        """Append one event (and fan it out to subscribers)."""
        with self._lock:
            self.seq += 1
            self.emitted += 1
            event = Event(
                seq=self.seq,
                type=type,
                t_wall=self.wall_clock(),
                t_sim=(
                    float(self.sim_clock.now) if self.sim_clock is not None else None
                ),
                attrs={k: v for k, v in attrs.items() if v is not None},
            )
            if self._fh is not None:
                self._fh.write(json.dumps(event.to_dict()) + "\n")
                self._fh.flush()
                self._maybe_rotate()
            subscribers = list(self._subscribers)
        for fn in subscribers:
            fn(event)
        return event

    def _maybe_rotate(self) -> None:
        assert self.path is not None and self._fh is not None
        if self._fh.tell() < self.max_bytes:
            return
        self._fh.close()
        os.replace(self.path, self.path + ".1")
        self._fh = open(self.path, "a", encoding="utf-8")

    # -- subscribers ----------------------------------------------------------

    def subscribe(self, fn: Callable[[Event], None]) -> Callable[[Event], None]:
        """Register a live consumer; returns ``fn`` for unsubscribing."""
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Callable[[Event], None]) -> None:
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    # -- lifecycle ------------------------------------------------------------

    def read(self) -> List[Event]:
        """Everything persisted so far (rotated + live)."""
        if self.path is None:
            return []
        if self._fh is not None:
            self._fh.flush()
        return read_events(self.path)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        if get_bus() is self:
            set_bus(None)


# -- process-global routing ---------------------------------------------------

_BUS: Optional[EventBus] = None


def set_bus(bus: Optional[EventBus]) -> None:
    """Install (or, with None, remove) the process-global bus that
    :func:`emit` routes to."""
    global _BUS
    _BUS = bus


def get_bus() -> Optional[EventBus]:
    return _BUS


def emit(type: str, **attrs: Any) -> Optional[Event]:
    """Emit on the global bus; constant-time no-op when none is
    installed (the hot-path contract)."""
    if _BUS is None:
        return None
    return _BUS.emit(type, **attrs)
