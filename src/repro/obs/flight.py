"""Convergence flight recorder: *why* is this campaign slow or stuck?

Telemetry so far answered "how long did it take" (spans), "how much
work" (metrics), and "what happened" (events).  For a variational
campaign the operator's real question is about the *trajectory*: is
the optimizer still descending, has it stalled, is it diverging, or is
it screening a pool whose gradients have collapsed (the barren-plateau
signature)?  The flight recorder answers that from inside the driver
loop:

* Every VQE energy evaluation / ADAPT growth iteration lands one
  :class:`FlightSample` — energy, gradient norm, step norm (parameter
  movement since the previous sample), parameter drift (movement since
  the start), and pool-screening stats for ADAPT.
* Three detectors run over the rolling sample window:

  - **stall** — the best energy improved by less than
    ``stall_min_improvement`` across ``stall_window`` samples,
  - **divergence** — the energy has sat more than
    ``divergence_margin`` *above* the best seen for
    ``divergence_window`` consecutive samples,
  - **barren plateau** — the gradient norm stayed below
    ``barren_grad_threshold`` for ``barren_window`` samples while the
    run had not converged.

* A verdict change is emitted as a ``flight.verdict`` event on the
  global bus (:mod:`repro.obs.events`) — so a server-hosted campaign's
  stall is visible in ``repro top`` out-of-process — and the full
  recording is attached to RunReports (the ``flight`` section).

Detectors are pure functions of the sample sequence, so a recorded
trajectory replays to the same verdicts — the property the synthetic-
trace tests pin down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs import events as obs_events

__all__ = [
    "VERDICT_OK",
    "VERDICT_STALLED",
    "VERDICT_DIVERGING",
    "VERDICT_BARREN",
    "FlightConfig",
    "FlightSample",
    "FlightRecorder",
]

VERDICT_OK = "ok"
VERDICT_STALLED = "stalled"
VERDICT_DIVERGING = "diverging"
VERDICT_BARREN = "barren_plateau"


@dataclass(frozen=True)
class FlightConfig:
    """Detector thresholds (all windows are sample counts)."""

    stall_window: int = 4
    stall_min_improvement: float = 1e-8
    divergence_window: int = 3
    divergence_margin: float = 1e-6
    barren_window: int = 4
    barren_grad_threshold: float = 1e-7
    max_samples: int = 10_000  # ring bound so recorders never grow unbounded

    def __post_init__(self) -> None:
        if min(self.stall_window, self.divergence_window, self.barren_window) < 2:
            raise ValueError("detector windows must be >= 2 samples")
        if self.max_samples < 16:
            raise ValueError("max_samples must be >= 16")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stall_window": self.stall_window,
            "stall_min_improvement": self.stall_min_improvement,
            "divergence_window": self.divergence_window,
            "divergence_margin": self.divergence_margin,
            "barren_window": self.barren_window,
            "barren_grad_threshold": self.barren_grad_threshold,
        }


@dataclass
class FlightSample:
    """One point on the convergence trajectory."""

    index: int
    energy: float
    grad_norm: Optional[float] = None
    step_norm: Optional[float] = None
    drift: Optional[float] = None
    pool_size: Optional[int] = None
    pool_mean_abs_grad: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"index": self.index, "energy": self.energy}
        for key in (
            "grad_norm",
            "step_norm",
            "drift",
            "pool_size",
            "pool_mean_abs_grad",
        ):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


def _norm(delta: Sequence[float]) -> float:
    return math.sqrt(sum(float(x) * float(x) for x in delta))


class FlightRecorder:
    """Rolling trajectory recorder + detectors for one campaign.

    ``context`` (job id, tenant, molecule, ...) rides along on every
    emitted ``flight.verdict`` event so the server-side log attributes
    verdicts to jobs without the recorder knowing about the server.
    """

    def __init__(
        self,
        kind: str = "vqe",
        config: Optional[FlightConfig] = None,
        context: Optional[Dict[str, Any]] = None,
    ):
        self.kind = kind
        self.config = config or FlightConfig()
        self.context: Dict[str, Any] = dict(context or {})
        self.samples: List[FlightSample] = []
        self.verdict = VERDICT_OK
        self.verdict_detail = ""
        self.verdict_at: Optional[int] = None
        self.best_energy = math.inf
        self._first_params: Optional[List[float]] = None
        self._last_params: Optional[List[float]] = None
        self._dropped = 0

    # -- recording ------------------------------------------------------------

    def record(
        self,
        energy: float,
        params: Optional[Sequence[float]] = None,
        grad_norm: Optional[float] = None,
        pool_size: Optional[int] = None,
        pool_mean_abs_grad: Optional[float] = None,
        index: Optional[int] = None,
    ) -> FlightSample:
        """Add one sample (and run the detectors)."""
        energy = float(energy)
        step_norm = drift = None
        if params is not None:
            values = [float(x) for x in params]
            if self._first_params is None:
                self._first_params = values
            if self._last_params is not None:
                # parameter-count growth (ADAPT appends one per step):
                # compare over the shared prefix, count the new entries
                # as movement from their zero warm start
                shared = min(len(values), len(self._last_params))
                delta = [
                    values[i] - self._last_params[i] for i in range(shared)
                ] + [values[i] for i in range(shared, len(values))]
                step_norm = _norm(delta)
            shared0 = min(len(values), len(self._first_params))
            drift = _norm(
                [values[i] - self._first_params[i] for i in range(shared0)]
                + [values[i] for i in range(shared0, len(values))]
            )
            self._last_params = values
        sample = FlightSample(
            index=(
                index
                if index is not None
                else len(self.samples) + self._dropped
            ),
            energy=energy,
            grad_norm=grad_norm,
            step_norm=step_norm,
            drift=drift,
            pool_size=pool_size,
            pool_mean_abs_grad=pool_mean_abs_grad,
        )
        self.samples.append(sample)
        if len(self.samples) > self.config.max_samples:
            self.samples.pop(0)
            self._dropped += 1
        self.best_energy = min(self.best_energy, energy)
        self._evaluate(sample)
        return sample

    # -- detectors ------------------------------------------------------------

    def _evaluate(self, latest: FlightSample) -> None:
        verdict, detail = self._detect()
        if verdict != self.verdict:
            self.verdict = verdict
            self.verdict_detail = detail
            self.verdict_at = latest.index
            obs_events.emit(
                "flight.verdict",
                kind=self.kind,
                verdict=verdict,
                detail=detail,
                index=latest.index,
                energy=latest.energy,
                **self.context,
            )

    def _detect(self) -> "tuple[str, str]":
        cfg = self.config
        samples = self.samples
        # divergence: energy parked above the best for W straight samples
        w = cfg.divergence_window
        if len(samples) >= w:
            tail = samples[-w:]
            above = [s.energy - self.best_energy for s in tail]
            if all(a > cfg.divergence_margin for a in above):
                return (
                    VERDICT_DIVERGING,
                    f"energy {max(above):.3e} above best for {w} samples",
                )
        # barren plateau: tiny gradients across the window (and not
        # "done": a converged run's small gradient is success, but the
        # driver stops recording then, so a live tiny-gradient window
        # means screening found nothing to exploit)
        w = cfg.barren_window
        grads = [s.grad_norm for s in samples[-w:] if s.grad_norm is not None]
        if len(grads) >= w and all(g < cfg.barren_grad_threshold for g in grads):
            return (
                VERDICT_BARREN,
                f"gradient norm < {cfg.barren_grad_threshold:g} "
                f"for {w} samples",
            )
        # stall: the best energy stopped improving across the window
        w = cfg.stall_window
        if len(samples) > w:
            best_before = min(s.energy for s in samples[:-w])
            best_now = min(best_before, min(s.energy for s in samples[-w:]))
            if best_before - best_now < cfg.stall_min_improvement:
                return (
                    VERDICT_STALLED,
                    f"best energy improved < {cfg.stall_min_improvement:g} "
                    f"over the last {w} samples",
                )
        return VERDICT_OK, ""

    # -- export ---------------------------------------------------------------

    @property
    def num_samples(self) -> int:
        return len(self.samples) + self._dropped

    def traces(self) -> Dict[str, List[float]]:
        """Convergence-style series (for RunReport.convergence)."""
        out: Dict[str, List[float]] = {"energy": [s.energy for s in self.samples]}
        for key in ("grad_norm", "step_norm", "drift"):
            values = [getattr(s, key) for s in self.samples]
            if any(v is not None for v in values):
                out[key] = [float(v) if v is not None else 0.0 for v in values]
        return out

    def to_dict(self, max_samples: int = 200) -> Dict[str, Any]:
        """JSON-able recording (tail-truncated for report embedding)."""
        tail = self.samples[-max_samples:]
        return {
            "kind": self.kind,
            "verdict": self.verdict,
            "verdict_detail": self.verdict_detail,
            "verdict_at": self.verdict_at,
            "num_samples": self.num_samples,
            "best_energy": (
                self.best_energy if math.isfinite(self.best_energy) else None
            ),
            "context": dict(self.context),
            "detectors": self.config.to_dict(),
            "samples": [s.to_dict() for s in tail],
        }
