"""Exact statevector evolution under Pauli-sum generators.

The VQE/ADAPT drivers evolve states as products of exponentials
``exp(theta_k A_k)`` with anti-Hermitian generators ``A_k``.  When the
Pauli terms of ``A_k`` mutually commute (true for every fermionic
UCCSD excitation block and for single-string qubit-pool operators) the
exponential factorizes exactly and each factor applies in two
vectorized passes:

    exp(i phi P) |psi> = cos(phi) |psi> + i sin(phi) P |psi>.

Non-commuting generators fall back to Krylov ``expm_multiply`` on the
sparse matrix — exact to machine precision either way, so drivers can
treat this as an oracle.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse.linalg as spla

from repro.ir.compiled import compile_observable
from repro.ir.pauli import PauliString, PauliSum

__all__ = ["apply_pauli_rotation", "terms_commute", "GeneratorEvolution"]


def apply_pauli_rotation(
    state: np.ndarray, pauli: PauliString, phi: float
) -> np.ndarray:
    """Return exp(i * phi * P) @ state (two vectorized passes)."""
    return math.cos(phi) * state + (1j * math.sin(phi)) * pauli.apply(state)


def terms_commute(a: PauliSum) -> bool:
    """True if all Pauli terms of ``a`` mutually commute."""
    strings = [p for _, p in a]
    for i, p in enumerate(strings):
        for q in strings[i + 1:]:
            if not p.commutes_with(q):
                return False
    return True


class GeneratorEvolution:
    """Prepared applicator for exp(theta * A), A anti-Hermitian.

    Precomputes either the commuting-term factorization (fast path) or
    the sparse matrix (Krylov path) once, so repeated applications
    during optimization are cheap.
    """

    def __init__(self, generator: PauliSum):
        if not generator.is_anti_hermitian(atol=1e-9):
            raise ValueError("generator must be anti-Hermitian")
        self.generator = generator
        self.num_qubits = generator.num_qubits
        self._factors: Optional[List[Tuple[float, PauliString]]] = None
        self._sparse = None
        if terms_commute(generator):
            # A = sum_j (i c_j) P_j  with real c_j; exp(theta A) =
            # prod_j exp(i theta c_j P_j).
            self._factors = [(coeff.imag, pstr) for coeff, pstr in generator]
        else:
            self._sparse = generator.to_sparse()
        # compiled once here: the adjoint sweep calls apply_generator in
        # a tight loop and should not pay the memoization version check
        self._compiled = compile_observable(generator)

    @property
    def exact_factorization(self) -> bool:
        return self._factors is not None

    def apply(self, state: np.ndarray, theta: float) -> np.ndarray:
        """Return exp(theta * A) @ state."""
        if self._factors is not None:
            out = state
            for c, pstr in self._factors:
                out = apply_pauli_rotation(out, pstr, theta * c)
            return out
        return spla.expm_multiply(self._sparse * theta, state)

    def apply_generator(self, state: np.ndarray) -> np.ndarray:
        """Return A @ state (used for adjoint gradients).

        Uses the x-mask-batched compiled form, which is cached on the
        generator itself — UCCSD excitation blocks share one x-mask
        across all their strings, so this is a single gather + multiply
        per call, reused across every ADAPT re-optimization that picks
        the same pool operator.
        """
        return self._compiled.apply(state)
