"""Gate fusion (paper §4.3).

Consecutive gates whose combined support stays within two qubits are
fused into a single opaque unitary.  The paper's design point is
explicit: *fuse only up to two qubits* — a fused 4x4 keeps the kernel
cheap, whereas larger fused matrices grow as 2^k x 2^k and lose the
bandwidth advantage.  We honor exactly that rule.

Fusion legality: gate ``g`` can be folded into an earlier gate ``F``
iff (a) ``F`` is the *latest* gate acting on any of ``g``'s qubits
(so no intervening gate on those qubits is reordered), and (b) the
union of their supports has size <= 2.  Gates on disjoint qubits
commute, which is why only ``g``'s own qubits constrain legality.

Output gates are named ``fused1``/``fused2`` and carry explicit
matrices; they execute through the dense kernels of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.ir.circuit import Circuit
from repro.ir.gates import Gate

__all__ = ["fuse_circuit", "FusionResult", "embed_1q_in_2q"]


def embed_1q_in_2q(m: np.ndarray, slot: int) -> np.ndarray:
    """Embed a 2x2 matrix acting on slot 0 (low bit) or 1 (high bit) of a
    two-qubit space (little-endian index ``b1 b0``)."""
    eye = np.eye(2, dtype=np.complex128)
    # index = b1*2 + b0; kron(A, B) acts with B on the low bit.
    return np.kron(m, eye) if slot == 1 else np.kron(eye, m)


def _expand(gate_matrix: np.ndarray, src: Tuple[int, ...], dst: Tuple[int, ...]) -> np.ndarray:
    """Expand ``gate_matrix`` on qubits ``src`` to the 2-qubit space of
    ``dst`` (both little-endian, ``dst`` has length 2 and contains src)."""
    if len(src) == 1:
        slot = dst.index(src[0])
        return embed_1q_in_2q(gate_matrix, slot)
    if src == dst:
        return gate_matrix
    # Same pair, swapped order: conjugate by SWAP (permutes index bits).
    perm = np.array([0, 2, 1, 3])
    return gate_matrix[np.ix_(perm, perm)]


@dataclass
class FusionResult:
    """Outcome of a fusion pass (the Fig. 4 quantities)."""

    circuit: Circuit
    original_gates: int
    fused_gates: int

    @property
    def reduction(self) -> float:
        """Fractional gate-count reduction, e.g. 0.52 for the paper's
        8-qubit UCCSD circuit."""
        if self.original_gates == 0:
            return 0.0
        return 1.0 - self.fused_gates / self.original_gates


def _fusible(gate: Gate) -> bool:
    return not gate.is_parameterized and gate.num_qubits <= 2


def fuse_circuit(circuit: Circuit, max_qubits: int = 2) -> FusionResult:
    """Run the fusion pass.

    Parameters
    ----------
    circuit:
        A *bound* circuit (symbolic-parameter gates act as fusion
        barriers, matching NWQ-Sim which fuses at execution time after
        parameters are known).
    max_qubits:
        Support limit for fused blocks; the paper's (and default)
        value is 2.  ``1`` restricts to single-qubit run fusion.
    """
    if max_qubits not in (1, 2):
        raise ValueError("fusion supports max_qubits of 1 or 2 (paper design point)")
    with obs.span("sim.fuse_circuit", gates=len(circuit), max_qubits=max_qubits):
        result = _fuse(circuit, max_qubits)
    if obs.enabled():
        obs.inc("repro_fusion_passes_total", help="Gate-fusion pass executions")
        obs.inc(
            "repro_fusion_gates_removed_total",
            result.original_gates - result.fused_gates,
            help="Gates eliminated by fusion",
        )
    return result


def _fuse(circuit: Circuit, max_qubits: int) -> FusionResult:
    out: List[Optional[Gate]] = []
    frontier: Dict[int, int] = {}

    def set_frontier(qubits: Sequence[int], idx: int) -> None:
        # Never move a frontier backwards: a fused block can absorb a
        # qubit whose most recent gate is *later* in the stream; that
        # later gate must stay the fusion anchor for that qubit.
        for q in qubits:
            frontier[q] = max(frontier.get(q, -1), idx)

    for g in circuit.gates:
        if _fusible(g):
            f_idxs = [frontier.get(q) for q in g.qubits]
            known = [i for i in f_idxs if i is not None]
            target_idx = max(known) if known else None
            if target_idx is not None:
                target = out[target_idx]
                if target is not None and _fusible(target):
                    union = tuple(sorted(set(target.qubits) | set(g.qubits)))
                    if len(union) <= max_qubits:
                        if len(union) == 1:
                            m = g.to_matrix() @ target.to_matrix()
                            fused = Gate("fused1", union, (), m)
                        else:
                            mt = _expand(target.to_matrix(), target.qubits, union)
                            mg = _expand(g.to_matrix(), g.qubits, union)
                            fused = Gate("fused2", union, (), mg @ mt)
                        out[target_idx] = fused
                        set_frontier(union, target_idx)
                        continue
        out.append(g)
        set_frontier(g.qubits, len(out) - 1)

    fused_gates = [g for g in out if g is not None]
    return FusionResult(
        circuit=Circuit(circuit.num_qubits, fused_gates),
        original_gates=len(circuit),
        fused_gates=len(fused_gates),
    )
