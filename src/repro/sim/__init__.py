"""The NWQ-Sim substrate: statevector and density-matrix simulators,
gate fusion, and expectation-value evaluation strategies."""

from repro.sim.backend import Backend, available_backends, get_backend, register_backend
from repro.sim.density_matrix import DensityMatrixSimulator
from repro.sim.expectation import (
    basis_change_circuit,
    expectation_basis_rotated,
    expectation_direct,
    expectation_sampled,
)
from repro.sim.fusion import FusionResult, fuse_circuit
from repro.sim.noise import (
    AmplitudeDampingChannel,
    BitFlipChannel,
    DepolarizingChannel,
    NoiseModel,
    PhaseDampingChannel,
    PhaseFlipChannel,
)
from repro.sim.batched import BatchedStatevectorSimulator
from repro.sim.checkpoint import (
    load_distributed,
    load_statevector,
    save_distributed,
    save_statevector,
)
from repro.sim.evolution import GeneratorEvolution, apply_pauli_rotation, terms_commute
from repro.sim.feynman import SchrodingerFeynmanSimulator, schmidt_decompose_gate
from repro.sim.mitigation import (
    ReadoutErrorModel,
    fold_circuit,
    mitigate_counts,
    zne_expectation,
)
from repro.sim.plan import ExecutionPlan, PlanOp, compile_circuit
from repro.sim.stabilizer import StabilizerSimulator, is_clifford_angle
from repro.sim.statevector import StatevectorSimulator

__all__ = [
    "StatevectorSimulator",
    "ExecutionPlan",
    "PlanOp",
    "compile_circuit",
    "BatchedStatevectorSimulator",
    "StabilizerSimulator",
    "is_clifford_angle",
    "GeneratorEvolution",
    "apply_pauli_rotation",
    "terms_commute",
    "save_statevector",
    "load_statevector",
    "save_distributed",
    "load_distributed",
    "fold_circuit",
    "zne_expectation",
    "ReadoutErrorModel",
    "mitigate_counts",
    "SchrodingerFeynmanSimulator",
    "schmidt_decompose_gate",
    "DensityMatrixSimulator",
    "fuse_circuit",
    "FusionResult",
    "expectation_direct",
    "expectation_basis_rotated",
    "expectation_sampled",
    "basis_change_circuit",
    "Backend",
    "get_backend",
    "register_backend",
    "available_backends",
    "NoiseModel",
    "DepolarizingChannel",
    "AmplitudeDampingChannel",
    "PhaseDampingChannel",
    "BitFlipChannel",
    "PhaseFlipChannel",
]
