"""Batched statevector simulation (paper §6.2, implemented).

The paper lists batch execution — simulating multiple VQE circuits
simultaneously to raise device utilization — as future work.  This
module implements the single-device half of it: ``B`` instances of the
*same* parameterized circuit with *different* parameter values evolve
together as a ``(B, 2^n)`` amplitude matrix, so every gate application
is one vectorized operation across the whole batch (the NumPy analogue
of launching concurrent GPU kernels [cCUDA, paper ref 13]).

This is exactly the workload VQE generates: parameter-shift gradients
need ``2 m`` evaluations of one circuit at shifted angles, optimizer
line searches need several, and parameter sweeps need hundreds.  The
companion ``repro.opt.parameter_shift.batched_parameter_shift_gradient``
and the batching benchmark quantify the win over one-at-a-time
execution.

Parameterized gates receive a per-batch-row angle vector; fixed gates
broadcast one matrix over the batch.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro import obs
from repro.ir.circuit import Circuit
from repro.ir.compiled import CompiledPauliSum, compile_observable
from repro.ir.gates import Gate, Parameter
from repro.ir.pauli import PauliSum
from repro.utils.bitops import indices_1q, indices_2q

__all__ = ["BatchedStatevectorSimulator"]


class BatchedStatevectorSimulator:
    """B copies of an n-qubit register evolving under one circuit
    template with per-copy parameters."""

    def __init__(
        self,
        num_qubits: int,
        batch_size: int,
        mem_category: str = "batched_statevector",
    ):
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if num_qubits > 26:
            raise ValueError("batched mode limited to 26 qubits per instance")
        self.num_qubits = num_qubits
        self.batch_size = batch_size
        self.dim = 1 << num_qubits
        self.states = np.zeros((batch_size, self.dim), dtype=np.complex128)
        self.states[:, 0] = 1.0
        obs.mem_track(self, mem_category, self.states.nbytes)

    def reset(self) -> None:
        self.states.fill(0)
        self.states[:, 0] = 1.0

    # -- gate application ---------------------------------------------------

    def _apply_1q_fixed(self, m: np.ndarray, q: int) -> None:
        i0, i1 = indices_1q(self.num_qubits, q)
        a0 = self.states[:, i0]
        a1 = self.states[:, i1]
        self.states[:, i0] = m[0, 0] * a0 + m[0, 1] * a1
        self.states[:, i1] = m[1, 0] * a0 + m[1, 1] * a1

    def _apply_1q_batched(self, ms: np.ndarray, q: int) -> None:
        """ms has shape (B, 2, 2): a distinct 1q matrix per batch row."""
        i0, i1 = indices_1q(self.num_qubits, q)
        a0 = self.states[:, i0]
        a1 = self.states[:, i1]
        self.states[:, i0] = ms[:, 0, 0, None] * a0 + ms[:, 0, 1, None] * a1
        self.states[:, i1] = ms[:, 1, 0, None] * a0 + ms[:, 1, 1, None] * a1

    def _apply_2q_fixed(self, m: np.ndarray, q0: int, q1: int) -> None:
        idx = np.vstack(indices_2q(self.num_qubits, q0, q1))
        sub = self.states[:, idx]  # (B, 4, dim/4)
        self.states[:, idx] = np.einsum("rc,bcj->brj", m, sub)

    def _apply_2q_batched(self, ms: np.ndarray, q0: int, q1: int) -> None:
        idx = np.vstack(indices_2q(self.num_qubits, q0, q1))
        sub = self.states[:, idx]  # (B, 4, dim/4)
        self.states[:, idx] = np.einsum("brc,bcj->brj", ms, sub)

    @staticmethod
    def _batched_matrix(name: str, angles: np.ndarray) -> np.ndarray:
        """Per-batch gate matrices for single-parameter rotation gates."""
        b = angles.shape[0]
        c = np.cos(angles / 2.0)
        s = np.sin(angles / 2.0)
        if name == "rx":
            out = np.zeros((b, 2, 2), dtype=np.complex128)
            out[:, 0, 0] = out[:, 1, 1] = c
            out[:, 0, 1] = out[:, 1, 0] = -1j * s
            return out
        if name == "ry":
            out = np.zeros((b, 2, 2), dtype=np.complex128)
            out[:, 0, 0] = out[:, 1, 1] = c
            out[:, 0, 1] = -s
            out[:, 1, 0] = s
            return out
        if name == "rz":
            out = np.zeros((b, 2, 2), dtype=np.complex128)
            e = np.exp(-0.5j * angles)
            out[:, 0, 0] = e
            out[:, 1, 1] = e.conj()
            return out
        if name == "p":
            out = np.zeros((b, 2, 2), dtype=np.complex128)
            out[:, 0, 0] = 1.0
            out[:, 1, 1] = np.exp(1j * angles)
            return out
        if name == "rzz":
            e = np.exp(-0.5j * angles)
            out = np.zeros((b, 4, 4), dtype=np.complex128)
            out[:, 0, 0] = out[:, 3, 3] = e
            out[:, 1, 1] = out[:, 2, 2] = e.conj()
            return out
        if name == "rxx":
            out = np.zeros((b, 4, 4), dtype=np.complex128)
            for d in range(4):
                out[:, d, d] = c
            isn = -1j * s
            out[:, 0, 3] = out[:, 3, 0] = out[:, 1, 2] = out[:, 2, 1] = isn
            return out
        if name == "ryy":
            out = np.zeros((b, 4, 4), dtype=np.complex128)
            for d in range(4):
                out[:, d, d] = c
            out[:, 0, 3] = out[:, 3, 0] = 1j * s
            out[:, 1, 2] = out[:, 2, 1] = -1j * s
            return out
        if name == "cp":
            out = np.zeros((b, 4, 4), dtype=np.complex128)
            out[:, 0, 0] = out[:, 1, 1] = out[:, 2, 2] = 1.0
            out[:, 3, 3] = np.cos(angles) + 1j * np.sin(angles)
            return out
        if name == "crz":
            e = np.cos(angles / 2.0) - 1j * np.sin(angles / 2.0)
            out = np.zeros((b, 4, 4), dtype=np.complex128)
            out[:, 0, 0] = out[:, 2, 2] = 1.0
            out[:, 1, 1] = e
            out[:, 3, 3] = e.conj()
            return out
        raise ValueError(
            f"no batched form for parameterized gate {name!r}; supported "
            "affine-parameter gates: rx, ry, rz, p, cp, crz, rzz, rxx, ryy"
        )

    @staticmethod
    def _batched_diag(name: str, angles: np.ndarray):
        """Per-row diagonal factors for affine-parameter phase gates.

        Returns ``[(sub_index, values), ...]`` listing only the
        non-identity columns of the (batched) diagonal — the same
        sparse update the scalar plan path applies — or ``None`` when
        the gate is not diagonal in the computational basis.  The
        trig forms mirror :meth:`repro.sim.plan.PlanOp.resolve`
        exactly so batched and scalar execution agree bitwise.
        """
        if name == "rz":
            h = angles / 2.0
            e = np.cos(h) - 1j * np.sin(h)
            return [(0, e), (1, e.conj())]
        if name == "p":
            return [(1, np.cos(angles) + 1j * np.sin(angles))]
        if name == "rzz":
            h = angles / 2.0
            e = np.cos(h) - 1j * np.sin(h)
            ec = e.conj()
            return [(0, e), (1, ec), (2, ec), (3, e)]
        if name == "cp":
            return [(3, np.cos(angles) + 1j * np.sin(angles))]
        if name == "crz":
            h = angles / 2.0
            e = np.cos(h) - 1j * np.sin(h)
            return [(1, e), (3, e.conj())]
        return None

    # -- execution ------------------------------------------------------------

    def run(
        self,
        circuit: Circuit,
        parameter_table: Mapping[str, np.ndarray],
        reset: bool = True,
    ) -> np.ndarray:
        """Execute the circuit template with per-row parameters.

        ``parameter_table[name]`` is a length-B vector of values for
        the named circuit parameter.  Returns the (B, 2^n) amplitude
        matrix (live buffer).
        """
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit width mismatch")
        missing = set(circuit.parameters) - set(parameter_table)
        if missing:
            raise ValueError(f"missing parameter vectors: {sorted(missing)}")
        table = {
            k: np.asarray(v, dtype=float) for k, v in parameter_table.items()
        }
        for k, v in table.items():
            if v.shape != (self.batch_size,):
                raise ValueError(
                    f"parameter {k!r}: expected shape ({self.batch_size},)"
                )
        if reset:
            self.reset()
        for g in circuit.gates:
            if g.is_parameterized:
                (p,) = g.params  # single-angle rotation gates only
                if not isinstance(p, Parameter):
                    raise ValueError("mixed symbolic/concrete params unsupported")
                angles = p.coeff * table[p.name] + p.offset
                ms = self._batched_matrix(g.name, angles)
                if g.num_qubits == 1:
                    self._apply_1q_batched(ms, g.qubits[0])
                else:
                    self._apply_2q_batched(ms, g.qubits[0], g.qubits[1])
            else:
                m = g.to_matrix()
                if g.num_qubits == 1:
                    self._apply_1q_fixed(m, g.qubits[0])
                elif g.num_qubits == 2:
                    self._apply_2q_fixed(m, g.qubits[0], g.qubits[1])
                else:
                    raise ValueError("batched mode supports <=2-qubit gates")
        return self.states

    def run_plan(
        self,
        plan,
        param_rows: np.ndarray,
        reset: bool = True,
    ) -> np.ndarray:
        """Execute a compiled :class:`repro.sim.plan.ExecutionPlan` with
        per-row parameter vectors.

        ``param_rows`` has shape (B, P), row b holding the flat
        parameter vector (ordered like ``plan.parameters``) for batch
        instance b.  Dispatches on the plan's op metadata — static ops
        (including fused blocks and folded diagonal passes) broadcast
        one matrix/diagonal over the batch; parametric ops build their
        per-row matrices once per op.  Returns the (B, 2^n) buffer.
        """
        if plan.num_qubits != self.num_qubits:
            raise ValueError("plan width mismatch")
        param_rows = np.asarray(param_rows, dtype=float)
        if param_rows.shape != (self.batch_size, plan.num_parameters):
            raise ValueError(
                f"expected param_rows of shape "
                f"({self.batch_size}, {plan.num_parameters})"
            )
        if reset:
            self.reset()
        n = self.num_qubits
        for op in plan.ops:
            kind = op.kind
            if kind == "x":
                i0, i1 = indices_1q(n, op.qubits[0])
                tmp = self.states[:, i0].copy()
                self.states[:, i0] = self.states[:, i1]
                self.states[:, i1] = tmp
            elif kind == "cx":
                idx = indices_2q(n, op.qubits[0], op.qubits[1])
                tmp = self.states[:, idx[1]].copy()
                self.states[:, idx[1]] = self.states[:, idx[3]]
                self.states[:, idx[3]] = tmp
            elif kind == "diag1":
                i0, i1 = indices_1q(n, op.qubits[0])
                d0, d1 = op.data
                if d0 != 1.0:
                    self.states[:, i0] *= d0
                if d1 != 1.0:
                    self.states[:, i1] *= d1
            elif kind == "diag2":
                idx = indices_2q(n, op.qubits[0], op.qubits[1])
                for sub in range(4):
                    if op.data[sub] != 1.0:
                        self.states[:, idx[sub]] *= op.data[sub]
            elif kind == "diag_full":
                self.states *= op.data[None, :]
            elif kind == "dense1":
                self._apply_1q_fixed(op.data, op.qubits[0])
            elif kind == "dense2":
                self._apply_2q_fixed(op.data, op.qubits[0], op.qubits[1])
            elif not op.is_parametric:
                raise ValueError(
                    f"batched plan execution supports <=2-qubit static ops; "
                    f"got kind {kind!r} on qubits {tuple(op.qubits)}"
                )
            else:
                refs = op.param_refs
                if len(refs) != 1 or refs[0][0] != "p":
                    raise ValueError(
                        f"batched plan execution supports single-angle "
                        f"affine-parameter gates; {op.gate_name!r} has "
                        f"parameter refs {refs!r}"
                    )
                _, coeff, slot, offset = refs[0]
                angles = coeff * param_rows[:, slot] + offset
                diag = self._batched_diag(op.gate_name, angles)
                if diag is not None:
                    if len(op.qubits) == 1:
                        idx = indices_1q(n, op.qubits[0])
                    else:
                        idx = indices_2q(n, op.qubits[0], op.qubits[1])
                    for sub, vals in diag:
                        self.states[:, idx[sub]] *= vals[:, None]
                else:
                    ms = self._batched_matrix(op.gate_name, angles)
                    if len(op.qubits) == 1:
                        self._apply_1q_batched(ms, op.qubits[0])
                    else:
                        self._apply_2q_batched(ms, op.qubits[0], op.qubits[1])
        return self.states

    # -- observation ---------------------------------------------------------------

    def expectations(
        self, observable: "PauliSum | CompiledPauliSum"
    ) -> np.ndarray:
        """<psi_b|H|psi_b> for every batch row.

        The observable is compiled to its x-mask-batched form (cached
        on the ``PauliSum``), so the whole batch pays one gather +
        multiply + reduction per distinct x-mask rather than per term.
        """
        if observable.num_qubits != self.num_qubits:
            raise ValueError("observable width mismatch")
        out = compile_observable(observable).expectations(self.states)
        if np.any(np.abs(out.imag) > 1e-8 * np.maximum(1.0, np.abs(out.real))):
            raise ValueError("non-Hermitian observable")
        return out.real
