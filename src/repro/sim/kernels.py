"""Vectorized gate-application kernels.

These are the NumPy analogue of NWQ-Sim's GPU gate kernels: each gate
application is a small, fixed number of vectorized passes over the
state vector, with no per-amplitude Python loop.  The addressing trick
is the standard one — enumerate the 2^(n-k) amplitude groups of a
k-qubit gate by inserting zero bits at the target-qubit positions
(see ``repro.utils.bitops.insert_zero_bit``) — which mirrors how
GPU threads are indexed in the real simulator.

All kernels update the state **in place** (in-place operations avoid a
full-vector allocation per gate, the dominant memory cost at scale) and
assume ``state`` is a contiguous complex128 array of length 2^n.

Addressing tables are pulled from the process-wide LRU cache in
``repro.utils.bitops`` (``indices_1q`` / ``indices_2q``): a VQE
campaign applies the same few (width, qubit) combinations millions of
times, so the tables are built once and shared.  They are read-only —
kernels only ever use them as gather/scatter indices.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.bitops import indices_1q, indices_2q, insert_zero_bit

__all__ = [
    "apply_1q",
    "apply_2q",
    "apply_diag_1q",
    "apply_diag_2q",
    "apply_x",
    "apply_cx",
    "apply_kq_dense",
]


def apply_1q(state: np.ndarray, matrix: np.ndarray, qubit: int, n: int) -> None:
    """Apply a dense 2x2 unitary to ``qubit``; two vectorized passes."""
    i0, i1 = indices_1q(n, qubit)
    a0 = state[i0]
    a1 = state[i1]
    m = matrix
    state[i0] = m[0, 0] * a0 + m[0, 1] * a1
    state[i1] = m[1, 0] * a0 + m[1, 1] * a1


def apply_diag_1q(state: np.ndarray, d0: complex, d1: complex, qubit: int, n: int) -> None:
    """Apply diag(d0, d1) on ``qubit`` — no gather needed, pure scaling."""
    i0, i1 = indices_1q(n, qubit)
    if d0 != 1.0:
        state[i0] *= d0
    if d1 != 1.0:
        state[i1] *= d1


def apply_x(state: np.ndarray, qubit: int, n: int) -> None:
    """Pauli-X as a pure swap of amplitude halves."""
    i0, i1 = indices_1q(n, qubit)
    tmp = state[i0].copy()
    state[i0] = state[i1]
    state[i1] = tmp


def apply_2q(
    state: np.ndarray, matrix: np.ndarray, q0: int, q1: int, n: int
) -> None:
    """Apply a dense 4x4 unitary to ``(q0, q1)``.

    Matrix convention is little-endian on (q0, q1): row/col index
    ``b1 b0`` with ``b0`` the state of ``q0`` (matches
    ``repro.ir.gates``).
    """
    i00, i01, i10, i11 = indices_2q(n, q0, q1)
    a00 = state[i00]
    a01 = state[i01]
    a10 = state[i10]
    a11 = state[i11]
    m = matrix
    state[i00] = m[0, 0] * a00 + m[0, 1] * a01 + m[0, 2] * a10 + m[0, 3] * a11
    state[i01] = m[1, 0] * a00 + m[1, 1] * a01 + m[1, 2] * a10 + m[1, 3] * a11
    state[i10] = m[2, 0] * a00 + m[2, 1] * a01 + m[2, 2] * a10 + m[2, 3] * a11
    state[i11] = m[3, 0] * a00 + m[3, 1] * a01 + m[3, 2] * a10 + m[3, 3] * a11


def apply_diag_2q(
    state: np.ndarray,
    diag: Sequence[complex],
    q0: int,
    q1: int,
    n: int,
) -> None:
    """Apply diag(d00, d01, d10, d11) on (q0, q1) by scaling only."""
    tables = indices_2q(n, q0, q1)
    for sub, idx in enumerate(tables):
        d = diag[sub]
        if d != 1.0:
            state[idx] *= d


def apply_cx(state: np.ndarray, control: int, target: int, n: int) -> None:
    """CNOT as a conditional swap — half the traffic of a dense 4x4."""
    # indices_2q is keyed on (control, target): sub-block bit 0 is the
    # control, so blocks 1 (c=1, t=0) and 3 (c=1, t=1) swap.
    _, ic, _, ict = indices_2q(n, control, target)
    tmp = state[ic].copy()
    state[ic] = state[ict]
    state[ict] = tmp


def apply_kq_dense(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], n: int
) -> None:
    """General k-qubit dense unitary (used by tests and by fusion when
    validating; production circuits stay at k <= 2 per the paper's
    design point §4.3)."""
    k = len(qubits)
    dim_sub = 1 << k
    if matrix.shape != (dim_sub, dim_sub):
        raise ValueError("matrix shape mismatch")
    base = np.arange(1 << (n - k), dtype=np.int64)
    i0 = base
    for p in sorted(qubits):
        i0 = insert_zero_bit(i0, p)
    idx = np.empty((dim_sub, i0.shape[0]), dtype=np.int64)
    for sub in range(dim_sub):
        offset = 0
        for j, q in enumerate(qubits):
            if (sub >> j) & 1:
                offset |= 1 << q
        idx[sub] = i0 | offset
    block = state[idx]  # (dim_sub, groups)
    state[idx] = matrix @ block
