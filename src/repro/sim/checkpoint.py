"""Checkpoint/restart for long simulations.

Multi-hour VQE campaigns on shared HPC systems live inside batch-queue
walltime limits; checkpointing the simulator state (and the optimizer
position) between gates or iterations is table stakes.  Statevectors
are stored as compressed ``.npz`` with integrity metadata (register
width, gate counter, norm) that is verified on load; the distributed
simulator checkpoints per-rank slices plus the qubit layout, mirroring
how each rank would write its own shard on a parallel filesystem.
"""

from __future__ import annotations

import json
import os
from typing import Optional

import numpy as np

from repro.hpc.distributed import DistributedStatevector
from repro.sim.statevector import StatevectorSimulator

__all__ = [
    "save_statevector",
    "load_statevector",
    "save_distributed",
    "load_distributed",
]

_FORMAT_VERSION = 1


def save_statevector(sim: StatevectorSimulator, path: str) -> None:
    """Write a single-device simulator checkpoint."""
    np.savez_compressed(
        path,
        state=sim.state,
        meta=json.dumps(
            {
                "version": _FORMAT_VERSION,
                "num_qubits": sim.num_qubits,
                "gates_applied": sim.gates_applied,
            }
        ),
    )


def load_statevector(path: str) -> StatevectorSimulator:
    """Restore a single-device simulator checkpoint (verifies shape
    and normalization)."""
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(str(data["meta"]))
        state = data["state"]
    if meta.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version: {meta.get('version')}")
    n = int(meta["num_qubits"])
    if state.shape != (1 << n,):
        raise ValueError("checkpoint state shape does not match metadata")
    norm = float(np.linalg.norm(state))
    if not np.isclose(norm, 1.0, atol=1e-6):
        raise ValueError(f"corrupt checkpoint: |state| = {norm}")
    sim = StatevectorSimulator(n)
    sim.set_state(state, copy=False)
    sim.gates_applied = int(meta["gates_applied"])
    return sim


def save_distributed(dsv: DistributedStatevector, directory: str) -> None:
    """Write one shard per rank plus a manifest (parallel-FS style)."""
    os.makedirs(directory, exist_ok=True)
    manifest = {
        "version": _FORMAT_VERSION,
        "num_qubits": dsv.num_qubits,
        "num_ranks": dsv.num_ranks,
        "layout": dsv.layout,
        "exchanges": dsv.exchanges,
        "gates_applied": dsv.gates_applied,
    }
    with open(os.path.join(directory, "manifest.json"), "w") as fh:
        json.dump(manifest, fh)
    for k, s in enumerate(dsv.slices):
        np.save(os.path.join(directory, f"rank_{k:05d}.npy"), s)


def load_distributed(directory: str) -> DistributedStatevector:
    """Restore a distributed checkpoint, verifying shard consistency."""
    with open(os.path.join(directory, "manifest.json")) as fh:
        manifest = json.load(fh)
    if manifest.get("version") != _FORMAT_VERSION:
        raise ValueError("unsupported checkpoint version")
    dsv = DistributedStatevector(
        int(manifest["num_qubits"]), int(manifest["num_ranks"])
    )
    for k in range(dsv.num_ranks):
        shard = np.load(os.path.join(directory, f"rank_{k:05d}.npy"))
        if shard.shape != (dsv.local_dim,):
            raise ValueError(f"shard {k} has wrong shape")
        dsv.slices[k] = shard.astype(np.complex128)
    total = sum(float(np.vdot(s, s).real) for s in dsv.slices)
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"corrupt checkpoint: total norm^2 = {total}")
    dsv.layout = [int(x) for x in manifest["layout"]]
    dsv.exchanges = int(manifest["exchanges"])
    dsv.gates_applied = int(manifest["gates_applied"])
    return dsv
