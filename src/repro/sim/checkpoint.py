"""Checkpoint/restart for long simulations.

Multi-hour VQE campaigns on shared HPC systems live inside batch-queue
walltime limits; checkpointing the simulator state (and the optimizer
position) between gates or iterations is table stakes.  Statevectors
are stored as compressed ``.npz`` with integrity metadata (register
width, gate counter, norm) that is verified on load; the distributed
simulator checkpoints per-rank slices plus the qubit layout, mirroring
how each rank would write its own shard on a parallel filesystem.

All writes are *atomic*: payloads land in a temporary file (or
directory) first and are ``os.replace``d into place, so a crash
mid-write — the exact scenario the fault-tolerance layer
(``repro.core.campaign``) recovers from — can never leave a
half-written checkpoint that exists but fails to load.  Loads verify
everything they can (format version, shard census, shapes, norm) and
always raise ``ValueError`` with a descriptive message on corruption.
"""

from __future__ import annotations

import json
import os
import shutil
import zipfile
from typing import List, Optional

import numpy as np

from repro.hpc.distributed import DistributedStatevector
from repro.sim.statevector import StatevectorSimulator

__all__ = [
    "save_statevector",
    "load_statevector",
    "save_distributed",
    "load_distributed",
]

_FORMAT_VERSION = 1


def _npz_path(path: str) -> str:
    """``np.savez`` appends ``.npz`` when absent; normalize up front so
    the atomic rename targets the real final name."""
    return path if path.endswith(".npz") else path + ".npz"


def save_statevector(sim: StatevectorSimulator, path: str) -> None:
    """Write a single-device simulator checkpoint (atomically)."""
    final = _npz_path(path)
    tmp = final + ".tmp.npz"
    try:
        np.savez_compressed(
            tmp,
            state=sim.state,
            meta=json.dumps(
                {
                    "version": _FORMAT_VERSION,
                    "num_qubits": sim.num_qubits,
                    "gates_applied": sim.gates_applied,
                }
            ),
        )
        os.replace(tmp, final)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def load_statevector(path: str) -> StatevectorSimulator:
    """Restore a single-device simulator checkpoint (verifies shape
    and normalization)."""
    final = _npz_path(path)
    try:
        with np.load(final, allow_pickle=False) as data:
            keys = set(data.files)
            meta_raw = str(data["meta"]) if "meta" in keys else None
            state = data["state"] if "state" in keys else None
    except (zipfile.BadZipFile, OSError, EOFError, ValueError) as err:
        # ValueError covers np.load rejecting non-.npy payloads (it
        # mistakes arbitrary bytes for pickled data)
        raise ValueError(
            f"corrupt or truncated checkpoint {final!r}: {err}"
        ) from err
    if meta_raw is None or state is None:
        raise ValueError(
            f"corrupt checkpoint {final!r}: missing 'state'/'meta' entries"
        )
    try:
        meta = json.loads(meta_raw)
    except json.JSONDecodeError as err:
        raise ValueError(
            f"corrupt checkpoint {final!r}: unreadable metadata: {err}"
        ) from err
    if meta.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version: {meta.get('version')}")
    n = int(meta["num_qubits"])
    if state.shape != (1 << n,):
        raise ValueError("checkpoint state shape does not match metadata")
    norm = float(np.linalg.norm(state))
    if not np.isclose(norm, 1.0, atol=1e-6):
        raise ValueError(f"corrupt checkpoint: |state| = {norm}")
    sim = StatevectorSimulator(n)
    sim.set_state(state, copy=False)
    sim.gates_applied = int(meta["gates_applied"])
    return sim


def save_distributed(dsv: DistributedStatevector, directory: str) -> None:
    """Write one shard per rank plus a manifest (parallel-FS style).

    The whole checkpoint is assembled in a sibling temp directory and
    swapped into place, so ``directory`` only ever holds a complete,
    self-consistent set of shards.  Any previous checkpoint at the same
    path is replaced.
    """
    directory = os.path.normpath(directory)
    tmp = directory + ".tmp"
    old = directory + ".old"
    for stale in (tmp, old):
        if os.path.isdir(stale):
            shutil.rmtree(stale)
    os.makedirs(tmp)
    try:
        manifest = {
            "version": _FORMAT_VERSION,
            "num_qubits": dsv.num_qubits,
            "num_ranks": dsv.num_ranks,
            "layout": dsv.layout,
            "exchanges": dsv.exchanges,
            "gates_applied": dsv.gates_applied,
        }
        for k, s in enumerate(dsv.slices):
            np.save(os.path.join(tmp, f"rank_{k:05d}.npy"), s)
        # manifest last: a directory without one is visibly incomplete
        with open(os.path.join(tmp, "manifest.json"), "w") as fh:
            json.dump(manifest, fh)
        if os.path.isdir(directory):
            os.replace(directory, old)
        os.replace(tmp, directory)
    finally:
        if os.path.isdir(tmp):
            shutil.rmtree(tmp)
        # only discard the displaced previous checkpoint once the new
        # one is in place; otherwise restore it
        if os.path.isdir(old):
            if os.path.isdir(directory):
                shutil.rmtree(old)
            else:
                os.replace(old, directory)


def load_distributed(directory: str) -> DistributedStatevector:
    """Restore a distributed checkpoint, verifying shard consistency.

    The manifest's rank count is validated against the shards actually
    present before anything is read, so a lost or partially copied
    shard surfaces as a clear ``ValueError`` naming the missing ranks
    rather than a bare ``FileNotFoundError`` deep in ``np.load``.
    """
    manifest_path = os.path.join(directory, "manifest.json")
    if not os.path.isfile(manifest_path):
        raise ValueError(
            f"not a distributed checkpoint: {directory!r} has no manifest.json"
        )
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    except (json.JSONDecodeError, OSError) as err:
        raise ValueError(f"corrupt checkpoint manifest in {directory!r}: {err}") from err
    if manifest.get("version") != _FORMAT_VERSION:
        raise ValueError("unsupported checkpoint version")
    num_ranks = int(manifest["num_ranks"])
    missing: List[int] = [
        k
        for k in range(num_ranks)
        if not os.path.isfile(os.path.join(directory, f"rank_{k:05d}.npy"))
    ]
    if missing:
        shown = ", ".join(str(k) for k in missing[:8])
        more = "" if len(missing) <= 8 else f" (+{len(missing) - 8} more)"
        raise ValueError(
            f"distributed checkpoint {directory!r} is missing shard(s) "
            f"{shown}{more} of {num_ranks} declared in the manifest"
        )
    present = sorted(
        f for f in os.listdir(directory) if f.startswith("rank_") and f.endswith(".npy")
    )
    if len(present) != num_ranks:
        raise ValueError(
            f"distributed checkpoint {directory!r} holds {len(present)} shards "
            f"but the manifest declares num_ranks={num_ranks}"
        )
    dsv = DistributedStatevector(int(manifest["num_qubits"]), num_ranks)
    for k in range(dsv.num_ranks):
        shard_path = os.path.join(directory, f"rank_{k:05d}.npy")
        try:
            shard = np.load(shard_path)
        except (ValueError, OSError, EOFError) as err:
            raise ValueError(
                f"corrupt or truncated shard {k} in {directory!r}: {err}"
            ) from err
        if shard.shape != (dsv.local_dim,):
            raise ValueError(f"shard {k} has wrong shape")
        dsv.slices[k] = shard.astype(np.complex128)
    total = sum(float(np.vdot(s, s).real) for s in dsv.slices)
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"corrupt checkpoint: total norm^2 = {total}")
    dsv.layout = [int(x) for x in manifest["layout"]]
    dsv.exchanges = int(manifest["exchanges"])
    dsv.gates_applied = int(manifest["gates_applied"])
    return dsv
