"""Expectation-value evaluation strategies (paper §4.2).

Three evaluation paths, in decreasing order of "exactness" and
increasing order of hardware faithfulness:

``expectation_direct``
    The paper's direct method: compute <psi|H|psi> from the full
    amplitude vector with vectorized per-term application — exact, no
    circuits, no sampling noise.  This is NWQ-Sim's chemistry-mode
    fast path.

``expectation_basis_rotated``
    The measurement-faithful path: for each qubit-wise-commuting group
    of Pauli terms, apply the shared basis-change circuit to a copy of
    the (cached) post-ansatz state and reduce the diagonal.  Exact like
    the direct method, but exercises the same circuit suffixes a real
    device would run — this is the path whose gate count Fig. 3
    measures.

``expectation_sampled``
    The traditional baseline the paper compares against (§4.2.1):
    finite-shot sampling from the rotated state, with statistical
    error ~ 1/sqrt(shots).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.ir.circuit import Circuit
from repro.ir.compiled import CompiledPauliSum, compile_observable
from repro.ir.pauli import PauliString, PauliSum
from repro.sim.statevector import StatevectorSimulator
from repro.utils.bitops import basis_indices, count_set_bits

__all__ = [
    "basis_change_circuit",
    "expectation_direct",
    "expectation_basis_rotated",
    "expectation_sampled",
    "diagonal_expectation",
]


def basis_change_circuit(group: Sequence[PauliString], num_qubits: int) -> Circuit:
    """Circuit rotating every term of a qubit-wise commuting group to
    Z-type: H for X factors, Sdg+H for Y factors (§4.1.2)."""
    basis: Dict[int, str] = {}
    for pstr in group:
        for q in pstr.support:
            op = pstr.op_on(q)
            prev = basis.get(q)
            if prev is not None and prev != op:
                raise ValueError(
                    "terms are not qubit-wise commuting; cannot share a basis"
                )
            basis[q] = op
    circ = Circuit(num_qubits)
    for q in sorted(basis):
        op = basis[q]
        if op == "X":
            circ.h(q)
        elif op == "Y":
            circ.sdg(q).h(q)
    return circ


def diagonal_expectation(probabilities: np.ndarray, z_mask: int) -> float:
    """<Z-string> from outcome probabilities: sum_b p_b (-1)^parity(b & mask)."""
    dim = probabilities.shape[0]
    idx = basis_indices(dim.bit_length() - 1)
    signs = 1.0 - 2.0 * (count_set_bits(idx & z_mask) & 1)
    return float(np.dot(probabilities, signs))


def expectation_direct(
    state: np.ndarray, hamiltonian: Union[PauliSum, CompiledPauliSum]
) -> float:
    """Exact <psi|H|psi> from amplitudes (direct method, §4.2.2).

    The observable is compiled to its x-mask-batched form on first use
    (one pass per distinct x-mask instead of per term; see
    :mod:`repro.ir.compiled`) and the compiled form is reused across
    calls — pass either a ``PauliSum`` or a ``CompiledPauliSum``.

    Raises if the expectation has a non-negligible imaginary part
    (i.e. H was not Hermitian).
    """
    compiled = compile_observable(hamiltonian)
    with obs.span(
        "sim.expectation_direct",
        terms=compiled.num_terms,
        passes=compiled.num_passes,
    ):
        val = compiled.expectation(state)
    if obs.enabled():
        obs.inc(
            "repro_expectation_evaluations_total",
            help="Expectation evaluations by method",
            labels={"method": "direct"},
        )
    if abs(val.imag) > 1e-8 * max(1.0, abs(val.real)):
        raise ValueError(f"non-Hermitian observable: <H> = {val}")
    return float(val.real)


def expectation_basis_rotated(
    state: np.ndarray,
    hamiltonian: PauliSum,
    return_gate_count: bool = False,
    sim: Optional[StatevectorSimulator] = None,
) -> "float | Tuple[float, int]":
    """Exact <H> via shared-basis rotations of a cached state.

    For each qubit-wise-commuting group: copy the post-ansatz state,
    apply the group's basis-change circuit, and reduce each member term
    against the rotated probability vector.  The returned gate count is
    the number of *additional* gates beyond the single ansatz execution
    — the caching-mode cost of Fig. 3.

    ``sim`` lets repeated evaluations (estimators, Fig. 3 sweeps) reuse
    one simulator instead of allocating a fresh 2^n register per call;
    the measurement grouping itself is memoized on the ``PauliSum``.
    """
    n = hamiltonian.num_qubits
    if sim is None:
        sim = StatevectorSimulator(n)
    elif sim.num_qubits != n:
        raise ValueError("simulator width does not match observable")
    total = 0.0
    extra_gates = 0
    rotation_span = obs.span("sim.expectation_basis_rotated", qubits=n)
    if obs.enabled():
        obs.inc(
            "repro_expectation_evaluations_total",
            help="Expectation evaluations by method",
            labels={"method": "basis_rotated"},
        )
    with rotation_span:
        total, extra_gates = _basis_rotated_sum(sim, state, hamiltonian)
    rotation_span.set_attribute("extra_gates", extra_gates)
    if return_gate_count:
        return total, extra_gates
    return total


def _basis_rotated_sum(
    sim: StatevectorSimulator, state: np.ndarray, hamiltonian: PauliSum
) -> Tuple[float, int]:
    total = 0.0
    extra_gates = 0
    n = hamiltonian.num_qubits
    for group in hamiltonian.group_qubitwise_commuting():
        strings = [p for _, p in group]
        circ = basis_change_circuit(strings, n)
        identity_only = all(p.is_identity for p in strings)
        if identity_only:
            total += sum(c.real for c, _ in group)
            continue
        sim.set_state(state, copy=True)
        sim.apply_circuit(circ)
        extra_gates += len(circ)
        probs = sim.probabilities()
        for coeff, pstr in group:
            if pstr.is_identity:
                total += coeff.real
                continue
            z_mask = pstr.x | pstr.z  # support becomes Z-type after rotation
            total += coeff.real * diagonal_expectation(probs, z_mask)
    return total, extra_gates


def expectation_sampled(
    state: np.ndarray,
    hamiltonian: PauliSum,
    shots_per_group: int,
    rng: Optional[np.random.Generator] = None,
    sim: Optional[StatevectorSimulator] = None,
) -> float:
    """Finite-shot estimate of <H> (the traditional baseline, §4.2.1).

    ``sim`` lets repeated evaluations reuse one simulator; the
    measurement grouping is memoized on the ``PauliSum``.
    """
    rng = rng or np.random.default_rng()
    n = hamiltonian.num_qubits
    if sim is None:
        sim = StatevectorSimulator(n)
    elif sim.num_qubits != n:
        raise ValueError("simulator width does not match observable")
    total = 0.0
    sampling_span = obs.span(
        "sim.expectation_sampled", qubits=n, shots_per_group=shots_per_group
    )
    if obs.enabled():
        obs.inc(
            "repro_expectation_evaluations_total",
            help="Expectation evaluations by method",
            labels={"method": "sampled"},
        )
    with sampling_span:
        for group in hamiltonian.group_qubitwise_commuting():
            strings = [p for _, p in group]
            if all(p.is_identity for p in strings):
                total += sum(c.real for c, _ in group)
                continue
            circ = basis_change_circuit(strings, n)
            sim.set_state(state, copy=True)
            sim.apply_circuit(circ)
            samples = sim.sample(shots_per_group, rng)
            for coeff, pstr in group:
                if pstr.is_identity:
                    total += coeff.real
                    continue
                z_mask = pstr.x | pstr.z
                signs = 1.0 - 2.0 * (count_set_bits(samples & z_mask) & 1)
                total += coeff.real * float(np.mean(signs))
    return total
