"""Schrödinger–Feynman hybrid simulation (paper related work [3]).

The Schrödinger method (everything else in ``repro.sim``) stores all
2^n amplitudes; the Feynman path method stores almost nothing but sums
exponentially many paths.  The hybrid cuts the register into two
partitions simulated Schrödinger-style (2^(n/2) amplitudes each) and
sums Feynman paths only over the *cross-partition* gates: each 2-qubit
gate spanning the cut is decomposed via its operator Schmidt
decomposition

    U = sum_k  A_k (x) B_k        (rank <= 4)

so a circuit with g cross gates costs  prod_g rank_g  path products of
half-register simulations.  Memory halves (in qubits: 2 * 2^(n/2)
instead of 2^n) at exponential-in-g time cost — the classic trade for
low-entanglement cuts, and the reason the paper's related work [3]
optimizes exactly this algorithm.

The final state is reconstructed densely here (so tests can verify
against the Schrödinger simulator); ``PathAccounting`` reports the
path count and per-path memory that make the trade-off explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.circuit import Circuit
from repro.ir.gates import Gate
from repro.sim import kernels

__all__ = ["schmidt_decompose_gate", "SchrodingerFeynmanSimulator", "PathAccounting"]


def schmidt_decompose_gate(
    matrix: np.ndarray, atol: float = 1e-12
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Operator Schmidt decomposition of a 4x4 gate across its two
    qubits: returns [(A_k, B_k)] with  U = sum_k A_k (x) B_k, where
    A acts on the gate's first (low) qubit and B on the second.

    Implementation: reshuffle U's indices into the (A-side, B-side)
    operator basis and SVD; singular values fold into the factors.
    """
    if matrix.shape != (4, 4):
        raise ValueError("expected a two-qubit gate matrix")
    # U[(b1 b0), (b1' b0')] -> M[(b0 b0'), (b1 b1')]  (qubit0 = A side)
    u = matrix.reshape(2, 2, 2, 2)  # [b1, b0, b1', b0']
    m = u.transpose(1, 3, 0, 2).reshape(4, 4)  # [(b0 b0'), (b1 b1')]
    w, s, vh = np.linalg.svd(m)
    terms: List[Tuple[np.ndarray, np.ndarray]] = []
    for k, sv in enumerate(s):
        if sv < atol:
            continue
        a = np.sqrt(sv) * w[:, k].reshape(2, 2)
        b = np.sqrt(sv) * vh[k, :].reshape(2, 2)
        terms.append((a, b))
    return terms


@dataclass
class PathAccounting:
    """The cost profile of one hybrid run."""

    num_paths: int
    num_cross_gates: int
    partition_sizes: Tuple[int, int]
    bytes_per_path: int


class SchrodingerFeynmanSimulator:
    """Hybrid simulator over a bipartition (low block | high block).

    ``cut`` is the number of qubits in the low partition; qubits
    ``0 .. cut-1`` are partition A, the rest partition B.  Gates fully
    inside a partition run Schrödinger-style on that partition's
    vector; gates across the cut branch into Schmidt paths.
    """

    def __init__(self, num_qubits: int, cut: int):
        if not 1 <= cut < num_qubits:
            raise ValueError("cut must leave both partitions non-empty")
        self.num_qubits = num_qubits
        self.cut = cut
        self.n_a = cut
        self.n_b = num_qubits - cut
        self.accounting: Optional[PathAccounting] = None

    def run(self, circuit: Circuit) -> np.ndarray:
        """Execute and return the full dense statevector (the dense
        reconstruction is for verification; the per-path memory is the
        two half-vectors)."""
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit width mismatch")
        if circuit.num_parameters:
            from repro.sim.plan import unbound_parameter_message

            raise ValueError(unbound_parameter_message(circuit))
        cut = self.cut

        # Each path: (amplitude-weight folded into vectors, state_a, state_b,
        # remaining gate index). Depth-first expansion keeps memory at
        # O(paths-in-flight); breadth-first list is fine at demo scale.
        init_a = np.zeros(1 << self.n_a, dtype=np.complex128)
        init_a[0] = 1.0
        init_b = np.zeros(1 << self.n_b, dtype=np.complex128)
        init_b[0] = 1.0
        paths: List[Tuple[np.ndarray, np.ndarray]] = [(init_a, init_b)]
        cross_gates = 0

        for gate in circuit.gates:
            sides = {0 if q < cut else 1 for q in gate.qubits}
            if sides == {0}:
                for a, _ in paths:
                    self._apply_local(a, gate, side=0)
            elif sides == {1}:
                for _, b in paths:
                    self._apply_local(b, gate, side=1)
            else:
                if gate.num_qubits != 2:
                    raise ValueError("only 2-qubit gates may span the cut")
                cross_gates += 1
                q_low = min(gate.qubits)
                q_high = max(gate.qubits)
                m = gate.to_matrix()
                if gate.qubits[0] != q_low:
                    # matrix convention: reorder so first factor is the
                    # low (A-side) qubit
                    perm = np.array([0, 2, 1, 3])
                    m = m[np.ix_(perm, perm)]
                terms = schmidt_decompose_gate(m)
                new_paths: List[Tuple[np.ndarray, np.ndarray]] = []
                for a, b in paths:
                    for ak, bk in terms:
                        na = a.copy()
                        nb = b.copy()
                        kernels.apply_1q(na, ak, q_low, self.n_a)
                        kernels.apply_1q(nb, bk, q_high - cut, self.n_b)
                        new_paths.append((na, nb))
                paths = new_paths

        # Reconstruct: |psi> = sum_paths |a> (x) |b>  with index
        # (high bits = B, low bits = A).
        full = np.zeros(1 << self.num_qubits, dtype=np.complex128)
        for a, b in paths:
            full += np.kron(b, a)
        self.accounting = PathAccounting(
            num_paths=len(paths),
            num_cross_gates=cross_gates,
            partition_sizes=(self.n_a, self.n_b),
            bytes_per_path=a.nbytes + b.nbytes,
        )
        return full

    def _apply_local(self, state: np.ndarray, gate: Gate, side: int) -> None:
        offset = 0 if side == 0 else self.cut
        n_local = self.n_a if side == 0 else self.n_b
        qubits = tuple(q - offset for q in gate.qubits)
        m = gate.to_matrix()
        if len(qubits) == 1:
            kernels.apply_1q(state, m, qubits[0], n_local)
        elif len(qubits) == 2:
            kernels.apply_2q(state, m, qubits[0], qubits[1], n_local)
        else:
            kernels.apply_kq_dense(state, m, qubits, n_local)
