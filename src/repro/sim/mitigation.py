"""Error mitigation for noisy simulation: zero-noise extrapolation and
readout-error mitigation.

The paper's stated purpose for large-scale simulation is
characterizing and validating algorithms *before* hardware deployment;
mitigation strategies are part of that validation loop — the question
"how much accuracy does ZNE buy this ansatz at this error rate?" is
answered entirely in simulation.

* **Zero-noise extrapolation (ZNE)** by global unitary folding: the
  circuit ``C`` becomes ``C (C^dag C)^k``, multiplying the effective
  noise strength by ``2k + 1`` while leaving the ideal unitary
  unchanged; Richardson (polynomial) extrapolation of the measured
  expectation values back to scale 0 estimates the noiseless value.
* **Readout mitigation**: a per-qubit confusion model ``p(read b' |
  true b)`` is calibrated from basis-state preparations and inverted
  (tensored 2x2 inverses) on measured count distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.circuit import Circuit
from repro.ir.pauli import PauliSum
from repro.sim.density_matrix import DensityMatrixSimulator
from repro.sim.noise import NoiseModel

__all__ = [
    "fold_circuit",
    "zne_expectation",
    "ReadoutErrorModel",
    "mitigate_counts",
]


def fold_circuit(circuit: Circuit, scale_factor: int) -> Circuit:
    """Global unitary folding: C -> C (C^dag C)^k with scale = 2k + 1.

    The folded circuit implements the same unitary but executes
    ``scale_factor`` times the gates, amplifying per-gate noise by the
    same factor.
    """
    if scale_factor < 1 or scale_factor % 2 == 0:
        raise ValueError("scale factor must be an odd positive integer")
    k = (scale_factor - 1) // 2
    folded = circuit.copy()
    inverse = circuit.inverse()
    for _ in range(k):
        folded.compose(inverse)
        folded.compose(circuit)
    return folded


def zne_expectation(
    circuit: Circuit,
    observable: PauliSum,
    noise_model: NoiseModel,
    scale_factors: Sequence[int] = (1, 3, 5),
    order: Optional[int] = None,
) -> Tuple[float, Dict[int, float]]:
    """Richardson-extrapolated expectation under a noise model.

    Runs the folded circuits on the density-matrix simulator, fits a
    polynomial of degree ``order`` (default: #points - 1) in the scale
    factor, and returns ``(extrapolated_value, per-scale values)``.
    """
    if len(scale_factors) < 2:
        raise ValueError("need at least two scale factors")
    values: Dict[int, float] = {}
    for s in scale_factors:
        folded = fold_circuit(circuit, s)
        sim = DensityMatrixSimulator(circuit.num_qubits, noise_model=noise_model)
        sim.run(folded)
        values[s] = sim.expectation(observable)
    xs = np.array(sorted(values))
    ys = np.array([values[int(x)] for x in xs])
    degree = order if order is not None else len(xs) - 1
    coeffs = np.polyfit(xs, ys, degree)
    extrapolated = float(np.polyval(coeffs, 0.0))
    return extrapolated, values


@dataclass
class ReadoutErrorModel:
    """Independent per-qubit readout confusion.

    ``p01[q]`` is P(read 1 | true 0), ``p10[q]`` is P(read 0 | true 1)
    on qubit q.
    """

    p01: np.ndarray
    p10: np.ndarray

    def __post_init__(self) -> None:
        self.p01 = np.asarray(self.p01, dtype=float)
        self.p10 = np.asarray(self.p10, dtype=float)
        if self.p01.shape != self.p10.shape:
            raise ValueError("p01/p10 shape mismatch")
        if np.any(self.p01 < 0) or np.any(self.p01 > 1):
            raise ValueError("p01 out of range")
        if np.any(self.p10 < 0) or np.any(self.p10 > 1):
            raise ValueError("p10 out of range")

    @property
    def num_qubits(self) -> int:
        return self.p01.shape[0]

    def confusion_matrix(self, qubit: int) -> np.ndarray:
        """2x2 column-stochastic matrix M[read, true]."""
        return np.array(
            [
                [1 - self.p01[qubit], self.p10[qubit]],
                [self.p01[qubit], 1 - self.p10[qubit]],
            ]
        )

    def apply_to_probabilities(self, probs: np.ndarray) -> np.ndarray:
        """Noisy readout distribution from the true distribution."""
        return self._transform(probs, inverse=False)

    def correct_probabilities(self, probs: np.ndarray) -> np.ndarray:
        """Inverse-confusion correction (may need clipping)."""
        out = self._transform(probs, inverse=True)
        out = np.clip(out, 0.0, None)
        total = out.sum()
        return out / total if total > 0 else out

    def _transform(self, probs: np.ndarray, inverse: bool) -> np.ndarray:
        n = self.num_qubits
        if probs.shape != (1 << n,):
            raise ValueError("distribution size mismatch")
        out = probs.astype(float).copy()
        # tensored structure: apply each qubit's 2x2 along its axis
        out = out.reshape([2] * n)
        for q in range(n):
            m = self.confusion_matrix(q)
            if inverse:
                m = np.linalg.inv(m)
            # qubit q is bit q of the index: axis (n - 1 - q) in the
            # reshaped little-endian layout
            axis = n - 1 - q
            out = np.moveaxis(out, axis, 0)
            out = np.tensordot(m, out, axes=([1], [0]))
            out = np.moveaxis(out, 0, axis)
        return out.reshape(-1)


def mitigate_counts(
    counts: Dict[int, int], model: ReadoutErrorModel
) -> np.ndarray:
    """Inverse-confusion-corrected probability vector from raw counts."""
    dim = 1 << model.num_qubits
    probs = np.zeros(dim)
    total = sum(counts.values())
    for outcome, c in counts.items():
        probs[outcome] = c / total
    return model.correct_probabilities(probs)
