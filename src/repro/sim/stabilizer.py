"""Stabilizer (Clifford) simulation in tableau form.

The paper's related work (§6.1) highlights CAFQA [Ravi et al., ASPLOS
2023]: bootstrap VQE by searching the *Clifford* points of the ansatz
with an efficient classical stabilizer simulator, then hand the best
point to the continuous optimizer.  This module is that substrate — an
Aaronson–Gottesman-style tableau simulator tracking the n stabilizer
generators of the state as signed Pauli strings (bitmask x/z pairs, so
every gate conjugation is O(n) bit arithmetic and simulation cost is
polynomial in qubits instead of the statevector's 2^n).

Supported gates: the Clifford generators H, S (plus Sdg, X, Y, Z, CX,
CZ, SWAP built from them) and rotation gates RX/RY/RZ at multiples of
pi/2, which is exactly the gate alphabet CAFQA's discrete search
moves over.

Expectation values of Pauli observables come from stabilizer-group
membership: <P> is +/-1 when +/-P is in the group, 0 otherwise —
resolved by GF(2) elimination over the generators with exact phase
tracking through ``PauliString.mul``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ir.circuit import Circuit
from repro.ir.gates import Gate
from repro.ir.pauli import PauliString, PauliSum

__all__ = ["StabilizerSimulator", "is_clifford_angle"]


def is_clifford_angle(theta: float, atol: float = 1e-9) -> bool:
    """True if theta is a multiple of pi/2 (rotation stays Clifford)."""
    return abs(theta / (math.pi / 2) - round(theta / (math.pi / 2))) < atol


class StabilizerSimulator:
    """Tableau simulator over n qubits.

    Rows are the stabilizer generators: ``xs[i]``/``zs[i]`` bitmasks
    plus ``signs[i]`` in {+1, -1}.  The initial state |0...0> has
    generators +Z_0 ... +Z_{n-1}.
    """

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        self.num_qubits = num_qubits
        self.xs = [0] * num_qubits
        self.zs = [1 << q for q in range(num_qubits)]
        self.signs = [1] * num_qubits

    def reset(self) -> None:
        self.xs = [0] * self.num_qubits
        self.zs = [1 << q for q in range(self.num_qubits)]
        self.signs = [1] * self.num_qubits

    # -- elementary conjugations ------------------------------------------------

    def _h(self, q: int) -> None:
        bit = 1 << q
        for i in range(self.num_qubits):
            xb = self.xs[i] & bit
            zb = self.zs[i] & bit
            if xb and zb:  # Y -> -Y
                self.signs[i] = -self.signs[i]
            # swap x and z bits
            if bool(xb) != bool(zb):
                self.xs[i] ^= bit
                self.zs[i] ^= bit

    def _s(self, q: int) -> None:
        bit = 1 << q
        for i in range(self.num_qubits):
            xb = self.xs[i] & bit
            zb = self.zs[i] & bit
            if xb and zb:  # Y -> -X
                self.signs[i] = -self.signs[i]
            if xb:  # X -> Y (z bit toggles when x set)
                self.zs[i] ^= bit

    def _x(self, q: int) -> None:
        bit = 1 << q
        for i in range(self.num_qubits):
            if self.zs[i] & bit:  # Z, Y anticommute with X
                self.signs[i] = -self.signs[i]

    def _z(self, q: int) -> None:
        bit = 1 << q
        for i in range(self.num_qubits):
            if self.xs[i] & bit:
                self.signs[i] = -self.signs[i]

    def _y(self, q: int) -> None:
        bit = 1 << q
        for i in range(self.num_qubits):
            if bool(self.xs[i] & bit) != bool(self.zs[i] & bit):
                self.signs[i] = -self.signs[i]

    def _cx(self, c: int, t: int) -> None:
        cb, tb = 1 << c, 1 << t
        for i in range(self.num_qubits):
            xc = bool(self.xs[i] & cb)
            zt = bool(self.zs[i] & tb)
            xt = bool(self.xs[i] & tb)
            zc = bool(self.zs[i] & cb)
            if xc and zt and (xt == zc):
                self.signs[i] = -self.signs[i]
            if xc:
                self.xs[i] ^= tb
            if zt:
                self.zs[i] ^= cb

    # -- gate dispatch ---------------------------------------------------------------

    def apply_gate(self, gate: Gate) -> None:
        name = gate.name
        qs = gate.qubits
        if name == "h":
            self._h(qs[0])
        elif name == "s":
            self._s(qs[0])
        elif name == "sdg":
            self._s(qs[0])
            self._s(qs[0])
            self._s(qs[0])
        elif name == "x":
            self._x(qs[0])
        elif name == "y":
            self._y(qs[0])
        elif name == "z":
            self._z(qs[0])
        elif name == "i":
            pass
        elif name == "cx":
            self._cx(qs[0], qs[1])
        elif name == "cz":
            self._h(qs[1])
            self._cx(qs[0], qs[1])
            self._h(qs[1])
        elif name == "swap":
            self._cx(qs[0], qs[1])
            self._cx(qs[1], qs[0])
            self._cx(qs[0], qs[1])
        elif name in ("rx", "ry", "rz", "p"):
            (theta,) = gate.params
            theta = float(theta)
            if name == "p":
                theta = theta  # p(k*pi/2) ~ rz(k*pi/2) up to global phase
            if not is_clifford_angle(theta):
                raise ValueError(
                    f"{name}({theta}) is not a Clifford rotation (angle must "
                    "be a multiple of pi/2)"
                )
            k = round(theta / (math.pi / 2)) % 4
            q = qs[0]
            if name in ("rz", "p"):
                for _ in range(k):
                    self._s(q)
            elif name == "rx":
                self._h(q)
                for _ in range(k):
                    self._s(q)
                self._h(q)
            else:  # ry = S . RX . Sdg (since S X Sdg = Y); Sdg acts first
                self._s(q)
                self._s(q)
                self._s(q)
                self._h(q)
                for _ in range(k):
                    self._s(q)
                self._h(q)
                self._s(q)
        else:
            raise ValueError(f"gate {name!r} is not Clifford-simulable here")

    def run(self, circuit: Circuit, reset: bool = True) -> None:
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit width mismatch")
        if circuit.num_parameters:
            from repro.sim.plan import unbound_parameter_message

            raise ValueError(unbound_parameter_message(circuit))
        if reset:
            self.reset()
        for g in circuit.gates:
            self.apply_gate(g)

    # -- observation ----------------------------------------------------------------------

    def stabilizer_strings(self) -> List[Tuple[int, PauliString]]:
        """The current generators as (sign, PauliString) pairs."""
        return [
            (self.signs[i], PauliString(self.num_qubits, self.xs[i], self.zs[i]))
            for i in range(self.num_qubits)
        ]

    def expectation_pauli(self, pauli: PauliString) -> float:
        """<P>: +/-1 if +/-P is in the stabilizer group, else 0."""
        if pauli.num_qubits != self.num_qubits:
            raise ValueError("observable width mismatch")
        if pauli.is_identity:
            return 1.0
        n = self.num_qubits
        # Solve sum_i a_i (x_i, z_i) = (x_P, z_P) over GF(2).
        rows = [(self.xs[i] | (self.zs[i] << n)) for i in range(n)]
        target = pauli.x | (pauli.z << n)
        # Gaussian elimination tracking which generators combine.
        basis: List[Tuple[int, int]] = []  # (vector, membership mask)
        for i, v in enumerate(rows):
            basis.append((v, 1 << i))
        solution_mask = 0
        v = target
        # reduce target against an eliminated basis
        pivots: Dict[int, Tuple[int, int]] = {}
        for vec, mask in basis:
            cur_vec, cur_mask = vec, mask
            while cur_vec:
                msb = cur_vec.bit_length() - 1
                if msb in pivots:
                    pvec, pmask = pivots[msb]
                    cur_vec ^= pvec
                    cur_mask ^= pmask
                else:
                    pivots[msb] = (cur_vec, cur_mask)
                    break
        while v:
            msb = v.bit_length() - 1
            if msb not in pivots:
                return 0.0  # P (up to sign) is not in the group
            pvec, pmask = pivots[msb]
            v ^= pvec
            solution_mask ^= pmask
        # Multiply the chosen generators and compare sign with P.
        acc_sign = 1.0 + 0.0j
        acc = PauliString.identity(n)
        for i in range(n):
            if (solution_mask >> i) & 1:
                phase, acc = acc.mul(
                    PauliString(n, self.xs[i], self.zs[i])
                )
                acc_sign *= phase * self.signs[i]
        assert acc == pauli, "elimination produced the wrong Pauli"
        if abs(acc_sign.imag) > 1e-9:
            raise RuntimeError("non-real stabilizer phase (internal error)")
        return float(acc_sign.real)

    def expectation(self, observable: PauliSum) -> float:
        """<H> = sum_P c_P <P> (each term is -1, 0 or +1)."""
        total = 0.0
        for coeff, pstr in observable:
            val = self.expectation_pauli(pstr)
            if val:
                total += coeff.real * val
        return total

    def statevector(self) -> np.ndarray:
        """Dense statevector via projector products (testing only;
        exponential in qubits)."""
        n = self.num_qubits
        dim = 1 << n
        state = np.zeros(dim, dtype=np.complex128)
        state[0] = 1.0
        for sign, pstr in self.stabilizer_strings():
            state = 0.5 * (state + sign * pstr.apply(state))
        norm = np.linalg.norm(state)
        if norm < 1e-12:
            # |0...0> is orthogonal to the stabilized space; seed with
            # a random vector instead (still projects correctly).
            rng = np.random.default_rng(1)
            state = rng.normal(size=dim) + 1j * rng.normal(size=dim)
            for sign, pstr in self.stabilizer_strings():
                state = 0.5 * (state + sign * pstr.apply(state))
            norm = np.linalg.norm(state)
        return state / norm
