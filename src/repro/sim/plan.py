"""Compiled circuit execution: bind-free plans with prefix-state reuse.

PR 3 compiled the *observable* side of the VQE hot loop
(``repro.ir.compiled``); this module compiles the *circuit* side.  The
per-gate path re-walks Python ``Gate`` objects, re-binds parameters
(one full circuit copy per evaluation), and re-dispatches through the
``apply_gate`` name if-chain for every one of the thousands of energy
and gradient evaluations an optimization makes.  ``compile_circuit``
pays all of that exactly once:

* every gate is resolved to a **prepacked kernel op** — a closure over
  the kernel arithmetic, the frozen matrix or diagonal, and the
  addressing tables from the :mod:`repro.utils.bitops` caches (captured
  at compile time, so execution does not even pay the LRU lookup);
* parameterized gates keep a **parameter slot**: an affine reference
  ``(index, coeff, offset)`` into the flat parameter vector plus a
  closed-form matrix/diagonal builder (rz/ry/rx/p/rzz/rxx/ryy/cp/crz;
  anything else falls back to its registry factory) — no ``bind()``,
  no ``Gate`` construction, ever;
* maximal **static segments** (runs of parameter-free gates) are fused
  under the paper's <= 2-qubit rule (§4.3) at compile time, so the
  fusion cost is paid once instead of per evaluation;
* **adjacent diagonal gates fold** into a single diagonal pass — small
  (<= 2-qubit support) folds always, wider runs into one full-register
  diagonal when the register is narrow enough to afford it.

On top of the flat op list, plans support cross-evaluation
**prefix-state reuse**: consecutive ``execute`` calls record the last
parameter vector, and intermediate states are parked at parametric-op
boundaries (budgeted through :class:`repro.core.cache.PostAnsatzCache`
device/host accounting).  When only a suffix of the parameters changes
— exactly the access pattern of parameter-shift gradients (2P shifted
evaluations differing in one parameter) and ADAPT warm starts — the
plan resumes from the longest parked prefix instead of replaying the
whole circuit.

Consumers: ``StatevectorSimulator.run_plan``, the estimators'
``estimate_plan``, ``CachedEnergyEvaluator``, the parameter-shift
gradients, ``BatchedStatevectorSimulator.run_plan``, and the
slice-aware ``DistributedStatevector.run_plan``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.ir.circuit import Circuit
from repro.ir.gates import GATE_SET, Gate, Parameter
from repro.sim import kernels
from repro.sim.fusion import fuse_circuit
from repro.utils.bitops import indices_1q, indices_2q

__all__ = [
    "ExecutionPlan",
    "PlanOp",
    "compile_circuit",
    "unbound_parameter_message",
]

# Widest register for which a run of wide-support diagonal gates is
# folded into one dense 2^n diagonal (16 MiB of complex128 at 20).
FULL_DIAG_FOLD_MAX_QUBITS = 20

_DIAG_1Q_STATIC: Dict[str, Tuple[complex, complex]] = {
    "i": (1.0 + 0j, 1.0 + 0j),
    "z": (1.0 + 0j, -1.0 + 0j),
    "s": (1.0 + 0j, 1j),
    "sdg": (1.0 + 0j, -1j),
    "t": (1.0 + 0j, complex(math.cos(math.pi / 4), math.sin(math.pi / 4))),
    "tdg": (1.0 + 0j, complex(math.cos(math.pi / 4), -math.sin(math.pi / 4))),
}

# Parametric gates with closed-form *diagonal* builders.
_PARAM_DIAG_GATES = {"rz", "p", "rzz", "cp", "crz"}
# Parametric gates with closed-form *dense* builders.
_PARAM_DENSE_GATES = {"rx", "ry", "rxx", "ryy"}


def unbound_parameter_message(circuit: Circuit) -> str:
    """The shared error text for executing a parameterized circuit:
    names the offending parameters instead of a bare "bind first"."""
    names = circuit.parameters
    shown = ", ".join(repr(n) for n in names[:8])
    if len(names) > 8:
        shown += f", ... ({len(names) - 8} more)"
    return (
        f"circuit has {len(names)} unbound parameter(s) [{shown}]; "
        "call bind() with values for them, or compile the circuit "
        "(repro.sim.plan.compile_circuit) and execute the plan with a "
        "parameter vector"
    )


class PlanOp:
    """One prepacked kernel op of an :class:`ExecutionPlan`.

    ``run(state, params)`` performs the in-place kernel arithmetic.
    The metadata fields let alternative executors (batched, distributed
    slices) re-dispatch the op without touching ``Gate`` objects:

    * ``kind`` — ``x``/``cx``/``diag1``/``diag2``/``diag_full``/
      ``dense1``/``dense2``/``densek`` for static ops, the same names
      prefixed with ``p`` for parametric ops;
    * ``data`` — frozen diagonal/matrix payload for static ops;
    * ``gate_name``/``param_refs`` — builder identity and the affine
      parameter slots ``(index, coeff, offset)`` for parametric ops;
    * ``param_deps`` — parameter indices this op depends on (empty for
      static ops), used by prefix-reuse bookkeeping;
    * ``source_gates`` — how many source gates this op absorbs.
    """

    __slots__ = (
        "run",
        "kind",
        "qubits",
        "data",
        "gate_name",
        "param_refs",
        "param_deps",
        "source_gates",
    )

    def __init__(
        self,
        run: Callable[[np.ndarray, np.ndarray], None],
        kind: str,
        qubits: Tuple[int, ...],
        data=None,
        gate_name: str = "",
        param_refs: Tuple = (),
        param_deps: frozenset = frozenset(),
        source_gates: int = 1,
    ):
        self.run = run
        self.kind = kind
        self.qubits = qubits
        self.data = data
        self.gate_name = gate_name
        self.param_refs = param_refs
        self.param_deps = param_deps
        self.source_gates = source_gates

    @property
    def is_parametric(self) -> bool:
        return bool(self.param_deps)

    def angles(self, params: np.ndarray) -> Tuple[float, ...]:
        """Resolve this op's gate angles from the flat parameter vector."""
        return tuple(
            ref[1] if ref[0] == "c" else ref[1] * params[ref[2]] + ref[3]
            for ref in self.param_refs
        )

    def resolve(self, params: np.ndarray):
        """(kind, payload) with parameters substituted — the form the
        distributed executor dispatches on.  ``kind`` is one of
        ``x``/``cx``/``diag1``/``diag2``/``diag_full``/``dense``."""
        if not self.is_parametric:
            if self.kind in ("x", "cx", "diag1", "diag2", "diag_full"):
                return self.kind, self.data
            return "dense", self.data
        angles = self.angles(params)
        name = self.gate_name
        if name == "rz":
            d = complex(math.cos(angles[0] / 2), -math.sin(angles[0] / 2))
            return "diag1", (d, d.conjugate())
        if name == "p":
            return "diag1", (1.0 + 0j, complex(math.cos(angles[0]), math.sin(angles[0])))
        if name == "rzz":
            e = complex(math.cos(angles[0] / 2), -math.sin(angles[0] / 2))
            return "diag2", (e, e.conjugate(), e.conjugate(), e)
        if name == "cp":
            return "diag2", (1.0 + 0j, 1.0 + 0j, 1.0 + 0j,
                             complex(math.cos(angles[0]), math.sin(angles[0])))
        if name == "crz":
            e = complex(math.cos(angles[0] / 2), -math.sin(angles[0] / 2))
            return "diag2", (1.0 + 0j, e, 1.0 + 0j, e.conjugate())
        return "dense", GATE_SET[name][2](*angles)

    def __repr__(self) -> str:
        return f"PlanOp({self.kind}, q={list(self.qubits)}, src={self.source_gates})"


# ---------------------------------------------------------------------------
# Op construction helpers (closures capture index tables at compile time)
# ---------------------------------------------------------------------------


def _static_op(gate: Gate, n: int) -> PlanOp:
    """Prepack one parameter-free gate into a kernel closure."""
    name = gate.name
    qs = gate.qubits
    if gate.matrix is None:
        if name == "x":
            i0, i1 = indices_1q(n, qs[0])

            def run(state, params, i0=i0, i1=i1):
                tmp = state[i0].copy()
                state[i0] = state[i1]
                state[i1] = tmp

            return PlanOp(run, "x", qs)
        if name == "cx":
            _, ic, _, ict = indices_2q(n, qs[0], qs[1])

            def run(state, params, ic=ic, ict=ict):
                tmp = state[ic].copy()
                state[ic] = state[ict]
                state[ict] = tmp

            return PlanOp(run, "cx", qs)
        if name in _DIAG_1Q_STATIC:
            return _diag1_op(_DIAG_1Q_STATIC[name], qs, n)
        if name in ("rz", "p"):
            (theta,) = gate.params
            theta = float(theta)
            if name == "rz":
                d0 = complex(math.cos(theta / 2), -math.sin(theta / 2))
                d1 = d0.conjugate()
            else:
                d0, d1 = 1.0 + 0j, complex(math.cos(theta), math.sin(theta))
            return _diag1_op((d0, d1), qs, n)
        if name == "cz":
            return _diag2_op((1, 1, 1, -1), qs, n)
        if name in ("rzz", "cp", "crz"):
            (theta,) = gate.params
            theta = float(theta)
            if name == "rzz":
                e = complex(math.cos(theta / 2), -math.sin(theta / 2))
                diag = (e, e.conjugate(), e.conjugate(), e)
            elif name == "cp":
                diag = (1, 1, 1, complex(math.cos(theta), math.sin(theta)))
            else:
                e = complex(math.cos(theta / 2), -math.sin(theta / 2))
                diag = (1, e, 1, e.conjugate())
            return _diag2_op(diag, qs, n)
    # Copy before freezing: to_matrix() may hand back the gate's own
    # (shared) matrix object for opaque/fused gates.
    m = np.array(gate.to_matrix(), dtype=np.complex128)
    m.flags.writeable = False
    return _dense_op(m, qs, n)


def _diag1_op(diag: Tuple[complex, complex], qs: Tuple[int, ...], n: int,
              source_gates: int = 1) -> PlanOp:
    i0, i1 = indices_1q(n, qs[0])
    d0, d1 = complex(diag[0]), complex(diag[1])

    def run(state, params, i0=i0, i1=i1, d0=d0, d1=d1):
        if d0 != 1.0:
            state[i0] *= d0
        if d1 != 1.0:
            state[i1] *= d1

    return PlanOp(run, "diag1", qs, data=(d0, d1), source_gates=source_gates)


def _diag2_op(diag: Sequence[complex], qs: Tuple[int, ...], n: int,
              source_gates: int = 1) -> PlanOp:
    tables = indices_2q(n, qs[0], qs[1])
    diag = tuple(complex(d) for d in diag)

    def run(state, params, tables=tables, diag=diag):
        for sub in range(4):
            d = diag[sub]
            if d != 1.0:
                state[tables[sub]] *= d

    return PlanOp(run, "diag2", qs, data=diag, source_gates=source_gates)


def _diag_full_op(diag: np.ndarray, qs: Tuple[int, ...],
                  source_gates: int) -> PlanOp:
    diag = np.ascontiguousarray(diag)
    diag.flags.writeable = False

    def run(state, params, diag=diag):
        state *= diag

    return PlanOp(run, "diag_full", qs, data=diag, source_gates=source_gates)


def _dense_op(m: np.ndarray, qs: Tuple[int, ...], n: int,
              source_gates: int = 1) -> PlanOp:
    if len(qs) == 1:
        i0, i1 = indices_1q(n, qs[0])
        m00, m01, m10, m11 = m[0, 0], m[0, 1], m[1, 0], m[1, 1]

        def run(state, params, i0=i0, i1=i1,
                m00=m00, m01=m01, m10=m10, m11=m11):
            a0 = state[i0]
            a1 = state[i1]
            state[i0] = m00 * a0 + m01 * a1
            state[i1] = m10 * a0 + m11 * a1

        return PlanOp(run, "dense1", qs, data=m, source_gates=source_gates)
    if len(qs) == 2:
        tables = indices_2q(n, qs[0], qs[1])

        def run(state, params, tables=tables, m=m):
            a = [state[t] for t in tables]
            for row in range(4):
                state[tables[row]] = (
                    m[row, 0] * a[0] + m[row, 1] * a[1]
                    + m[row, 2] * a[2] + m[row, 3] * a[3]
                )

        return PlanOp(run, "dense2", qs, data=m, source_gates=source_gates)

    def run(state, params, m=m, qs=qs, n=n):
        kernels.apply_kq_dense(state, m, qs, n)

    return PlanOp(run, "densek", qs, data=m, source_gates=source_gates)


def _param_refs(gate: Gate, index_of: Dict[str, int]) -> Tuple:
    refs = []
    for p in gate.params:
        if isinstance(p, Parameter):
            refs.append(("p", p.coeff, index_of[p.name], p.offset))
        else:
            refs.append(("c", float(p)))
    return tuple(refs)


def _parametric_op(gate: Gate, n: int, index_of: Dict[str, int]) -> PlanOp:
    """Prepack a gate with symbolic parameters: an affine parameter slot
    plus a closed-form matrix/diagonal builder."""
    name = gate.name
    qs = gate.qubits
    refs = _param_refs(gate, index_of)
    deps = frozenset(r[2] for r in refs if r[0] == "p")
    # Fast path: single-angle gates with one symbolic parameter.
    single = len(refs) == 1 and refs[0][0] == "p"
    if single:
        _, coeff, idx, offset = refs[0]
        if name == "rz":
            i0, i1 = indices_1q(n, qs[0])

            def run(state, params, i0=i0, i1=i1, c=coeff, k=idx, o=offset):
                th = c * params[k] + o
                d0 = complex(math.cos(th / 2), -math.sin(th / 2))
                state[i0] *= d0
                state[i1] *= d0.conjugate()

            return PlanOp(run, "pdiag1", qs, gate_name=name,
                          param_refs=refs, param_deps=deps)
        if name == "p":
            _, i1 = indices_1q(n, qs[0])

            def run(state, params, i1=i1, c=coeff, k=idx, o=offset):
                th = c * params[k] + o
                state[i1] *= complex(math.cos(th), math.sin(th))

            return PlanOp(run, "pdiag1", qs, gate_name=name,
                          param_refs=refs, param_deps=deps)
        if name in ("rx", "ry"):
            i0, i1 = indices_1q(n, qs[0])
            is_rx = name == "rx"

            def run(state, params, i0=i0, i1=i1, c=coeff, k=idx, o=offset,
                    is_rx=is_rx):
                th = c * params[k] + o
                ch = math.cos(th / 2)
                sh = math.sin(th / 2)
                a0 = state[i0]
                a1 = state[i1]
                if is_rx:
                    ish = -1j * sh
                    state[i0] = ch * a0 + ish * a1
                    state[i1] = ish * a0 + ch * a1
                else:
                    state[i0] = ch * a0 - sh * a1
                    state[i1] = sh * a0 + ch * a1

            return PlanOp(run, "pdense1", qs, gate_name=name,
                          param_refs=refs, param_deps=deps)
        if name in ("rzz", "cp", "crz"):
            tables = indices_2q(n, qs[0], qs[1])

            def run(state, params, tables=tables, c=coeff, k=idx, o=offset,
                    name=name):
                th = c * params[k] + o
                if name == "rzz":
                    e = complex(math.cos(th / 2), -math.sin(th / 2))
                    ec = e.conjugate()
                    state[tables[0]] *= e
                    state[tables[1]] *= ec
                    state[tables[2]] *= ec
                    state[tables[3]] *= e
                elif name == "cp":
                    state[tables[3]] *= complex(math.cos(th), math.sin(th))
                else:  # crz
                    e = complex(math.cos(th / 2), -math.sin(th / 2))
                    state[tables[1]] *= e
                    state[tables[3]] *= e.conjugate()

            return PlanOp(run, "pdiag2", qs, gate_name=name,
                          param_refs=refs, param_deps=deps)
    # Generic fallback: registry factory with resolved angles (u3,
    # rxx/ryy, multi-parameter gates).
    factory = GATE_SET[name][2]
    nq = len(qs)

    def run(state, params, refs=refs, factory=factory, qs=qs, n=n, nq=nq):
        angles = [
            r[1] if r[0] == "c" else r[1] * params[r[2]] + r[3] for r in refs
        ]
        m = factory(*angles)
        if nq == 1:
            kernels.apply_1q(state, m, qs[0], n)
        elif nq == 2:
            kernels.apply_2q(state, m, qs[0], qs[1], n)
        else:
            kernels.apply_kq_dense(state, m, qs, n)

    kind = "pdense1" if nq == 1 else ("pdense2" if nq == 2 else "pdensek")
    return PlanOp(run, kind, qs, gate_name=name,
                  param_refs=refs, param_deps=deps)


# ---------------------------------------------------------------------------
# Diagonal-run folding
# ---------------------------------------------------------------------------


def _is_static_diag(op: PlanOp) -> bool:
    if op.kind in ("diag1", "diag2", "diag_full"):
        return True
    if op.kind in ("dense1", "dense2") and op.data is not None:
        m = op.data
        return bool(np.count_nonzero(m - np.diag(np.diagonal(m))) == 0)
    return False


def _op_full_diag(op: PlanOp, n: int) -> np.ndarray:
    """The 2^n diagonal of a static diagonal op."""
    d = np.ones(1 << n, dtype=np.complex128)
    if op.kind == "diag_full":
        return op.data.copy()
    if op.kind == "diag1" or (op.kind == "dense1"):
        vals = op.data if op.kind == "diag1" else np.diagonal(op.data)
        i0, i1 = indices_1q(n, op.qubits[0])
        d[i0] = vals[0]
        d[i1] = vals[1]
        return d
    vals = op.data if op.kind == "diag2" else np.diagonal(op.data)
    tables = indices_2q(n, op.qubits[0], op.qubits[1])
    for sub in range(4):
        d[tables[sub]] = vals[sub]
    return d


def _fold_diag_run(run: List[PlanOp], n: int, fold_full: bool
                   ) -> Tuple[List[PlanOp], int]:
    """Collapse a run of adjacent static diagonal ops into one pass.

    Returns (replacement ops, gates folded away).  Diagonal matrices
    commute, so any in-stream-adjacent combination is legal.
    """
    if len(run) < 2:
        return run, 0
    support = sorted({q for op in run for q in op.qubits})
    src = sum(op.source_gates for op in run)
    if len(support) == 1:
        d0, d1 = 1.0 + 0j, 1.0 + 0j
        for op in run:
            vals = op.data if op.kind == "diag1" else np.diagonal(op.data)
            d0 *= vals[0]
            d1 *= vals[1]
        return [_diag1_op((d0, d1), (support[0],), n, source_gates=src)], len(run) - 1
    if len(support) == 2:
        q0, q1 = support
        diag = np.ones(4, dtype=np.complex128)
        for op in run:
            vals = op.data if op.kind in ("diag1", "diag2") else np.diagonal(op.data)
            if len(op.qubits) == 1:
                slot = 0 if op.qubits[0] == q0 else 1
                for sub in range(4):
                    diag[sub] *= vals[(sub >> slot) & 1]
            else:
                # (q0', q1') may be the support pair in either order.
                swapped = op.qubits[0] != q0
                for sub in range(4):
                    s = ((sub & 1) << 1 | (sub >> 1)) if swapped else sub
                    diag[sub] *= vals[s]
        return [_diag2_op(tuple(diag), (q0, q1), n, source_gates=src)], len(run) - 1
    if fold_full and n <= FULL_DIAG_FOLD_MAX_QUBITS:
        d = np.ones(1 << n, dtype=np.complex128)
        for op in run:
            d *= _op_full_diag(op, n)
        return [_diag_full_op(d, tuple(support), src)], len(run) - 1
    return run, 0


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------


class ExecutionPlan:
    """A circuit compiled to a flat list of prepacked kernel ops.

    Plans are immutable snapshots of their source circuit (like
    :class:`repro.ir.compiled.CompiledPauliSum` for observables); use
    :func:`compile_circuit` for the memoized, auto-invalidating entry
    point.  ``execute(state, params)`` is a tight loop over the op
    closures — zero ``Gate`` construction, zero ``bind`` copies, zero
    name dispatch per call.
    """

    def __init__(
        self,
        circuit: Circuit,
        fuse: bool = True,
        fold_diagonals: bool = True,
        fold_full_diag: bool = True,
        prefix_budget: int = 8,
        prefix_device_bytes: int = 1 << 30,
        enable_prefix: bool = True,
    ):
        self.source = circuit
        self._source_gates = tuple(circuit.gates)
        self.num_qubits = circuit.num_qubits
        self.dim = 1 << circuit.num_qubits
        self.parameters: List[str] = circuit.parameters
        self.num_parameters = len(self.parameters)
        self.source_gate_count = len(circuit.gates)
        index_of = {name: k for k, name in enumerate(self.parameters)}

        n = self.num_qubits
        stream = circuit.gates
        self.fused_gates_removed = 0
        if fuse:
            fr = fuse_circuit(circuit, max_qubits=2)
            stream = fr.circuit.gates
            self.fused_gates_removed = fr.original_gates - fr.fused_gates

        ops: List[PlanOp] = []
        for g in stream:
            if g.is_parameterized:
                ops.append(_parametric_op(g, n, index_of))
            else:
                ops.append(_static_op(g, n))

        self.diag_gates_folded = 0
        if fold_diagonals:
            folded: List[PlanOp] = []
            run: List[PlanOp] = []
            for op in ops:
                if not op.is_parametric and _is_static_diag(op):
                    run.append(op)
                    continue
                merged, saved = _fold_diag_run(run, n, fold_full_diag)
                folded.extend(merged)
                self.diag_gates_folded += saved
                run = []
                folded.append(op)
            merged, saved = _fold_diag_run(run, n, fold_full_diag)
            folded.extend(merged)
            self.diag_gates_folded += saved
            ops = folded

        self._ops = ops
        self.num_ops = len(ops)
        obs.mem_track(self, "plan_data", self.data_bytes())

        # -- prefix-reuse bookkeeping ---------------------------------------
        # first op index touching each parameter
        self.first_use: List[int] = [self.num_ops] * self.num_parameters
        for i, op in enumerate(ops):
            for k in op.param_deps:
                if i < self.first_use[k]:
                    self.first_use[k] = i
        # park boundaries: entries of parametric ops, plus the end
        boundaries = sorted({i for i, op in enumerate(ops) if op.param_deps})
        boundaries.append(self.num_ops)
        self._boundaries = boundaries
        # parameters whose value the state at each boundary depends on
        deps_before: Dict[int, Tuple[int, ...]] = {}
        seen: set = set()
        bi = 0
        for i in range(self.num_ops + 1):
            while bi < len(boundaries) and boundaries[bi] == i:
                deps_before[i] = tuple(sorted(seen))
                bi += 1
            if i < self.num_ops:
                seen |= ops[i].param_deps
        self._deps_before = deps_before

        self._prefix_cache = None
        if enable_prefix:
            from repro.core.cache import PostAnsatzCache  # lazy: avoids cycle

            self._prefix_cache = PostAnsatzCache(
                device_capacity_bytes=prefix_device_bytes,
                max_entries=prefix_budget,
                mem_category="prefix_cache",
            )
        self._last_params: Optional[np.ndarray] = None
        self.prefix_resumes = 0
        self.prefix_ops_skipped = 0

        if obs.enabled():
            obs.inc("repro_plan_compile_total", help="Circuit-plan compilations")
            obs.inc(
                "repro_plan_ops_total",
                self.num_ops,
                help="Kernel ops emitted by circuit-plan compilation",
            )
            obs.inc(
                "repro_plan_fused_gates_removed_total",
                self.fused_gates_removed,
                help="Gates removed by compile-time static-segment fusion",
            )
            obs.inc(
                "repro_plan_diag_gates_folded_total",
                self.diag_gates_folded,
                help="Gates absorbed by compile-time diagonal folding",
            )

    # -- inspection ----------------------------------------------------------

    @property
    def ops(self) -> List[PlanOp]:
        return self._ops

    @property
    def num_parametric_ops(self) -> int:
        return sum(1 for op in self._ops if op.is_parametric)

    def is_stale(self) -> bool:
        """True once the source circuit was mutated after compilation."""
        gates = self.source.gates
        return len(gates) != len(self._source_gates) or any(
            a is not b for a, b in zip(gates, self._source_gates)
        )

    def param_op_index(self, k: int) -> int:
        """First op index that depends on parameter ``k``."""
        return self.first_use[k]

    def data_bytes(self) -> int:
        """Bytes frozen into the plan's prepacked kernel data (dense
        matrices, folded diagonals, gather tables)."""
        total = 0
        for op in self._ops:
            data = op.data
            if isinstance(data, np.ndarray):
                total += data.nbytes
            elif isinstance(data, (tuple, list)):
                for item in data:
                    if isinstance(item, np.ndarray):
                        total += item.nbytes
        return total

    def stats(self) -> Dict[str, object]:
        """Compile/execute statistics (the ``--plan-stats`` payload)."""
        cache = self._prefix_cache
        return {
            "source_gates": self.source_gate_count,
            "ops": self.num_ops,
            "parametric_ops": self.num_parametric_ops,
            "fused_gates_removed": self.fused_gates_removed,
            "diag_gates_folded": self.diag_gates_folded,
            "prefix_resumes": self.prefix_resumes,
            "prefix_ops_skipped": self.prefix_ops_skipped,
            "prefix_cache_hits": cache.hits if cache else 0,
            "prefix_cache_misses": cache.misses if cache else 0,
            "prefix_cache_entries": len(cache) if cache else 0,
        }

    def __repr__(self) -> str:
        return (
            f"ExecutionPlan(qubits={self.num_qubits}, "
            f"ops={self.num_ops}/{self.source_gate_count} gates, "
            f"params={self.num_parameters})"
        )

    # -- execution -----------------------------------------------------------

    def _check_params(self, params) -> np.ndarray:
        params = np.asarray(params, dtype=float)
        if params.ndim == 0:
            params = params.reshape(1)
        if params.shape != (self.num_parameters,):
            raise ValueError(
                f"plan expects {self.num_parameters} parameter(s) "
                f"{self.parameters}, got shape {params.shape}"
            )
        return params

    def _prefix_key(self, pos: int, params: np.ndarray) -> np.ndarray:
        deps = self._deps_before[pos]
        key = np.empty(1 + len(deps))
        key[0] = float(pos)
        for j, k in enumerate(deps):
            key[1 + j] = params[k]
        return key

    def _find_resume(self, params: np.ndarray):
        cache = self._prefix_cache
        for pos in reversed(self._boundaries):
            snap = cache.get(self._prefix_key(pos, params))
            if snap is not None:
                return pos, snap
        return None

    def _park_targets(self, params: np.ndarray) -> Tuple[int, ...]:
        targets = {self.num_ops}
        last = self._last_params
        if last is not None and last.shape == params.shape:
            changed = np.nonzero(params != last)[0]
            if changed.size:
                first_op = min(self.first_use[int(c)] for c in changed)
                # largest boundary <= the earliest affected op
                best = 0
                for b in self._boundaries:
                    if b <= first_op:
                        best = b
                    else:
                        break
                if best > 0:
                    targets.add(best)
        return tuple(sorted(targets))

    def execute(
        self,
        state: np.ndarray,
        params: Sequence[float] = (),
        reset: bool = True,
    ) -> np.ndarray:
        """Run the plan in place on ``state`` and return it.

        With ``reset=True`` (the default) the buffer is initialized to
        |0...0> — or, when prefix reuse finds a parked intermediate
        state consistent with ``params``, to that state, skipping its
        prefix of ops.  With ``reset=False`` the plan is applied to the
        caller's current state and prefix reuse is bypassed (the
        provenance of the state is unknown).
        """
        params = self._check_params(params)
        if state.shape != (self.dim,):
            raise ValueError("state dimension mismatch")
        start = 0
        if reset:
            resume = (
                self._find_resume(params)
                if self._prefix_cache is not None
                else None
            )
            if resume is not None:
                start, snap = resume
                state[:] = snap
                self.prefix_resumes += 1
                self.prefix_ops_skipped += start
            else:
                state.fill(0)
                state[0] = 1.0
        ops = self._ops
        if reset and self._prefix_cache is not None:
            cache = self._prefix_cache
            i = start
            for pos in self._park_targets(params):
                if pos < i:
                    continue
                for j in range(i, pos):
                    ops[j].run(state, params)
                i = pos
                if pos < self.num_ops or i > start:
                    cache.put(self._prefix_key(pos, params), state.copy())
            for j in range(i, self.num_ops):
                ops[j].run(state, params)
            self._last_params = params.copy()
        else:
            for j in range(start, self.num_ops):
                ops[j].run(state, params)
        if obs.enabled():
            obs.inc(
                "repro_plan_executions_total", help="Compiled-plan executions"
            )
            obs.inc(
                "repro_plan_ops_executed_total",
                self.num_ops - start,
                help="Kernel ops executed by compiled plans",
            )
            if start:
                obs.inc(
                    "repro_plan_prefix_resumes_total",
                    help="Plan executions resumed from a parked prefix state",
                )
                obs.inc(
                    "repro_plan_prefix_ops_skipped_total",
                    start,
                    help="Kernel ops skipped via prefix-state reuse",
                    labels={"engine": "circuit"},
                )
        return state

    def execute_slice(
        self,
        state: np.ndarray,
        params: Sequence[float],
        start: int,
        stop: Optional[int] = None,
    ) -> np.ndarray:
        """Run ops ``[start, stop)`` on the caller's state — the
        explicit-prefix form the parameter-shift gradient drives."""
        params = self._check_params(params)
        stop = self.num_ops if stop is None else stop
        if not (0 <= start <= stop <= self.num_ops):
            raise ValueError(f"invalid op range [{start}, {stop})")
        ops = self._ops
        for j in range(start, stop):
            ops[j].run(state, params)
        return state

    def clear_prefix_cache(self) -> None:
        """Drop parked prefix states (frees memory; never affects
        correctness — only future reuse opportunities)."""
        if self._prefix_cache is not None:
            from repro.core.cache import PostAnsatzCache

            self._prefix_cache = PostAnsatzCache(
                device_capacity_bytes=self._prefix_cache.device_capacity_bytes,
                max_entries=self._prefix_cache.max_entries,
                mem_category="prefix_cache",
            )
        self._last_params = None


def compile_circuit(
    circuit: Circuit,
    fuse: bool = True,
    fold_diagonals: bool = True,
    fold_full_diag: bool = True,
    prefix_budget: int = 8,
    enable_prefix: bool = True,
) -> ExecutionPlan:
    """The memoizing entry point: compile ``circuit`` to an
    :class:`ExecutionPlan`, reusing the plan cached on the circuit when
    the gate list is unchanged (mutation via ``append``/``add``/
    ``compose`` invalidates it — a stale plan is never returned).
    """
    options = (fuse, fold_diagonals, fold_full_diag, prefix_budget, enable_prefix)
    cached = getattr(circuit, "_plan", None)
    if (
        cached is not None
        and cached[0] == options
        and not cached[1].is_stale()
    ):
        if obs.enabled():
            obs.inc(
                "repro_plan_cache_total",
                help="Plan cache lookups by outcome",
                labels={"outcome": "hit"},
            )
        return cached[1]
    if obs.enabled():
        obs.inc(
            "repro_plan_cache_total",
            help="Plan cache lookups by outcome",
            labels={"outcome": "miss"},
        )
    plan = ExecutionPlan(
        circuit,
        fuse=fuse,
        fold_diagonals=fold_diagonals,
        fold_full_diag=fold_full_diag,
        prefix_budget=prefix_budget,
        enable_prefix=enable_prefix,
    )
    circuit._plan = (options, plan)
    return plan
