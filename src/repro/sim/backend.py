"""Backend abstraction and registry.

XACC's defining feature (§3) is hardware-agnostic execution: the same
program runs on any registered backend.  ``Backend`` is that seam here.
Every backend can (1) prepare the state of a circuit and (2) evaluate
the expectation of a Pauli observable in that state, which is the
entire contract the VQE drivers need.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional

import numpy as np

from repro.ir.circuit import Circuit
from repro.ir.pauli import PauliSum

__all__ = ["Backend", "register_backend", "get_backend", "available_backends"]


class Backend(ABC):
    """Execution backend contract used by the VQE/ADAPT drivers."""

    name: str = "abstract"

    @abstractmethod
    def expectation(self, circuit: Circuit, observable: PauliSum) -> float:
        """<0| U^dag H U |0> for the (bound) circuit U."""

    def statevector(self, circuit: Circuit) -> Optional[np.ndarray]:
        """Full statevector if this backend exposes one (else None)."""
        return None


class StatevectorBackend(Backend):
    """Single-device statevector execution with direct expectation."""

    name = "statevector"

    def expectation(self, circuit: Circuit, observable: PauliSum) -> float:
        from repro.sim.expectation import expectation_direct
        from repro.sim.statevector import StatevectorSimulator

        sim = StatevectorSimulator(circuit.num_qubits)
        state = sim.run(circuit)
        return expectation_direct(state, observable)

    def statevector(self, circuit: Circuit) -> np.ndarray:
        from repro.sim.statevector import StatevectorSimulator

        sim = StatevectorSimulator(circuit.num_qubits)
        return sim.run(circuit).copy()


class SampledBackend(Backend):
    """Finite-shot estimation (the traditional baseline of §4.2.1)."""

    name = "sampled"

    def __init__(self, shots_per_group: int = 4096, seed: int = 1234):
        self.shots_per_group = shots_per_group
        self.rng = np.random.default_rng(seed)

    def expectation(self, circuit: Circuit, observable: PauliSum) -> float:
        from repro.sim.expectation import expectation_sampled
        from repro.sim.statevector import StatevectorSimulator

        sim = StatevectorSimulator(circuit.num_qubits)
        state = sim.run(circuit)
        return expectation_sampled(
            state, observable, self.shots_per_group, self.rng
        )


class DistributedBackend(Backend):
    """Multi-rank partitioned statevector (repro.hpc), Perlmutter-style."""

    name = "distributed"

    def __init__(self, num_ranks: int = 4):
        self.num_ranks = num_ranks

    def expectation(self, circuit: Circuit, observable: PauliSum) -> float:
        from repro.hpc.distributed import DistributedStatevector

        dsv = DistributedStatevector(circuit.num_qubits, self.num_ranks)
        dsv.run(circuit)
        return dsv.expectation(observable)

    def statevector(self, circuit: Circuit) -> np.ndarray:
        from repro.hpc.distributed import DistributedStatevector

        dsv = DistributedStatevector(circuit.num_qubits, self.num_ranks)
        dsv.run(circuit)
        return dsv.gather()


_REGISTRY: Dict[str, Callable[..., Backend]] = {
    "statevector": StatevectorBackend,
    "sampled": SampledBackend,
    "distributed": DistributedBackend,
}


def register_backend(name: str, factory: Callable[..., Backend]) -> None:
    """Register a new backend factory under ``name``."""
    _REGISTRY[name] = factory


def get_backend(name: str, **kwargs) -> Backend:
    """Instantiate a backend by name (XACC-style lookup)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_backends() -> "list[str]":
    return sorted(_REGISTRY)
