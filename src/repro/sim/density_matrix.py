"""Density-matrix simulation mode.

NWQ-Sim descends from DM-Sim [paper ref 7], a density-matrix simulator
for GPU clusters; the chemistry mode of the paper runs statevector, but
noisy validation of VQE ansatze needs mixed states.  This module gives
that mode: rho lives as a dense 2^n x 2^n matrix, unitaries act as
``U rho U^dag`` (applied with the same vectorized kernels used for
statevectors, once per side), and noise enters through Kraus channels
(``repro.sim.noise``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.ir.circuit import Circuit
from repro.ir.gates import Gate
from repro.ir.pauli import PauliSum
from repro.sim import kernels
from repro.sim.noise import NoiseChannel, NoiseModel

__all__ = ["DensityMatrixSimulator"]


class DensityMatrixSimulator:
    """Dense density-matrix simulator for small noisy registers.

    Memory is 2^(2n) complex128, so practical up to ~12 qubits; the
    paper's noisy-validation use cases (few-qubit ansatz studies) fit
    comfortably.
    """

    def __init__(self, num_qubits: int, noise_model: Optional[NoiseModel] = None):
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        if num_qubits > 13:
            raise ValueError("density-matrix mode limited to 13 qubits (16 GiB)")
        self.num_qubits = num_qubits
        self.dim = 1 << num_qubits
        self.rho = np.zeros((self.dim, self.dim), dtype=np.complex128)
        self.rho[0, 0] = 1.0
        self.noise_model = noise_model

    def reset(self) -> None:
        self.rho.fill(0)
        self.rho[0, 0] = 1.0

    def set_pure_state(self, state: np.ndarray) -> None:
        state = np.asarray(state, dtype=np.complex128)
        if state.shape != (self.dim,):
            raise ValueError("state dimension mismatch")
        self.rho = np.outer(state, state.conj())

    # -- execution ---------------------------------------------------------------

    def _apply_unitary_kernel(self, gate: Gate) -> None:
        """rho <- U rho U^dag using statevector kernels column- and
        row-wise: apply U to each column (as vectors), then U* to each
        row (via the transposed view)."""
        m = gate.to_matrix()
        qs = gate.qubits
        n = self.num_qubits
        # Columns: rho[:, j] are vectors; flatten in Fortran order view.
        # Apply to all columns at once by treating rho as (dim, dim) and
        # looping kernels over the first axis via reshape:
        # kernels operate on 1-D arrays, so use matrix form for clarity.
        full = _embed_unitary(m, qs, n)
        self.rho = full @ self.rho @ full.conj().T

    def apply_gate(self, gate: Gate) -> None:
        self._apply_unitary_kernel(gate)
        if self.noise_model is not None:
            for channel, qubits in self.noise_model.channels_after(gate):
                self.apply_channel(channel, qubits)

    def apply_channel(self, channel: NoiseChannel, qubits: Sequence[int]) -> None:
        """Apply a Kraus channel: rho <- sum_k K rho K^dag."""
        n = self.num_qubits
        new = np.zeros_like(self.rho)
        for k in channel.kraus_operators(len(qubits)):
            full = _embed_unitary(k, tuple(qubits), n)
            new += full @ self.rho @ full.conj().T
        self.rho = new

    def run(self, circuit: Circuit, reset: bool = True) -> np.ndarray:
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit width mismatch")
        if circuit.num_parameters:
            from repro.sim.plan import unbound_parameter_message

            raise ValueError(unbound_parameter_message(circuit))
        if reset:
            self.reset()
        for g in circuit.gates:
            self.apply_gate(g)
        return self.rho

    # -- observation -----------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        return np.real(np.diag(self.rho)).clip(min=0.0)

    def expectation(self, observable: PauliSum) -> float:
        """Tr(rho H), computed term-by-term without building H densely."""
        total = 0.0 + 0.0j
        for coeff, pstr in observable:
            # Tr(rho P) = sum_j (rho P)_{jj} = sum_j rho[j, :] P[:, j];
            # P has one nonzero per column: P[k ^ x, k].
            dim = self.dim
            cols = np.arange(dim, dtype=np.int64)
            rows = cols ^ pstr.x
            from repro.utils.bitops import count_set_bits

            vals = (1.0 - 2.0 * (count_set_bits(cols & pstr.z) & 1)).astype(
                np.complex128
            )
            c = pstr.phase_exponent()
            if c:
                vals *= (1j) ** c
            total += coeff * np.sum(self.rho[cols, rows] * vals)
        if abs(total.imag) > 1e-8 * max(1.0, abs(total.real)):
            raise ValueError("non-Hermitian observable")
        return float(total.real)

    def purity(self) -> float:
        """Tr(rho^2); 1 for pure states."""
        return float(np.real(np.vdot(self.rho, self.rho @ np.eye(self.dim))))

    def sample_counts(
        self, shots: int, rng: Optional[np.random.Generator] = None
    ) -> Dict[int, int]:
        rng = rng or np.random.default_rng()
        p = self.probabilities()
        p = p / p.sum()
        outcomes, counts = np.unique(
            rng.choice(self.dim, size=shots, p=p), return_counts=True
        )
        return {int(o): int(c) for o, c in zip(outcomes, counts)}


def _embed_unitary(m: np.ndarray, qubits: "tuple[int, ...]", n: int) -> np.ndarray:
    """Embed a k-qubit operator into the full 2^n space (dense; DM mode
    is small-register by construction so this is acceptable)."""
    dim = 1 << n
    k = len(qubits)
    out = np.zeros((dim, dim), dtype=np.complex128)
    sub_dim = 1 << k
    base = np.arange(dim, dtype=np.int64)
    sub = np.zeros(dim, dtype=np.int64)
    for j, q in enumerate(qubits):
        sub |= ((base >> q) & 1) << j
    stripped = base.copy()
    for q in qubits:
        stripped &= ~(1 << q)
    for s_out in range(sub_dim):
        offset = 0
        for j, q in enumerate(qubits):
            if (s_out >> j) & 1:
                offset |= 1 << q
        rows = stripped | offset
        out[rows, base] = m[s_out, sub]
    return out
