"""Kraus noise channels and per-gate noise models for the density-matrix
simulation mode.

The channels are the standard NISQ error processes used when validating
VQE ansatze before hardware deployment (the paper's stated purpose for
large-scale simulation): depolarizing, amplitude damping, phase
damping, and bit/phase flip.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.ir.gates import Gate

__all__ = [
    "NoiseChannel",
    "DepolarizingChannel",
    "AmplitudeDampingChannel",
    "PhaseDampingChannel",
    "BitFlipChannel",
    "PhaseFlipChannel",
    "NoiseModel",
]

_I = np.eye(2, dtype=np.complex128)
_X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
_Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
_Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)


class NoiseChannel(ABC):
    """A CPTP map given by its Kraus operators."""

    @abstractmethod
    def kraus_operators(self, num_qubits: int) -> List[np.ndarray]:
        """Kraus set for a ``num_qubits``-qubit application."""

    def is_cptp(self, num_qubits: int = 1, atol: float = 1e-10) -> bool:
        """Check sum_k K^dag K = I (trace preservation)."""
        dim = 1 << num_qubits
        acc = np.zeros((dim, dim), dtype=np.complex128)
        for k in self.kraus_operators(num_qubits):
            acc += k.conj().T @ k
        return np.allclose(acc, np.eye(dim), atol=atol)


class DepolarizingChannel(NoiseChannel):
    """Uniform depolarizing noise with error probability ``p``.

    For one qubit: rho -> (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z).
    For two qubits: the 15 non-identity Pauli pairs share p/15.
    """

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = p

    def kraus_operators(self, num_qubits: int) -> List[np.ndarray]:
        paulis = [_I, _X, _Y, _Z]
        if num_qubits == 1:
            ops = [math.sqrt(1 - self.p) * _I]
            ops += [math.sqrt(self.p / 3) * m for m in (_X, _Y, _Z)]
            return ops
        if num_qubits == 2:
            ops = [math.sqrt(1 - self.p) * np.kron(_I, _I)]
            for i, a in enumerate(paulis):
                for j, b in enumerate(paulis):
                    if i == 0 and j == 0:
                        continue
                    ops.append(math.sqrt(self.p / 15) * np.kron(b, a))
            return ops
        raise ValueError("depolarizing channel defined for 1 or 2 qubits")


class AmplitudeDampingChannel(NoiseChannel):
    """T1 relaxation with damping probability ``gamma``."""

    def __init__(self, gamma: float):
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        self.gamma = gamma

    def kraus_operators(self, num_qubits: int) -> List[np.ndarray]:
        if num_qubits != 1:
            raise ValueError("amplitude damping is a single-qubit channel")
        k0 = np.array([[1, 0], [0, math.sqrt(1 - self.gamma)]], dtype=np.complex128)
        k1 = np.array([[0, math.sqrt(self.gamma)], [0, 0]], dtype=np.complex128)
        return [k0, k1]


class PhaseDampingChannel(NoiseChannel):
    """Pure dephasing (T2) with probability ``lam``."""

    def __init__(self, lam: float):
        if not 0.0 <= lam <= 1.0:
            raise ValueError("lambda must be in [0, 1]")
        self.lam = lam

    def kraus_operators(self, num_qubits: int) -> List[np.ndarray]:
        if num_qubits != 1:
            raise ValueError("phase damping is a single-qubit channel")
        k0 = np.array([[1, 0], [0, math.sqrt(1 - self.lam)]], dtype=np.complex128)
        k1 = np.array([[0, 0], [0, math.sqrt(self.lam)]], dtype=np.complex128)
        return [k0, k1]


class BitFlipChannel(NoiseChannel):
    """X error with probability ``p``."""

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = p

    def kraus_operators(self, num_qubits: int) -> List[np.ndarray]:
        if num_qubits != 1:
            raise ValueError("bit flip is a single-qubit channel")
        return [math.sqrt(1 - self.p) * _I, math.sqrt(self.p) * _X]


class PhaseFlipChannel(NoiseChannel):
    """Z error with probability ``p``."""

    def __init__(self, p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = p

    def kraus_operators(self, num_qubits: int) -> List[np.ndarray]:
        if num_qubits != 1:
            raise ValueError("phase flip is a single-qubit channel")
        return [math.sqrt(1 - self.p) * _I, math.sqrt(self.p) * _Z]


class NoiseModel:
    """Per-gate noise attachment: after every 1q (2q) gate, apply the
    configured 1q (2q) channels on the gate's qubits."""

    def __init__(self) -> None:
        self._1q: List[NoiseChannel] = []
        self._2q: List[NoiseChannel] = []

    def add_all_qubit_channel(
        self, channel: NoiseChannel, num_qubits: int = 1
    ) -> "NoiseModel":
        if num_qubits == 1:
            self._1q.append(channel)
        elif num_qubits == 2:
            self._2q.append(channel)
        else:
            raise ValueError("channels attach to 1- or 2-qubit gates")
        return self

    def channels_after(
        self, gate: Gate
    ) -> Iterable[Tuple[NoiseChannel, Tuple[int, ...]]]:
        if gate.num_qubits == 1:
            for ch in self._1q:
                yield ch, gate.qubits
        elif gate.num_qubits == 2:
            for ch in self._2q:
                yield ch, gate.qubits
            # 1q channels also act on each qubit of a 2q gate (typical
            # device calibration convention).
            for ch in self._1q:
                for q in gate.qubits:
                    yield ch, (q,)
