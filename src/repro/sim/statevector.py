"""The single-device statevector simulator (the NWQ-Sim core).

``StatevectorSimulator`` owns one contiguous 2^n complex128 state
vector ("device memory") and executes circuit IR gate-by-gate with the
vectorized kernels of ``repro.sim.kernels``.  Diagonal gates and
permutation gates take fast paths that avoid the full gather/scatter of
a dense-matrix kernel — the same special-casing NWQ-Sim does on GPU.

The simulator exposes exactly the three capabilities the paper's VQE
mode builds on:

* run a circuit to obtain the post-ansatz state (cached upstream by
  ``repro.core.cache``),
* apply *basis-change* suffixes to a copy of a cached state,
* compute direct expectation values of Pauli observables from the
  amplitudes (``repro.sim.expectation``) without sampling.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro import obs
from repro.ir.circuit import Circuit
from repro.ir.gates import Gate
from repro.sim import kernels
from repro.utils.profiling import Timer

__all__ = ["StatevectorSimulator"]

_DIAG_1Q: Dict[str, "tuple[complex, complex]"] = {
    "i": (1.0, 1.0),
    "z": (1.0, -1.0),
    "s": (1.0, 1j),
    "sdg": (1.0, -1j),
    "t": (1.0, complex(math.cos(math.pi / 4), math.sin(math.pi / 4))),
    "tdg": (1.0, complex(math.cos(math.pi / 4), -math.sin(math.pi / 4))),
}


class StatevectorSimulator:
    """Dense statevector simulator for up to ~28 qubits on one node.

    Parameters
    ----------
    num_qubits:
        Register width; allocates 2^n complex128 amplitudes.
    timer:
        Optional :class:`repro.utils.profiling.Timer` for kernel-level
        time accounting.
    """

    def __init__(self, num_qubits: int, timer: Optional[Timer] = None):
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        if num_qubits > 30:
            raise ValueError(
                "refusing to allocate > 16 GiB on one node; use the "
                "distributed backend (repro.hpc) for wider registers"
            )
        self.num_qubits = num_qubits
        self.dim = 1 << num_qubits
        self.state = np.zeros(self.dim, dtype=np.complex128)
        self.state[0] = 1.0
        self.timer = timer
        self.gates_applied = 0
        obs.mem_track(self, "statevector", self.state.nbytes)

    # -- state management ----------------------------------------------------

    def reset(self) -> None:
        """Return to |0...0>."""
        self.state.fill(0)
        self.state[0] = 1.0
        self.gates_applied = 0

    def set_state(self, state: np.ndarray, copy: bool = True) -> None:
        """Load an externally prepared state (e.g. a cached post-ansatz
        state being restored, §4.1.4)."""
        state = np.asarray(state, dtype=np.complex128)
        if state.shape != (self.dim,):
            raise ValueError("state dimension mismatch")
        self.state = state.copy() if copy else state

    def statevector(self, copy: bool = True) -> np.ndarray:
        """The current amplitudes; pass ``copy=False`` to get the live
        buffer (used by the caching layer to avoid duplication)."""
        return self.state.copy() if copy else self.state

    def probabilities(self) -> np.ndarray:
        """|amplitude|^2 over all basis states."""
        return np.abs(self.state) ** 2

    # -- execution -------------------------------------------------------------

    def apply_gate(self, gate: Gate) -> None:
        """Apply one gate instruction in place."""
        n = self.num_qubits
        st = self.state
        name = gate.name
        self.gates_applied += 1
        if gate.matrix is not None:
            qs = gate.qubits
            if len(qs) == 1:
                kernels.apply_1q(st, gate.matrix, qs[0], n)
            elif len(qs) == 2:
                kernels.apply_2q(st, gate.matrix, qs[0], qs[1], n)
            else:
                kernels.apply_kq_dense(st, gate.matrix, qs, n)
            return
        if name in _DIAG_1Q:
            d0, d1 = _DIAG_1Q[name]
            kernels.apply_diag_1q(st, d0, d1, gate.qubits[0], n)
            return
        if name == "x":
            kernels.apply_x(st, gate.qubits[0], n)
            return
        if name == "cx":
            kernels.apply_cx(st, gate.qubits[0], gate.qubits[1], n)
            return
        if name in ("rz", "p"):
            (theta,) = gate.params
            theta = float(theta)
            if name == "rz":
                d0 = complex(math.cos(theta / 2), -math.sin(theta / 2))
                d1 = d0.conjugate()
            else:
                d0, d1 = 1.0, complex(math.cos(theta), math.sin(theta))
            kernels.apply_diag_1q(st, d0, d1, gate.qubits[0], n)
            return
        if name == "cz":
            kernels.apply_diag_2q(st, (1, 1, 1, -1), *gate.qubits, n=n)
            return
        if name == "rzz":
            (theta,) = gate.params
            e = complex(math.cos(float(theta) / 2), -math.sin(float(theta) / 2))
            kernels.apply_diag_2q(
                st, (e, e.conjugate(), e.conjugate(), e), *gate.qubits, n=n
            )
            return
        if name in ("cp", "crz"):
            (theta,) = gate.params
            theta = float(theta)
            if name == "cp":
                diag = (1, 1, 1, complex(math.cos(theta), math.sin(theta)))
            else:
                e = complex(math.cos(theta / 2), -math.sin(theta / 2))
                diag = (1, e, 1, e.conjugate())
            kernels.apply_diag_2q(st, diag, *gate.qubits, n=n)
            return
        # Fall back to dense matrix kernels.
        m = gate.to_matrix()
        if gate.num_qubits == 1:
            kernels.apply_1q(st, m, gate.qubits[0], n)
        elif gate.num_qubits == 2:
            kernels.apply_2q(st, m, gate.qubits[0], gate.qubits[1], n)
        else:
            kernels.apply_kq_dense(st, m, gate.qubits, n)

    def run(self, circuit: Circuit, reset: bool = True) -> np.ndarray:
        """Execute a circuit; returns the live statevector (no copy)."""
        if circuit.num_qubits != self.num_qubits:
            raise ValueError(
                f"circuit width {circuit.num_qubits} != register {self.num_qubits}"
            )
        if circuit.num_parameters:
            from repro.sim.plan import unbound_parameter_message

            raise ValueError(unbound_parameter_message(circuit))
        if reset:
            self.reset()
        with obs.span(
            "sim.run_circuit", gates=len(circuit.gates), qubits=self.num_qubits
        ):
            if self.timer is not None:
                with self.timer.section("run_circuit"):
                    for g in circuit.gates:
                        self.apply_gate(g)
            else:
                for g in circuit.gates:
                    self.apply_gate(g)
        if obs.enabled():
            obs.inc(
                "repro_sim_circuits_total", help="Circuit executions on the dense simulator"
            )
            obs.inc(
                "repro_sim_gates_total",
                len(circuit.gates),
                help="Gates applied by the dense simulator",
            )
        return self.state

    def apply_circuit(self, circuit: Circuit) -> np.ndarray:
        """Apply a circuit to the *current* state (suffix execution —
        basis rotations on top of a cached state)."""
        return self.run(circuit, reset=False)

    def run_plan(
        self,
        plan,
        params: Sequence[float] = (),
        reset: bool = True,
    ) -> np.ndarray:
        """Execute a compiled :class:`repro.sim.plan.ExecutionPlan` with
        the given parameter vector; returns the live statevector.

        The bind-free fast path of :meth:`run`: no ``Gate`` objects, no
        circuit copies — the plan's prepacked kernel ops run directly on
        the simulator's buffer, with prefix-state reuse when ``reset``.
        """
        if plan.num_qubits != self.num_qubits:
            raise ValueError(
                f"plan width {plan.num_qubits} != register {self.num_qubits}"
            )
        with obs.span(
            "sim.run_plan", ops=plan.num_ops, qubits=self.num_qubits
        ):
            if self.timer is not None:
                with self.timer.section("run_circuit"):
                    plan.execute(self.state, params, reset=reset)
            else:
                plan.execute(self.state, params, reset=reset)
        self.gates_applied += plan.num_ops
        if obs.enabled():
            obs.inc(
                "repro_sim_circuits_total",
                help="Circuit executions on the dense simulator",
            )
            obs.inc(
                "repro_sim_gates_total",
                plan.num_ops,
                help="Gates applied by the dense simulator",
            )
        return self.state

    # -- measurement --------------------------------------------------------------

    def sample(
        self, shots: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Sample ``shots`` basis-state indices from |psi|^2."""
        rng = rng or np.random.default_rng()
        probs = self.probabilities()
        probs = probs / probs.sum()
        return rng.choice(self.dim, size=shots, p=probs)

    def sample_counts(
        self, shots: int, rng: Optional[np.random.Generator] = None
    ) -> Dict[int, int]:
        """Histogram of sampled basis states."""
        outcomes, counts = np.unique(self.sample(shots, rng), return_counts=True)
        return {int(o): int(c) for o, c in zip(outcomes, counts)}

    def measure_qubit(
        self, qubit: int, rng: Optional[np.random.Generator] = None
    ) -> int:
        """Projectively measure one qubit, collapsing the state."""
        rng = rng or np.random.default_rng()
        idx = np.arange(self.dim, dtype=np.int64)
        mask1 = (idx >> qubit) & 1 == 1
        p1 = float(np.sum(np.abs(self.state[mask1]) ** 2))
        outcome = int(rng.random() < p1)
        keep = mask1 if outcome else ~mask1
        self.state[~keep] = 0.0
        norm = math.sqrt(p1 if outcome else 1.0 - p1)
        if norm > 0:
            self.state /= norm
        return outcome

    def memory_bytes(self) -> int:
        """Bytes held by the state vector (the Fig. 1c quantity)."""
        return self.state.nbytes
