"""repro — a from-scratch reproduction of "Enabling Scalable VQE
Simulation on Leading HPC Systems" (SC-W 2023).

Layers (bottom-up):

* :mod:`repro.ir` — circuit IR, gate library, Pauli algebra (XACC role)
* :mod:`repro.sim` — statevector / density-matrix simulators, gate
  fusion, direct expectation (NWQ-Sim role)
* :mod:`repro.hpc` — distributed partitioned statevector, simulated
  communicator, machine performance models (Perlmutter/Summit role)
* :mod:`repro.chem` — Gaussian integrals, RHF, MP2, fermionic algebra,
  qubit mappings, CC downfolding, UCCSD/ADAPT pools (chemistry role)
* :mod:`repro.opt` — classical optimizers and gradients
* :mod:`repro.core` — the paper's optimized VQE flow: caching,
  estimation strategies, VQE/ADAPT drivers, resource counting, and the
  end-to-end workflow of Fig. 2
* :mod:`repro.obs` — unified observability: span tracing (Chrome
  trace-event export), metrics (Prometheus exposition), run reports
"""

__version__ = "1.0.0"

from repro import obs
from repro.ir import Circuit, Gate, Parameter, PauliString, PauliSum
from repro.obs import MetricsRegistry, RunReport, Tracer
from repro.sim import StatevectorSimulator, fuse_circuit, get_backend

__all__ = [
    "__version__",
    "Circuit",
    "Gate",
    "Parameter",
    "PauliString",
    "PauliSum",
    "StatevectorSimulator",
    "fuse_circuit",
    "get_backend",
    "obs",
    "Tracer",
    "MetricsRegistry",
    "RunReport",
]
