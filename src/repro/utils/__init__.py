"""Shared utilities: bit manipulation, linear algebra helpers, timers."""

from repro.utils.bitops import (
    bit_at,
    count_set_bits,
    flip_bit,
    insert_zero_bit,
    set_bit,
)
from repro.utils.linalg import (
    is_hermitian,
    is_unitary,
    kron_all,
    random_statevector,
    random_unitary,
)
from repro.utils.profiling import Timer, timed
from repro.utils.retry import RetryExhaustedError, RetryPolicy, RetryStats

__all__ = [
    "RetryExhaustedError",
    "RetryPolicy",
    "RetryStats",
    "bit_at",
    "count_set_bits",
    "flip_bit",
    "insert_zero_bit",
    "set_bit",
    "is_hermitian",
    "is_unitary",
    "kron_all",
    "random_statevector",
    "random_unitary",
    "Timer",
    "timed",
]
