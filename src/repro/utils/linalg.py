"""Small dense linear-algebra helpers shared across the package."""

from __future__ import annotations

from functools import reduce
from typing import Iterable, Optional

import numpy as np

__all__ = [
    "is_unitary",
    "is_hermitian",
    "kron_all",
    "random_unitary",
    "random_statevector",
    "fidelity",
    "global_phase_aligned",
]

ATOL = 1e-10


def is_unitary(m: np.ndarray, atol: float = 1e-8) -> bool:
    """True if ``m`` is unitary within ``atol``."""
    m = np.asarray(m)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        return False
    return np.allclose(m.conj().T @ m, np.eye(m.shape[0]), atol=atol)


def is_hermitian(m: np.ndarray, atol: float = 1e-8) -> bool:
    """True if ``m`` is Hermitian within ``atol``."""
    m = np.asarray(m)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        return False
    return np.allclose(m, m.conj().T, atol=atol)


def kron_all(matrices: Iterable[np.ndarray]) -> np.ndarray:
    """Kronecker product of a sequence of matrices, left to right."""
    mats = list(matrices)
    if not mats:
        return np.eye(1)
    return reduce(np.kron, mats)


def random_unitary(dim: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Haar-random unitary via QR of a complex Ginibre matrix."""
    rng = rng or np.random.default_rng()
    z = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(z)
    # Fix the phase ambiguity of QR so the distribution is Haar.
    d = np.diagonal(r)
    q = q * (d / np.abs(d))
    return q


def random_statevector(
    num_qubits: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Haar-random pure state on ``num_qubits`` qubits."""
    rng = rng or np.random.default_rng()
    dim = 1 << num_qubits
    v = rng.normal(size=dim) + 1j * rng.normal(size=dim)
    return (v / np.linalg.norm(v)).astype(np.complex128)


def fidelity(a: np.ndarray, b: np.ndarray) -> float:
    """|<a|b>|^2 for normalized pure states."""
    return float(np.abs(np.vdot(a, b)) ** 2)


def global_phase_aligned(a: np.ndarray, b: np.ndarray, atol: float = 1e-8) -> bool:
    """True if ``a`` and ``b`` are equal up to a global phase."""
    ia = int(np.argmax(np.abs(a)))
    if np.abs(a[ia]) < atol and np.abs(b[ia]) < atol:
        return np.allclose(a, b, atol=atol)
    if np.abs(b[ia]) < atol:
        return False
    phase = a[ia] / b[ia]
    if not np.isclose(np.abs(phase), 1.0, atol=atol):
        return False
    return np.allclose(a, phase * b, atol=atol)
