"""Lightweight timing utilities.

The optimization workflow for numerical code is measure-first (profile,
then optimize the bottleneck).  ``Timer`` gives a cheap accumulating
stopwatch that the simulator and VQE drivers use to report where time
goes without pulling in a full profiler.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

__all__ = ["Timer", "timed"]


@dataclass
class Timer:
    """Accumulating named stopwatch.

    Example
    -------
    >>> t = Timer()
    >>> with t.section("apply_gates"):
    ...     pass
    >>> "apply_gates" in t.totals
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def report(self) -> str:
        """Human-readable per-section totals, slowest first."""
        lines = []
        for name, total in sorted(self.totals.items(), key=lambda kv: -kv[1]):
            lines.append(f"{name:30s} {total:10.4f}s  x{self.counts[name]}")
        return "\n".join(lines)

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()


@contextmanager
def timed() -> Iterator["list[float]"]:
    """Context manager yielding a one-element list filled with elapsed seconds."""
    box = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
