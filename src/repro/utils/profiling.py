"""Lightweight timing utilities.

.. deprecated::
    ``Timer`` predates the unified observability layer and is kept as a
    thin shim over it: every ``Timer.section`` now also opens a
    ``repro.obs`` span (category ``"timer"``) when observability is
    enabled, so legacy call sites show up in traces, run reports, and
    ``repro analyze`` alongside natively instrumented code.  New code
    should call :func:`repro.obs.span` directly; ``Timer``-accepting
    signatures (``StatevectorSimulator(timer=...)``, estimators) keep
    working and still fill ``totals``/``counts`` for callers that read
    them.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro import obs

__all__ = ["Timer", "timed"]


@dataclass
class Timer:
    """Accumulating named stopwatch (legacy shim over ``repro.obs``).

    Example
    -------
    >>> t = Timer()
    >>> with t.section("apply_gates"):
    ...     pass
    >>> "apply_gates" in t.totals
    True
    """

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            # mirror the section into the global tracer (no-op span when
            # observability is disabled)
            with obs.span(name, category="timer"):
                yield
        finally:
            elapsed = time.perf_counter() - start
            self.totals[name] = self.totals.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def report(self) -> str:
        """Human-readable per-section totals, slowest first."""
        lines = []
        for name, total in sorted(self.totals.items(), key=lambda kv: -kv[1]):
            lines.append(f"{name:30s} {total:10.4f}s  x{self.counts[name]}")
        return "\n".join(lines)

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()


@contextmanager
def timed() -> Iterator["list[float]"]:
    """Context manager yielding a one-element list filled with elapsed seconds."""
    box = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
