"""Bit-manipulation helpers used by the statevector kernels.

The statevector simulator addresses amplitudes by integer basis-state
index; gate kernels are built from vectorized index arithmetic rather
than per-amplitude Python loops (see ``repro.sim.kernels``).  These
helpers centralize the bit tricks those kernels rely on.

Qubit convention: qubit ``q`` corresponds to bit ``q`` of the basis
index (little-endian), i.e. basis state ``|b_{n-1} ... b_1 b_0>`` has
index ``sum_q b_q << q``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "I_POW",
    "bit_at",
    "set_bit",
    "flip_bit",
    "popcount",
    "count_set_bits",
    "insert_zero_bit",
    "insert_zero_bits",
    "parity_mask",
    "sign_vector",
    "basis_indices",
    "indices_1q",
    "indices_2q",
    "index_table_cache_info",
    "clear_index_tables",
]

# Powers of i indexed mod 4 — the phase table of P(x, z) = i^{|x&z|} X^x Z^z.
# Single shared definition; every module that used to carry its own copy
# (ir.pauli, sim.batched, hpc.distributed) imports this one.
I_POW = (1.0 + 0j, 1j, -1.0 + 0j, -1j)


def bit_at(index: int, position: int) -> int:
    """Return bit ``position`` of ``index`` (0 or 1)."""
    return (index >> position) & 1


def set_bit(index: int, position: int, value: int) -> int:
    """Return ``index`` with bit ``position`` forced to ``value``."""
    if value:
        return index | (1 << position)
    return index & ~(1 << position)


def flip_bit(index: int, position: int) -> int:
    """Return ``index`` with bit ``position`` flipped."""
    return index ^ (1 << position)


def popcount(v: int) -> int:
    """Population count of a Python int (the scalar fast path).

    The term-algebra loops (products, commutators) call this on dict
    keys millions of times during downfolding; keeping it free of the
    ndarray dispatch in :func:`count_set_bits` matters there.
    """
    return v.bit_count() if hasattr(int, "bit_count") else bin(v).count("1")


def count_set_bits(x: "int | np.ndarray") -> "int | np.ndarray":
    """Population count for a Python int or an integer ndarray.

    For ndarrays this is fully vectorized (used for Pauli-Z parity
    evaluation over all 2^n basis indices at once).
    """
    if isinstance(x, np.ndarray):
        # SWAR popcount on uint64; exact for indices < 2^63 which covers
        # any simulable register size.
        v = x.astype(np.uint64, copy=True)
        m1 = np.uint64(0x5555555555555555)
        m2 = np.uint64(0x3333333333333333)
        m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
        h01 = np.uint64(0x0101010101010101)
        v -= (v >> np.uint64(1)) & m1
        v = (v & m2) + ((v >> np.uint64(2)) & m2)
        v = (v + (v >> np.uint64(4))) & m4
        return ((v * h01) >> np.uint64(56)).astype(np.int64)
    return int(x).bit_count() if hasattr(int, "bit_count") else bin(int(x)).count("1")


def insert_zero_bit(indices: np.ndarray, position: int) -> np.ndarray:
    """Insert a 0 bit at ``position`` into every index of ``indices``.

    Maps ``k`` in ``[0, 2^(n-1))`` to the index in ``[0, 2^n)`` whose
    bit ``position`` is zero and whose remaining bits are ``k``.  This
    is the core addressing step for single-qubit gate kernels: the set
    ``insert_zero_bit(arange(2^(n-1)), q)`` enumerates all amplitudes
    with qubit ``q`` in state |0>.
    """
    low_mask = (1 << position) - 1
    low = indices & low_mask
    high = (indices >> position) << (position + 1)
    return high | low


def insert_zero_bits(indices: np.ndarray, positions: "list[int]") -> np.ndarray:
    """Insert 0 bits at each of ``positions`` (ascending order required)."""
    out = indices
    for p in sorted(positions):
        out = insert_zero_bit(out, p)
    return out


def parity_mask(indices: np.ndarray, mask: int) -> np.ndarray:
    """Parity (0/1) of ``indices & mask``, vectorized.

    Used to evaluate the +/-1 eigenvalue pattern of a Z-type Pauli
    string over all basis states in one shot.
    """
    return (count_set_bits(indices & mask) & 1).astype(np.int64)


def sign_vector(z_mask: int, num_qubits: int) -> np.ndarray:
    """The +/-1 eigenvalue pattern of ``Z^z`` over all 2^n basis states:
    ``sign_vector(z, n)[k] = (-1)^parity(k & z)`` (float64)."""
    idx = basis_indices(num_qubits)
    return 1.0 - 2.0 * (count_set_bits(idx & z_mask) & 1)


# -- cached gate index tables -------------------------------------------------
#
# Every gate application needs the same `np.arange` + `insert_zero_bit`
# addressing tables for a given (register width, target qubits); the
# simulators used to rebuild them per gate, which for a VQE campaign
# means millions of redundant allocations.  These process-wide LRU
# caches build each table once.  Returned arrays are marked read-only —
# kernels must treat them as shared immutable state.


def _frozen(a: np.ndarray) -> np.ndarray:
    a.flags.writeable = False
    return a


@lru_cache(maxsize=512)
def basis_indices(num_qubits: int) -> np.ndarray:
    """Read-only ``np.arange(2^n, dtype=int64)`` — the full basis-index
    table used by Pauli application and diagonal expectation."""
    return _frozen(np.arange(1 << num_qubits, dtype=np.int64))


@lru_cache(maxsize=4096)
def indices_1q(num_qubits: int, qubit: int) -> "tuple[np.ndarray, np.ndarray]":
    """Read-only amplitude-pair index tables ``(i0, i1)`` for a 1-qubit
    gate on ``qubit`` in an ``num_qubits``-wide register."""
    base = np.arange(1 << (num_qubits - 1), dtype=np.int64)
    i0 = insert_zero_bit(base, qubit)
    return _frozen(i0), _frozen(i0 | (1 << qubit))


@lru_cache(maxsize=4096)
def indices_2q(
    num_qubits: int, q0: int, q1: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Read-only index tables ``(i00, i01, i10, i11)`` for a 2-qubit
    gate on ``(q0, q1)``; sub-block ``b1 b0`` has ``b0`` = state of
    ``q0`` (little-endian, matching ``repro.ir.gates``)."""
    lo, hi = (q0, q1) if q0 < q1 else (q1, q0)
    base = np.arange(1 << (num_qubits - 2), dtype=np.int64)
    i00 = insert_zero_bit(insert_zero_bit(base, lo), hi)
    b0, b1 = 1 << q0, 1 << q1
    return (
        _frozen(i00),
        _frozen(i00 | b0),
        _frozen(i00 | b1),
        _frozen(i00 | b0 | b1),
    )


def index_table_cache_info() -> "dict[str, object]":
    """Hit/miss statistics of the index-table caches (diagnostics)."""
    return {
        "basis_indices": basis_indices.cache_info(),
        "indices_1q": indices_1q.cache_info(),
        "indices_2q": indices_2q.cache_info(),
    }


def clear_index_tables() -> None:
    """Drop all cached index tables (frees memory after wide-register runs)."""
    basis_indices.cache_clear()
    indices_1q.cache_clear()
    indices_2q.cache_clear()
