"""Bit-manipulation helpers used by the statevector kernels.

The statevector simulator addresses amplitudes by integer basis-state
index; gate kernels are built from vectorized index arithmetic rather
than per-amplitude Python loops (see ``repro.sim.kernels``).  These
helpers centralize the bit tricks those kernels rely on.

Qubit convention: qubit ``q`` corresponds to bit ``q`` of the basis
index (little-endian), i.e. basis state ``|b_{n-1} ... b_1 b_0>`` has
index ``sum_q b_q << q``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bit_at",
    "set_bit",
    "flip_bit",
    "count_set_bits",
    "insert_zero_bit",
    "insert_zero_bits",
    "parity_mask",
]


def bit_at(index: int, position: int) -> int:
    """Return bit ``position`` of ``index`` (0 or 1)."""
    return (index >> position) & 1


def set_bit(index: int, position: int, value: int) -> int:
    """Return ``index`` with bit ``position`` forced to ``value``."""
    if value:
        return index | (1 << position)
    return index & ~(1 << position)


def flip_bit(index: int, position: int) -> int:
    """Return ``index`` with bit ``position`` flipped."""
    return index ^ (1 << position)


def count_set_bits(x: "int | np.ndarray") -> "int | np.ndarray":
    """Population count for a Python int or an integer ndarray.

    For ndarrays this is fully vectorized (used for Pauli-Z parity
    evaluation over all 2^n basis indices at once).
    """
    if isinstance(x, np.ndarray):
        # SWAR popcount on uint64; exact for indices < 2^63 which covers
        # any simulable register size.
        v = x.astype(np.uint64, copy=True)
        m1 = np.uint64(0x5555555555555555)
        m2 = np.uint64(0x3333333333333333)
        m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
        h01 = np.uint64(0x0101010101010101)
        v -= (v >> np.uint64(1)) & m1
        v = (v & m2) + ((v >> np.uint64(2)) & m2)
        v = (v + (v >> np.uint64(4))) & m4
        return ((v * h01) >> np.uint64(56)).astype(np.int64)
    return int(x).bit_count() if hasattr(int, "bit_count") else bin(int(x)).count("1")


def insert_zero_bit(indices: np.ndarray, position: int) -> np.ndarray:
    """Insert a 0 bit at ``position`` into every index of ``indices``.

    Maps ``k`` in ``[0, 2^(n-1))`` to the index in ``[0, 2^n)`` whose
    bit ``position`` is zero and whose remaining bits are ``k``.  This
    is the core addressing step for single-qubit gate kernels: the set
    ``insert_zero_bit(arange(2^(n-1)), q)`` enumerates all amplitudes
    with qubit ``q`` in state |0>.
    """
    low_mask = (1 << position) - 1
    low = indices & low_mask
    high = (indices >> position) << (position + 1)
    return high | low


def insert_zero_bits(indices: np.ndarray, positions: "list[int]") -> np.ndarray:
    """Insert 0 bits at each of ``positions`` (ascending order required)."""
    out = indices
    for p in sorted(positions):
        out = insert_zero_bit(out, p)
    return out


def parity_mask(indices: np.ndarray, mask: int) -> np.ndarray:
    """Parity (0/1) of ``indices & mask``, vectorized.

    Used to evaluate the +/-1 eigenvalue pattern of a Z-type Pauli
    string over all basis states in one shot.
    """
    return (count_set_bits(indices & mask) & 1).astype(np.int64)
