"""Retry with exponential backoff over *simulated* time.

Long-running distributed campaigns survive transient faults (dropped
messages, corrupted payloads detected by checksum, brief link outages)
by retrying with exponential backoff.  Because the whole HPC substrate
here is simulated, the backoff must be simulated too: delays are fed
to a clock object (``repro.hpc.perfmodel.SimulatedClock``) instead of
``time.sleep``, so tests and benchmarks account for recovery latency
without ever blocking, and a seeded jitter RNG keeps every retry
schedule reproducible.

On top of the per-operation :class:`RetryPolicy` sit two fleet-level
guards used by the campaign server (``repro.serve``):

* :class:`RetryBudget` — a token bucket capping the *global* retry
  rate, so a correlated failure burst cannot turn into a retry storm
  that starves first-attempt work.
* :class:`CircuitBreaker` — a closed/open/half-open breaker per job
  class, so a job class that fails repeatedly is rejected fast for a
  cooldown instead of burning its full retry schedule every time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type

import numpy as np

__all__ = [
    "RetryExhaustedError",
    "RetryStats",
    "RetryPolicy",
    "RetryBudget",
    "CircuitBreaker",
]


class RetryExhaustedError(RuntimeError):
    """All attempts of a retried operation failed.

    ``__cause__`` carries the last underlying exception.
    """

    def __init__(self, attempts: int, last_error: BaseException):
        super().__init__(
            f"operation failed after {attempts} attempt(s): {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


@dataclass
class RetryStats:
    """Counters accumulated across ``RetryPolicy.call`` invocations."""

    calls: int = 0
    retries: int = 0
    failures: int = 0
    backoff_seconds: float = 0.0

    def reset(self) -> None:
        self.calls = 0
        self.retries = 0
        self.failures = 0
        self.backoff_seconds = 0.0


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter, in simulated seconds.

    Attempt ``k`` (1-based) that fails waits

        min(max_delay, base_delay * backoff_factor**(k-1)) * (1 + U*jitter)

    before attempt ``k+1``, where ``U ~ Uniform[0, 1)`` comes from a
    seeded RNG.  The wait is *recorded* (``stats.backoff_seconds``) and
    pushed to an optional clock — never slept.
    """

    max_attempts: int = 4
    base_delay: float = 1e-3
    backoff_factor: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.1
    seed: int = 0
    stats: RetryStats = field(default_factory=RetryStats)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def backoff_delay(self, attempt: int) -> float:
        """Simulated wait after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(
            self.max_delay, self.base_delay * self.backoff_factor ** (attempt - 1)
        )
        return delay * (1.0 + float(self._rng.random()) * self.jitter)

    def call(
        self,
        fn: Callable[[], object],
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        clock: Optional[object] = None,
        on_retry: Optional[Callable[[int, float, BaseException], None]] = None,
    ) -> object:
        """Run ``fn`` until it succeeds or attempts are exhausted.

        ``clock`` (anything with ``advance(seconds)``) receives each
        backoff delay; ``on_retry(attempt, delay, error)`` fires before
        every re-attempt.  Exceptions outside ``retry_on`` propagate
        immediately; exhaustion raises :class:`RetryExhaustedError`.
        """
        self.stats.calls += 1
        last: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except retry_on as err:  # type: ignore[misc]
                last = err
                if attempt == self.max_attempts:
                    break
                delay = self.backoff_delay(attempt)
                self.stats.retries += 1
                self.stats.backoff_seconds += delay
                if clock is not None:
                    clock.advance(delay)
                if on_retry is not None:
                    on_retry(attempt, delay, err)
        self.stats.failures += 1
        assert last is not None
        raise RetryExhaustedError(self.max_attempts, last) from last


@dataclass
class RetryBudget:
    """Token bucket bounding the global retry rate.

    Every retry spends one token; tokens refill at ``refill_per_s``
    (against whatever clock the caller passes to :meth:`spend`) up to
    ``capacity``.  When the bucket is empty the retry is *denied* —
    the operation fails immediately instead of joining a retry storm.
    """

    capacity: float = 16.0
    refill_per_s: float = 1.0
    tokens: float = field(init=False)
    denied: int = field(init=False, default=0)
    spent: int = field(init=False, default=0)
    _last_refill: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.capacity <= 0 or self.refill_per_s < 0:
            raise ValueError("capacity must be > 0 and refill_per_s >= 0")
        self.tokens = self.capacity

    def _refill(self, now: float) -> None:
        dt = max(0.0, now - self._last_refill)
        self._last_refill = now
        self.tokens = min(self.capacity, self.tokens + dt * self.refill_per_s)

    def spend(self, now: float = 0.0) -> bool:
        """Try to spend one retry token at time ``now``; False = denied."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.spent += 1
            return True
        self.denied += 1
        return False


@dataclass
class CircuitBreaker:
    """Closed / open / half-open breaker for one failure domain.

    ``failure_threshold`` consecutive failures trip the breaker open;
    while open, :meth:`allow` is False (callers should fail fast).
    After ``cooldown_s`` the breaker half-opens and admits one probe:
    a success closes it again, a failure re-opens it for another
    cooldown.  All timing runs on timestamps the caller supplies, so
    the breaker is deterministic under simulated clocks.
    """

    failure_threshold: int = 3
    cooldown_s: float = 60.0
    state: str = field(init=False, default="closed")
    consecutive_failures: int = field(init=False, default=0)
    opened_at: float = field(init=False, default=0.0)
    trips: int = field(init=False, default=0)
    rejections: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")

    def allow(self, now: float = 0.0) -> bool:
        """May an operation in this domain start at time ``now``?

        State-transitioning: an open breaker past its cooldown flips to
        half-open and this call admits the probe.  Callers that are not
        about to *execute* (e.g. admission checks) must use the
        read-only :meth:`is_open` instead, or they consume the probe.
        """
        if self.state == "open":
            if now - self.opened_at >= self.cooldown_s:
                self.state = "half_open"
                return True
            self.rejections += 1
            return False
        return True  # closed or half-open (one probe already admitted)

    def is_open(self, now: float = 0.0) -> bool:
        """Read-only: would the breaker reject at time ``now``?

        Unlike :meth:`allow`, never transitions state or counts a
        rejection — safe to call from paths (admission, health views)
        that do not themselves execute an operation.
        """
        return self.state == "open" and now - self.opened_at < self.cooldown_s

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = "closed"

    def record_failure(self, now: float = 0.0) -> None:
        self.consecutive_failures += 1
        if (
            self.state == "half_open"
            or self.consecutive_failures >= self.failure_threshold
        ):
            self.state = "open"
            self.opened_at = now
            self.trips += 1
