"""Retry with exponential backoff over *simulated* time.

Long-running distributed campaigns survive transient faults (dropped
messages, corrupted payloads detected by checksum, brief link outages)
by retrying with exponential backoff.  Because the whole HPC substrate
here is simulated, the backoff must be simulated too: delays are fed
to a clock object (``repro.hpc.perfmodel.SimulatedClock``) instead of
``time.sleep``, so tests and benchmarks account for recovery latency
without ever blocking, and a seeded jitter RNG keeps every retry
schedule reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type

import numpy as np

__all__ = ["RetryExhaustedError", "RetryStats", "RetryPolicy"]


class RetryExhaustedError(RuntimeError):
    """All attempts of a retried operation failed.

    ``__cause__`` carries the last underlying exception.
    """

    def __init__(self, attempts: int, last_error: BaseException):
        super().__init__(
            f"operation failed after {attempts} attempt(s): {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error


@dataclass
class RetryStats:
    """Counters accumulated across ``RetryPolicy.call`` invocations."""

    calls: int = 0
    retries: int = 0
    failures: int = 0
    backoff_seconds: float = 0.0

    def reset(self) -> None:
        self.calls = 0
        self.retries = 0
        self.failures = 0
        self.backoff_seconds = 0.0


@dataclass
class RetryPolicy:
    """Exponential backoff with jitter, in simulated seconds.

    Attempt ``k`` (1-based) that fails waits

        min(max_delay, base_delay * backoff_factor**(k-1)) * (1 + U*jitter)

    before attempt ``k+1``, where ``U ~ Uniform[0, 1)`` comes from a
    seeded RNG.  The wait is *recorded* (``stats.backoff_seconds``) and
    pushed to an optional clock — never slept.
    """

    max_attempts: int = 4
    base_delay: float = 1e-3
    backoff_factor: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.1
    seed: int = 0
    stats: RetryStats = field(default_factory=RetryStats)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def backoff_delay(self, attempt: int) -> float:
        """Simulated wait after failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(
            self.max_delay, self.base_delay * self.backoff_factor ** (attempt - 1)
        )
        return delay * (1.0 + float(self._rng.random()) * self.jitter)

    def call(
        self,
        fn: Callable[[], object],
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        clock: Optional[object] = None,
        on_retry: Optional[Callable[[int, float, BaseException], None]] = None,
    ) -> object:
        """Run ``fn`` until it succeeds or attempts are exhausted.

        ``clock`` (anything with ``advance(seconds)``) receives each
        backoff delay; ``on_retry(attempt, delay, error)`` fires before
        every re-attempt.  Exceptions outside ``retry_on`` propagate
        immediately; exhaustion raises :class:`RetryExhaustedError`.
        """
        self.stats.calls += 1
        last: Optional[BaseException] = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                return fn()
            except retry_on as err:  # type: ignore[misc]
                last = err
                if attempt == self.max_attempts:
                    break
                delay = self.backoff_delay(attempt)
                self.stats.retries += 1
                self.stats.backoff_seconds += delay
                if clock is not None:
                    clock.advance(delay)
                if on_retry is not None:
                    on_retry(attempt, delay, err)
        self.stats.failures += 1
        assert last is not None
        raise RetryExhaustedError(self.max_attempts, last) from last
