"""Circuit intermediate representation.

``Circuit`` plays the role XACC's IR plays in the paper: the hardware-
agnostic program representation produced by ansatz generators and
consumed by compiler passes, the gate-fusion optimizer, and any of the
execution backends.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.gates import Gate, Parameter, ParamValue

__all__ = ["Circuit"]


class Circuit:
    """An ordered list of gate instructions on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, gates: Optional[Iterable[Gate]] = None):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        self.num_qubits = int(num_qubits)
        self.gates: List[Gate] = []
        if gates:
            for g in gates:
                self.append(g)

    # -- construction -------------------------------------------------------

    def append(self, gate: Gate) -> "Circuit":
        if any(q < 0 or q >= self.num_qubits for q in gate.qubits):
            raise ValueError(
                f"gate {gate} out of range for {self.num_qubits} qubits"
            )
        self.gates.append(gate)
        return self

    def add(self, name: str, qubits: Sequence[int], *params: ParamValue) -> "Circuit":
        """Append a registry gate by name. Chainable."""
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    # Named helpers keep ansatz-builder code readable.
    def x(self, q: int) -> "Circuit":
        return self.add("x", [q])

    def y(self, q: int) -> "Circuit":
        return self.add("y", [q])

    def z(self, q: int) -> "Circuit":
        return self.add("z", [q])

    def h(self, q: int) -> "Circuit":
        return self.add("h", [q])

    def s(self, q: int) -> "Circuit":
        return self.add("s", [q])

    def sdg(self, q: int) -> "Circuit":
        return self.add("sdg", [q])

    def t(self, q: int) -> "Circuit":
        return self.add("t", [q])

    def rx(self, theta: ParamValue, q: int) -> "Circuit":
        return self.add("rx", [q], theta)

    def ry(self, theta: ParamValue, q: int) -> "Circuit":
        return self.add("ry", [q], theta)

    def rz(self, theta: ParamValue, q: int) -> "Circuit":
        return self.add("rz", [q], theta)

    def cx(self, control: int, target: int) -> "Circuit":
        return self.add("cx", [control, target])

    def cz(self, a: int, b: int) -> "Circuit":
        return self.add("cz", [a, b])

    def swap(self, a: int, b: int) -> "Circuit":
        return self.add("swap", [a, b])

    def compose(self, other: "Circuit") -> "Circuit":
        """Append all gates of ``other`` (must fit this register)."""
        if other.num_qubits > self.num_qubits:
            raise ValueError("composed circuit is wider than target")
        for g in other.gates:
            self.append(g)
        return self

    def copy(self) -> "Circuit":
        return Circuit(self.num_qubits, list(self.gates))

    def inverse(self) -> "Circuit":
        """The adjoint circuit (reversed order, each gate inverted)."""
        inv = Circuit(self.num_qubits)
        for g in reversed(self.gates):
            inv.append(g.dagger())
        return inv

    # -- parameters ---------------------------------------------------------

    @property
    def parameters(self) -> List[str]:
        """Sorted unique symbolic parameter names, in first-use order."""
        seen: Dict[str, None] = {}
        for g in self.gates:
            for p in g.params:
                if isinstance(p, Parameter) and p.name not in seen:
                    seen[p.name] = None
        return list(seen)

    @property
    def num_parameters(self) -> int:
        return len(self.parameters)

    def bind(self, values: "Dict[str, float] | Sequence[float]") -> "Circuit":
        """Return a concrete circuit with parameters substituted.

        ``values`` may be a mapping name->value or a sequence ordered
        like :attr:`parameters`.
        """
        if not isinstance(values, dict):
            names = self.parameters
            if len(values) != len(names):
                raise ValueError(
                    f"expected {len(names)} parameter values, got {len(values)}"
                )
            values = dict(zip(names, values))
        missing = set(self.parameters) - set(values)
        if missing:
            raise ValueError(f"unbound parameters: {sorted(missing)}")
        return Circuit(self.num_qubits, [g.bound(values) for g in self.gates])

    # -- statistics ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def gate_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for g in self.gates:
            counts[g.name] = counts.get(g.name, 0) + 1
        return counts

    def count_2q(self) -> int:
        """Number of two-qubit gates (entangling cost proxy)."""
        return sum(1 for g in self.gates if g.num_qubits == 2)

    def depth(self) -> int:
        """Circuit depth: longest chain of gates sharing qubits."""
        frontier = [0] * self.num_qubits
        for g in self.gates:
            level = 1 + max(frontier[q] for q in g.qubits)
            for q in g.qubits:
                frontier[q] = level
        return max(frontier) if self.gates else 0

    # -- dense matrix (testing / small circuits only) ------------------------

    def to_matrix(self) -> np.ndarray:
        """Dense unitary of the whole circuit. Exponential in qubits;
        intended for tests on small registers."""
        dim = 1 << self.num_qubits
        u = np.eye(dim, dtype=np.complex128)
        for g in self.gates:
            u = _embed(g, self.num_qubits) @ u
        return u

    def __repr__(self) -> str:
        return (
            f"Circuit(num_qubits={self.num_qubits}, gates={len(self.gates)}, "
            f"depth={self.depth()}, params={self.num_parameters})"
        )


def _embed(gate: Gate, num_qubits: int) -> np.ndarray:
    """Embed a 1- or 2-qubit gate matrix into the full register unitary."""
    m = gate.to_matrix()
    dim = 1 << num_qubits
    u = np.zeros((dim, dim), dtype=np.complex128)
    qs = gate.qubits
    k = len(qs)
    rest = [q for q in range(num_qubits) if q not in qs]
    for basis in range(dim):
        sub = 0
        for j, q in enumerate(qs):
            sub |= ((basis >> q) & 1) << j
        base = basis
        for q in qs:
            base &= ~(1 << q)
        for sub_out in range(1 << k):
            out = base
            for j, q in enumerate(qs):
                if (sub_out >> j) & 1:
                    out |= 1 << q
            u[out, basis] += m[sub_out, sub]
    return u
