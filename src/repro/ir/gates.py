"""Gate library: instruction type plus matrix definitions.

This is the gate set the circuit IR (``repro.ir.circuit``) is built
from and the simulator (``repro.sim``) executes.  It mirrors the native
gate set of NWQ-Sim: the usual one-qubit Cliffords and rotations, plus
two-qubit entanglers, plus opaque fused unitaries produced by the gate
fusion pass (``repro.sim.fusion``).

Matrices use the little-endian qubit convention shared with
``repro.utils.bitops``: for a two-qubit gate acting on ``(q0, q1)`` the
matrix is indexed by ``b1 b0`` (bit of ``q1`` is the high bit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Gate",
    "Parameter",
    "GATE_SET",
    "gate_matrix",
    "standard_gate",
    "I2",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "SX",
]

# ---------------------------------------------------------------------------
# Constant matrices
# ---------------------------------------------------------------------------

I2 = np.eye(2, dtype=np.complex128)
X = np.array([[0, 1], [1, 0]], dtype=np.complex128)
Y = np.array([[0, -1j], [1j, 0]], dtype=np.complex128)
Z = np.array([[1, 0], [0, -1]], dtype=np.complex128)
H = np.array([[1, 1], [1, -1]], dtype=np.complex128) / math.sqrt(2.0)
S = np.array([[1, 0], [0, 1j]], dtype=np.complex128)
SDG = S.conj().T
T = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=np.complex128)
TDG = T.conj().T
SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=np.complex128)


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=np.complex128)


def _rz(theta: float) -> np.ndarray:
    e = np.exp(-0.5j * theta)
    return np.array([[e, 0], [0, e.conjugate()]], dtype=np.complex128)


def _p(lam: float) -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=np.complex128)


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=np.complex128,
    )


# Two-qubit matrices, little-endian on (q0, q1): basis order 00, 01, 10, 11
# where the *left* bit is q1. CX below is "control = q0, target = q1".
def _cx() -> np.ndarray:
    m = np.eye(4, dtype=np.complex128)
    # control is qubit0 (low bit): states 01 (q0=1,q1=0) and 11 swap q1.
    m[[1, 3]] = m[[3, 1]]
    return m


def _cz() -> np.ndarray:
    m = np.eye(4, dtype=np.complex128)
    m[3, 3] = -1
    return m


def _swap() -> np.ndarray:
    m = np.eye(4, dtype=np.complex128)
    m[[1, 2]] = m[[2, 1]]
    return m


def _rzz(theta: float) -> np.ndarray:
    e = np.exp(-0.5j * theta)
    return np.diag([e, e.conjugate(), e.conjugate(), e]).astype(np.complex128)


def _rxx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), -1j * math.sin(theta / 2)
    m = np.eye(4, dtype=np.complex128) * c
    m[0, 3] = m[3, 0] = m[1, 2] = m[2, 1] = s
    return m


def _ryy(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), 1j * math.sin(theta / 2)
    m = np.eye(4, dtype=np.complex128) * c
    m[0, 3] = m[3, 0] = s
    m[1, 2] = m[2, 1] = -s
    return m


def _cp(lam: float) -> np.ndarray:
    m = np.eye(4, dtype=np.complex128)
    m[3, 3] = np.exp(1j * lam)
    return m


def _crz(theta: float) -> np.ndarray:
    e = np.exp(-0.5j * theta)
    return np.diag([1, e, 1, e.conjugate()]).astype(np.complex128)


# Three-qubit matrix, little-endian on (q0, q1, q2): controls are q0 and
# q1 (the low bits), target is q2.
def _ccx() -> np.ndarray:
    m = np.eye(8, dtype=np.complex128)
    # both controls set: basis states 011 (3) and 111 (7) swap the target.
    m[[3, 7]] = m[[7, 3]]
    return m


# ---------------------------------------------------------------------------
# Gate registry
# ---------------------------------------------------------------------------

#: name -> (num_qubits, num_params, matrix factory)
GATE_SET: Dict[str, Tuple[int, int, Callable[..., np.ndarray]]] = {
    "i": (1, 0, lambda: I2),
    "x": (1, 0, lambda: X),
    "y": (1, 0, lambda: Y),
    "z": (1, 0, lambda: Z),
    "h": (1, 0, lambda: H),
    "s": (1, 0, lambda: S),
    "sdg": (1, 0, lambda: SDG),
    "t": (1, 0, lambda: T),
    "tdg": (1, 0, lambda: TDG),
    "sx": (1, 0, lambda: SX),
    "rx": (1, 1, _rx),
    "ry": (1, 1, _ry),
    "rz": (1, 1, _rz),
    "p": (1, 1, _p),
    "u3": (1, 3, _u3),
    "cx": (2, 0, _cx),
    "cz": (2, 0, _cz),
    "swap": (2, 0, _swap),
    "rzz": (2, 1, _rzz),
    "rxx": (2, 1, _rxx),
    "ryy": (2, 1, _ryy),
    "cp": (2, 1, _cp),
    "crz": (2, 1, _crz),
    "ccx": (3, 0, _ccx),
}


class Parameter:
    """Symbolic circuit parameter, resolved at bind time.

    Supports the affine arithmetic needed by ansatz builders
    (``c * p`` and ``p + offset``), which covers trotterized Pauli
    exponentials where one variational parameter feeds many rotation
    angles with different coefficients.
    """

    __slots__ = ("name", "coeff", "offset")

    def __init__(self, name: str, coeff: float = 1.0, offset: float = 0.0):
        self.name = name
        self.coeff = float(coeff)
        self.offset = float(offset)

    def __mul__(self, other: float) -> "Parameter":
        return Parameter(self.name, self.coeff * float(other), self.offset * float(other))

    __rmul__ = __mul__

    def __neg__(self) -> "Parameter":
        return self * -1.0

    def __add__(self, other: float) -> "Parameter":
        return Parameter(self.name, self.coeff, self.offset + float(other))

    __radd__ = __add__

    def bind(self, value: float) -> float:
        return self.coeff * float(value) + self.offset

    def __repr__(self) -> str:
        return f"Parameter({self.name!r}, coeff={self.coeff}, offset={self.offset})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Parameter)
            and (self.name, self.coeff, self.offset)
            == (other.name, other.coeff, other.offset)
        )

    def __hash__(self) -> int:
        return hash((self.name, self.coeff, self.offset))


ParamValue = Union[float, Parameter]


@dataclass(frozen=True)
class Gate:
    """One gate instruction: a name, target qubits, and parameters.

    ``matrix`` is an optional explicit unitary used for opaque gates
    (gate fusion emits ``unitary1``/``unitary2`` instructions whose
    matrices are not derivable from a name + angles).
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[ParamValue, ...] = ()
    matrix: Optional[np.ndarray] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.matrix is None and self.name not in GATE_SET:
            raise ValueError(f"unknown gate {self.name!r} without explicit matrix")
        if self.matrix is None:
            nq, npar, _ = GATE_SET[self.name]
            if len(self.qubits) != nq:
                raise ValueError(
                    f"gate {self.name!r} expects {nq} qubits, got {self.qubits}"
                )
            if len(self.params) != npar:
                raise ValueError(
                    f"gate {self.name!r} expects {npar} params, got {len(self.params)}"
                )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in gate {self.name!r}: {self.qubits}")

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def is_parameterized(self) -> bool:
        return any(isinstance(p, Parameter) for p in self.params)

    def bound(self, values: Dict[str, float]) -> "Gate":
        """Return a copy with symbolic parameters replaced by floats."""
        if not self.is_parameterized:
            return self
        new_params = tuple(
            p.bind(values[p.name]) if isinstance(p, Parameter) else p
            for p in self.params
        )
        return Gate(self.name, self.qubits, new_params, self.matrix)

    def to_matrix(self) -> np.ndarray:
        """Dense unitary of this gate on its own qubits (little-endian)."""
        if self.matrix is not None:
            return self.matrix
        if self.is_parameterized:
            raise ValueError(f"cannot build matrix of unbound gate {self.name!r}")
        _, _, factory = GATE_SET[self.name]
        return factory(*[float(p) for p in self.params])

    def dagger(self) -> "Gate":
        """Inverse gate."""
        inverses = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
        if self.name in inverses:
            return Gate(inverses[self.name], self.qubits)
        if self.name in ("i", "x", "y", "z", "h", "cx", "cz", "swap", "ccx"):
            return self
        if self.name in ("rx", "ry", "rz", "p", "rzz", "rxx", "ryy", "cp", "crz"):
            (theta,) = self.params
            neg = -theta if isinstance(theta, Parameter) else -float(theta)
            return Gate(self.name, self.qubits, (neg,))
        if self.name == "u3":
            th, ph, lam = self.params
            if self.is_parameterized:
                raise ValueError("cannot invert unbound u3 symbolically")
            return Gate("u3", self.qubits, (-float(th), -float(lam), -float(ph)))
        return Gate(
            self.name + "_dg", self.qubits, (), self.to_matrix().conj().T
        )

    def __repr__(self) -> str:
        ps = ", ".join(repr(p) for p in self.params)
        return f"{self.name}({ps}) q{list(self.qubits)}"


def standard_gate(name: str, qubits: Sequence[int], *params: ParamValue) -> Gate:
    """Convenience constructor for registry gates."""
    return Gate(name, tuple(qubits), tuple(params))


def gate_matrix(name: str, *params: float) -> np.ndarray:
    """Dense matrix for a named gate with concrete parameters."""
    if name not in GATE_SET:
        raise KeyError(name)
    _, npar, factory = GATE_SET[name]
    if len(params) != npar:
        raise ValueError(f"{name} expects {npar} params")
    return factory(*params)
