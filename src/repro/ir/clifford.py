"""Clifford conjugation and simultaneous diagonalization of commuting
Pauli sets.

Qubit-wise commuting groups (the paper's measurement scheme, §4.1) are
measurable after *single-qubit* rotations.  Groups that commute only
in the general sense need a Clifford entangling circuit to reach a
shared eigenbasis — in exchange, the groups are larger and the number
of distinct measured bases smaller.  This module provides:

* ``conjugate_pauli`` — exact propagation of a signed Pauli string
  through a Clifford gate (computed in the <=4-dimensional dense space
  of the touched qubits, so no hand-derived phase rules can go wrong),
* ``diagonalizing_clifford`` — a circuit C with C P C^dag Z-type for
  every P in a commuting set, built by symplectic elimination:
  S fixes Y factors, CX collapses X supports, CZ clears residual Z's,
  H converts the surviving X pivot to Z,
* ``measure_general_group`` — expectation of every group member from
  one rotated copy of a state.

Used by the measurement-strategy ablation benchmark to quantify what
smarter grouping buys over the paper's qubit-wise scheme.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.circuit import Circuit
from repro.ir.gates import Gate
from repro.ir.pauli import PauliString, PauliSum

__all__ = [
    "conjugate_pauli",
    "conjugate_through_circuit",
    "diagonalizing_clifford",
    "measure_general_group",
]

_SINGLE = {
    (0, 0): np.eye(2, dtype=complex),
    (1, 0): np.array([[0, 1], [1, 0]], dtype=complex),
    (1, 1): np.array([[0, -1j], [1j, 0]], dtype=complex),
    (0, 1): np.array([[1, 0], [0, -1]], dtype=complex),
}


def _local_pauli_matrix(bits: Sequence[Tuple[int, int]]) -> np.ndarray:
    """Dense matrix of a Pauli on k local qubits (little-endian)."""
    out = np.eye(1, dtype=complex)
    for xb, zb in reversed(list(bits)):
        out = np.kron(out, _SINGLE[(xb, zb)])
    return out


def conjugate_pauli(
    gate: Gate, sign: float, pauli: PauliString
) -> Tuple[float, PauliString]:
    """Return (sign', P') with  sign' P' = U (sign P) U^dag.

    ``gate`` must be Clifford (the result must be a signed Pauli; a
    non-Clifford gate raises).  The conjugation is computed densely on
    the gate's own qubits and matched against the 4^k candidates, which
    sidesteps per-gate phase-rule derivations entirely.
    """
    qs = gate.qubits
    k = len(qs)
    bits = [((pauli.x >> q) & 1, (pauli.z >> q) & 1) for q in qs]
    local = _local_pauli_matrix(bits)
    u = gate.to_matrix()
    conj = u @ local @ u.conj().T
    # Match against all signed local Paulis.
    for pattern in range(4 ** k):
        cand_bits = []
        p = pattern
        for _ in range(k):
            cand_bits.append(((p & 1), ((p >> 1) & 1)))
            p >>= 2
        cand = _local_pauli_matrix(cand_bits)
        for s in (1.0, -1.0):
            if np.allclose(conj, s * cand, atol=1e-9):
                new_x, new_z = pauli.x, pauli.z
                for (xb, zb), q in zip(cand_bits, qs):
                    new_x = (new_x & ~(1 << q)) | (xb << q)
                    new_z = (new_z & ~(1 << q)) | (zb << q)
                return sign * s, PauliString(pauli.num_qubits, new_x, new_z)
    raise ValueError(f"gate {gate.name!r} is not Clifford")


def conjugate_through_circuit(
    circuit: Circuit, sign: float, pauli: PauliString
) -> Tuple[float, PauliString]:
    """Propagate sign*P through every gate: returns C (sign P) C^dag."""
    for g in circuit.gates:
        sign, pauli = conjugate_pauli(g, sign, pauli)
    return sign, pauli


def _gf2_independent(strings: List[PauliString], n: int) -> List[int]:
    """Indices of a maximal GF(2)-independent subset (symplectic reps)."""
    pivots: Dict[int, int] = {}
    chosen: List[int] = []
    for idx, p in enumerate(strings):
        v = p.x | (p.z << n)
        while v:
            msb = v.bit_length() - 1
            if msb in pivots:
                v ^= pivots[msb]
            else:
                pivots[msb] = v
                chosen.append(idx)
                break
    return chosen


def diagonalizing_clifford(
    strings: Sequence[PauliString], num_qubits: int
) -> Circuit:
    """A Clifford circuit C with C P C^dag diagonal (Z-type) for every
    P in the mutually commuting set ``strings``.

    Inductive symplectic elimination over independent generators: pick
    a generator with X support, normalize its pivot qubit to a pure X
    (S kills a Y), collapse its other X factors onto the pivot with
    CX, clear its remaining Z factors with CZ, then H turns the pivot
    into Z.  Commutation guarantees the remaining generators can be
    cleaned off the finished pivots.
    """
    work = [PauliString(num_qubits, p.x, p.z) for p in strings]
    for i, a in enumerate(work):
        for b in work[i + 1:]:
            if not a.commutes_with(b):
                raise ValueError("strings do not mutually commute")
    circuit = Circuit(num_qubits)
    signs = [1.0] * len(work)

    def apply(gate: Gate) -> None:
        circuit.append(gate)
        for k in range(len(work)):
            signs[k], work[k] = conjugate_pauli(gate, signs[k], work[k])

    done_pivots: set = set()
    for _ in range(2 * num_qubits + len(work)):
        # find a generator that still has X support
        target = None
        for p in work:
            if p.x:
                target = p
                break
        if target is None:
            break
        # pivot: an X-support qubit, preferring non-finished ones
        candidates = [q for q in range(num_qubits) if (target.x >> q) & 1]
        pivot = next(
            (q for q in candidates if q not in done_pivots), candidates[0]
        )
        if (target.z >> pivot) & 1:
            apply(Gate("s", (pivot,)))
            # refresh the view of target (it is an element of work)
        target = next(p for p in work if (p.x >> pivot) & 1)
        # clear other X factors of the target with CX(pivot -> other)
        for q in range(num_qubits):
            if q != pivot and (target.x >> q) & 1:
                if (target.z >> q) & 1:
                    apply(Gate("s", (q,)))
                apply(Gate("cx", (pivot, q)))
        target = next(p for p in work if (p.x >> pivot) & 1)
        # clear remaining Z factors with CZ(pivot, q)
        for q in range(num_qubits):
            if q != pivot and (target.z >> q) & 1:
                apply(Gate("cz", (pivot, q)))
        target = next(p for p in work if (p.x >> pivot) & 1)
        if (target.z >> pivot) & 1:
            apply(Gate("s", (pivot,)))
        apply(Gate("h", (pivot,)))
        done_pivots.add(pivot)
    if any(p.x for p in work):
        raise RuntimeError("diagonalization failed to terminate")
    return circuit


def measure_general_group(
    state: np.ndarray,
    group: Sequence[Tuple[complex, PauliString]],
    num_qubits: int,
) -> Tuple[float, int]:
    """Sum of coeff * <P> over a generally-commuting group, using one
    shared Clifford rotation.  Returns (value, circuit gate count)."""
    from repro.sim.statevector import StatevectorSimulator
    from repro.utils.bitops import count_set_bits

    strings = [p for _, p in group if not p.is_identity]
    total = sum(c.real for c, p in group if p.is_identity)
    if not strings:
        return total, 0
    circuit = diagonalizing_clifford(strings, num_qubits)
    sim = StatevectorSimulator(num_qubits)
    sim.set_state(state, copy=True)
    sim.apply_circuit(circuit)
    probs = sim.probabilities()
    idx = np.arange(probs.shape[0], dtype=np.int64)
    for coeff, pstr in group:
        if pstr.is_identity:
            continue
        sign, rotated = conjugate_through_circuit(circuit, 1.0, pstr)
        assert rotated.x == 0, "rotation failed to diagonalize a member"
        signs = 1.0 - 2.0 * (count_set_bits(idx & rotated.z) & 1)
        total += coeff.real * sign * float(np.dot(probs, signs))
    return total, len(circuit)
