"""Pauli-string and Pauli-sum algebra in the symplectic representation.

Observables (molecular Hamiltonians after qubit mapping, downfolded
effective Hamiltonians, ADAPT pool generators) are all sums of Pauli
strings.  We store a string as a pair of bitmasks ``(x, z)`` over the
qubit register — qubit ``q`` carries X iff bit ``q`` of ``x`` is set
and Z iff bit ``q`` of ``z`` is set; both set means Y.  With the phase
convention

    P(x, z) = i^{|x & z|} X^x Z^z

``P`` is exactly the literal tensor product of Pauli matrices (each Y
contributes ``i X Z``), so every ``PauliString`` is Hermitian and a
``PauliSum`` is Hermitian iff all its coefficients are real.

This representation makes products, commutators and statevector
application O(1)-per-term bit arithmetic — which is what lets the
downfolding commutator expansion (``repro.chem.downfolding``) run over
thousands of terms without symbolic blowup.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.utils.bitops import I_POW as _I_POW
from repro.utils.bitops import basis_indices, count_set_bits
from repro.utils.bitops import popcount as _popcount

__all__ = ["PauliString", "PauliSum"]

# Products/commutators with at most this many term pairs stay on the
# per-term dict loop; above it the packed symplectic engine
# (repro.ir.symplectic) wins despite its array set-up cost.  Grouping
# switches on term count for the same reason.
_ENGINE_PAIR_CUTOFF = 4096
_ENGINE_GROUP_CUTOFF = 48

_CHAR_TO_XZ = {"I": (0, 0), "X": (1, 0), "Y": (1, 1), "Z": (0, 1)}
_XZ_TO_CHAR = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}


class PauliString:
    """A single Hermitian Pauli string on ``num_qubits`` qubits."""

    __slots__ = ("x", "z", "num_qubits")

    def __init__(self, num_qubits: int, x: int = 0, z: int = 0):
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        mask = (1 << num_qubits) - 1
        if x & ~mask or z & ~mask:
            raise ValueError("x/z masks exceed register width")
        self.num_qubits = num_qubits
        self.x = x
        self.z = z

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_label(cls, label: str) -> "PauliString":
        """Build from a textual label; ``label[0]`` is the *highest* qubit
        (ket order ``|b_{n-1} ... b_0>``), e.g. ``"XIZ"`` puts X on qubit 2."""
        n = len(label)
        x = z = 0
        for pos, ch in enumerate(label.upper()):
            q = n - 1 - pos
            try:
                xb, zb = _CHAR_TO_XZ[ch]
            except KeyError:
                raise ValueError(f"invalid Pauli character {ch!r}") from None
            x |= xb << q
            z |= zb << q
        return cls(n, x, z)

    @classmethod
    def from_ops(cls, num_qubits: int, ops: Dict[int, str]) -> "PauliString":
        """Build from a sparse ``{qubit: 'X'|'Y'|'Z'}`` mapping."""
        x = z = 0
        for q, ch in ops.items():
            if q < 0 or q >= num_qubits:
                raise ValueError(f"qubit {q} out of range")
            xb, zb = _CHAR_TO_XZ[ch.upper()]
            if (xb, zb) == (0, 0):
                continue
            x |= xb << q
            z |= zb << q
        return cls(num_qubits, x, z)

    @classmethod
    def identity(cls, num_qubits: int) -> "PauliString":
        return cls(num_qubits, 0, 0)

    # -- basic properties ----------------------------------------------------

    def label(self) -> str:
        """Textual label, highest qubit first."""
        return "".join(
            _XZ_TO_CHAR[((self.x >> q) & 1, (self.z >> q) & 1)]
            for q in range(self.num_qubits - 1, -1, -1)
        )

    def op_on(self, qubit: int) -> str:
        """The single-qubit Pauli letter acting on ``qubit``."""
        return _XZ_TO_CHAR[((self.x >> qubit) & 1, (self.z >> qubit) & 1)]

    @property
    def support(self) -> Tuple[int, ...]:
        """Qubits acted on non-trivially, ascending."""
        mask = self.x | self.z
        return tuple(q for q in range(self.num_qubits) if (mask >> q) & 1)

    @property
    def weight(self) -> int:
        """Number of non-identity tensor factors."""
        return _popcount(self.x | self.z)

    @property
    def is_identity(self) -> bool:
        return self.x == 0 and self.z == 0

    @property
    def is_diagonal(self) -> bool:
        """True for Z-type strings (diagonal in the computational basis)."""
        return self.x == 0

    # -- algebra --------------------------------------------------------------

    def mul(self, other: "PauliString") -> Tuple[complex, "PauliString"]:
        """Product ``self @ other`` as ``(phase, PauliString)``.

        The result of a product of two Pauli strings is always a phase
        in {1, i, -1, -i} times another Pauli string.
        """
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")
        x3 = self.x ^ other.x
        z3 = self.z ^ other.z
        # i^{c1 + c2 - c3} * (-1)^{|z1 & x2|}
        exponent = (
            _popcount(self.x & self.z)
            + _popcount(other.x & other.z)
            - _popcount(x3 & z3)
            + 2 * _popcount(self.z & other.x)
        ) % 4
        return _I_POW[exponent], PauliString(self.num_qubits, x3, z3)

    def commutes_with(self, other: "PauliString") -> bool:
        """True iff the two strings commute (symplectic inner product = 0)."""
        return (
            _popcount(self.x & other.z) + _popcount(self.z & other.x)
        ) % 2 == 0

    def qubitwise_commutes_with(self, other: "PauliString") -> bool:
        """Qubit-wise commutation: on every shared qubit the letters agree
        or one is identity.  This is the grouping criterion for shared
        measurement bases (§4.1 of the paper)."""
        for q in range(self.num_qubits):
            a = ((self.x >> q) & 1, (self.z >> q) & 1)
            b = ((other.x >> q) & 1, (other.z >> q) & 1)
            if a != (0, 0) and b != (0, 0) and a != b:
                return False
        return True

    # -- numerics --------------------------------------------------------------

    def phase_exponent(self) -> int:
        """Exponent c in P = i^c X^x Z^z (c = |x & z| mod 4)."""
        return _popcount(self.x & self.z) % 4

    def apply(self, state: np.ndarray) -> np.ndarray:
        """Return ``P @ state`` for a dense statevector (vectorized)."""
        n = self.num_qubits
        dim = 1 << n
        if state.shape[0] != dim:
            raise ValueError("state dimension mismatch")
        idx = basis_indices(n)
        src = idx ^ self.x
        # P|k> = i^c (-1)^{parity(z & k)} |k ^ x>; reading out[j] pulls from
        # k = j ^ x, giving sign parity(z & (j ^ x)).
        signs = 1.0 - 2.0 * (count_set_bits(src & self.z) & 1)
        out = state[src] * signs
        c = self.phase_exponent()
        if c:
            out = out * _I_POW[c]
        return out

    def expectation(self, state: np.ndarray) -> complex:
        """<state| P |state> without building P's matrix."""
        return complex(np.vdot(state, self.apply(state)))

    def to_sparse(self) -> sp.csr_matrix:
        """Sparse matrix (one nonzero per row)."""
        n = self.num_qubits
        dim = 1 << n
        cols = basis_indices(n)
        rows = cols ^ self.x
        vals = (1.0 - 2.0 * (count_set_bits(cols & self.z) & 1)).astype(
            np.complex128
        )
        c = self.phase_exponent()
        if c:
            vals *= _I_POW[c]
        return sp.csr_matrix((vals, (rows, cols)), shape=(dim, dim))

    def to_matrix(self) -> np.ndarray:
        return self.to_sparse().toarray()

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PauliString)
            and self.num_qubits == other.num_qubits
            and self.x == other.x
            and self.z == other.z
        )

    def __hash__(self) -> int:
        return hash((self.num_qubits, self.x, self.z))

    def __repr__(self) -> str:
        return f"PauliString('{self.label()}')"


class PauliSum:
    """A linear combination of Pauli strings with complex coefficients.

    Internally a dict keyed by ``(x, z)`` masks; all algebra collapses
    duplicate strings immediately, which keeps commutator expansions
    (downfolding) from blowing up.

    Expensive derived structures — the qubit-wise-commuting measurement
    grouping and the compiled x-mask-batched form
    (:mod:`repro.ir.compiled`) — are memoized on the instance and
    invalidated by the mutating operations ``add_term`` / ``chop``.
    Code that mutates ``terms`` directly must call ``invalidate_caches``
    itself (nothing in this repository does).
    """

    __slots__ = (
        "num_qubits",
        "terms",
        "_version",
        "_qwc_groups",
        "_compiled",
        "_symp",
    )

    def __init__(
        self,
        num_qubits: int,
        terms: Optional[Dict[Tuple[int, int], complex]] = None,
    ):
        self.num_qubits = num_qubits
        self.terms: Dict[Tuple[int, int], complex] = dict(terms or {})
        self._version = 0
        self._qwc_groups: Optional[
            List[List[Tuple[complex, PauliString]]]
        ] = None
        self._compiled: Optional[object] = None
        self._symp: Optional[object] = None

    # -- derived-structure caches ---------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter; bumped by ``add_term``/``chop`` so derived
        caches (grouping, compiled form) can detect staleness."""
        return self._version

    def invalidate_caches(self) -> None:
        """Drop memoized grouping / compiled / symplectic forms after a
        mutation."""
        self._version += 1
        self._qwc_groups = None
        self._compiled = None
        self._symp = None

    def to_symplectic(self):
        """Packed (X|Z) uint64 bit-matrix view of the whole sum.

        Memoized on the instance under the same ``_version`` protocol as
        the compiled form; the returned :class:`SymplecticPauli` is
        immutable by convention — engine operations return new objects.
        """
        from repro.ir.symplectic import SymplecticPauli

        if self._symp is None:
            self._symp = SymplecticPauli.from_pauli_sum(self)
        return self._symp

    @classmethod
    def from_symplectic(cls, symp) -> "PauliSum":
        """Build from a :class:`repro.ir.symplectic.SymplecticPauli`."""
        return cls(symp.num_qubits, symp.to_terms_dict())

    # -- constructors -----------------------------------------------------------

    @classmethod
    def zero(cls, num_qubits: int) -> "PauliSum":
        return cls(num_qubits)

    @classmethod
    def identity(cls, num_qubits: int, coeff: complex = 1.0) -> "PauliSum":
        return cls(num_qubits, {(0, 0): complex(coeff)})

    @classmethod
    def from_string(cls, pauli: PauliString, coeff: complex = 1.0) -> "PauliSum":
        return cls(pauli.num_qubits, {(pauli.x, pauli.z): complex(coeff)})

    @classmethod
    def from_terms(
        cls, terms: Iterable[Tuple[complex, PauliString]]
    ) -> "PauliSum":
        terms = list(terms)
        if not terms:
            raise ValueError("from_terms needs at least one term; use zero()")
        n = terms[0][1].num_qubits
        out = cls(n)
        for coeff, pstr in terms:
            out.add_term(pstr, coeff)
        return out

    @classmethod
    def from_label_dict(cls, labels: Dict[str, complex]) -> "PauliSum":
        """Build from ``{"XIZ": coeff, ...}``; labels must share length."""
        items = list(labels.items())
        if not items:
            raise ValueError("empty label dict")
        n = len(items[0][0])
        out = cls(n)
        for label, coeff in items:
            if len(label) != n:
                raise ValueError("inconsistent label lengths")
            out.add_term(PauliString.from_label(label), coeff)
        return out

    # -- mutation ---------------------------------------------------------------

    def add_term(self, pauli: PauliString, coeff: complex) -> None:
        if pauli.num_qubits != self.num_qubits:
            raise ValueError("qubit count mismatch")
        key = (pauli.x, pauli.z)
        new = self.terms.get(key, 0.0) + complex(coeff)
        if new == 0:
            self.terms.pop(key, None)
        else:
            self.terms[key] = new
        self.invalidate_caches()

    def chop(self, threshold: float = 1e-12) -> "PauliSum":
        """Drop terms with |coeff| <= threshold (in place); returns self."""
        dead = [k for k, c in self.terms.items() if abs(c) <= threshold]
        for k in dead:
            del self.terms[k]
        if dead:
            self.invalidate_caches()
        return self

    def simplify(self, threshold: float = 0.0) -> "PauliSum":
        """Return a new sum with duplicate strings collapsed and terms
        with |coeff| <= threshold dropped (engine dedup).

        The dict representation already collapses duplicates on entry,
        so this is mainly a convenience for code that built ``terms``
        out-of-band or wants a chop that does not mutate in place.
        """
        engine = self.to_symplectic().dedup(threshold=threshold)
        return PauliSum(self.num_qubits, engine.to_terms_dict())

    # -- inspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.terms)

    def __iter__(self) -> Iterator[Tuple[complex, PauliString]]:
        for (x, z), coeff in self.terms.items():
            yield coeff, PauliString(self.num_qubits, x, z)

    @property
    def num_terms(self) -> int:
        return len(self.terms)

    def coefficient(self, pauli: PauliString) -> complex:
        return self.terms.get((pauli.x, pauli.z), 0.0)

    def is_hermitian(self, atol: float = 1e-10) -> bool:
        return all(abs(c.imag) <= atol for c in self.terms.values())

    def is_anti_hermitian(self, atol: float = 1e-10) -> bool:
        return all(abs(c.real) <= atol for c in self.terms.values())

    def norm1(self) -> float:
        """Sum of |coefficients| (induced-1 Pauli norm)."""
        return float(sum(abs(c) for c in self.terms.values()))

    # -- algebra ---------------------------------------------------------------------

    def __add__(self, other: "PauliSum") -> "PauliSum":
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")
        out = PauliSum(self.num_qubits, dict(self.terms))
        for key, coeff in other.terms.items():
            new = out.terms.get(key, 0.0) + coeff
            if new == 0:
                out.terms.pop(key, None)
            else:
                out.terms[key] = new
        return out

    def __sub__(self, other: "PauliSum") -> "PauliSum":
        return self + (other * -1.0)

    def __mul__(self, scalar: complex) -> "PauliSum":
        if isinstance(scalar, PauliSum):
            return self.dot(scalar)
        scalar = complex(scalar)
        if scalar == 0:
            return PauliSum.zero(self.num_qubits)
        out: Dict[Tuple[int, int], complex] = {}
        for k, c in self.terms.items():
            scaled = c * scalar
            if scaled != 0:
                out[k] = scaled
        return PauliSum(self.num_qubits, out)

    __rmul__ = __mul__

    def __truediv__(self, scalar: complex) -> "PauliSum":
        scalar = complex(scalar)
        if scalar == 0:
            raise ZeroDivisionError("PauliSum division by zero")
        return self * (1.0 / scalar)

    def __neg__(self) -> "PauliSum":
        return self * -1.0

    def dot(self, other: "PauliSum") -> "PauliSum":
        """Operator product (collapses duplicate strings as it goes).

        Small products run the per-term dict loop; large ones route
        through the packed symplectic engine (chunked outer product with
        vectorized phase tracking), which is ≥10x faster on
        Hamiltonian-sized sums.
        """
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")
        if len(self.terms) * len(other.terms) > _ENGINE_PAIR_CUTOFF:
            engine = self.to_symplectic().mul(other.to_symplectic())
            return PauliSum(self.num_qubits, engine.to_terms_dict())
        return self._dot_per_term(other)

    def _dot_per_term(self, other: "PauliSum") -> "PauliSum":
        """Reference per-term product loop (baseline for benchmarks)."""
        n = self.num_qubits
        out: Dict[Tuple[int, int], complex] = {}
        for (x1, z1), c1 in self.terms.items():
            c11 = _popcount(x1 & z1)
            for (x2, z2), c2 in other.terms.items():
                x3 = x1 ^ x2
                z3 = z1 ^ z2
                exponent = (
                    c11
                    + _popcount(x2 & z2)
                    - _popcount(x3 & z3)
                    + 2 * _popcount(z1 & x2)
                ) % 4
                coeff = c1 * c2 * _I_POW[exponent]
                key = (x3, z3)
                new = out.get(key, 0.0) + coeff
                if new == 0:
                    out.pop(key, None)
                else:
                    out[key] = new
        return PauliSum(n, out)

    def commutator(self, other: "PauliSum") -> "PauliSum":
        """[self, other], skipping commuting pairs.

        For Pauli strings either the pair commutes (contribution zero)
        or anticommutes (contribution ``2 * P1 P2``), so the commutator
        costs one product per anticommuting pair.  Large commutators
        route through the symplectic engine's vectorized adjacency +
        gather path.
        """
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")
        if len(self.terms) * len(other.terms) > _ENGINE_PAIR_CUTOFF:
            engine = self.to_symplectic().commutator(other.to_symplectic())
            return PauliSum(self.num_qubits, engine.to_terms_dict())
        return self._commutator_per_term(other)

    def _commutator_per_term(self, other: "PauliSum") -> "PauliSum":
        """Reference per-term commutator loop (baseline for benchmarks)."""
        n = self.num_qubits
        out: Dict[Tuple[int, int], complex] = {}
        for (x1, z1), c1 in self.terms.items():
            c11 = _popcount(x1 & z1)
            for (x2, z2), c2 in other.terms.items():
                if (_popcount(x1 & z2) + _popcount(z1 & x2)) % 2 == 0:
                    continue  # commuting pair contributes nothing
                x3 = x1 ^ x2
                z3 = z1 ^ z2
                exponent = (
                    c11
                    + _popcount(x2 & z2)
                    - _popcount(x3 & z3)
                    + 2 * _popcount(z1 & x2)
                ) % 4
                coeff = 2.0 * c1 * c2 * _I_POW[exponent]
                key = (x3, z3)
                new = out.get(key, 0.0) + coeff
                if new == 0:
                    out.pop(key, None)
                else:
                    out[key] = new
        return PauliSum(n, out)

    # -- numerics --------------------------------------------------------------------

    def apply(self, state: np.ndarray) -> np.ndarray:
        """Return ``H @ state`` summing vectorized per-term applications.

        This is the naive one-pass-per-term reference path; hot loops
        (VQE energies/gradients, ADAPT screening) should go through
        :func:`repro.ir.compiled.compile_observable`, which batches
        terms by shared x-mask into one pass per distinct mask.
        """
        dim = 1 << self.num_qubits
        if state.shape[0] != dim:
            raise ValueError("state dimension mismatch")
        out = np.zeros_like(state, dtype=np.complex128)
        idx = basis_indices(self.num_qubits)
        for (x, z), coeff in self.terms.items():
            src = idx ^ x
            signs = 1.0 - 2.0 * (count_set_bits(src & z) & 1)
            phase = _I_POW[_popcount(x & z) % 4]
            out += (coeff * phase) * (state[src] * signs)
        return out

    def expectation(self, state: np.ndarray) -> complex:
        """<state| H |state> (direct, no sampling)."""
        return complex(np.vdot(state, self.apply(state)))

    def to_sparse(self) -> sp.csr_matrix:
        """Sparse matrix of the whole sum."""
        dim = 1 << self.num_qubits
        acc = sp.csr_matrix((dim, dim), dtype=np.complex128)
        idx = basis_indices(self.num_qubits)
        for (x, z), coeff in self.terms.items():
            cols = idx
            rows = cols ^ x
            vals = (1.0 - 2.0 * (count_set_bits(cols & z) & 1)).astype(
                np.complex128
            )
            vals *= coeff * _I_POW[_popcount(x & z) % 4]
            acc = acc + sp.csr_matrix((vals, (rows, cols)), shape=(dim, dim))
        return acc

    def to_matrix(self) -> np.ndarray:
        return self.to_sparse().toarray()

    def ground_energy(self, k: int = 1) -> float:
        """Lowest eigenvalue by sparse diagonalization (reference values)."""
        mat = self.to_sparse()
        if mat.shape[0] <= 64:
            return float(np.linalg.eigvalsh(mat.toarray())[0])
        vals = sp.linalg.eigsh(
            mat, k=k, which="SA", return_eigenvectors=False, maxiter=5000
        )
        return float(np.min(vals))

    # -- measurement grouping (shared bases, §4.1) ---------------------------------

    def group_qubitwise_commuting(self) -> List[List[Tuple[complex, PauliString]]]:
        """Greedy grouping into qubit-wise commuting sets.

        Terms in one group can be measured from a single basis-rotated
        copy of the cached post-ansatz state, which is exactly the
        saving quantified in Fig. 3 of the paper.

        The greedy pass is O(terms^2); the result is memoized on the
        instance (invalidated by ``add_term``/``chop``) because every
        basis-rotated / sampled expectation needs the same grouping.
        Callers share the returned structure — treat it as read-only.
        """
        if self._qwc_groups is not None:
            return self._qwc_groups
        if len(self.terms) > _ENGINE_GROUP_CUTOFF:
            groups = self._group_qwc_engine()
        else:
            groups = self._group_qwc_per_term()
        self._qwc_groups = groups
        return groups

    def _group_qwc_engine(self) -> List[List[Tuple[complex, PauliString]]]:
        """Engine grouping: greedy first-fit against packed group union
        masks, scanning terms by descending |coeff|."""
        symp = self.to_symplectic()
        # Stable descending-|coeff| scan: ties keep dict insertion order,
        # matching the per-term reference path exactly.
        order = np.argsort(-np.abs(symp.coeffs), kind="stable")
        terms = list(self)
        return [
            [terms[i] for i in group]
            for group in symp.group_qubitwise(order=order)
        ]

    def _group_qwc_per_term(self) -> List[List[Tuple[complex, PauliString]]]:
        """Reference per-term grouping loop (baseline for benchmarks)."""
        groups: List[List[Tuple[complex, PauliString]]] = []
        # Greedy first-fit over terms sorted by descending |coeff| so that
        # heavy terms seed the groups.
        ordered = sorted(self, key=lambda t: -abs(t[0]))
        reps: List[List[PauliString]] = []
        for coeff, pstr in ordered:
            placed = False
            for gi, members in enumerate(reps):
                if all(pstr.qubitwise_commutes_with(m) for m in members):
                    groups[gi].append((coeff, pstr))
                    members.append(pstr)
                    placed = True
                    break
            if not placed:
                groups.append([(coeff, pstr)])
                reps.append([pstr])
        return groups

    def group_general_commuting(
        self, strategy: str = "largest_first"
    ) -> List[List[Tuple[complex, PauliString]]]:
        """Grouping under *general* commutation (weaker than qubit-wise,
        so groups are fewer/larger).

        Generally-commuting groups share an eigenbasis reachable by a
        Clifford circuit rather than single-qubit rotations; grouping
        is graph coloring of the anti-commutation graph (greedy, via
        networkx).  Counting the groups quantifies how much measurement
        reduction a smarter (Clifford) basis-change strategy buys over
        the paper's qubit-wise scheme.
        """
        import networkx as nx

        terms = list(self)
        g = nx.Graph()
        g.add_nodes_from(range(len(terms)))
        # Anti-commutation adjacency via vectorized engine passes,
        # chunked over rows to bound the broadcast intermediates.
        symp = self.to_symplectic()
        t = len(terms)
        for lo in range(0, t, 512):
            hi = min(lo + 512, t)
            anti = symp.anticommutation_matrix(rows=slice(lo, hi))
            ii, jj = np.nonzero(anti)
            keep = jj > (ii + lo)  # upper triangle only
            g.add_edges_from(
                zip((ii[keep] + lo).tolist(), jj[keep].tolist())
            )
        coloring = nx.coloring.greedy_color(g, strategy=strategy)
        groups: Dict[int, List[Tuple[complex, PauliString]]] = {}
        for idx, color in coloring.items():
            groups.setdefault(color, []).append(terms[idx])
        return [groups[c] for c in sorted(groups)]

    def __repr__(self) -> str:
        preview = ", ".join(
            f"{c:.4g}*{PauliString(self.num_qubits, x, z).label()}"
            for (x, z), c in list(self.terms.items())[:4]
        )
        more = "" if len(self.terms) <= 4 else f", ... ({len(self.terms)} terms)"
        return f"PauliSum({preview}{more})"
