"""Circuit IR, gate library, Pauli algebra, QASM I/O, compiler passes.

This subpackage plays the role the XACC framework plays in the paper:
the hardware-agnostic program representation sitting between algorithm
generators (ansatz builders, observable construction) and execution
backends (the simulators in ``repro.sim`` / ``repro.hpc``).
"""

from repro.ir.circuit import Circuit
from repro.ir.library import (
    controlled_evolution,
    controlled_pauli_exponential,
    ghz,
    hardware_efficient_ansatz,
    inverse_qft,
    qft,
    trotter_evolution,
)
from repro.ir.compiled import CompiledPauliSum, compile_observable
from repro.ir.gates import GATE_SET, Gate, Parameter, gate_matrix
from repro.ir.pauli import PauliString, PauliSum
from repro.ir.qasm import from_qasm, to_qasm

__all__ = [
    "Circuit",
    "Gate",
    "Parameter",
    "GATE_SET",
    "gate_matrix",
    "PauliString",
    "PauliSum",
    "CompiledPauliSum",
    "compile_observable",
    "from_qasm",
    "to_qasm",
    "qft",
    "inverse_qft",
    "ghz",
    "hardware_efficient_ansatz",
    "trotter_evolution",
    "controlled_evolution",
    "controlled_pauli_exponential",
]
