"""Compiler passes over the circuit IR.

These play the role of XACC's IR transformations (and the SABRE-style
routing the paper cites in §6.1): local gate cancellation, rotation
merging, single-qubit-run resynthesis, and connectivity-aware SWAP
routing.  Gate *fusion* — the simulator-side optimization of §4.3 —
lives with the simulator in ``repro.sim.fusion`` because it produces
opaque unitaries only a simulator can execute.
"""

from repro.ir.passes.base import Pass, PassManager
from repro.ir.passes.cancellation import CancelAdjacentInverses, MergeRotations
from repro.ir.passes.resynth import ResynthesizeSingleQubitRuns
from repro.ir.passes.routing import SabreRouter

__all__ = [
    "Pass",
    "PassManager",
    "CancelAdjacentInverses",
    "MergeRotations",
    "ResynthesizeSingleQubitRuns",
    "SabreRouter",
    "default_pass_manager",
]


def default_pass_manager() -> PassManager:
    """The standard optimization pipeline applied before simulation."""
    return PassManager(
        [
            CancelAdjacentInverses(),
            MergeRotations(),
            CancelAdjacentInverses(),
        ]
    )
