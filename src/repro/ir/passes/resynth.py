"""Single-qubit run resynthesis: collapse any run of 1q gates to one u3.

A maximal run of single-qubit gates on the same qubit implements some
SU(2) element; we multiply the matrices and re-express the product as a
single ``u3`` (ZYZ Euler decomposition), discarding global phase.  This
is the 1-qubit specialization of gate fusion that remains expressible
in the portable gate set (unlike the simulator's opaque fused
unitaries).
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, List, Optional

import numpy as np

from repro.ir.circuit import Circuit
from repro.ir.gates import Gate
from repro.ir.passes.base import Pass

__all__ = ["ResynthesizeSingleQubitRuns", "zyz_angles"]


def zyz_angles(u: np.ndarray) -> "tuple[float, float, float]":
    """ZYZ Euler angles (theta, phi, lam) with u ~ e^{i alpha} u3(theta, phi, lam)."""
    # Strip global phase: make det = 1, then fix remaining sign freedom.
    det = np.linalg.det(u)
    su = u / cmath.sqrt(det)
    # su = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #        [sin(t/2) e^{ i(phi-lam)/2},  cos(t/2) e^{ i(phi+lam)/2}]]
    c = abs(su[0, 0])
    c = min(1.0, max(0.0, c))
    theta = 2.0 * math.acos(c)
    if abs(su[0, 0]) > 1e-12 and abs(su[1, 0]) > 1e-12:
        plus = 2.0 * cmath.phase(su[1, 1])
        minus = 2.0 * cmath.phase(su[1, 0])
        phi = (plus + minus) / 2.0
        lam = (plus - minus) / 2.0
    elif abs(su[0, 0]) > 1e-12:  # theta ~ 0: only phi+lam matters
        phi = 2.0 * cmath.phase(su[1, 1])
        lam = 0.0
    else:  # theta ~ pi: only phi-lam matters
        phi = 2.0 * cmath.phase(su[1, 0])
        lam = 0.0
    return theta, phi, lam


class ResynthesizeSingleQubitRuns(Pass):
    """Collapse maximal single-qubit gate runs into one ``u3`` each."""

    def __init__(self, min_run: int = 2):
        self.min_run = min_run

    def run(self, circuit: Circuit) -> Circuit:
        # Pending run per qubit: list of gates
        pending: Dict[int, List[Gate]] = {}
        out: List[Gate] = []

        def flush(q: int) -> None:
            run = pending.pop(q, [])
            if not run:
                return
            if len(run) < self.min_run:
                out.extend(run)
                return
            u = np.eye(2, dtype=np.complex128)
            for g in run:
                u = g.to_matrix() @ u
            theta, phi, lam = zyz_angles(u)
            if (
                math.isclose(theta, 0.0, abs_tol=1e-12)
                and math.isclose((phi + lam) % (2 * math.pi), 0.0, abs_tol=1e-12)
            ):
                return  # identity run, drop it
            out.append(Gate("u3", (q,), (theta, phi, lam)))

        for g in circuit.gates:
            if g.num_qubits == 1 and not g.is_parameterized and g.matrix is None:
                pending.setdefault(g.qubits[0], []).append(g)
                continue
            for q in g.qubits:
                flush(q)
            if g.num_qubits == 1:
                # parameterized or opaque 1q gate: barrier for that qubit
                out.append(g)
            else:
                out.append(g)
        for q in list(pending):
            flush(q)
        return Circuit(circuit.num_qubits, out)
