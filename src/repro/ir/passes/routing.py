"""SABRE-style SWAP routing for connectivity-constrained targets.

The paper's related-work section (§6.1) points at SABRE [Li et al.,
ASPLOS'19] as the qubit-mapping approach compatible with this stack.
Simulators need no routing (all-to-all connectivity), but the workflow
is hardware-agnostic: the same IR must compile to devices with limited
coupling.  This pass implements the SABRE look-ahead heuristic: keep a
front layer of unexecutable 2q gates, and greedily insert the SWAP that
most reduces the summed device distance of the front layer (plus a
discounted extended set).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.ir.circuit import Circuit
from repro.ir.gates import Gate
from repro.ir.passes.base import Pass

__all__ = ["SabreRouter", "linear_coupling", "grid_coupling"]


def linear_coupling(n: int) -> nx.Graph:
    """A 1D chain of n physical qubits."""
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from((i, i + 1) for i in range(n - 1))
    return g


def grid_coupling(rows: int, cols: int) -> nx.Graph:
    """A rows x cols grid; nodes numbered row-major."""
    g = nx.Graph()
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            g.add_node(v)
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


class SabreRouter(Pass):
    """Route a circuit onto a coupling graph by inserting SWAPs.

    The output circuit acts on *physical* qubits.  ``final_layout``
    (available after :meth:`run`) maps logical -> physical so callers
    can undo the permutation when interpreting results.
    """

    def __init__(
        self,
        coupling: nx.Graph,
        extended_depth: int = 20,
        decay: float = 0.5,
        seed: int = 7,
    ):
        self.coupling = coupling
        self.extended_depth = extended_depth
        self.decay = decay
        self.seed = seed
        self.dist: Dict[int, Dict[int, int]] = dict(
            nx.all_pairs_shortest_path_length(coupling)
        )
        self.final_layout: Optional[Dict[int, int]] = None
        self.swap_count = 0

    def run(self, circuit: Circuit) -> Circuit:
        n_phys = self.coupling.number_of_nodes()
        if circuit.num_qubits > n_phys:
            raise ValueError("circuit wider than device")
        # logical -> physical (identity start); phys -> logical inverse.
        l2p: Dict[int, int] = {q: q for q in range(circuit.num_qubits)}
        p2l: Dict[int, int] = {p: q for q, p in l2p.items()}

        # Dependency structure: per-qubit FIFO of gate indices.
        gates = circuit.gates
        succ: List[List[int]] = [[] for _ in gates]
        last_on: Dict[int, int] = {}
        indeg = [0] * len(gates)
        for i, g in enumerate(gates):
            for q in g.qubits:
                if q in last_on:
                    succ[last_on[q]].append(i)
                    indeg[i] += 1
                last_on[q] = i
        front: Set[int] = {i for i, d in enumerate(indeg) if d == 0}

        out = Circuit(n_phys)
        executed = [False] * len(gates)
        self.swap_count = 0

        def executable(i: int) -> bool:
            g = gates[i]
            if g.num_qubits == 1:
                return True
            a, b = (l2p[q] for q in g.qubits)
            return self.coupling.has_edge(a, b)

        def execute(i: int) -> None:
            g = gates[i]
            out.append(Gate(g.name, tuple(l2p[q] for q in g.qubits), g.params, g.matrix))
            executed[i] = True

        def advance() -> None:
            """Execute everything executable, maintaining the front layer."""
            progress = True
            while progress:
                progress = False
                for i in sorted(front):
                    if executable(i):
                        execute(i)
                        front.discard(i)
                        for j in succ[i]:
                            indeg[j] -= 1
                            if indeg[j] == 0:
                                front.add(j)
                        progress = True

        def front_cost(layout: Dict[int, int]) -> float:
            cost = 0.0
            two_q = [i for i in front if gates[i].num_qubits == 2]
            for i in two_q:
                a, b = (layout[q] for q in gates[i].qubits)
                cost += self.dist[a][b]
            # extended set: a window of not-yet-executed 2q gates after front
            window = 0
            for i, g in enumerate(gates):
                if executed[i] or i in front or g.num_qubits != 2:
                    continue
                a, b = (layout[q] for q in g.qubits)
                cost += self.decay * self.dist[a][b]
                window += 1
                if window >= self.extended_depth:
                    break
            return cost

        advance()
        stall = 0
        while not all(executed):
            # Candidate SWAPs: edges adjacent to qubits in blocked front gates.
            candidates: Set[Tuple[int, int]] = set()
            for i in front:
                g = gates[i]
                if g.num_qubits != 2:
                    continue
                for q in g.qubits:
                    p = l2p[q]
                    for nb in self.coupling.neighbors(p):
                        candidates.add((min(p, nb), max(p, nb)))
            if not candidates:
                raise RuntimeError("router stalled: no candidate swaps")
            best, best_cost = None, float("inf")
            for a, b in sorted(candidates):
                trial = dict(l2p)
                la, lb = p2l.get(a), p2l.get(b)
                if la is not None:
                    trial[la] = b
                if lb is not None:
                    trial[lb] = a
                c = front_cost(trial)
                if c < best_cost:
                    best, best_cost = (a, b), c
            a, b = best  # type: ignore[misc]
            out.append(Gate("swap", (a, b)))
            self.swap_count += 1
            la, lb = p2l.get(a), p2l.get(b)
            if la is not None:
                l2p[la] = b
            if lb is not None:
                l2p[lb] = a
            p2l = {p: q for q, p in l2p.items()}
            before = sum(executed)
            advance()
            stall = stall + 1 if sum(executed) == before else 0
            if stall > 4 * self.coupling.number_of_nodes():
                raise RuntimeError("router made no progress; check coupling graph")
        self.final_layout = dict(l2p)
        return out
