"""Pass infrastructure: a pass maps Circuit -> Circuit."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List

from repro.ir.circuit import Circuit

__all__ = ["Pass", "PassManager"]


class Pass(ABC):
    """A circuit-to-circuit transformation that must preserve the
    implemented unitary (up to global phase)."""

    @abstractmethod
    def run(self, circuit: Circuit) -> Circuit:
        """Return the transformed circuit (must not mutate the input)."""

    @property
    def name(self) -> str:
        return type(self).__name__


class PassManager:
    """Runs a pipeline of passes, optionally iterating to a fixed point."""

    def __init__(self, passes: Iterable[Pass], max_iterations: int = 8):
        self.passes: List[Pass] = list(passes)
        self.max_iterations = max_iterations

    def run(self, circuit: Circuit, to_fixed_point: bool = True) -> Circuit:
        current = circuit
        for _ in range(self.max_iterations if to_fixed_point else 1):
            before = len(current)
            for p in self.passes:
                current = p.run(current)
            if not to_fixed_point or len(current) == before:
                break
        return current
