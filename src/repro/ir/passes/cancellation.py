"""Local simplification passes: inverse cancellation and rotation merging.

Both passes use a per-qubit "frontier" scan so that only gates that are
truly adjacent on the *same qubits* (no interposing gate touching those
qubits) are combined — commutation through unrelated qubits is free.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.ir.circuit import Circuit
from repro.ir.gates import Gate, Parameter
from repro.ir.passes.base import Pass

__all__ = ["CancelAdjacentInverses", "MergeRotations"]

_SELF_INVERSE = {"x", "y", "z", "h", "cx", "cz", "swap"}
_INVERSE_PAIRS = {("s", "sdg"), ("sdg", "s"), ("t", "tdg"), ("tdg", "t")}
_ROTATIONS = {"rx", "ry", "rz", "p", "rzz", "rxx", "ryy", "cp", "crz"}


def _cancels(a: Gate, b: Gate) -> bool:
    if a.qubits != b.qubits:
        return False
    if a.name in _SELF_INVERSE and a.name == b.name:
        return True
    return (a.name, b.name) in _INVERSE_PAIRS


class CancelAdjacentInverses(Pass):
    """Remove pairs of adjacent mutually-inverse gates.

    A gate and its inverse cancel when no other gate acts on any of
    their qubits in between.  Repeated application (via the
    PassManager's fixed point) handles nested cancellations such as
    ``H X X H``.
    """

    def run(self, circuit: Circuit) -> Circuit:
        out: List[Optional[Gate]] = []
        # last surviving gate index touching each qubit
        frontier: Dict[int, int] = {}
        for g in circuit.gates:
            prev_idx = None
            idxs = {frontier.get(q) for q in g.qubits}
            if len(idxs) == 1:
                (prev_idx,) = idxs
            if prev_idx is not None and out[prev_idx] is not None:
                prev = out[prev_idx]
                if _cancels(prev, g):
                    out[prev_idx] = None
                    # retreat frontier for these qubits: find previous gate
                    for q in g.qubits:
                        frontier.pop(q, None)
                    # rebuild frontiers lazily: scan backwards for each qubit
                    for q in g.qubits:
                        for i in range(len(out) - 1, -1, -1):
                            og = out[i]
                            if og is not None and q in og.qubits:
                                frontier[q] = i
                                break
                    continue
            out.append(g)
            for q in g.qubits:
                frontier[q] = len(out) - 1
        return Circuit(circuit.num_qubits, [g for g in out if g is not None])


def _merge_params(a, b):
    """Sum two rotation angles, symbolic-aware when same parameter."""
    if isinstance(a, Parameter) and isinstance(b, Parameter):
        if a.name != b.name:
            return None
        return Parameter(a.name, a.coeff + b.coeff, a.offset + b.offset)
    if isinstance(a, Parameter) or isinstance(b, Parameter):
        if isinstance(b, Parameter):
            a, b = b, a
        return a + float(b)
    return float(a) + float(b)


class MergeRotations(Pass):
    """Merge adjacent same-axis rotations: RZ(a) RZ(b) -> RZ(a+b).

    Rotations summing to an angle that is 0 mod 4*pi are dropped
    entirely (the gates are 4*pi-periodic as unitaries; 2*pi leaves a
    global phase of -1 which is also physically irrelevant, but we keep
    the conservative 4*pi criterion so circuit unitaries match exactly
    in tests).
    """

    def run(self, circuit: Circuit) -> Circuit:
        out: List[Optional[Gate]] = []
        frontier: Dict[int, int] = {}
        for g in circuit.gates:
            if g.name in _ROTATIONS:
                idxs = {frontier.get(q) for q in g.qubits}
                if len(idxs) == 1 and None not in idxs:
                    (prev_idx,) = idxs
                    prev = out[prev_idx]
                    if (
                        prev is not None
                        and prev.name == g.name
                        and prev.qubits == g.qubits
                    ):
                        merged = _merge_params(prev.params[0], g.params[0])
                        if merged is not None:
                            drop = (
                                not isinstance(merged, Parameter)
                                and math.isclose(
                                    math.remainder(float(merged), 4 * math.pi),
                                    0.0,
                                    abs_tol=1e-14,
                                )
                            )
                            if drop:
                                out[prev_idx] = None
                                for q in g.qubits:
                                    frontier.pop(q, None)
                                    for i in range(len(out) - 1, -1, -1):
                                        og = out[i]
                                        if og is not None and q in og.qubits:
                                            frontier[q] = i
                                            break
                            else:
                                out[prev_idx] = Gate(g.name, g.qubits, (merged,))
                            continue
            out.append(g)
            for q in g.qubits:
                frontier[q] = len(out) - 1
        return Circuit(circuit.num_qubits, [g for g in out if g is not None])
