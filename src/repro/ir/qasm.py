"""OpenQASM 2 emission and parsing for the circuit IR.

Gives the framework the same interoperability role XACC's compiler
frontends serve: circuits can be exported for other toolchains and
simple QASM programs can be ingested.  Only the gate set of
``repro.ir.gates`` is supported; symbolic parameters are not
serializable (bind first).
"""

from __future__ import annotations

import math
import re
from typing import List

from repro.ir.circuit import Circuit
from repro.ir.gates import GATE_SET, Gate

__all__ = ["to_qasm", "from_qasm"]

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

# Gates QASM2/qelib1 knows natively; others are emitted via decomposition.
_NATIVE = {
    "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
    "rx", "ry", "rz", "p", "u3", "cx", "cz", "swap", "cp", "crz",
}


def to_qasm(circuit: Circuit) -> str:
    """Serialize a bound circuit to OpenQASM 2."""
    lines: List[str] = [_HEADER, f"qreg q[{circuit.num_qubits}];"]
    for g in circuit.gates:
        if g.is_parameterized:
            raise ValueError("bind parameters before exporting to QASM")
        lines.extend(_emit(g))
    return "\n".join(lines) + "\n"


def _fmt(x: float) -> str:
    return repr(float(x))


def _emit(g: Gate) -> List[str]:
    qs = ",".join(f"q[{q}]" for q in g.qubits)
    if g.name in _NATIVE:
        if g.params:
            ps = ",".join(_fmt(float(p)) for p in g.params)
            return [f"{g.name}({ps}) {qs};"]
        return [f"{g.name} {qs};"]
    if g.name == "i":
        return [f"id {qs};"]
    if g.name == "rzz":
        (theta,) = g.params
        a, b = g.qubits
        return [
            f"cx q[{a}],q[{b}];",
            f"rz({_fmt(float(theta))}) q[{b}];",
            f"cx q[{a}],q[{b}];",
        ]
    if g.name == "rxx":
        (theta,) = g.params
        a, b = g.qubits
        return (
            [f"h q[{a}];", f"h q[{b}];"]
            + _emit(Gate("rzz", g.qubits, g.params))
            + [f"h q[{a}];", f"h q[{b}];"]
        )
    if g.name == "ryy":
        (theta,) = g.params
        a, b = g.qubits
        pre = [f"sdg q[{a}];", f"h q[{a}];", f"sdg q[{b}];", f"h q[{b}];"]
        post = [f"h q[{a}];", f"s q[{a}];", f"h q[{b}];", f"s q[{b}];"]
        return pre + _emit(Gate("rzz", g.qubits, g.params)) + post
    raise ValueError(f"gate {g.name!r} has no QASM form (fuse-produced unitaries "
                     "must be decomposed or kept internal)")


_GATE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\((?P<params>[^)]*)\))?\s+"
    r"(?P<args>q\[\d+\](?:\s*,\s*q\[\d+\])*)\s*;\s*$"
)
_QREG_RE = re.compile(r"^qreg\s+q\[(\d+)\]\s*;\s*$")
_ARG_RE = re.compile(r"q\[(\d+)\]")


def _eval_param(expr: str) -> float:
    """Evaluate a QASM parameter expression (numbers, pi, + - * /)."""
    expr = expr.strip().replace("pi", repr(math.pi))
    if not re.fullmatch(r"[0-9eE+\-*/. ()]+", expr):
        raise ValueError(f"unsupported parameter expression: {expr!r}")
    return float(eval(expr, {"__builtins__": {}}))  # noqa: S307 - sanitized


def from_qasm(text: str) -> Circuit:
    """Parse a (subset of) OpenQASM 2 program back to a circuit."""
    circuit: Circuit | None = None
    for raw in text.splitlines():
        line = raw.split("//")[0].strip()
        if not line or line.startswith(("OPENQASM", "include", "creg", "barrier")):
            continue
        m = _QREG_RE.match(line)
        if m:
            circuit = Circuit(int(m.group(1)))
            continue
        m = _GATE_RE.match(line)
        if not m:
            raise ValueError(f"cannot parse QASM line: {raw!r}")
        if circuit is None:
            raise ValueError("gate before qreg declaration")
        name = m.group("name").lower()
        if name == "id":
            name = "i"
        if name == "measure":
            continue
        if name not in GATE_SET:
            raise ValueError(f"unsupported QASM gate {name!r}")
        params = tuple(
            _eval_param(p) for p in (m.group("params") or "").split(",") if p.strip()
        )
        qubits = tuple(int(q) for q in _ARG_RE.findall(m.group("args")))
        circuit.append(Gate(name, qubits, params))
    if circuit is None:
        raise ValueError("no qreg declaration found")
    return circuit
