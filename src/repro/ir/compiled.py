"""Compiled Pauli observables: x-mask-batched evaluation kernels.

The direct expectation method (paper §4.2.2) evaluates <psi|H|psi>
from the amplitude vector with one vectorized pass *per Hamiltonian
term* — for a downfolded chemistry Hamiltonian that is thousands of
full-vector gathers, sign evaluations, and reductions on every energy
and gradient call of a VQE/ADAPT campaign.

This module precompiles the observable instead.  Writing each term as
``P(x, z) = i^{|x & z|} X^x Z^z``, every term with the same x-mask
performs the *same* amplitude permutation ``k -> k ^ x``; only the
diagonal sign pattern differs.  Grouping terms by x-mask and summing
their sign patterns into one dense complex diagonal per distinct mask,

    d_x[k] = sum_z c_{x,z} * i^{|x & z|} * (-1)^{parity(k & z)},

collapses the whole observable to

    (H psi)[j]   = sum_x d_x[j ^ x] * psi[j ^ x],
    <psi|H|psi>  = sum_x sum_k conj(psi[k ^ x]) * d_x[k] * psi[k],

i.e. **one gather + one multiply + one reduction per distinct x-mask**
instead of per term.  All diagonal (Z-only) terms share x = 0 and
collapse into a single gather-free pass — for qubit-mapped chemistry
Hamiltonians that alone absorbs a large fraction of the term count.

Compiled forms are cached on the source :class:`PauliSum` (invalidated
by ``add_term``/``chop``) via :func:`compile_observable`, so every
consumer — the estimators, the adjoint-gradient sweep, ADAPT pool
screening, batched simulation — shares one compilation per observable
per campaign.  Compile cost is one pass per term (the same as a single
naive ``apply``), so the engine pays for itself from the second
evaluation on; memory is ``num_passes * 2^n * 24`` bytes (complex
diagonal + int64 gather table per non-zero mask).
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.ir.pauli import PauliSum
from repro.utils.bitops import I_POW, basis_indices, count_set_bits

__all__ = ["CompiledPauliSum", "compile_observable"]


class CompiledPauliSum:
    """An x-mask-batched, ready-to-evaluate form of a :class:`PauliSum`.

    Instances are immutable snapshots: they do not track later
    mutations of the source sum.  Use :func:`compile_observable` to get
    the memoized (auto-invalidated) compiled form.
    """

    __slots__ = (
        "num_qubits",
        "dim",
        "num_terms",
        "x_masks",
        "diagonals",
        "gathers",
        "source_version",
        "__weakref__",  # memory-ledger registration outlives no instance
    )

    def __init__(self, pauli_sum: PauliSum):
        n = pauli_sum.num_qubits
        dim = 1 << n
        self.num_qubits = n
        self.dim = dim
        self.num_terms = pauli_sum.num_terms
        self.source_version = pauli_sum.version

        idx = basis_indices(n)
        if pauli_sum.num_terms == 0:
            masks: List[int] = []
            diagonals = np.zeros((0, dim), dtype=np.complex128)
            gathers: List[Optional[np.ndarray]] = []
        else:
            # Vectorized build over the packed symplectic form: phase
            # weights for all terms at once, then one chunked sign-matrix
            # matmul per distinct x-mask (x = 0, the gather-free diagonal
            # pass, sorts first).
            symp = pauli_sum.to_symplectic()
            xs = symp.x[:, 0].astype(np.int64)
            zs = symp.z[:, 0].astype(np.int64)
            phases = count_set_bits(symp.x & symp.z).sum(axis=-1) % 4
            weights = symp.coeffs * np.asarray(I_POW)[phases]
            ux, inverse = np.unique(xs, return_inverse=True)
            order = np.argsort(inverse, kind="stable")
            bounds = np.searchsorted(inverse[order], np.arange(len(ux) + 1))
            masks = [int(x) for x in ux]
            diagonals = np.zeros((len(ux), dim), dtype=np.complex128)
            gathers = []
            for row in range(len(ux)):
                rows = order[bounds[row] : bounds[row + 1]]
                for lo in range(0, rows.size, 512):
                    sub = rows[lo : lo + 512]
                    signs = 1.0 - 2.0 * (
                        count_set_bits(idx[None, :] & zs[sub, None]) & 1
                    )
                    diagonals[row] += weights[sub] @ signs
                gathers.append(None if ux[row] == 0 else idx ^ int(ux[row]))
        self.x_masks: Tuple[int, ...] = tuple(masks)
        self.diagonals = diagonals
        self.gathers = gathers
        obs.mem_track(self, "compiled_observable", self.nbytes())
        if obs.enabled():
            obs.inc(
                "repro_compiled_obs_compiles_total",
                help="Observable compilations (x-mask batching)",
            )
            obs.inc(
                "repro_compiled_obs_compiled_terms_total",
                self.num_terms,
                help="Pauli terms absorbed into compiled observables",
            )

    # -- inspection ----------------------------------------------------------

    @property
    def num_passes(self) -> int:
        """Full-vector passes per evaluation (= distinct x-masks); the
        naive per-term path pays ``num_terms`` passes instead."""
        return len(self.x_masks)

    @property
    def is_diagonal(self) -> bool:
        """True when every term is Z-type (single gather-free pass)."""
        return self.x_masks == (0,) or not self.x_masks

    def nbytes(self) -> int:
        """Memory held by the precomputed diagonals + gather tables."""
        total = self.diagonals.nbytes
        for g in self.gathers:
            if g is not None:
                total += g.nbytes
        return total

    def __repr__(self) -> str:
        return (
            f"CompiledPauliSum(qubits={self.num_qubits}, "
            f"terms={self.num_terms}, passes={self.num_passes})"
        )

    def _record(self, op: str) -> None:
        if obs.enabled():
            obs.inc(
                "repro_compiled_obs_evaluations_total",
                help="Compiled-observable evaluations by operation",
                labels={"op": op},
            )
            obs.inc(
                "repro_compiled_obs_passes_total",
                self.num_passes,
                help="Full-vector passes performed by compiled evaluations",
            )
            obs.inc(
                "repro_compiled_obs_passes_saved_total",
                self.num_terms - self.num_passes,
                help="Per-term passes avoided by x-mask batching",
            )

    # -- numerics ------------------------------------------------------------

    def apply(self, state: np.ndarray) -> np.ndarray:
        """Return ``H @ state`` in one pass per distinct x-mask."""
        if state.shape[0] != self.dim:
            raise ValueError("state dimension mismatch")
        self._record("apply")
        out = np.zeros(self.dim, dtype=np.complex128)
        for d, g in zip(self.diagonals, self.gathers):
            t = d * state
            if g is None:
                out += t
            else:
                out += t[g]
        return out

    def expectation(self, state: np.ndarray) -> complex:
        """<state| H |state> without materializing ``H @ state``."""
        if state.shape[0] != self.dim:
            raise ValueError("state dimension mismatch")
        self._record("expectation")
        total = 0.0 + 0.0j
        abs2: Optional[np.ndarray] = None
        for d, g in zip(self.diagonals, self.gathers):
            if g is None:
                if abs2 is None:
                    abs2 = (state.real * state.real) + (state.imag * state.imag)
                total += np.dot(d, abs2)
            else:
                total += np.vdot(state[g], d * state)
        return complex(total)

    def expectations(self, states: np.ndarray) -> np.ndarray:
        """<psi_b|H|psi_b> for a (B, 2^n) batch, one pass per x-mask.

        Returns the complex per-row values; Hermiticity checking is the
        caller's concern (see ``BatchedStatevectorSimulator``).
        """
        if states.ndim != 2 or states.shape[1] != self.dim:
            raise ValueError("expected a (batch, 2^n) amplitude matrix")
        self._record("expectations")
        out = np.zeros(states.shape[0], dtype=np.complex128)
        for d, g in zip(self.diagonals, self.gathers):
            if g is None:
                abs2 = (states.real * states.real) + (states.imag * states.imag)
                out += abs2 @ d
            else:
                out += np.einsum(
                    "bi,bi->b", states[:, g].conj(), d * states
                )
        return out


def compile_observable(
    observable: Union[PauliSum, CompiledPauliSum],
) -> CompiledPauliSum:
    """The memoizing entry point every hot path goes through.

    Returns the compiled form of ``observable``, reusing the copy
    cached on the :class:`PauliSum` when it is still valid (the cache
    is dropped by ``add_term``/``chop``).  Passing an already-compiled
    observable is a no-op, so APIs can accept either form.
    """
    if isinstance(observable, CompiledPauliSum):
        return observable
    cached = observable._compiled
    if (
        isinstance(cached, CompiledPauliSum)
        and cached.source_version == observable.version
    ):
        if obs.enabled():
            obs.inc(
                "repro_compiled_obs_cache_total",
                help="Compiled-observable cache lookups by outcome",
                labels={"outcome": "hit"},
            )
        return cached
    if obs.enabled():
        obs.inc(
            "repro_compiled_obs_cache_total",
            help="Compiled-observable cache lookups by outcome",
            labels={"outcome": "miss"},
        )
    compiled = CompiledPauliSum(observable)
    observable._compiled = compiled
    return compiled
