"""Reusable circuit constructions: QFT, GHZ, hardware-efficient ansatz,
and first-order Trotterized Hamiltonian evolution.

These are the standard building blocks the XACC-role framework is
expected to provide: the QFT feeds quantum phase estimation
(``repro.core.qpe``), the hardware-efficient ansatz is the
low-depth alternative the paper's related work (§6.1, Kandala et al.)
discusses, and Trotter evolution turns any Pauli-sum Hamiltonian into
an executable circuit.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.ir.circuit import Circuit
from repro.ir.gates import Parameter
from repro.ir.pauli import PauliSum

__all__ = [
    "qft",
    "inverse_qft",
    "ghz",
    "hardware_efficient_ansatz",
    "trotter_evolution",
    "controlled_pauli_exponential",
    "controlled_evolution",
]


def qft(num_qubits: int, include_swaps: bool = True) -> Circuit:
    """Quantum Fourier transform on ``num_qubits`` qubits.

    Convention: maps |k> to (1/sqrt(N)) sum_j exp(2 pi i j k / N) |j>
    with the little-endian bit order used throughout the package.
    """
    circ = Circuit(num_qubits)
    for q in range(num_qubits - 1, -1, -1):
        circ.h(q)
        for j in range(q - 1, -1, -1):
            angle = math.pi / (1 << (q - j))
            circ.add("cp", [j, q], angle)
    if include_swaps:
        for q in range(num_qubits // 2):
            circ.swap(q, num_qubits - 1 - q)
    return circ


def inverse_qft(num_qubits: int, include_swaps: bool = True) -> Circuit:
    """Adjoint of :func:`qft`."""
    return qft(num_qubits, include_swaps).inverse()


def ghz(num_qubits: int) -> Circuit:
    """The (|0...0> + |1...1>)/sqrt(2) preparation circuit."""
    circ = Circuit(num_qubits).h(0)
    for q in range(num_qubits - 1):
        circ.cx(q, q + 1)
    return circ


def hardware_efficient_ansatz(
    num_qubits: int,
    layers: int = 2,
    entangler: str = "linear",
    parameter_prefix: str = "w",
) -> Circuit:
    """Kandala-style hardware-efficient ansatz.

    Each layer: RY + RZ on every qubit, then a CX entangling pattern
    (``linear`` chain or ``circular`` ring).  One parameter per
    rotation — which means the parameter-shift rule applies to every
    parameter (unlike trotterized UCCSD where one parameter feeds many
    rotations).
    """
    if entangler not in ("linear", "circular"):
        raise ValueError("entangler must be 'linear' or 'circular'")
    circ = Circuit(num_qubits)
    k = 0
    for layer in range(layers):
        for q in range(num_qubits):
            circ.ry(Parameter(f"{parameter_prefix}{k}"), q)
            k += 1
            circ.rz(Parameter(f"{parameter_prefix}{k}"), q)
            k += 1
        pairs = [(q, q + 1) for q in range(num_qubits - 1)]
        if entangler == "circular" and num_qubits > 2:
            pairs.append((num_qubits - 1, 0))
        for a, b in pairs:
            circ.cx(a, b)
    # final rotation layer (standard: rotations close the circuit)
    for q in range(num_qubits):
        circ.ry(Parameter(f"{parameter_prefix}{k}"), q)
        k += 1
    return circ


def trotter_evolution(
    hamiltonian: PauliSum,
    time: float,
    steps: int = 1,
) -> Circuit:
    """First-order Trotter circuit for exp(-i H t).

    Each step applies exp(-i c_k P_k t / steps) for every term; the
    identity component contributes only a global phase and is skipped
    (callers needing the absolute phase — e.g. QPE — account for the
    identity coefficient classically).
    """
    from repro.chem.uccsd import pauli_exponential

    if not hamiltonian.is_hermitian():
        raise ValueError("evolution requires a Hermitian Hamiltonian")
    n = hamiltonian.num_qubits
    circ = Circuit(n)
    dt = time / steps
    for _ in range(steps):
        for coeff, pstr in hamiltonian:
            if pstr.is_identity:
                continue
            circ.compose(pauli_exponential(pstr, -coeff.real * dt, n))
    return circ


def controlled_pauli_exponential(
    pauli, angle: float, control: int, num_qubits: int
) -> Circuit:
    """Circuit for controlled-exp(i * angle * P) with ``control`` as the
    control qubit (P acts on other qubits).

    Same basis-rotation + CNOT-ladder pattern as the uncontrolled
    exponential, but the central RZ becomes a CRZ from the control:
    with the control in |0> the conjugation cancels to identity, with
    |1> it implements exp(i angle P) exactly.
    """
    from repro.ir.pauli import PauliString

    circ = Circuit(num_qubits)
    support = pauli.support
    if control in support:
        raise ValueError("control qubit overlaps the Pauli support")
    if not support:
        # controlled global phase: a phase gate on the control
        circ.add("p", [control], angle)
        return circ
    for q in support:
        op = pauli.op_on(q)
        if op == "X":
            circ.h(q)
        elif op == "Y":
            circ.rx(math.pi / 2, q)
    for k in range(len(support) - 1):
        circ.cx(support[k], support[k + 1])
    circ.add("crz", [control, support[-1]], -2.0 * angle)
    for k in range(len(support) - 2, -1, -1):
        circ.cx(support[k], support[k + 1])
    for q in support:
        op = pauli.op_on(q)
        if op == "X":
            circ.h(q)
        elif op == "Y":
            circ.rx(-math.pi / 2, q)
    return circ


def controlled_evolution(
    hamiltonian: PauliSum,
    time: float,
    control: int,
    num_qubits: int,
    steps: int = 1,
) -> Circuit:
    """Controlled exp(+i H t) by first-order Trotterization.

    The identity component of H becomes a controlled global phase
    (a P gate on the control), so eigenphases come out absolute —
    exactly what quantum phase estimation needs.
    """
    if not hamiltonian.is_hermitian():
        raise ValueError("evolution requires a Hermitian Hamiltonian")
    circ = Circuit(num_qubits)
    dt = time / steps
    for _ in range(steps):
        for coeff, pstr in hamiltonian:
            circ.compose(
                controlled_pauli_exponential(
                    pstr, coeff.real * dt, control, num_qubits
                )
            )
    return circ
