"""Vectorized symplectic Pauli algebra on packed (X|Z) bit-matrices.

``repro.ir.pauli`` stores one term per dict entry and runs products,
commutators, and grouping as per-term Python loops — fine for tens of
terms, quadratic-with-a-large-constant for the 4747-term downfolded
H2O Hamiltonian that every real workload (downfolding commutator
expansions, ADAPT pool screening, QWC grouping, term-counting sweeps)
funnels through.

This module is the batched core: a whole Pauli sum becomes three NumPy
arrays —

* ``x``, ``z``: ``(terms, ceil(n/64))`` uint64 bit-matrices, word ``w``
  of row ``t`` holding qubits ``64w .. 64w+63`` of term ``t``'s X/Z
  masks (the symmer-style symplectic form, packed 64 qubits per word),
* ``coeffs``: ``(terms,)`` complex128,

with the phase convention of :mod:`repro.ir.pauli` kept exactly:
``P(x, z) = i^{|x & z|} X^x Z^z`` (each row is a Hermitian Pauli
string).  All algebra is then bit arithmetic over whole matrices:

* sum×sum product / commutator — one broadcasted XOR plus popcount
  phase bookkeeping per (chunked) pair block, followed by a single
  lexicographic dedup-and-sum instead of per-pair dict updates,
* commutation / anticommutation / qubitwise-commutation adjacency —
  boolean matrices from word-AND + popcount parity,
* greedy QWC grouping — the first-fit scan checks a candidate term
  against *all* existing groups in one vectorized conflict test,
* GF(2) elimination (``gf2_rref`` / ``gf2_kernel``) over packed rows —
  the kernel of the stacked Hamiltonian bit-matrix is exactly the Z2
  symmetry group that :mod:`repro.chem.tapering` tapers away.

:class:`repro.ir.pauli.PauliSum` routes its ``dot`` / ``commutator`` /
``group_qubitwise_commuting`` / ``simplify`` through this engine above
a small size cutoff and memoizes the packed form under its ``_version``
cache protocol; nothing here mutates a source sum.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.utils.bitops import count_set_bits

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ir.pauli import PauliSum

__all__ = [
    "SymplecticPauli",
    "pack_masks",
    "unpack_masks",
    "popcount_words",
    "parity_words",
    "pauli_mul_batch",
    "gf2_rref",
    "gf2_kernel",
]

# Powers of i as an indexable array (fancy indexing over exponent
# matrices); tuple I_POW stays the scalar path's table.
I_POW_ARR = np.array([1.0 + 0j, 1j, -1.0 + 0j, -1j], dtype=np.complex128)

_WORD_BITS = 64
_WORD_MASK = (1 << 64) - 1

# Pair-block budget for the chunked outer products: bounds peak memory
# of a product at ~100 MB of transients regardless of operand size.
_PAIR_CHUNK = 1 << 20

# The packed (n <= 32) product path spends ~48 bytes of transients per
# pair, so it affords larger blocks — fewer chunk sorts per product.
_PACKED_PAIR_CHUNK = 1 << 22

_SHIFT32 = np.uint64(32)
_MASK32 = np.uint64(0xFFFFFFFF)


def _dedup_packed(
    packed: np.ndarray, coeffs: np.ndarray, threshold: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Sort packed ``(x << 32) | z`` keys, sum coefficients of equal
    keys (``np.add.reduceat`` over run boundaries), drop
    ``|coeff| <= threshold``.  Returns ``(unique_keys, coeffs)`` in
    ascending key order — the same lexicographic (X|Z) order the
    general row-matrix path produces."""
    order = np.argsort(packed)
    srt = packed[order]
    boundary = np.empty(len(srt), dtype=bool)
    boundary[0] = True
    np.not_equal(srt[1:], srt[:-1], out=boundary[1:])
    idx = np.flatnonzero(boundary)
    summed = np.add.reduceat(coeffs[order], idx)
    keep = np.abs(summed) > threshold
    return srt[idx][keep], summed[keep]


def _num_words(num_qubits: int) -> int:
    return (num_qubits + _WORD_BITS - 1) // _WORD_BITS


def pack_masks(masks: Sequence[int], num_qubits: int) -> np.ndarray:
    """Pack Python-int bitmasks into a ``(len(masks), ceil(n/64))``
    uint64 matrix (word ``w`` holds bits ``64w .. 64w+63``)."""
    w = _num_words(num_qubits)
    t = len(masks)
    out = np.zeros((t, w), dtype=np.uint64)
    if t == 0:
        return out
    if w == 1:
        out[:, 0] = np.fromiter(masks, dtype=np.uint64, count=t)
    else:
        for j in range(w):
            shift = _WORD_BITS * j
            out[:, j] = np.fromiter(
                ((m >> shift) & _WORD_MASK for m in masks),
                dtype=np.uint64,
                count=t,
            )
    return out


def unpack_masks(words: np.ndarray) -> List[int]:
    """Inverse of :func:`pack_masks`: rows back to Python ints."""
    if words.ndim != 2:
        raise ValueError("expected a (terms, words) matrix")
    t, w = words.shape
    if w == 1:
        return words[:, 0].tolist()  # uint64 -> exact Python ints
    cols = [words[:, j].tolist() for j in range(w)]
    return [
        sum(cols[j][i] << (_WORD_BITS * j) for j in range(w))
        for i in range(t)
    ]


if hasattr(np, "bitwise_count"):  # numpy >= 2.0: native POPCNT
    _popcount_elem = np.bitwise_count
else:
    _popcount_elem = count_set_bits


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-row popcount of packed masks (summed over the word axis)."""
    return _popcount_elem(words).sum(axis=-1, dtype=np.int64)


def parity_words(words: np.ndarray) -> np.ndarray:
    """Per-row popcount parity (0/1) of packed masks."""
    return popcount_words(words) & 1


def pauli_mul_batch(
    x1: np.ndarray,
    z1: np.ndarray,
    c1: np.ndarray,
    x2: np.ndarray,
    z2: np.ndarray,
    c2: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Broadcasted product of Hermitian Pauli strings.

    Inputs are packed word arrays with any broadcast-compatible leading
    shape and a trailing word axis; coefficients broadcast over the
    leading shape.  Returns ``(x3, z3, c3)`` with the phase convention
    of :meth:`repro.ir.pauli.PauliString.mul`:

        P(x1, z1) P(x2, z2) = i^e P(x3, z3),
        e = |x1&z1| + |x2&z2| - |x3&z3| + 2 |z1&x2|  (mod 4).
    """
    x3 = x1 ^ x2
    z3 = z1 ^ z2
    exponent = (
        popcount_words(x1 & z1)
        + popcount_words(x2 & z2)
        - popcount_words(x3 & z3)
        + 2 * popcount_words(z1 & x2)
    ) % 4
    return x3, z3, c1 * c2 * I_POW_ARR[exponent]


class SymplecticPauli:
    """A whole Pauli sum as packed (X|Z) uint64 bit-matrices.

    Rows are terms; instances are value objects — every operation
    returns a new instance and never aliases operand arrays into the
    result.  Rows are *not* automatically deduplicated on construction;
    ``dedup()`` (or any product, which dedups its output) collapses
    duplicates.
    """

    __slots__ = ("num_qubits", "num_words", "x", "z", "coeffs")

    def __init__(
        self,
        num_qubits: int,
        x: np.ndarray,
        z: np.ndarray,
        coeffs: np.ndarray,
    ):
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        w = _num_words(num_qubits)
        x = np.ascontiguousarray(x, dtype=np.uint64)
        z = np.ascontiguousarray(z, dtype=np.uint64)
        coeffs = np.ascontiguousarray(coeffs, dtype=np.complex128)
        if x.ndim != 2 or x.shape[1] != w or x.shape != z.shape:
            raise ValueError("x/z must be (terms, ceil(n/64)) matrices")
        if coeffs.shape != (x.shape[0],):
            raise ValueError("coeffs length must match the row count")
        self.num_qubits = num_qubits
        self.num_words = w
        self.x = x
        self.z = z
        self.coeffs = coeffs
        if obs.enabled():
            obs.inc(
                "repro_symplectic_rows",
                x.shape[0],
                help="Pauli-term rows packed into symplectic bit-matrices",
            )

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_terms_dict(
        cls, num_qubits: int, terms: Dict[Tuple[int, int], complex]
    ) -> "SymplecticPauli":
        """Pack a ``PauliSum.terms``-style ``{(x, z): coeff}`` dict
        (row order = dict insertion order)."""
        keys = list(terms.keys())
        x = pack_masks([k[0] for k in keys], num_qubits)
        z = pack_masks([k[1] for k in keys], num_qubits)
        coeffs = np.fromiter(
            (terms[k] for k in keys), dtype=np.complex128, count=len(keys)
        )
        return cls(num_qubits, x, z, coeffs)

    @classmethod
    def from_pauli_sum(cls, pauli_sum: "PauliSum") -> "SymplecticPauli":
        return cls.from_terms_dict(pauli_sum.num_qubits, pauli_sum.terms)

    @classmethod
    def zero(cls, num_qubits: int) -> "SymplecticPauli":
        w = _num_words(num_qubits)
        return cls(
            num_qubits,
            np.zeros((0, w), dtype=np.uint64),
            np.zeros((0, w), dtype=np.uint64),
            np.zeros(0, dtype=np.complex128),
        )

    # -- inspection / conversion ---------------------------------------------

    @property
    def num_terms(self) -> int:
        return self.x.shape[0]

    def __len__(self) -> int:
        return self.x.shape[0]

    def x_masks(self) -> List[int]:
        return unpack_masks(self.x)

    def z_masks(self) -> List[int]:
        return unpack_masks(self.z)

    def to_terms_dict(self) -> Dict[Tuple[int, int], complex]:
        """Back to ``{(x, z): coeff}`` (duplicate rows collapse)."""
        out: Dict[Tuple[int, int], complex] = {}
        coeffs = self.coeffs.tolist()
        for xm, zm, c in zip(self.x_masks(), self.z_masks(), coeffs):
            key = (xm, zm)
            new = out.get(key, 0.0) + c
            if new == 0:
                out.pop(key, None)
            else:
                out[key] = new
        return out

    def to_pauli_sum(self) -> "PauliSum":
        from repro.ir.pauli import PauliSum

        return PauliSum(self.num_qubits, self.to_terms_dict())

    def labels(self) -> List[str]:
        """Textual labels row by row (highest qubit first)."""
        from repro.ir.pauli import PauliString

        return [
            PauliString(self.num_qubits, xm, zm).label()
            for xm, zm in zip(self.x_masks(), self.z_masks())
        ]

    def __repr__(self) -> str:
        return (
            f"SymplecticPauli(qubits={self.num_qubits}, "
            f"terms={self.num_terms}, words={self.num_words})"
        )

    # -- dedup / chop --------------------------------------------------------

    def dedup(self, threshold: float = 0.0) -> "SymplecticPauli":
        """Collapse duplicate (x, z) rows (coefficients summed) and
        drop rows with ``|coeff| <= threshold``; rows come back in
        lexicographic (X|Z) word order.

        Uses a typed ``np.lexsort`` over the uint64 columns rather than
        ``np.unique(axis=0)`` — the latter sorts a packed void view with
        per-row memcmp comparisons and dominates large products.
        """
        if self.num_terms == 0:
            return SymplecticPauli.zero(self.num_qubits)
        if self.num_qubits <= 32:
            # x and z each fit in 32 bits: sort one packed uint64 key
            # and never materialize the concatenated row matrix.
            packed = (self.x[:, 0] << _SHIFT32) | self.z[:, 0]
            up, coeffs = _dedup_packed(packed, self.coeffs, threshold)
            return SymplecticPauli(
                self.num_qubits,
                (up >> _SHIFT32)[:, None],
                (up & _MASK32)[:, None],
                coeffs,
            )
        key = np.concatenate([self.x, self.z], axis=1)
        # lexsort treats its LAST key as primary; unique(axis=0) compares
        # columns left to right, so feed them reversed.
        order = np.lexsort(
            tuple(key[:, j] for j in range(key.shape[1] - 1, -1, -1))
        )
        srt = key[order]
        boundary = np.empty(len(srt), dtype=bool)
        boundary[0] = True
        np.any(srt[1:] != srt[:-1], axis=1, out=boundary[1:])
        idx = np.flatnonzero(boundary)
        uniq = srt[idx]
        coeffs = np.add.reduceat(self.coeffs[order], idx)
        keep = np.abs(coeffs) > threshold
        w = self.num_words
        return SymplecticPauli(
            self.num_qubits, uniq[keep, :w], uniq[keep, w:], coeffs[keep]
        )

    def chop(self, threshold: float) -> "SymplecticPauli":
        """Drop rows with ``|coeff| <= threshold`` (no dedup)."""
        keep = np.abs(self.coeffs) > threshold
        return SymplecticPauli(
            self.num_qubits, self.x[keep], self.z[keep], self.coeffs[keep]
        )

    def scale(self, scalar: complex) -> "SymplecticPauli":
        return SymplecticPauli(
            self.num_qubits, self.x, self.z, self.coeffs * scalar
        )

    # -- products ------------------------------------------------------------

    def _check_compatible(self, other: "SymplecticPauli") -> None:
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")

    def mul(
        self, other: "SymplecticPauli", threshold: float = 0.0
    ) -> "SymplecticPauli":
        """Operator product ``self @ other``: every row pair multiplied
        with phase tracking, then one global dedup-and-sum.

        Runs in pair chunks of ~2^20 so a 4747x4747 product stays
        within a bounded transient footprint.
        """
        self._check_compatible(other)
        ta, tb = self.num_terms, other.num_terms
        if ta == 0 or tb == 0:
            return SymplecticPauli.zero(self.num_qubits)
        if self.num_qubits <= 32:
            return self._mul_packed(other, threshold)
        w = self.num_words
        # |x & z| popcounts of both operands, hoisted out of the chunk loop.
        pa = popcount_words(self.x & self.z)
        pb = popcount_words(other.x & other.z)
        rows_per_chunk = max(1, _PAIR_CHUNK // tb)
        pieces: List[SymplecticPauli] = []
        for start in range(0, ta, rows_per_chunk):
            sl = slice(start, min(start + rows_per_chunk, ta))
            x1 = self.x[sl][:, None, :]
            z1 = self.z[sl][:, None, :]
            x3 = x1 ^ other.x[None, :, :]
            z3 = z1 ^ other.z[None, :, :]
            exponent = (
                pa[sl][:, None]
                + pb[None, :]
                - popcount_words(x3 & z3)
                + 2 * popcount_words(z1 & other.x[None, :, :])
            ) % 4
            coeffs = (
                self.coeffs[sl][:, None] * other.coeffs[None, :]
            ) * I_POW_ARR[exponent]
            piece = SymplecticPauli(
                self.num_qubits,
                x3.reshape(-1, w),
                z3.reshape(-1, w),
                coeffs.ravel(),
            )
            # Dedup inside the chunk so the accumulated pieces stay small.
            pieces.append(piece.dedup(threshold))
        if len(pieces) == 1:
            return pieces[0]
        return _concat(pieces).dedup(threshold)

    def _mul_packed(
        self, other: "SymplecticPauli", threshold: float
    ) -> "SymplecticPauli":
        """Product specialization for n <= 32: each term is one packed
        ``(x << 32) | z`` uint64, so the pair XOR, the phase popcounts
        and the dedup sort all run on single uint64 arrays instead of
        separate (x, z) row matrices."""
        ta, tb = self.num_terms, other.num_terms
        p1 = (self.x[:, 0] << _SHIFT32) | self.z[:, 0]
        p2 = (other.x[:, 0] << _SHIFT32) | other.z[:, 0]
        pa = _popcount_elem((p1 >> _SHIFT32) & p1).astype(np.int64)
        pb = _popcount_elem((p2 >> _SHIFT32) & p2).astype(np.int64)
        z1 = self.z[:, 0]
        x2 = other.x[:, 0]
        rows_per_chunk = max(1, _PACKED_PAIR_CHUNK // tb)
        packed_pieces: List[np.ndarray] = []
        coeff_pieces: List[np.ndarray] = []
        for start in range(0, ta, rows_per_chunk):
            sl = slice(start, min(start + rows_per_chunk, ta))
            pp = p1[sl][:, None] ^ p2[None, :]
            # x3 & z3 of every pair, still packed: the x field shifted
            # down onto the z field.
            xz3 = (pp >> _SHIFT32) & pp
            z1x2 = z1[sl][:, None] & x2[None, :]
            exponent = (
                pa[sl][:, None]
                + pb[None, :]
                - _popcount_elem(xz3).astype(np.int64)
                + 2 * _popcount_elem(z1x2).astype(np.int64)
            ) % 4
            coeffs = (
                self.coeffs[sl][:, None] * other.coeffs[None, :]
            ) * I_POW_ARR[exponent]
            up, uc = _dedup_packed(pp.ravel(), coeffs.ravel(), threshold)
            packed_pieces.append(up)
            coeff_pieces.append(uc)
        if len(packed_pieces) == 1:
            up, uc = packed_pieces[0], coeff_pieces[0]
        else:
            up, uc = _dedup_packed(
                np.concatenate(packed_pieces),
                np.concatenate(coeff_pieces),
                threshold,
            )
        return SymplecticPauli(
            self.num_qubits,
            (up >> _SHIFT32)[:, None],
            (up & _MASK32)[:, None],
            uc,
        )

    def commutator(
        self, other: "SymplecticPauli", threshold: float = 0.0
    ) -> "SymplecticPauli":
        """[self, other]: only anticommuting row pairs contribute, each
        with ``2 * P1 P2`` (same identity the per-term path uses)."""
        self._check_compatible(other)
        ta, tb = self.num_terms, other.num_terms
        if ta == 0 or tb == 0:
            return SymplecticPauli.zero(self.num_qubits)
        w = self.num_words
        pa = popcount_words(self.x & self.z)
        pb = popcount_words(other.x & other.z)
        rows_per_chunk = max(1, _PAIR_CHUNK // tb)
        pieces: List[SymplecticPauli] = []
        for start in range(0, ta, rows_per_chunk):
            sl = slice(start, min(start + rows_per_chunk, ta))
            anti = self.anticommutation_matrix(other, rows=sl)
            i, j = np.nonzero(anti)
            if i.size == 0:
                continue
            x1 = self.x[sl][i]
            z1 = self.z[sl][i]
            x2 = other.x[j]
            z2 = other.z[j]
            x3 = x1 ^ x2
            z3 = z1 ^ z2
            exponent = (
                pa[sl][i]
                + pb[j]
                - popcount_words(x3 & z3)
                + 2 * popcount_words(z1 & x2)
            ) % 4
            coeffs = (
                2.0 * self.coeffs[sl][i] * other.coeffs[j]
            ) * I_POW_ARR[exponent]
            pieces.append(
                SymplecticPauli(self.num_qubits, x3, z3, coeffs).dedup(
                    threshold
                )
            )
        if not pieces:
            return SymplecticPauli.zero(self.num_qubits)
        if len(pieces) == 1:
            return pieces[0]
        return _concat(pieces).dedup(threshold)

    # -- adjacency -----------------------------------------------------------

    def anticommutation_matrix(
        self,
        other: Optional["SymplecticPauli"] = None,
        rows: slice = slice(None),
    ) -> np.ndarray:
        """Boolean (rows_of_self, terms_of_other) matrix; entry True
        when the pair *anticommutes* (symplectic inner product odd)."""
        other = self if other is None else other
        self._check_compatible(other)
        x1 = self.x[rows][:, None, :]
        z1 = self.z[rows][:, None, :]
        parity = (
            popcount_words(x1 & other.z[None, :, :])
            + popcount_words(z1 & other.x[None, :, :])
        ) & 1
        return parity.astype(bool)

    def commutation_matrix(
        self, other: Optional["SymplecticPauli"] = None
    ) -> np.ndarray:
        """Boolean matrix of pairwise *commutation*."""
        return ~self.anticommutation_matrix(other)

    def qubitwise_commutation_matrix(
        self, other: Optional["SymplecticPauli"] = None
    ) -> np.ndarray:
        """Boolean matrix of pairwise qubitwise commutation: True when
        on every shared qubit the letters agree or one is identity."""
        other = self if other is None else other
        self._check_compatible(other)
        occ1 = (self.x | self.z)[:, None, :]
        occ2 = (other.x | other.z)[None, :, :]
        differ = (self.x[:, None, :] ^ other.x[None, :, :]) | (
            self.z[:, None, :] ^ other.z[None, :, :]
        )
        conflict = occ1 & occ2 & differ
        return ~(conflict != 0).any(axis=-1)

    # -- qubitwise-commuting grouping ----------------------------------------

    def group_qubitwise(
        self, order: Optional[np.ndarray] = None
    ) -> List[List[int]]:
        """Greedy first-fit QWC grouping; returns term-index groups.

        ``order`` is the scan order (default: rows as stored).  The fit
        test against every existing group is one vectorized conflict
        check on the groups' union letter masks — equivalent to testing
        against every member, because members of a QWC group agree on
        each occupied qubit.
        """
        t = self.num_terms
        if order is None:
            order = np.arange(t)
        occ_all = self.x | self.z
        w = self.num_words
        cap = max(1, t)
        gx = np.zeros((cap, w), dtype=np.uint64)
        gz = np.zeros((cap, w), dtype=np.uint64)
        gocc = np.zeros((cap, w), dtype=np.uint64)
        n_groups = 0
        groups: List[List[int]] = []
        for idx in order.tolist():
            placed = False
            if n_groups:
                conflict = (occ_all[idx] & gocc[:n_groups]) & (
                    (self.x[idx] ^ gx[:n_groups])
                    | (self.z[idx] ^ gz[:n_groups])
                )
                fits = np.flatnonzero(~(conflict != 0).any(axis=1))
                if fits.size:
                    g = int(fits[0])
                    groups[g].append(idx)
                    gx[g] |= self.x[idx]
                    gz[g] |= self.z[idx]
                    gocc[g] |= occ_all[idx]
                    placed = True
            if not placed:
                groups.append([idx])
                gx[n_groups] = self.x[idx]
                gz[n_groups] = self.z[idx]
                gocc[n_groups] = occ_all[idx]
                n_groups += 1
        return groups


def _concat(pieces: List[SymplecticPauli]) -> SymplecticPauli:
    first = pieces[0]
    return SymplecticPauli(
        first.num_qubits,
        np.concatenate([p.x for p in pieces], axis=0),
        np.concatenate([p.z for p in pieces], axis=0),
        np.concatenate([p.coeffs for p in pieces]),
    )


# -- GF(2) linear algebra on packed rows --------------------------------------


def gf2_rref(
    rows: np.ndarray, num_bits: int
) -> Tuple[np.ndarray, List[int]]:
    """Reduced row echelon form over GF(2) of packed uint64 rows.

    ``rows`` is ``(R, ceil(num_bits/64))``; returns ``(rref, pivots)``
    where ``rref`` holds the ``rank`` nonzero reduced rows and
    ``pivots`` their pivot columns (ascending).  Each elimination step
    XORs the pivot row into every other row carrying that column — a
    single vectorized operation per column.
    """
    mat = np.array(rows, dtype=np.uint64, copy=True)
    if mat.ndim != 2:
        raise ValueError("expected a (rows, words) matrix")
    r = 0
    pivots: List[int] = []
    n_rows = mat.shape[0]
    for col in range(num_bits):
        if r == n_rows:
            break
        word, bit = divmod(col, _WORD_BITS)
        colbit = np.uint64(1 << bit)
        has = (mat[:, word] & colbit) != 0
        candidates = np.flatnonzero(has[r:])
        if candidates.size == 0:
            continue
        p = r + int(candidates[0])
        if p != r:
            mat[[r, p]] = mat[[p, r]]
        has = (mat[:, word] & colbit) != 0
        has[r] = False
        mat[has] ^= mat[r]
        pivots.append(col)
        r += 1
    return mat[: len(pivots)], pivots


def gf2_kernel(rows: np.ndarray, num_bits: int) -> np.ndarray:
    """Kernel basis of a packed GF(2) matrix: all ``v`` with
    ``row . v = 0 (mod 2)`` for every row.

    Returns a ``(dim_kernel, ceil(num_bits/64))`` packed basis in
    reduced form: each basis vector sets exactly one free column plus
    the pivot columns needed to cancel it, so the basis is independent
    by construction.
    """
    rref, pivots = gf2_rref(rows, num_bits)
    pivot_set = set(pivots)
    free_cols = [c for c in range(num_bits) if c not in pivot_set]
    w = rows.shape[1] if rows.ndim == 2 else _num_words(num_bits)
    basis = np.zeros((len(free_cols), w), dtype=np.uint64)
    for k, f in enumerate(free_cols):
        fw, fb = divmod(f, _WORD_BITS)
        basis[k, fw] |= np.uint64(1 << fb)
        # v[pivot_i] = rref[i, f] cancels row i's contribution at f.
        fcol = (rref[:, fw] >> np.uint64(fb)) & np.uint64(1)
        for i in np.flatnonzero(fcol):
            pw, pb = divmod(pivots[int(i)], _WORD_BITS)
            basis[k, pw] |= np.uint64(1 << pb)
    return basis
