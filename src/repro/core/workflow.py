"""The end-to-end execution flow of Fig. 2:

    molecule -> SCF -> coupled-cluster downfolding -> qubit observable
             -> ansatz generation -> VQE on a simulator backend.

``run_vqe_workflow`` wires the whole pipeline with sensible defaults so
an example script is three lines; every stage remains individually
overridable (the stages are just the public APIs of the subpackages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro import obs
from repro.chem.downfolding import DownfoldingResult, hermitian_downfold
from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import MolecularHamiltonian, build_molecular_hamiltonian
from repro.chem.molecule import Molecule
from repro.chem.reference import hartree_fock_bitstring, hartree_fock_state
from repro.chem.scf import SCFResult, run_rhf
from repro.chem.tapering import TaperResult, taper_hamiltonian
from repro.chem.uccsd import uccsd_generators
from repro.core.vqe import VQE, VQEResult
from repro.ir.pauli import PauliSum
from repro.opt.base import Optimizer
from repro.utils.profiling import Timer

__all__ = ["WorkflowResult", "run_vqe_workflow"]


@dataclass
class WorkflowResult:
    """Everything the Fig. 2 pipeline produced, stage by stage."""

    molecule: Molecule
    scf: SCFResult
    hamiltonian: MolecularHamiltonian
    downfolding: Optional[DownfoldingResult]
    qubit_hamiltonian: PauliSum
    vqe: VQEResult
    exact_energy: Optional[float]
    num_qubits: int
    num_electrons: int
    tapering: Optional[TaperResult] = None

    @property
    def energy(self) -> float:
        return self.vqe.energy

    @property
    def error_vs_exact(self) -> Optional[float]:
        if self.exact_energy is None:
            return None
        return abs(self.vqe.energy - self.exact_energy)


def run_vqe_workflow(
    molecule: Molecule,
    core_orbitals: Optional[Sequence[int]] = None,
    active_orbitals: Optional[Sequence[int]] = None,
    downfold: bool = True,
    downfolding_order: int = 2,
    optimizer: Optional[Optimizer] = None,
    compute_exact: bool = True,
    basis_name: str = "sto-3g",
    timer: Optional[Timer] = None,
    taper: bool = False,
) -> WorkflowResult:
    """Run the complete Fig. 2 pipeline on one molecule.

    With no active-space arguments the full orbital space is used and
    downfolding reduces to a no-op; with ``core_orbitals`` /
    ``active_orbitals`` the Hamiltonian is downfolded (Hermitian,
    commutator order ``downfolding_order``) before VQE.  ``taper=True``
    removes the Hamiltonian's Z2 symmetry qubits before VQE (sector
    from the Hartree–Fock occupation); the exact reference energy is
    still computed on the untapered operator so the tapered VQE answer
    is checked against the full problem.  ``timer`` (optional) collects
    per-stage wall time and is forwarded to the VQE driver.
    """
    with obs.span("workflow.scf", atoms=len(molecule.atoms)):
        scf = run_rhf(molecule, basis_name)
    with obs.span("workflow.hamiltonian"):
        hamiltonian = build_molecular_hamiltonian(scf)

    n_spatial = hamiltonian.num_orbitals
    if active_orbitals is None:
        core_orbitals = []
        active_orbitals = list(range(n_spatial))
    core_orbitals = list(core_orbitals or [])

    downfolding: Optional[DownfoldingResult] = None
    with obs.span("workflow.qubit_mapping", downfold=bool(downfold and core_orbitals)):
        if downfold and core_orbitals:
            downfolding = hermitian_downfold(
                hamiltonian,
                scf.mo_energies,
                core_orbitals,
                active_orbitals,
                order=downfolding_order,
            )
            qubit_h = downfolding.effective_hamiltonian
            n_electrons = downfolding.num_electrons
        else:
            reduced = (
                hamiltonian.active_space(core_orbitals, active_orbitals)
                if (core_orbitals or len(active_orbitals) < n_spatial)
                else hamiltonian
            )
            qubit_h = reduced.to_qubit("jordan-wigner")
            n_electrons = reduced.num_electrons

    num_qubits = qubit_h.num_qubits
    gens = [a for _, a in uccsd_generators(num_qubits, n_electrons)]
    reference = hartree_fock_state(num_qubits, n_electrons)

    tapering: Optional[TaperResult] = None
    full_qubit_h = qubit_h
    if taper:
        with obs.span("workflow.taper", qubits=num_qubits):
            hf_index = hartree_fock_bitstring(num_qubits, n_electrons)
            tapering = taper_hamiltonian(qubit_h, reference_index=hf_index)
            qubit_h = tapering.hamiltonian
            gens = [
                g
                for g in (
                    tapering.taper_operator(gen, strict=False) for gen in gens
                )
                if len(g) > 0
            ]
            num_qubits = qubit_h.num_qubits
            reference = np.zeros(1 << num_qubits, dtype=np.complex128)
            reference[tapering.taper_index(hf_index)] = 1.0

    vqe = VQE(
        qubit_h,
        generators=gens,
        reference_state=reference,
        optimizer=optimizer,
        timer=timer,
    )
    with obs.span("workflow.vqe", qubits=num_qubits):
        if timer is not None:
            with timer.section("workflow_vqe"):
                result = vqe.run()
        else:
            result = vqe.run()

    with obs.span("workflow.exact_diagonalization", enabled=compute_exact):
        exact = (
            exact_ground_energy(full_qubit_h, num_particles=n_electrons, sz=0)
            if compute_exact
            else None
        )
    return WorkflowResult(
        molecule=molecule,
        scf=scf,
        hamiltonian=hamiltonian,
        downfolding=downfolding,
        qubit_hamiltonian=qubit_h,
        vqe=result,
        exact_energy=exact,
        num_qubits=num_qubits,
        num_electrons=n_electrons,
        tapering=tapering,
    )
