"""Potential-energy-surface scans with incremental (warm-started)
optimization — paper §6.2's "incremental optimization" future work,
implemented.

A dissociation curve is a sequence of closely-related VQE problems:
the optimal parameters at bond length r are an excellent initial guess
at r + dr.  ``scan_potential_energy_surface`` runs the chemistry-mode
VQE across a geometry sweep, threading each point's optimum into the
next point's start, and records how many optimizer evaluations the
warm start saves relative to cold (zero) starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.chem.fci import exact_ground_energy
from repro.chem.hamiltonian import build_molecular_hamiltonian
from repro.chem.molecule import Molecule
from repro.chem.reference import hartree_fock_state
from repro.chem.scf import run_rhf
from repro.chem.uccsd import uccsd_generators
from repro.core.vqe import VQE
from repro.opt.base import Optimizer

__all__ = ["ScanPoint", "ScanResult", "scan_potential_energy_surface"]


@dataclass
class ScanPoint:
    """One geometry on the curve."""

    parameter: float  # e.g. bond length in Angstrom
    scf_energy: float
    vqe_energy: float
    exact_energy: Optional[float]
    function_evaluations: int
    warm_started: bool

    @property
    def correlation_energy(self) -> float:
        return self.vqe_energy - self.scf_energy


@dataclass
class ScanResult:
    """A computed potential energy surface."""

    points: List[ScanPoint] = field(default_factory=list)

    @property
    def parameters(self) -> np.ndarray:
        return np.array([p.parameter for p in self.points])

    @property
    def energies(self) -> np.ndarray:
        return np.array([p.vqe_energy for p in self.points])

    @property
    def total_function_evaluations(self) -> int:
        return sum(p.function_evaluations for p in self.points)

    def equilibrium(self) -> ScanPoint:
        """The minimum-energy point of the scan."""
        return min(self.points, key=lambda p: p.vqe_energy)


def scan_potential_energy_surface(
    geometry_factory: Callable[[float], Molecule],
    parameters: Sequence[float],
    warm_start: bool = True,
    optimizer: Optional[Optimizer] = None,
    compute_exact: bool = True,
) -> ScanResult:
    """Sweep a 1-parameter geometry family with UCCSD VQE.

    Parameters
    ----------
    geometry_factory:
        Maps the scan parameter (e.g. bond length) to a molecule, e.g.
        ``repro.chem.molecule.h2``.
    parameters:
        Scan values, visited in order (warm starting assumes adjacent
        values are adjacent geometries).
    warm_start:
        Thread each point's optimal parameters into the next start
        (§6.2 incremental optimization); ``False`` gives the cold
        baseline the benchmark compares against.
    """
    result = ScanResult()
    previous: Optional[np.ndarray] = None
    for value in parameters:
        molecule = geometry_factory(float(value))
        scf = run_rhf(molecule)
        hamiltonian = build_molecular_hamiltonian(scf)
        qubit_h = hamiltonian.to_qubit()
        n_so = hamiltonian.num_spin_orbitals
        n_e = hamiltonian.num_electrons
        gens = [a for _, a in uccsd_generators(n_so, n_e)]
        vqe = VQE(
            qubit_h,
            generators=gens,
            reference_state=hartree_fock_state(n_so, n_e),
            optimizer=optimizer,
        )
        x0 = previous if (warm_start and previous is not None) else None
        res = vqe.run(x0)
        if warm_start:
            previous = res.optimal_parameters
        exact = (
            exact_ground_energy(qubit_h, num_particles=n_e, sz=0)
            if compute_exact
            else None
        )
        result.points.append(
            ScanPoint(
                parameter=float(value),
                scf_energy=scf.energy,
                vqe_energy=res.energy,
                exact_energy=exact,
                function_evaluations=res.num_function_evaluations,
                warm_started=x0 is not None,
            )
        )
    return result
