"""Variance-weighted shot allocation across measurement groups.

In sampled execution the estimator variance of <H> is

    Var = sum_g Var_g / s_g,   sum_g s_g = S (shot budget),

and Lagrange optimization gives the classic answer: allocate shots
proportionally to the square root of each group's variance,
``s_g ~ sqrt(Var_g)``.  Uniform allocation — what a naive driver does —
wastes budget on tiny-coefficient groups.  Both policies are provided
so the benchmark can quantify the gap; group variances are either
supplied (from a pilot run) or bounded by ``(sum_i |c_i|)^2`` per
group, the worst case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.pauli import PauliString, PauliSum
from repro.sim.expectation import basis_change_circuit, diagonal_expectation
from repro.sim.statevector import StatevectorSimulator
from repro.utils.bitops import count_set_bits

__all__ = ["allocate_shots", "sampled_energy_with_allocation"]


def allocate_shots(
    group_weights: Sequence[float], total_shots: int, minimum: int = 16
) -> List[int]:
    """Integer shot counts proportional to sqrt-weights.

    ``group_weights`` are (upper bounds on) per-group variances; each
    group receives at least ``minimum`` shots and the counts sum to
    ``total_shots`` exactly.
    """
    w = np.sqrt(np.maximum(np.asarray(group_weights, dtype=float), 0.0))
    k = len(w)
    if total_shots < minimum * k:
        raise ValueError("shot budget below the per-group minimum")
    if w.sum() == 0:
        w = np.ones(k)
    raw = minimum + (total_shots - minimum * k) * w / w.sum()
    shots = np.floor(raw).astype(int)
    # distribute the rounding remainder to the largest fractional parts
    remainder = total_shots - int(shots.sum())
    order = np.argsort(-(raw - shots))
    for i in range(remainder):
        shots[order[i % k]] += 1
    return [int(s) for s in shots]


def sampled_energy_with_allocation(
    state: np.ndarray,
    hamiltonian: PauliSum,
    total_shots: int,
    policy: str = "variance",
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Finite-shot <H> under a shot-allocation policy.

    ``policy`` is ``"variance"`` (sqrt-weighted by the group coefficient
    1-norm squared — the worst-case variance bound) or ``"uniform"``.
    """
    rng = rng or np.random.default_rng()
    n = hamiltonian.num_qubits
    groups = hamiltonian.group_qubitwise_commuting()
    # identity-only groups are free
    measurable = []
    constant = 0.0
    for g in groups:
        if all(p.is_identity for _, p in g):
            constant += sum(c.real for c, _ in g)
        else:
            measurable.append(g)
    if not measurable:
        return constant
    if policy == "variance":
        weights = [sum(abs(c) for c, _ in g) ** 2 for g in measurable]
    elif policy == "uniform":
        weights = [1.0] * len(measurable)
    else:
        raise ValueError("policy must be 'variance' or 'uniform'")
    shots = allocate_shots(weights, total_shots)

    sim = StatevectorSimulator(n)
    total = constant
    for g, s in zip(measurable, shots):
        strings = [p for _, p in g]
        circ = basis_change_circuit(strings, n)
        sim.set_state(state, copy=True)
        sim.apply_circuit(circ)
        samples = sim.sample(s, rng)
        # One (shots, terms) parity pass for the whole group instead of
        # a Python loop over members.
        ident = np.array([p.is_identity for _, p in g])
        coeffs = np.array([c.real for c, _ in g])
        total += float(coeffs[ident].sum())
        z_masks = np.array(
            [p.x | p.z for _, p in g if not p.is_identity], dtype=np.int64
        )
        if z_masks.size:
            parities = (
                count_set_bits(samples[:, None] & z_masks[None, :]) & 1
            )
            means = 1.0 - 2.0 * parities.mean(axis=0)
            total += float(coeffs[~ident] @ means)
    return total
