"""Quantum phase estimation for chemistry Hamiltonians.

The paper's abstract reports executing *both* QPE and VQE for
downfolded chemistry systems through the XACC + NWQ-Sim stack; this
module supplies the QPE side.

Textbook QPE: an ``m``-ancilla register controls powers of the
evolution unitary U = exp(i H t) applied to a system register prepared
in a reference state; the inverse QFT on the ancillas concentrates
probability on the binary fraction phi with U's eigenphase
2 pi phi, from which the eigenvalue E = 2 pi phi / t (after
un-shifting).  The measured eigenvalue is drawn toward the eigenstate
of largest overlap with the reference — Hartree–Fock overlaps the
ground state well for the systems here, so QPE reads out E_0.

Controlled powers are applied as exact controlled-unitary blocks on
the statevector (one dense 2^n x 2^n matrix per power — honest for the
simulator scale used here); a Trotterized gate-level path is available
through ``repro.ir.library.trotter_evolution`` for circuit-faithful
studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.linalg

from repro.ir.circuit import Circuit
from repro.ir.library import inverse_qft
from repro.ir.pauli import PauliSum
from repro.sim.statevector import StatevectorSimulator

__all__ = ["QPEResult", "run_qpe", "run_qpe_trotter", "run_iterative_qpe"]


@dataclass
class QPEResult:
    """Outcome of one QPE run."""

    energy: float
    phase: float
    distribution: np.ndarray  # probability per ancilla outcome
    num_ancillas: int
    resolution: float  # energy quantum per ancilla tick
    success_probability: float  # weight on the reported outcome

    def __repr__(self) -> str:
        return (
            f"QPEResult(energy={self.energy:.6f}, "
            f"resolution={self.resolution:.2e}, "
            f"p={self.success_probability:.3f})"
        )


def run_qpe(
    hamiltonian: PauliSum,
    reference_state: np.ndarray,
    num_ancillas: int = 8,
    energy_window: Optional[Tuple[float, float]] = None,
) -> QPEResult:
    """Estimate the eigenvalue of ``hamiltonian`` supported by
    ``reference_state``.

    Parameters
    ----------
    hamiltonian:
        Hermitian qubit observable.
    reference_state:
        System-register preparation (e.g. the HF determinant); QPE
        resolves the eigenvalue of the dominant eigencomponent.
    num_ancillas:
        Phase-register width m; energy resolution is window / 2^m.
    energy_window:
        (E_min, E_max) guaranteed to contain the target eigenvalue.
        Defaults to +/- the Pauli 1-norm of H, which always brackets
        the spectrum.
    """
    if not hamiltonian.is_hermitian():
        raise ValueError("QPE requires a Hermitian Hamiltonian")
    n = hamiltonian.num_qubits
    dim = 1 << n
    reference_state = np.asarray(reference_state, dtype=np.complex128)
    if reference_state.shape != (dim,):
        raise ValueError("reference state dimension mismatch")

    if energy_window is None:
        bound = hamiltonian.norm1()
        energy_window = (-bound, bound)
    e_min, e_max = energy_window
    if e_max <= e_min:
        raise ValueError("empty energy window")
    # Scale/shift H so the window maps to phases in [0, 1):
    # phi = (E - e_min) / (e_max - e_min) * (2^m - 1)/2^m head-room.
    span = (e_max - e_min) * (1 << num_ancillas) / ((1 << num_ancillas) - 1)
    t = 2.0 * math.pi / span

    h_mat = hamiltonian.to_sparse().toarray()
    u = scipy.linalg.expm(1j * t * (h_mat - e_min * np.eye(dim)))

    # State layout: system qubits 0..n-1, ancillas n..n+m-1.
    m = num_ancillas
    total = n + m
    sim = StatevectorSimulator(total)
    state = np.zeros(1 << total, dtype=np.complex128)
    state[: dim] = reference_state  # ancillas |0...0>
    sim.set_state(state, copy=False)

    prep = Circuit(total)
    for a in range(m):
        prep.h(n + a)
    sim.apply_circuit(prep)

    # Controlled U^(2^k) on ancilla k: exact dense controlled blocks.
    psi = sim.statevector(copy=False).reshape((1 << m, dim))  # [anc, system]
    u_power = u
    for k in range(m):
        anc_bit = 1 << k
        for anc in range(1 << m):
            if anc & anc_bit:
                psi[anc] = u_power @ psi[anc]
        if k < m - 1:
            u_power = u_power @ u_power

    # Inverse QFT on the ancilla register.
    iqft = inverse_qft(m)
    shifted = Circuit(total)
    for g in iqft.gates:
        shifted.append(
            type(g)(g.name, tuple(q + n for q in g.qubits), g.params, g.matrix)
        )
    sim.apply_circuit(shifted)

    probs_full = sim.probabilities().reshape((1 << m, dim))
    anc_probs = probs_full.sum(axis=1)
    best = int(np.argmax(anc_probs))
    phase = best / (1 << m)
    energy = e_min + phase * span
    return QPEResult(
        energy=float(energy),
        phase=float(phase),
        distribution=anc_probs,
        num_ancillas=m,
        resolution=float(span / (1 << m)),
        success_probability=float(anc_probs[best]),
    )


def run_qpe_trotter(
    hamiltonian: PauliSum,
    reference_circuit: Circuit,
    num_ancillas: int = 6,
    energy_window: Optional[Tuple[float, float]] = None,
    trotter_steps: int = 2,
) -> QPEResult:
    """Fully gate-level QPE: the entire algorithm — reference prep,
    Hadamards, controlled Trotterized powers of U, inverse QFT — is one
    circuit executed by the statevector simulator.

    Exponentially many controlled-evolution repetitions (sum 2^k) keep
    this to small demos, which is faithful to the real cost of QPE; the
    dense-matrix :func:`run_qpe` is the fast path for larger registers.
    ``trotter_steps`` applies per single power of U; Trotter error adds
    a bias on top of the phase-register resolution.
    """
    from repro.ir.library import controlled_evolution, inverse_qft

    if not hamiltonian.is_hermitian():
        raise ValueError("QPE requires a Hermitian Hamiltonian")
    n = hamiltonian.num_qubits
    if reference_circuit.num_qubits != n:
        raise ValueError("reference circuit width mismatch")
    m = num_ancillas
    total = n + m

    if energy_window is None:
        bound = hamiltonian.norm1()
        energy_window = (-bound, bound)
    e_min, e_max = energy_window
    if e_max <= e_min:
        raise ValueError("empty energy window")
    span = (e_max - e_min) * (1 << m) / ((1 << m) - 1)
    t = 2.0 * math.pi / span
    shifted = hamiltonian + PauliSum.identity(n, -e_min)

    qpe = Circuit(total)
    for g in reference_circuit.gates:
        qpe.append(g)
    for a in range(m):
        qpe.h(n + a)
    for k in range(m):
        # controlled-U^(2^k) = 2^k controlled-U applications
        block = controlled_evolution(
            shifted, t, control=n + k, num_qubits=total, steps=trotter_steps
        )
        for _ in range(1 << k):
            qpe.compose(block)
    iqft = inverse_qft(m)
    for g in iqft.gates:
        qpe.append(
            type(g)(g.name, tuple(q + n for q in g.qubits), g.params, g.matrix)
        )

    sim = StatevectorSimulator(total)
    sim.run(qpe)
    probs_full = sim.probabilities().reshape((1 << m, 1 << n))
    anc_probs = probs_full.sum(axis=1)
    best = int(np.argmax(anc_probs))
    phase = best / (1 << m)
    energy = e_min + phase * span
    return QPEResult(
        energy=float(energy),
        phase=float(phase),
        distribution=anc_probs,
        num_ancillas=m,
        resolution=float(span / (1 << m)),
        success_probability=float(anc_probs[best]),
    )


def run_iterative_qpe(
    hamiltonian: PauliSum,
    reference_state: np.ndarray,
    num_bits: int = 10,
    energy_window: Optional[Tuple[float, float]] = None,
    rng: Optional[np.random.Generator] = None,
) -> QPEResult:
    """Iterative (single-ancilla) phase estimation.

    Kitaev-style IPE reads the phase one bit at a time, least
    significant first: each round is Hadamard, controlled-U^(2^k), a
    classically-controlled feedback rotation undoing the already-known
    lower bits, Hadamard, and a *mid-circuit measurement* of the one
    ancilla (collapse handled by the simulator).  Only one extra qubit
    is ever needed — the hardware-friendly QPE variant.
    """
    if not hamiltonian.is_hermitian():
        raise ValueError("QPE requires a Hermitian Hamiltonian")
    rng = rng or np.random.default_rng(0)
    n = hamiltonian.num_qubits
    dim = 1 << n
    reference_state = np.asarray(reference_state, dtype=np.complex128)
    if reference_state.shape != (dim,):
        raise ValueError("reference state dimension mismatch")
    if energy_window is None:
        bound = hamiltonian.norm1()
        energy_window = (-bound, bound)
    e_min, e_max = energy_window
    if e_max <= e_min:
        raise ValueError("empty energy window")
    m = num_bits
    span = (e_max - e_min) * (1 << m) / ((1 << m) - 1)
    t = 2.0 * math.pi / span

    h_mat = hamiltonian.to_sparse().toarray()
    u = scipy.linalg.expm(1j * t * (h_mat - e_min * np.eye(dim)))
    # u^(2^k) table
    powers = [u]
    for _ in range(m - 1):
        powers.append(powers[-1] @ powers[-1])

    total = n + 1
    anc = n
    sim = StatevectorSimulator(total)
    state = np.zeros(1 << total, dtype=np.complex128)
    state[:dim] = reference_state
    sim.set_state(state, copy=False)

    # phase = sum_j bits[j] * 2^(j - m): bits[0] is the least significant
    # bit (measured first, at the highest power of U), bits[m-1] the MSB.
    bits = [0] * m
    for k in range(m - 1, -1, -1):
        i = m - k - 1  # significance index of the bit this round reads:
        # frac(2^k phase) = 0.b_i b_{i-1} ... b_0
        step = Circuit(total).h(anc)
        sim.apply_circuit(step)
        # controlled-U^{2^k} on the ancilla, applied directly
        psi = sim.statevector(copy=False).reshape(2, dim)
        psi[1] = powers[k] @ psi[1]
        # feedback: rotate away the already-measured lower bits
        phi_known = sum(bits[j] * 2.0 ** (j + k - m) for j in range(i))
        fb = Circuit(total)
        fb.add("p", [anc], -2.0 * math.pi * phi_known)
        fb.h(anc)
        sim.apply_circuit(fb)
        outcome = sim.measure_qubit(anc, rng)
        bits[i] = outcome
        if outcome:  # reset ancilla to |0>
            sim.apply_circuit(Circuit(total).x(anc))

    phase = sum(b / (1 << (m - j)) for j, b in enumerate(bits))
    energy = e_min + phase * span
    distribution = np.zeros(1 << min(m, 20))
    idx = sum(b << j for j, b in enumerate(bits))
    if idx < distribution.shape[0]:
        distribution[idx] = 1.0
    return QPEResult(
        energy=float(energy),
        phase=float(phase),
        distribution=distribution,
        num_ancillas=1,
        resolution=float(span / (1 << m)),
        success_probability=1.0,
    )
